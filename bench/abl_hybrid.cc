// Future-work study (Section V): the hybrid BFS-DFS engine across device
// memory budgets, against pure DFS (T-DFS) and pure BFS (PBE). The paper
// conjectures BFS is faster while levels fit and DFS must take over when
// they do not; the sweep shows where the crossover falls.

#include <iostream>

#include "core/hybrid_engine.h"
#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

int main() {
  tdfs::bench::PrintBanner(
      "Future work (Sec. V)", "Hybrid BFS-DFS engine vs pure DFS / BFS",
      "Hybrid rows sweep the device-memory budget for materialized "
      "levels; 'levels' = breadth-first levels taken before switching.");

  const tdfs::DatasetId graphs[] = {tdfs::DatasetId::kYoutube,
                                    tdfs::DatasetId::kCitPatents};
  const int patterns[] = {3, 8, 10};

  for (tdfs::DatasetId id : graphs) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    std::vector<std::string> headers = {"Engine"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p) + " ms");
      headers.push_back(tdfs::PatternName(p) + " levels");
    }
    tdfs::bench::TablePrinter table(headers);

    {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      std::vector<std::string> row = {"pure DFS (T-DFS)"};
      for (int p : patterns) {
        row.push_back(
            tdfs::bench::RunCell(g, tdfs::Pattern(p), config).text);
        row.push_back("-");
      }
      table.AddRow(std::move(row));
    }
    for (int64_t budget_kb : {64, 1024, 65536}) {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      config.bfs_memory_budget_bytes = budget_kb * 1024;
      std::vector<std::string> row = {"hybrid " + std::to_string(budget_kb) +
                                      " KiB"};
      for (int p : patterns) {
        tdfs::RunResult r =
            tdfs::RunMatchingHybrid(g, tdfs::Pattern(p), config);
        if (r.status.ok()) {
          row.push_back(tdfs::bench::Ms(r.SimulatedGpuMs()));
          row.push_back(std::to_string(r.counters.bfs_batches));
        } else {
          row.push_back("T");
          row.push_back("-");
        }
      }
      table.AddRow(std::move(row));
    }
    {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::PbeConfig());
      std::vector<std::string> row = {"pure BFS (PBE)"};
      for (int p : patterns) {
        row.push_back(
            tdfs::bench::RunCell(g, tdfs::Pattern(p), config, true).text);
        row.push_back("-");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
