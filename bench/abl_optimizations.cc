// Ablation: the two algorithmic optimizations of Section III — edge/degree
// filtering and set-intersection result reuse — toggled independently
// (the paper defers this study to its online appendix [10]).

#include <iostream>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

int main() {
  tdfs::bench::PrintBanner(
      "Appendix", "Ablation of edge filtering and intersection reuse",
      "Four T-DFS variants; cells are total intersection work in mega-units "
      "(deterministic). Dense patterns (P2/P6/P7/P10) benefit most from "
      "reuse, sparse ones from filtering.");

  const tdfs::DatasetId graphs[] = {tdfs::DatasetId::kYoutube,
                                    tdfs::DatasetId::kPokec};
  const int patterns[] = {1, 2, 3, 6, 7, 10};

  for (tdfs::DatasetId id : graphs) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    std::vector<std::string> headers = {"Variant"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);
    struct Variant {
      const char* name;
      bool filter;
      bool reuse;
    };
    for (const Variant& v :
         {Variant{"filter+reuse (T-DFS)", true, true},
          Variant{"filter only", true, false},
          Variant{"reuse only", false, true},
          Variant{"neither", false, false}}) {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      config.use_degree_filter = v.filter;
      config.use_reuse = v.reuse;
      std::vector<std::string> row = {v.name};
      for (int p : patterns) {
        tdfs::bench::CellResult cell =
            tdfs::bench::RunCell(g, tdfs::Pattern(p), config);
        if (!cell.run.status.ok()) {
          row.push_back(cell.text);
          continue;
        }
        // Work units are the deterministic cost measure; wall time on
        // small cells is dominated by fixed per-job costs.
        row.push_back(
            tdfs::bench::Ms(cell.run.counters.work_units / 1e6) + " Mu");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
