// Ablation: three scheduling knobs the paper fixes by design —
//   (a) queue-first vs initial-task-first work acquisition ("we always
//       prioritize the processing of existing tasks over taking new tasks
//       ... we do not need to set the capacity of Q_task to be too large"),
//   (b) the initial-task chunk size (default 8),
//   (c) the StopLevel (max matched vertices in a decomposed task, 3 vs 2).

#include <iostream>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

int main() {
  tdfs::Graph g = tdfs::LoadDataset(tdfs::DatasetId::kYoutube);
  const int patterns[] = {3, 5, 8, 11};

  // (a) queue-first scheduling: the claim is about queue occupancy.
  tdfs::bench::PrintBanner(
      "Design ablation (a)", "Queue-first vs chunk-first scheduling",
      "Graph: " + g.Summary() +
      ". Cells: time ms / peak tasks in Q_task.");
  {
    std::vector<std::string> headers = {"Scheduling"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);
    for (bool queue_first : {true, false}) {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      config.queue_first = queue_first;
      tdfs::bench::SetTauMs(&config, 1.0);
      std::vector<std::string> row = {queue_first ? "queue-first (T-DFS)"
                                                  : "chunk-first"};
      for (int p : patterns) {
        tdfs::bench::CellResult cell =
            tdfs::bench::RunCell(g, tdfs::Pattern(p), config);
        row.push_back(cell.text + " / " +
                      std::to_string(cell.run.counters.queue_peak_tasks));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  // (b) chunk size.
  tdfs::bench::PrintBanner("Design ablation (b)",
                           "Initial-task chunk size (default 8)", "");
  {
    std::vector<std::string> headers = {"Chunk"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);
    for (int chunk : {1, 8, 64, 512}) {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      config.chunk_size = chunk;
      std::vector<std::string> row = {std::to_string(chunk)};
      for (int p : patterns) {
        row.push_back(tdfs::bench::RunCell(g, tdfs::Pattern(p), config)
                          .text);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  // (c) StopLevel.
  tdfs::bench::PrintBanner(
      "Design ablation (c)", "StopLevel: decomposed-task granularity",
      "stop_level 3 = <v1,v2,v3> tasks (paper); 2 = <v1,v2> tasks only.");
  {
    std::vector<std::string> headers = {"StopLevel"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);
    for (int stop_level : {3, 2}) {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      config.stop_level = stop_level;
      tdfs::bench::SetTauMs(&config, 1.0);
      std::vector<std::string> row = {std::to_string(stop_level)};
      for (int p : patterns) {
        row.push_back(tdfs::bench::RunCell(g, tdfs::Pattern(p), config)
                          .text);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
