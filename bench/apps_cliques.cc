// Generality study (Section I: the timeout mechanism, task queue, and
// dynamic stacks "are general for depth-first subgraph search on GPUs, not
// just limited to our targeted subgraph matching application"). The two
// other classic subgraph-search problems the paper cites — k-clique
// counting [20] and maximal clique enumeration [21] — run on the same
// substrate, with and without the timeout mechanism, on the skewed graphs
// where stragglers matter.

#include <iostream>

#include "apps/kclique.h"
#include "apps/mce.h"
#include "graph/datasets.h"
#include "harness.h"

int main() {
  tdfs::bench::PrintBanner(
      "Generality", "k-clique counting and MCE on the T-DFS substrate",
      "Timeout Steal vs No Steal; same TaskQueue and <=3-vertex tasks as "
      "subgraph matching.");

  const tdfs::DatasetId graphs[] = {tdfs::DatasetId::kYoutube,
                                    tdfs::DatasetId::kPokec,
                                    tdfs::DatasetId::kOrkut};
  tdfs::bench::TablePrinter table(
      {"Dataset", "App", "Timeout(ms)", "NoSteal(ms)", "Count", "Tasks"});

  for (tdfs::DatasetId id : graphs) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    if (g.IsLabeled()) {
      g.ClearLabels();
    }
    tdfs::EngineConfig timeout =
        tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
    tdfs::bench::SetTauMs(&timeout, 1.0);
    tdfs::EngineConfig nosteal = timeout;
    nosteal.steal = tdfs::StealStrategy::kNone;

    for (int k : {4, 5}) {
      tdfs::RunResult with = tdfs::CountKCliques(g, k, timeout);
      tdfs::RunResult without = tdfs::CountKCliques(g, k, nosteal);
      table.AddRow({tdfs::DatasetName(id),
                    std::to_string(k) + "-clique count",
                    with.status.ok() ? tdfs::bench::Ms(with.SimulatedGpuMs()) : "T",
                    without.status.ok() ? tdfs::bench::Ms(without.SimulatedGpuMs())
                                        : "T",
                    std::to_string(with.match_count),
                    std::to_string(with.counters.tasks_enqueued)});
    }
    tdfs::RunResult with = tdfs::CountMaximalCliques(g, timeout);
    tdfs::RunResult without = tdfs::CountMaximalCliques(g, nosteal);
    table.AddRow({tdfs::DatasetName(id), "maximal cliques",
                  with.status.ok() ? tdfs::bench::Ms(with.SimulatedGpuMs()) : "T",
                  without.status.ok() ? tdfs::bench::Ms(without.SimulatedGpuMs())
                                      : "T",
                  std::to_string(with.match_count),
                  std::to_string(with.counters.tasks_enqueued)});
  }
  table.Print();
  return 0;
}
