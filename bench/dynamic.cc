// Batch-dynamic maintenance: incremental delta counting vs full recount.
//
// Workload: three continuous queries (P1/P2/P5) registered against one BA
// graph, then a stream of mixed insert/delete batches. Two modes process
// the identical batch stream:
//
//   recount     — after each batch, re-run every query from scratch on
//                 the new snapshot (what a system without incremental
//                 maintenance must do).
//   incremental — MatchService::ApplyUpdate: per-rank delta plans seeded
//                 with only the batch's edges, warm plan cache + one
//                 arena lease per batch.
//
// Counts are cross-checked after every batch: both modes must agree, and
// the final counts must equal a from-scratch count on the final graph.
// The exit code demands incremental beat recount on this warm
// continuous-query workload.

#include <iostream>
#include <memory>
#include <vector>

#include "dyn/dynamic_graph.h"
#include "dyn/graph_delta.h"
#include "graph/generators.h"
#include "harness.h"
#include "query/patterns.h"
#include "service/match_service.h"
#include "util/prng.h"
#include "util/timer.h"

namespace {

using tdfs::dyn::EdgePair;
using tdfs::dyn::GraphDelta;

// Mixed batch valid against `g`.
GraphDelta MakeDelta(const tdfs::Graph& g, int num_ins, int num_del,
                     tdfs::Xoshiro256ss* rng) {
  std::vector<EdgePair> deletions;
  while (static_cast<int>(deletions.size()) < num_del) {
    const int64_t e = rng->Range(0, g.NumDirectedEdges() - 1);
    const tdfs::VertexId u = g.EdgeSource(e);
    const tdfs::VertexId v = g.EdgeTarget(e);
    deletions.emplace_back(u < v ? u : v, u < v ? v : u);
  }
  std::vector<EdgePair> insertions;
  while (static_cast<int>(insertions.size()) < num_ins) {
    const auto u = static_cast<tdfs::VertexId>(
        rng->Range(0, g.NumVertices() - 1));
    const auto v = static_cast<tdfs::VertexId>(
        rng->Range(0, g.NumVertices() - 1));
    if (u == v || g.HasEdge(u, v)) {
      continue;
    }
    insertions.emplace_back(u < v ? u : v, u < v ? v : u);
  }
  return GraphDelta::Build(std::move(insertions), std::move(deletions))
      .value();
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "dynamic",
      "Batch-dynamic updates: incremental maintenance vs full recount",
      "P1/P2/P5 continuous queries on BA(4000, 4); 12 batches of +16/-8 "
      "edges; identical counts required after every batch.");

  const tdfs::Graph base = tdfs::GenerateBarabasiAlbert(4000, 4, /*seed=*/7);
  const int pattern_ids[] = {1, 2, 5};
  const int kBatches = 12;
  const int kInserts = 16;
  const int kDeletes = 8;

  tdfs::EngineConfig config =
      tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());

  // Pre-generate the batch stream against an evolving copy so both modes
  // replay the exact same deltas.
  std::vector<GraphDelta> batches;
  {
    tdfs::Xoshiro256ss rng(99);
    tdfs::dyn::DynamicGraph evolving(base);
    for (int b = 0; b < kBatches; ++b) {
      batches.push_back(MakeDelta(*evolving.Snapshot(), kInserts, kDeletes,
                                  &rng));
      if (!evolving.Apply(batches.back()).ok()) {
        std::cerr << "batch generation failed\n";
        return 1;
      }
    }
  }

  tdfs::bench::SetBenchGroup("ba4000");

  // ---- recount mode ----
  std::vector<uint64_t> recount_counts(3, 0);
  double recount_ms = 0.0;
  {
    tdfs::dyn::DynamicGraph dynamic(base);
    tdfs::Timer wall;
    for (const GraphDelta& delta : batches) {
      auto post = dynamic.Apply(delta);
      if (!post.ok()) {
        std::cerr << "recount apply failed: " << post.status() << "\n";
        return 1;
      }
      for (int i = 0; i < 3; ++i) {
        const tdfs::RunResult r = tdfs::RunMatching(
            *post.value(), tdfs::Pattern(pattern_ids[i]), config);
        if (!r.status.ok()) {
          std::cerr << "recount failed: " << r.status << "\n";
          return 1;
        }
        recount_counts[i] = r.match_count;
      }
    }
    recount_ms = wall.ElapsedMillis();
  }

  // ---- incremental mode ----
  std::vector<uint64_t> incremental_counts(3, 0);
  double incremental_ms = 0.0;
  int64_t delta_plans = 0;
  {
    tdfs::ServiceOptions service_options;
    service_options.num_workers = 1;
    tdfs::MatchService service(base, config, service_options);
    std::vector<int64_t> ids;
    for (int p : pattern_ids) {
      auto id = service.RegisterContinuousQuery(tdfs::Pattern(p));
      if (!id.ok()) {
        std::cerr << "register failed: " << id.status() << "\n";
        return 1;
      }
      ids.push_back(id.value());
    }
    tdfs::Timer wall;
    for (const GraphDelta& delta : batches) {
      auto report = service.ApplyUpdate(delta);
      if (!report.ok()) {
        std::cerr << "ApplyUpdate failed: " << report.status() << "\n";
        return 1;
      }
      delta_plans += report.value().delta_plans_run;
      for (const auto& qd : report.value().queries) {
        if (qd.recounted) {
          std::cerr << "incremental fell back to recount — BUG for this "
                       "workload\n";
          return 1;
        }
      }
    }
    incremental_ms = wall.ElapsedMillis();
    for (int i = 0; i < 3; ++i) {
      incremental_counts[i] = service.ContinuousQueryCount(ids[i]).value();
    }
  }

  const bool counts_match = recount_counts == incremental_counts;
  const double speedup =
      incremental_ms > 0 ? recount_ms / incremental_ms : 0.0;

  tdfs::bench::TablePrinter table({"Mode", "wall ms", "ms/batch", "speedup"});
  table.AddRow({"recount", tdfs::bench::Ms(recount_ms),
                tdfs::bench::Ms(recount_ms / kBatches), "1.0x"});
  table.AddRow({"incremental", tdfs::bench::Ms(incremental_ms),
                tdfs::bench::Ms(incremental_ms / kBatches),
                tdfs::bench::Ms(speedup) + "x"});
  table.Print();
  std::cout << "delta plans run: " << delta_plans << "\n"
            << "final counts (P1/P2/P5): " << incremental_counts[0] << " "
            << incremental_counts[1] << " " << incremental_counts[2] << "\n"
            << "counts identical across modes: "
            << (counts_match ? "yes" : "NO — BUG") << "\n";

  for (int i = 0; i < 2; ++i) {
    tdfs::RunResult run;
    run.total_ms = i == 0 ? recount_ms : incremental_ms;
    run.match_ms = run.total_ms;
    run.match_count = (i == 0 ? recount_counts : incremental_counts)[0];
    if (!counts_match) {
      run.status = tdfs::Status::Internal("count mismatch");
    }
    const char* name = i == 0 ? "recount" : "incremental";
    tdfs::bench::RecordBenchCell(name, "wall_ms", run,
                                 tdfs::bench::Ms(run.total_ms));
  }
  {
    tdfs::RunResult run;
    run.total_ms = incremental_ms;
    tdfs::bench::RecordBenchCell("incremental", "speedup_vs_recount", run,
                                 tdfs::bench::Ms(speedup));
  }

  return counts_match && incremental_ms < recount_ms ? 0 : 1;
}
