// Figure 9: T-DFS vs STMatch vs EGSM vs PBE on the 8 moderate unlabeled
// graphs, patterns P1-P11.
//
// Paper's observations to reproduce (Section IV-B):
//   * T-DFS beats the DFS baselines by large factors (~42x STMatch,
//     ~360x EGSM on average) — STMatch pays for set-difference vertex
//     removal, stack locking, and host-side filtering; EGSM pays |Aut|-fold
//     redundant enumeration (no symmetry breaking) plus index indirection.
//   * PBE (BFS) is the closest baseline (~2x slower on average), closest
//     on the most skewed graphs (YouTube/Pokec) where warp-DFS imbalance
//     hurts most.

#include <iostream>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

struct EngineRow {
  const char* name;
  bool bfs;
  tdfs::EngineConfig config;
};

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "Figure 9",
      "T-DFS vs STMatch vs EGSM vs PBE, moderate unlabeled graphs, P1-P11",
      "One sub-table per dataset; rows are engines, columns patterns.");

  for (tdfs::DatasetId id : tdfs::ModerateDatasets()) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    tdfs::bench::SetBenchGroup(tdfs::DatasetName(id));
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    const EngineRow engines[] = {
        {"T-DFS", false, tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig())},
        {"STMatch", false,
         tdfs::bench::WithBenchDefaults(tdfs::StmatchConfig())},
        {"EGSM", false, tdfs::bench::WithBenchDefaults(tdfs::EgsmConfig())},
        {"PBE", false, tdfs::bench::WithBenchDefaults(tdfs::PbeConfig())},
    };
    std::vector<std::string> headers = {"Engine"};
    for (int p : tdfs::UnlabeledPatternIndices()) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);
    for (const EngineRow& engine : engines) {
      const bool bfs = std::string(engine.name) == "PBE";
      std::vector<std::string> row = {engine.name};
      for (int p : tdfs::UnlabeledPatternIndices()) {
        row.push_back(tdfs::bench::RunCell(g, tdfs::Pattern(p),
                                           engine.config, bfs, engine.name,
                                           tdfs::PatternName(p))
                          .text);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
