// Figure 10: T-DFS vs STMatch vs EGSM on the 4 big labeled graphs
// (4 uniform labels), patterns P1-P22. PBE is excluded (no label support,
// as in the paper).
//
// Observations to reproduce: T-DFS wins (~20x / ~15x average); P1-P11
// (uniform query labels) are faster for T-DFS than P12-P22 because set
// intersection reuse needs equal labels; EGSM OOMs/errs on the biggest
// graph for most patterns.

#include <iostream>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

// P1-P11 on labeled graphs: the paper gives all query vertices the same
// label. Label 0 keeps selectivity while allowing reuse.
tdfs::QueryGraph UniformlyLabeledPattern(int index) {
  tdfs::QueryGraph q = tdfs::Pattern(index);
  for (int u = 0; u < q.NumVertices(); ++u) {
    q.SetVertexLabel(u, 0);
  }
  return q;
}

tdfs::QueryGraph LabeledPattern(int index) {
  return index <= 11 ? UniformlyLabeledPattern(index)
                     : tdfs::Pattern(index);
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "Figure 10",
      "T-DFS vs STMatch vs EGSM, big labeled graphs (|L|=4), P1-P22",
      "P1-P11 take one uniform query label; P12-P22 use label (i mod 4).");

  for (tdfs::DatasetId id : tdfs::BigDatasets()) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    struct EngineRow {
      const char* name;
      tdfs::EngineConfig config;
    };
    const EngineRow engines[] = {
        {"T-DFS", tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig())},
        {"STMatch", tdfs::bench::WithBenchDefaults(tdfs::StmatchConfig())},
        {"EGSM", tdfs::bench::WithBenchDefaults(tdfs::EgsmConfig())},
    };
    std::vector<std::string> headers = {"Engine"};
    for (int p : tdfs::AllPatternIndices()) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);
    for (const EngineRow& engine : engines) {
      std::vector<std::string> row = {engine.name};
      for (int p : tdfs::AllPatternIndices()) {
        row.push_back(
            tdfs::bench::RunCell(g, LabeledPattern(p), engine.config)
                .text);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
