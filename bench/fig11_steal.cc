// Figure 11: load-balancing strategy comparison — Timeout Steal (T-DFS)
// vs Half Steal (STMatch) vs New Kernel (EGSM) vs No Steal — implemented
// inside the same framework so only the balancing mechanism varies, on the
// three skewed graphs the paper shows (YouTube, Orkut, Sinaweibo).
//
// Observations to reproduce: Timeout Steal wins; Half Steal's locking can
// make it slower than No Steal on some patterns; New Kernel pays launch
// and stack-allocation overhead.

#include <iostream>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

tdfs::QueryGraph PatternForGraph(int index, const tdfs::Graph& g) {
  tdfs::QueryGraph q = tdfs::Pattern((index - 1) % 11 + 1);
  if (g.IsLabeled()) {
    for (int u = 0; u < q.NumVertices(); ++u) {
      q.SetVertexLabel(u, index <= 11 ? 0 : u % 4);
    }
  }
  return q;
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "Figure 11",
      "Work-stealing strategies within the T-DFS framework",
      "All rows share stacks/optimizations; only the balancing differs.");

  const tdfs::DatasetId graphs[] = {
      tdfs::DatasetId::kYoutube,
      tdfs::DatasetId::kOrkut,
      tdfs::DatasetId::kSinaweibo,
  };
  const std::pair<const char*, tdfs::StealStrategy> strategies[] = {
      {"Timeout Steal", tdfs::StealStrategy::kTimeout},
      {"Half Steal", tdfs::StealStrategy::kHalfSteal},
      {"New Kernel", tdfs::StealStrategy::kNewKernel},
      {"No Steal", tdfs::StealStrategy::kNone},
  };

  for (tdfs::DatasetId id : graphs) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    // Unlabeled graphs show P1-P11; labeled ones P1-P22 as in the paper.
    std::vector<int> patterns = tdfs::UnlabeledPatternIndices();
    if (g.IsLabeled()) {
      patterns = tdfs::AllPatternIndices();
    }
    std::vector<std::string> headers = {"Strategy"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);
    for (const auto& [name, strategy] : strategies) {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      config.steal = strategy;
      std::vector<std::string> row = {name};
      for (int p : patterns) {
        row.push_back(
            tdfs::bench::RunCell(g, PatternForGraph(p, g), config).text);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
