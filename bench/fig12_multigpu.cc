// Figure 12: multi-GPU scale-up on the two largest graphs (Datagen-fb,
// Friendster) with 1/2/4 virtual devices. Initial edges are partitioned
// round-robin; the simulated parallel time is max over per-device kernel
// times (devices run back-to-back on this host — see vgpu/device.h).
//
// Observation to reproduce: near-ideal speedup, because round-robin over
// fine-grained edge tasks balances the devices.

#include <iostream>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

tdfs::QueryGraph UniformLabeled(int index) {
  tdfs::QueryGraph q = tdfs::Pattern(index);
  for (int u = 0; u < q.NumVertices(); ++u) {
    q.SetVertexLabel(u, 0);
  }
  return q;
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "Figure 12", "Scale-up on multiple virtual GPUs",
      "Speedup = T(1 device) / max over devices of per-device time.");

  const tdfs::DatasetId graphs[] = {tdfs::DatasetId::kDatagenFb,
                                    tdfs::DatasetId::kFriendster};
  // The heavy 5- and 6-vertex queries: scale-up only shows above the
  // per-job fixed costs, which the analogs reach on these patterns.
  const int patterns[] = {3, 8, 9, 11};

  for (tdfs::DatasetId id : graphs) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    tdfs::bench::TablePrinter table({"Pattern", "1 GPU (ms)", "2 GPUs (ms)",
                                     "4 GPUs (ms)", "speedup x2",
                                     "speedup x4"});
    for (int p : patterns) {
      tdfs::QueryGraph q = UniformLabeled(p);
      double times[3] = {0, 0, 0};
      std::string text[3];
      bool ok = true;
      const int device_counts[3] = {1, 2, 4};
      for (int i = 0; i < 3; ++i) {
        tdfs::EngineConfig config =
            tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
        config.num_devices = device_counts[i];  // budget applies per device
        // Heavier cells than the other figures use; give them headroom.
        config.max_run_ms = tdfs::bench::CellBudgetMs() * 4;
        tdfs::RunResult r = tdfs::RunMatching(g, q, config);
        times[i] = r.SimulatedParallelMs();
        // Each cell reports its own outcome ("T"/"OOM"/"ERR", or "*" for a
        // degraded run) so e.g. a lost device is not mislabeled a timeout.
        text[i] = tdfs::bench::CellText(r, times[i]);
        ok = ok && r.status.ok();
      }
      table.AddRow(
          {tdfs::PatternName(p), text[0], text[1], text[2],
           ok ? tdfs::bench::Ms(times[0] / times[1]) + "x" : "-",
           ok ? tdfs::bench::Ms(times[0] / times[2]) + "x" : "-"});
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
