// Figure 12: multi-GPU scale-up on the two largest graphs (Datagen-fb,
// Friendster) with 1/2/4 virtual devices. Initial edges are partitioned
// round-robin; the simulated parallel time is max over per-device kernel
// times (devices run back-to-back on this host — see vgpu/device.h).
//
// Observation to reproduce: near-ideal speedup, because round-robin over
// fine-grained edge tasks balances the devices. The imbalance column
// (max/mean of per-device time at 4 devices) and the steal count make
// that balance visible directly instead of leaving it implied by the
// speedup ratio.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

tdfs::QueryGraph UniformLabeled(int index) {
  tdfs::QueryGraph q = tdfs::Pattern(index);
  for (int u = 0; u < q.NumVertices(); ++u) {
    q.SetVertexLabel(u, 0);
  }
  return q;
}

// Load imbalance = max / mean over per-device times. 1.0 is perfect
// balance; round-robin edge partitioning should stay close to it.
double Imbalance(const std::vector<double>& per_device_ms) {
  if (per_device_ms.empty()) {
    return 1.0;
  }
  double worst = 0.0;
  double sum = 0.0;
  for (double t : per_device_ms) {
    worst = std::max(worst, t);
    sum += t;
  }
  const double mean = sum / static_cast<double>(per_device_ms.size());
  return mean > 0.0 ? worst / mean : 1.0;
}

std::string Ratio(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "Figure 12", "Scale-up on multiple virtual GPUs",
      "Speedup = T(1 device) / max over devices of per-device time.");

  const tdfs::DatasetId graphs[] = {tdfs::DatasetId::kDatagenFb,
                                    tdfs::DatasetId::kFriendster};
  // The heavy 5- and 6-vertex queries: scale-up only shows above the
  // per-job fixed costs, which the analogs reach on these patterns.
  const int patterns[] = {3, 8, 9, 11};

  for (tdfs::DatasetId id : graphs) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    tdfs::bench::SetBenchGroup(tdfs::DatasetName(id));
    tdfs::bench::TablePrinter table(
        {"Pattern", "1 GPU (ms)", "2 GPUs (ms)", "4 GPUs (ms)",
         "speedup x2", "speedup x4", "imbalance x4", "steals x4"});
    for (int p : patterns) {
      tdfs::QueryGraph q = UniformLabeled(p);
      double times[3] = {0, 0, 0};
      std::string text[3];
      bool ok = true;
      const int device_counts[3] = {1, 2, 4};
      const char* cols[3] = {"1gpu", "2gpus", "4gpus"};
      double imbalance4 = 1.0;
      int64_t steals4 = 0;
      for (int i = 0; i < 3; ++i) {
        tdfs::EngineConfig config =
            tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
        config.num_devices = device_counts[i];  // budget applies per device
        // Heavier cells than the other figures use; give them headroom.
        config.max_run_ms = tdfs::bench::CellBudgetMs() * 4;
        tdfs::RunResult r = tdfs::RunMatching(g, q, config);
        times[i] = r.SimulatedParallelMs();
        // Each cell reports its own outcome ("T"/"OOM"/"ERR", or "*" for a
        // degraded run) so e.g. a lost device is not mislabeled a timeout.
        text[i] = tdfs::bench::CellText(r, times[i]);
        ok = ok && r.status.ok();
        tdfs::bench::RecordBenchCell(tdfs::PatternName(p), cols[i], r,
                                     text[i]);
        if (device_counts[i] == 4) {
          imbalance4 = Imbalance(r.per_device_ms);
          steals4 = r.counters.steal_successes;
          // Dedicated cells so the JSON diff tooling can track balance
          // and steal traffic without digging into the embedded result.
          tdfs::bench::RecordBenchCell(tdfs::PatternName(p),
                                       "imbalance_4gpu", r,
                                       Ratio(imbalance4));
          tdfs::bench::RecordBenchCell(tdfs::PatternName(p), "steals_4gpu",
                                       r, std::to_string(steals4));
        }
      }
      table.AddRow(
          {tdfs::PatternName(p), text[0], text[1], text[2],
           ok ? tdfs::bench::Ms(times[0] / times[1]) + "x" : "-",
           ok ? tdfs::bench::Ms(times[0] / times[2]) + "x" : "-",
           ok ? Ratio(imbalance4) : "-",
           ok ? std::to_string(steals4) : "-"});
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
