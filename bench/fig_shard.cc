// Shard-parallel scale-out: partitioned CSR + per-shard arenas versus the
// shared-CSR multi-device baseline on the Figure-12 graphs, 4 workers.
//
// The devices are host threads, so the end-to-end benefit of sharding —
// each worker keeps its partition in device-local memory instead of
// pulling rows over the interconnect — is modeled analytically on top of
// the virtual-clock compute times. Every term is deterministic:
//
//   compute_ms(worker) = busiest-warp work units / kWorkUnitsPerMs
//   remote_ms(worker)  = remote_rows * 0.5 us + remote_bytes / 12.5 GB/s
//   modeled_e2e        = max over workers of compute + remote
//
// Sharded runs meter their interconnect traffic exactly: the per-shard
// fetch tiers (graph/partition.h) count every adjacency row by source —
// owned and halo-cached rows are local, everything else crosses the
// interconnect. The shared-CSR baseline reads every row from a CSR
// striped uniformly across the D devices, so (D-1)/D of its fetched
// rows are remote. Work is bit-identical between the two executions
// (tests/shard_differential_test.cc proves exact work_units parity), so
// the sharded run's total fetch volume stands in for the baseline's.
//
// Model constants: 12.5 GB/s per-device interconnect bandwidth (PCIe
// 3.0 x16-class effective throughput) plus 0.5 us setup per remote row
// — adjacency rows are a few hundred bytes, so scattered row-granular
// remote reads are latency-bound, not bandwidth-bound (raw PCIe
// round-trips are 1-2 us; 0.5 us assumes moderate pipelining). Local
// and halo rows are free: device-local HBM keeps up with the compute
// rate by construction of the virtual clock.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

constexpr int kDevices = 4;
// 12.5 GB/s = 12.5e6 bytes per millisecond, per device.
constexpr double kInterconnectBytesPerMs = 12.5e6;
// DMA setup per remote row fetch (scattered reads are latency-bound).
constexpr double kRemoteRowMs = 0.0005;
constexpr double kBytesPerItem = sizeof(tdfs::VertexId);

tdfs::QueryGraph UniformLabeled(int index) {
  tdfs::QueryGraph q = tdfs::Pattern(index);
  for (int u = 0; u < q.NumVertices(); ++u) {
    q.SetVertexLabel(u, 0);
  }
  return q;
}

struct FetchVolume {
  int64_t rows = 0;
  int64_t items = 0;
};

// Total adjacency fetch volume of a sharded run, all tiers. Work parity
// makes this the fetch volume of ANY execution of the cell, sharded or
// not.
FetchVolume TotalFetched(const tdfs::RunResult& r) {
  FetchVolume v;
  for (const tdfs::ShardRunStats& s : r.per_shard) {
    v.rows += s.local_rows + s.halo_rows_fetched + s.remote_rows;
    v.items += s.local_items + s.halo_items + s.remote_items;
  }
  return v;
}

double RemoteMs(double rows, double items) {
  return rows * kRemoteRowMs +
         items * kBytesPerItem / kInterconnectBytesPerMs;
}

// Shared-CSR baseline: compute = the job's busiest warp on the virtual
// clock; remote volume = (D-1)/D of the total fetch volume, spread
// evenly (round-robin seeding touches the graph uniformly).
double ModeledSharedMs(const tdfs::RunResult& base,
                       const FetchVolume& total) {
  const double compute_ms =
      static_cast<double>(base.counters.max_warp_work_units) /
      tdfs::bench::kWorkUnitsPerMs;
  const double remote_share =
      static_cast<double>(kDevices - 1) / kDevices / kDevices;
  return compute_ms + RemoteMs(static_cast<double>(total.rows) * remote_share,
                               static_cast<double>(total.items) *
                                   remote_share);
}

// Sharded run: each shard's own busiest warp plus its metered remote
// rows over the interconnect; halo hits and owned rows are local.
double ModeledShardedMs(const tdfs::RunResult& r) {
  double worst = 0.0;
  for (const tdfs::ShardRunStats& s : r.per_shard) {
    const double compute_ms = static_cast<double>(s.max_warp_work_units) /
                              tdfs::bench::kWorkUnitsPerMs;
    worst = std::max(worst,
                     compute_ms + RemoteMs(static_cast<double>(s.remote_rows),
                                           static_cast<double>(
                                               s.remote_items)));
  }
  return worst;
}

std::string Ratio(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", value);
  return buffer;
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "Shard scale-out",
      "Partitioned CSR + per-shard arenas vs shared-CSR baseline",
      "4 workers; modeled_e2e = max over workers of virtual-clock compute "
      "+ remote rows * 0.5us + remote bytes / 12.5 GB/s. Counts are "
      "bit-identical across columns.");

  const tdfs::DatasetId graphs[] = {tdfs::DatasetId::kDatagenFb,
                                    tdfs::DatasetId::kFriendster};
  const int patterns[] = {3, 8, 9, 11};

  for (tdfs::DatasetId id : graphs) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::cout << "--- " << tdfs::DatasetName(id) << " (" << g.Summary()
              << ") ---\n";
    tdfs::bench::SetBenchGroup(tdfs::DatasetName(id));
    tdfs::bench::TablePrinter table(
        {"Pattern", "shared (ms)", "hash (ms)", "greedy (ms)",
         "speedup hash", "speedup greedy", "remote MB s/h/g"});
    for (int p : patterns) {
      tdfs::QueryGraph q = UniformLabeled(p);
      auto cell_config = [] {
        tdfs::EngineConfig config =
            tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
        config.num_devices = kDevices;
        config.max_run_ms = tdfs::bench::CellBudgetMs() * 4;
        return config;
      };

      tdfs::EngineConfig shared_cfg = cell_config();
      tdfs::RunResult shared = tdfs::RunMatching(g, q, shared_cfg);

      tdfs::EngineConfig hash_cfg = cell_config();
      hash_cfg.sharding = tdfs::ShardingKind::kHash;
      hash_cfg.num_shards = kDevices;
      tdfs::RunResult hash = tdfs::RunMatching(g, q, hash_cfg);

      tdfs::EngineConfig greedy_cfg = cell_config();
      greedy_cfg.sharding = tdfs::ShardingKind::kGreedy;
      greedy_cfg.num_shards = kDevices;
      tdfs::RunResult greedy = tdfs::RunMatching(g, q, greedy_cfg);

      const bool ok =
          shared.status.ok() && hash.status.ok() && greedy.status.ok() &&
          shared.match_count == hash.match_count &&
          shared.match_count == greedy.match_count;

      const FetchVolume total = TotalFetched(hash);
      const double shared_ms = ModeledSharedMs(shared, total);
      const double hash_ms = ModeledShardedMs(hash);
      const double greedy_ms = ModeledShardedMs(greedy);

      auto remote_mb = [](const tdfs::RunResult& r) {
        int64_t items = 0;
        for (const tdfs::ShardRunStats& s : r.per_shard) {
          items += s.remote_items;
        }
        return static_cast<double>(items) * kBytesPerItem / 1e6;
      };
      const double shared_remote_mb = static_cast<double>(total.items) *
                                      kBytesPerItem * (kDevices - 1) /
                                      kDevices / 1e6;
      char traffic[64];
      std::snprintf(traffic, sizeof(traffic), "%.1f/%.1f/%.1f",
                    shared_remote_mb, remote_mb(hash), remote_mb(greedy));

      const std::string row = tdfs::PatternName(p);
      tdfs::bench::RecordBenchCell(row, "shared", shared,
                                   tdfs::bench::Ms(shared_ms));
      tdfs::bench::RecordBenchCell(row, "hash", hash,
                                   tdfs::bench::Ms(hash_ms));
      tdfs::bench::RecordBenchCell(row, "greedy", greedy,
                                   tdfs::bench::Ms(greedy_ms));
      if (ok) {
        tdfs::bench::RecordBenchCell(row, "speedup_hash", hash,
                                     Ratio(shared_ms / hash_ms));
        tdfs::bench::RecordBenchCell(row, "speedup_greedy", greedy,
                                     Ratio(shared_ms / greedy_ms));
      }
      table.AddRow({row, tdfs::bench::Ms(shared_ms),
                    tdfs::bench::Ms(hash_ms), tdfs::bench::Ms(greedy_ms),
                    ok ? Ratio(shared_ms / hash_ms) : "-",
                    ok ? Ratio(shared_ms / greedy_ms) : "-", traffic});
      if (!ok) {
        std::cout << "  (cell degraded: shared=" << shared.status
                  << " hash=" << hash.status << " greedy=" << greedy.status
                  << ")\n";
      }
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
