#include "harness.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "graph/generators.h"
#include "obs/json.h"
#include "util/logging.h"

namespace tdfs::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::atof(value);
}

// TDFS_BENCH_JSON recorder: cells accumulate in-process and one results
// file is written at exit. Bench drivers are single-threaded, so no
// locking; the atexit writer makes Ctrl-C mid-run lose the file rather
// than corrupt it (the write is a single stream flush at the end).
struct BenchRecord {
  std::string group, row, col, text;
  RunResult run;
};

struct BenchRecorder {
  std::string path;
  std::string experiment, title;
  std::string group;
  std::vector<BenchRecord> cells;
};

BenchRecorder* Recorder() {
  static BenchRecorder* recorder = [] {
    const char* path = std::getenv("TDFS_BENCH_JSON");
    if (path == nullptr || *path == '\0') {
      return static_cast<BenchRecorder*>(nullptr);
    }
    auto* r = new BenchRecorder;
    r->path = path;
    std::atexit([] {
      BenchRecorder* rec = Recorder();
      if (rec == nullptr) {
        return;
      }
      std::ofstream out(rec->path);
      if (!out) {
        TDFS_LOG(Error) << "TDFS_BENCH_JSON: cannot open " << rec->path;
        return;
      }
      obs::JsonWriter w(out, /*indent=*/2);
      w.BeginObject();
      w.KeyValue("experiment", rec->experiment);
      w.KeyValue("title", rec->title);
      w.KeyValue("budget_ms", CellBudgetMs());
      w.KeyValue("warps", BenchWarps());
      w.KeyValue("work_units_per_ms", kWorkUnitsPerMs);
      w.Key("cells");
      w.BeginArray();
      for (const BenchRecord& cell : rec->cells) {
        w.BeginObject();
        w.KeyValue("group", cell.group);
        w.KeyValue("row", cell.row);
        w.KeyValue("col", cell.col);
        w.KeyValue("text", cell.text);
        w.Key("result");
        cell.run.ToJson(&w);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
      out << "\n";
    });
    return r;
  }();
  return recorder;
}

}  // namespace

double CellBudgetMs() {
  static const double budget = EnvDouble("TDFS_BENCH_BUDGET_MS", 5000.0);
  return budget;
}

int BenchWarps() {
  static const int warps =
      static_cast<int>(EnvDouble("TDFS_BENCH_WARPS", 8.0));
  return warps;
}

void SetTauMs(EngineConfig* config, double tau_ms) {
  config->timeout_ms = tau_ms;
  config->timeout_work_units =
      static_cast<uint64_t>(tau_ms * kWorkUnitsPerMs);
}

EngineConfig WithBenchDefaults(EngineConfig config) {
  config.max_run_ms = CellBudgetMs();
  config.num_warps = BenchWarps();
  config.clock = ClockKind::kVirtual;  // see kWorkUnitsPerMs
  SetTauMs(&config, config.timeout_ms);
  return config;
}

std::string CellText(const RunResult& run, double ms) {
  if (run.status.ok()) {
    std::string text = Ms(ms);
    if (run.counters.degraded_mode || run.counters.attempts > 1) {
      // The run recovered from resource pressure or retries (see
      // RunResult::Summary()); its time includes the recovery cost.
      text += "*";
    }
    return text;
  }
  if (run.status.code() == StatusCode::kDeadlineExceeded) {
    return "T";
  }
  if (run.status.code() == StatusCode::kResourceExhausted) {
    return "OOM";
  }
  return "ERR";
}

CellResult RunCell(const Graph& graph, const QueryGraph& query,
                   const EngineConfig& config, bool bfs,
                   const std::string& row, const std::string& col) {
  CellResult cell;
  cell.run = bfs ? RunMatchingBfs(graph, query, config)
                 : RunMatching(graph, query, config);
  cell.text = CellText(cell.run, cell.run.SimulatedGpuMs());
  RecordBenchCell(row, col, cell.run, cell.text);
  return cell;
}

void SetBenchGroup(const std::string& group) {
  BenchRecorder* r = Recorder();
  if (r != nullptr) {
    r->group = group;
  }
}

void RecordBenchCell(const std::string& row, const std::string& col,
                     const RunResult& run, const std::string& text) {
  BenchRecorder* r = Recorder();
  if (r != nullptr) {
    r->cells.push_back({r->group, row, col, text, run});
  }
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::cout << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                << cells[c];
    }
    std::cout << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void WarmUp() {
  // One tiny throwaway job so the first measured cell does not absorb
  // process-lifetime costs (thread pool spin-up, arena page faults).
  static bool done = false;
  if (done) {
    return;
  }
  done = true;
  Graph g = GenerateErdosRenyi(500, 1500, 1);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  EngineConfig config = WithBenchDefaults(TdfsConfig());
  (void)RunMatching(g, triangle, config);
  (void)RunMatchingBfs(g, triangle, WithBenchDefaults(PbeConfig()));
}

void PrintBanner(const std::string& experiment, const std::string& title,
                 const std::string& notes) {
  WarmUp();
  if (BenchRecorder* r = Recorder(); r != nullptr) {
    r->experiment = experiment;
    r->title = title;
  }
  std::cout << "\n== " << experiment << ": " << title << " ==\n";
  if (!notes.empty()) {
    std::cout << notes << "\n";
  }
  std::cout << "(cell budget " << CellBudgetMs() << " ms -> 'T'; warps/dev "
            << BenchWarps()
            << "; cells are simulated warp-parallel times in ms = wall "
               "time x busiest-warp work share — see "
               "RunResult::SimulatedGpuMs)\n\n";
}

std::string Ms(double ms) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(ms < 10 ? 2 : 1) << ms;
  return oss.str();
}

std::string Bytes(int64_t bytes) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(3);
  if (bytes >= (int64_t{1} << 30)) {
    oss << bytes / double{1 << 30} << " GB";
  } else if (bytes >= (int64_t{1} << 20)) {
    oss << bytes / double{1 << 20} << " MB";
  } else if (bytes >= 1024) {
    oss << bytes / 1024.0 << " KB";
  } else {
    oss << bytes << " B";
  }
  return oss.str();
}

}  // namespace tdfs::bench
