// Shared benchmark harness: paper-style table printing and standardized
// per-cell execution with a time budget.
//
// Every figure/table binary prints (a) the experiment id it reproduces,
// (b) the workload parameters, and (c) one table whose rows/series mirror
// the paper's. Entries render as milliseconds, or as the paper's special
// markers: 'T' (over the per-cell time budget), 'OOM' (ResourceExhausted),
// 'ERR' (any other failure).
//
// Environment knobs:
//   TDFS_BENCH_BUDGET_MS  per-cell time budget (default 5000)
//   TDFS_BENCH_WARPS      warps per virtual device (default 8)
//   TDFS_BENCH_JSON       path; when set, every cell is also recorded and
//                         a machine-readable results file (BENCH_*.json)
//                         is written there at exit — the perf-trajectory
//                         contract described in docs/ARCHITECTURE.md

#ifndef TDFS_BENCH_HARNESS_H_
#define TDFS_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/matcher.h"
#include "graph/graph.h"
#include "query/query_graph.h"

namespace tdfs::bench {

/// Per-cell time budget in ms (TDFS_BENCH_BUDGET_MS, default 5000).
double CellBudgetMs();

/// Warps per device (TDFS_BENCH_WARPS, default 8).
int BenchWarps();

/// Virtual-clock calibration: work units of single-warp progress treated
/// as one millisecond of GPU-warp time. On a host that oversubscribes CPU
/// cores with virtual warps, wall-clock timeouts fire after far less
/// per-warp progress than intended (8 warps on one core make tau
/// effectively 8x smaller), so the harness drives every timeout from the
/// deterministic per-warp work counter instead.
inline constexpr uint64_t kWorkUnitsPerMs = 100'000;

/// Sets tau on both clocks (wall ms and the calibrated virtual units).
void SetTauMs(EngineConfig* config, double tau_ms);

/// Applies the harness defaults (budget, warps, virtual-clock timeouts)
/// on top of a preset.
EngineConfig WithBenchDefaults(EngineConfig config);

/// Renders one run as a table entry: the millisecond value `ms` (with a
/// trailing "*" when the run degraded or was retried), or the paper's
/// failure markers "T" / "OOM" / "ERR".
std::string CellText(const RunResult& run, double ms);

/// One benchmark cell: run and render. `bfs` selects RunMatchingBfs.
/// `row`/`col` label the cell for the TDFS_BENCH_JSON recorder (typically
/// engine and pattern); unlabeled cells are still recorded with empty
/// labels so every bench binary exports results for free.
struct CellResult {
  RunResult run;
  std::string text;  // "12.3" | "12.3*" (degraded/retried) | "T" | "OOM"
                     // | "ERR"
};
CellResult RunCell(const Graph& graph, const QueryGraph& query,
                   const EngineConfig& config, bool bfs = false,
                   const std::string& row = "", const std::string& col = "");

/// Sets the group label (typically the dataset / sub-table name) applied
/// to cells recorded after this call. No-op when TDFS_BENCH_JSON is unset.
void SetBenchGroup(const std::string& group);

/// Records an already-run result as a cell (for benches that call the
/// engines directly instead of through RunCell). No-op when
/// TDFS_BENCH_JSON is unset.
void RecordBenchCell(const std::string& row, const std::string& col,
                     const RunResult& run, const std::string& text);

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "fig09" -> "== Figure 9: <title> ==" banner plus workload notes.
void PrintBanner(const std::string& experiment, const std::string& title,
                 const std::string& notes);

/// Renders a millisecond value with one decimal.
std::string Ms(double ms);

/// Renders bytes as a human-readable "12.3 MB".
std::string Bytes(int64_t bytes);

}  // namespace tdfs::bench

#endif  // TDFS_BENCH_HARNESS_H_
