// Intersection-backend microbenchmark plus an end-to-end match cell.
//
// Rows are backends (scalar, then each SIMD level the host supports, then
// the hub bitmap arm); columns are workload shapes. Count-only kernels are
// the headline cells: they isolate the set-intersection inner loop the SIMD
// backends target (the materializing variants add identical store
// traffic on every backend). Every backend charges identical work units —
// the speedup column is pure wall clock.
//
// The end-to-end table runs `tdfs match` workloads (hub-heavy power-law
// graph) under --intersect scalar vs auto; match_ms is the paper-facing
// number.

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/hub_bitmap.h"
#include "harness.h"
#include "query/patterns.h"
#include "util/intersect.h"
#include "util/prng.h"
#include "util/timer.h"

namespace {

using tdfs::VertexId;
using tdfs::VertexSpan;
using tdfs::WorkCounter;

std::vector<VertexId> SortedSet(tdfs::Xoshiro256ss& rng, size_t n,
                                VertexId universe) {
  std::vector<VertexId> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.Below(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// Times `fn` (which returns a checksum) for ~1s, reports ms/op.
template <typename Fn>
double TimePerOp(Fn&& fn, uint64_t* checksum) {
  const double budget_ms = std::min(tdfs::bench::CellBudgetMs(), 1000.0);
  tdfs::Timer timer;
  int reps = 0;
  uint64_t sum = 0;
  do {
    sum += fn();
    ++reps;
  } while (timer.ElapsedMillis() < budget_ms);
  *checksum = sum;
  return timer.ElapsedMillis() / reps;
}

void RecordMicro(const std::string& row, const std::string& col, double ms,
                 uint64_t checksum) {
  tdfs::RunResult run;
  run.match_count = checksum;
  run.match_ms = ms;
  run.total_ms = ms;
  tdfs::bench::RecordBenchCell(row, col, run, tdfs::bench::Ms(ms));
}

struct Workload {
  std::string name;
  std::vector<VertexId> a;
  std::vector<VertexId> b;  // the larger / hub side
};

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "intersect",
      "Intersection backends: scalar vs SIMD vs hub bitmaps",
      "Count-only kernel cells (ms/op, lower is better) and end-to-end "
      "match runs. Work units are identical across backends by "
      "construction; only wall time moves.");
  std::cout << "detected SIMD level: "
            << tdfs::SimdLevelName(tdfs::DetectedSimdLevel()) << "\n\n";

  tdfs::Xoshiro256ss rng(1234);
  std::vector<Workload> workloads;
  // Count-dominant merge: comparable sizes, dense hit rate.
  workloads.push_back({"merge-balanced", SortedSet(rng, 120'000, 200'000),
                       SortedSet(rng, 120'000, 200'000)});
  // Merge with sparse overlap (compress-store rarely fires).
  workloads.push_back({"merge-sparse", SortedSet(rng, 100'000, 4'000'000),
                       SortedSet(rng, 100'000, 4'000'000)});
  // Gallop: small probe into a big list, ratio past kGallopSizeRatio.
  workloads.push_back({"gallop-64x", SortedSet(rng, 4'000, 600'000),
                       SortedSet(rng, 280'000, 600'000)});

  std::vector<tdfs::SimdLevel> levels = {tdfs::SimdLevel::kScalar};
  if (tdfs::DetectedSimdLevel() >= tdfs::SimdLevel::kSse) {
    levels.push_back(tdfs::SimdLevel::kSse);
  }
  if (tdfs::DetectedSimdLevel() >= tdfs::SimdLevel::kAvx2) {
    levels.push_back(tdfs::SimdLevel::kAvx2);
  }

  tdfs::bench::SetBenchGroup("micro");
  std::vector<std::string> headers = {"Backend"};
  for (const Workload& w : workloads) {
    headers.push_back(w.name);
  }
  tdfs::bench::TablePrinter micro(headers);
  std::vector<double> scalar_ms(workloads.size(), 0.0);
  for (tdfs::SimdLevel level : levels) {
    const tdfs::IntersectKernels& k = tdfs::KernelsForLevel(level);
    std::vector<std::string> row = {tdfs::SimdLevelName(level)};
    std::vector<std::string> speedup = {std::string("  vs scalar")};
    for (size_t i = 0; i < workloads.size(); ++i) {
      const Workload& w = workloads[i];
      const bool gallop = w.name.rfind("gallop", 0) == 0;
      uint64_t checksum = 0;
      const double ms = TimePerOp(
          [&]() -> uint64_t {
            WorkCounter work;
            return gallop ? k.gallop_count(VertexSpan(w.a), VertexSpan(w.b),
                                           &work) +
                                work.units
                          : k.merge_count(VertexSpan(w.a), VertexSpan(w.b),
                                          &work) +
                                work.units;
          },
          &checksum);
      if (level == tdfs::SimdLevel::kScalar) {
        scalar_ms[i] = ms;
      }
      row.push_back(tdfs::bench::Ms(ms));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", scalar_ms[i] / ms);
      speedup.push_back(buf);
      RecordMicro(tdfs::SimdLevelName(level), w.name, ms, checksum);
    }
    micro.AddRow(row);
    if (level != tdfs::SimdLevel::kScalar) {
      micro.AddRow(speedup);
    }
  }

  // Hub bitmap arm: probe sets against the heaviest hub's adjacency list.
  {
    const tdfs::Graph g =
        tdfs::GenerateHubbedPowerLaw(60'000, 2, 8, 20'000, 9);
    const tdfs::HubBitmapIndex idx =
        tdfs::HubBitmapIndex::Build(g, nullptr, 1024);
    VertexId hub = -1;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (idx.Find(v, tdfs::kNoLabel) != nullptr &&
          (hub < 0 || g.Degree(v) > g.Degree(hub))) {
        hub = v;
      }
    }
    if (hub >= 0) {
      const VertexSpan nbrs = g.Neighbors(hub);
      const tdfs::HubBitmapView* bm = idx.Find(hub, tdfs::kNoLabel);
      const tdfs::IntersectKernels& scalar =
          tdfs::KernelsForLevel(tdfs::SimdLevel::kScalar);
      // The two shapes IntersectDispatch routes to the bitmap: comparable
      // sizes (list arm would be merge) and a small probe past the 32x
      // ratio (list arm would be gallop). The probe is always the smaller
      // side — the dispatch rule that makes the hub side the bitmap side.
      const std::vector<VertexId> merge_probe = SortedSet(
          rng, nbrs.size() / 2, static_cast<VertexId>(g.NumVertices()));
      const std::vector<VertexId> gallop_probe = SortedSet(
          rng, nbrs.size() / 64, static_cast<VertexId>(g.NumVertices()));
      struct HubCell {
        const char* name;
        const std::vector<VertexId>* probe;
        bool gallop;
      };
      const HubCell cells[] = {{"hub-merge", &merge_probe, false},
                               {"hub-gallop", &gallop_probe, true}};
      tdfs::bench::TablePrinter hubtab(
          {"Backend",
           "hub-merge (|probe|=" + std::to_string(merge_probe.size()) + ")",
           "hub-gallop (|probe|=" + std::to_string(gallop_probe.size()) +
               ")"});
      std::vector<std::string> srow = {"scalar"}, brow = {"bitmap"},
                               xrow = {"  vs scalar"};
      std::cout << "hub |N(hub)| = " << nbrs.size() << "\n";
      for (const HubCell& cell : cells) {
        uint64_t cs = 0;
        // Batched x64: a single small-probe op is below timer resolution.
        const double scalar_ms_cell = TimePerOp(
            [&]() -> uint64_t {
              uint64_t sum = 0;
              for (int rep = 0; rep < 64; ++rep) {
                WorkCounter work;
                sum += (cell.gallop
                            ? scalar.gallop_count(VertexSpan(*cell.probe),
                                                  nbrs, &work)
                            : scalar.merge_count(VertexSpan(*cell.probe),
                                                 nbrs, &work)) +
                       work.units;
              }
              return sum;
            },
            &cs);
        const double bitmap_ms = TimePerOp(
            [&]() -> uint64_t {
              uint64_t sum = 0;
              for (int rep = 0; rep < 64; ++rep) {
                WorkCounter work;
                sum += (cell.gallop
                            ? tdfs::BitmapGallopCount(VertexSpan(*cell.probe),
                                                      nbrs, *bm, &work)
                            : tdfs::BitmapMergeCount(VertexSpan(*cell.probe),
                                                     nbrs, *bm, &work)) +
                       work.units;
              }
              return sum;
            },
            &cs);
        srow.push_back(tdfs::bench::Ms(scalar_ms_cell));
        brow.push_back(tdfs::bench::Ms(bitmap_ms));
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fx", scalar_ms_cell / bitmap_ms);
        xrow.push_back(buf);
        RecordMicro("scalar", cell.name, scalar_ms_cell, cs);
        RecordMicro("bitmap", cell.name, bitmap_ms, cs);
      }
      hubtab.AddRow(srow);
      hubtab.AddRow(brow);
      hubtab.AddRow(xrow);
      micro.Print();
      std::cout << "\n";
      hubtab.Print();
    } else {
      micro.Print();
    }
  }

  // End-to-end: tdfs match on a hub-heavy graph, --intersect scalar vs
  // simd vs auto. match_ms excludes graph load; the bitmap build lands in
  // preprocessing (total_ms), the honest place for it.
  std::cout << "\n";
  tdfs::bench::SetBenchGroup("e2e");
  const tdfs::Graph g = tdfs::GenerateHubbedPowerLaw(8000, 2, 8, 1800, 21);
  std::cout << "e2e graph: " << g.Summary() << "\n";
  const std::vector<int> patterns = {1, 3, 5};
  std::vector<std::string> e2e_headers = {"Mode"};
  for (int p : patterns) {
    e2e_headers.push_back(tdfs::PatternName(p));
  }
  tdfs::bench::TablePrinter e2e(e2e_headers);
  const std::pair<const char*, tdfs::IntersectMode> modes[] = {
      {"scalar", tdfs::IntersectMode::kScalar},
      {"simd", tdfs::IntersectMode::kSimd},
      {"auto", tdfs::IntersectMode::kAuto},
  };
  for (const auto& [name, mode] : modes) {
    std::vector<std::string> row = {name};
    for (int p : patterns) {
      tdfs::EngineConfig config =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      config.intersect = mode;
      row.push_back(tdfs::bench::RunCell(g, tdfs::Pattern(p), config,
                                         /*bfs=*/false, name,
                                         tdfs::PatternName(p))
                        .text);
    }
    e2e.AddRow(row);
  }
  e2e.Print();
  return 0;
}
