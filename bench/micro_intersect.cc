// Microbenchmark: sorted-set intersection kernels across size ratios —
// the inner loop of candidate computation (Eq. 1).

#include <benchmark/benchmark.h>

#include <vector>

#include "util/intersect.h"
#include "util/prng.h"

namespace tdfs {
namespace {

std::vector<VertexId> SortedRandom(size_t n, uint64_t seed,
                                   VertexId universe) {
  Xoshiro256ss rng(seed);
  std::vector<VertexId> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.Below(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

template <void (*Kernel)(VertexSpan, VertexSpan, std::vector<VertexId>*,
                         WorkCounter*)>
void BM_Intersect(benchmark::State& state) {
  const size_t small_size = static_cast<size_t>(state.range(0));
  const size_t big_size = static_cast<size_t>(state.range(1));
  auto a = SortedRandom(small_size, 1, 1 << 22);
  auto b = SortedRandom(big_size, 2, 1 << 22);
  std::vector<VertexId> out;
  out.reserve(small_size);
  for (auto _ : state) {
    out.clear();
    Kernel(VertexSpan(a), VertexSpan(b), &out, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size() + b.size()));
}

void IntersectArgs(benchmark::internal::Benchmark* b) {
  b->Args({1024, 1024})      // balanced
      ->Args({64, 4096})     // 64x skew
      ->Args({32, 65536})    // 2048x skew (galloping territory)
      ->Args({4096, 65536});  // large balanced-ish
}

BENCHMARK(BM_Intersect<IntersectMerge>)->Apply(IntersectArgs);
BENCHMARK(BM_Intersect<IntersectBinary>)->Apply(IntersectArgs);
BENCHMARK(BM_Intersect<IntersectGallop>)->Apply(IntersectArgs);
BENCHMARK(BM_Intersect<IntersectAuto>)->Apply(IntersectArgs);

void BM_IntersectCount(benchmark::State& state) {
  auto a = SortedRandom(static_cast<size_t>(state.range(0)), 1, 1 << 22);
  auto b = SortedRandom(static_cast<size_t>(state.range(1)), 2, 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCount(VertexSpan(a), VertexSpan(b)));
  }
}
BENCHMARK(BM_IntersectCount)->Args({1024, 1024})->Args({32, 65536});

}  // namespace
}  // namespace tdfs

BENCHMARK_MAIN();
