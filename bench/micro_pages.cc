// Microbenchmark: the lock-free page allocator and the paged-vs-array
// stack access paths (the indirection cost behind Tables VI/VIII).

#include <benchmark/benchmark.h>

#include <vector>

#include "mem/page_allocator.h"
#include "mem/warp_stack.h"

namespace tdfs {
namespace {

void BM_PageAllocFree(benchmark::State& state) {
  PageAllocator alloc(1024);
  for (auto _ : state) {
    PageId p = alloc.AllocPage();
    benchmark::DoNotOptimize(p);
    alloc.FreePage(p);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PageAllocFree);

void BM_PageAllocFreeContended(benchmark::State& state) {
  // Shared across the benchmark's threads (see micro_queue.cc).
  static PageAllocator* alloc = new PageAllocator(4096);
  std::vector<PageId> held;
  held.reserve(8);
  for (auto _ : state) {
    if (held.size() < 8) {
      PageId p = alloc->AllocPage();
      if (p != kNullPage) {
        held.push_back(p);
      }
    } else {
      alloc->FreePage(held.back());
      held.pop_back();
    }
  }
  for (PageId p : held) {
    alloc->FreePage(p);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// Fixed iterations: see micro_queue.cc (threaded calibration on few cores).
BENCHMARK(BM_PageAllocFreeContended)->Threads(2)->Threads(8)
    ->Iterations(50000)->UseRealTime();

void BM_PagedStackWriteRead(benchmark::State& state) {
  const int64_t n = state.range(0);
  PageAllocator alloc(256);
  PagedWarpStack stack(&alloc, 4);
  for (auto _ : state) {
    for (int64_t i = 0; i < n; ++i) {
      stack.Set(2, i, static_cast<VertexId>(i));
    }
    VertexId sum = 0;
    for (int64_t i = 0; i < n; ++i) {
      sum += stack.Get(2, i);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 2);
}
BENCHMARK(BM_PagedStackWriteRead)->Arg(64)->Arg(2048)->Arg(65536);

void BM_ArrayStackWriteRead(benchmark::State& state) {
  const int64_t n = state.range(0);
  ArrayWarpStack stack(4, 65536);
  for (auto _ : state) {
    for (int64_t i = 0; i < n; ++i) {
      stack.Set(2, i, static_cast<VertexId>(i));
    }
    VertexId sum = 0;
    for (int64_t i = 0; i < n; ++i) {
      sum += stack.Get(2, i);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 2);
}
BENCHMARK(BM_ArrayStackWriteRead)->Arg(64)->Arg(2048)->Arg(65536);

}  // namespace
}  // namespace tdfs

BENCHMARK_MAIN();
