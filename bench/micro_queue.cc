// Microbenchmark: the lock-free task queue (Alg. 3) — single-threaded
// round trips and contended multi-producer/multi-consumer throughput.

#include <benchmark/benchmark.h>

#include <thread>

#include "queue/task_queue.h"

namespace tdfs {
namespace {

void BM_QueueRoundTrip(benchmark::State& state) {
  TaskQueue queue(3 * 1024);
  Task task{1, 2, 3};
  Task out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Enqueue(task));
    benchmark::DoNotOptimize(queue.Dequeue(&out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueueRoundTrip);

void BM_QueueBurst(benchmark::State& state) {
  // Fill then drain a burst of tasks, as a warp does when decomposing a
  // straggler.
  const int burst = static_cast<int>(state.range(0));
  TaskQueue queue(3 * 4096);
  Task out;
  for (auto _ : state) {
    for (int i = 0; i < burst; ++i) {
      queue.Enqueue(Task{i, i + 1, i + 2});
    }
    for (int i = 0; i < burst; ++i) {
      queue.Dequeue(&out);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * burst);
}
BENCHMARK(BM_QueueBurst)->Arg(8)->Arg(64)->Arg(512);

void BM_QueueContended(benchmark::State& state) {
  // threads/2 producers + threads/2 consumers hammer ONE queue: the
  // benchmark body runs once per thread, so the queue must be shared
  // (thread-safe local static), not a per-thread local.
  static TaskQueue& queue = *new TaskQueue(3 * 256);
  const bool producer = (state.thread_index() % 2) == 0;
  Task task{7, 8, 9};
  Task out;
  for (auto _ : state) {
    if (producer) {
      while (!queue.Enqueue(task)) {
        std::this_thread::yield();
      }
    } else {
      while (!queue.Dequeue(&out)) {
        std::this_thread::yield();
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// Fixed iteration counts: on a host with fewer cores than threads,
// google-benchmark's automatic calibration of lockstep threaded runs can
// take minutes per configuration.
BENCHMARK(BM_QueueContended)->Threads(2)->Threads(4)->Threads(8)
    ->Iterations(20000)->UseRealTime();

}  // namespace
}  // namespace tdfs

BENCHMARK_MAIN();
