// Observability overhead: the warm match service with the full tracing +
// metrics stack on vs off.
//
// Workload: the throughput bench's query-serving stream (repeated small
// patterns against one BA graph) through a 4-worker MatchService. Rows:
//
//   obs-off — no trace session, no metrics registry, no slow-query log:
//             every observability hook is a null-pointer test.
//   obs-on  — TraceSession attached (warp event ring + span ledger +
//             time-attribution sinks), MetricsRegistry attached (service
//             counters + per-stage histograms), Prometheus endpoint
//             serving concurrent scrapes, and the slow-query log armed
//             with a threshold of 0+ so every job formats a line.
//
// The contract (docs/EXPERIMENTS.md): obs-on must stay within a few
// percent of obs-off jobs/s — observability is priced as always-on.
// Match totals must be identical; the observability layer can never
// change results.

#include <atomic>
#include <chrono>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "harness.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "query/patterns.h"
#include "service/match_service.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

struct ModeResult {
  double wall_ms = 0.0;
  uint64_t total_matches = 0;
  int64_t jobs_ok = 0;
  int64_t slow_lines = 0;
  int64_t scrapes = 0;
};

ModeResult RunStream(const tdfs::Graph& graph,
                     const std::vector<tdfs::QueryGraph>& stream,
                     tdfs::EngineConfig config, bool obs_on) {
  ModeResult mode;
  tdfs::obs::TraceSession trace;
  tdfs::obs::MetricsRegistry registry;
  std::atomic<int64_t> slow_lines{0};
  tdfs::LogSink previous_sink;
  if (obs_on) {
    config.trace = &trace;
    // Swallow the slow-query lines (counted, not printed): the bench
    // measures the formatting + histogram cost, not stderr throughput.
    previous_sink =
        tdfs::SetLogSink([&slow_lines](tdfs::LogLevel,
                                       const std::string& line) {
          if (line.find("slow query:") != std::string::npos) {
            slow_lines.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }

  tdfs::ServiceOptions options;
  options.num_workers = 4;
  options.max_pending_jobs = static_cast<int>(stream.size()) + 1;
  if (obs_on) {
    options.slow_query_ms = 1e-6;  // every job formats a slow-query line
  }

  tdfs::Timer wall;
  {
    tdfs::MatchService service(graph, config, options);
    std::atomic<bool> stop{false};
    std::atomic<int64_t> scrapes{0};
    std::thread scraper;
    if (obs_on) {
      service.AttachMetrics(&registry);
      (void)service.StartMetricsServer(0);
      // A live scrape loop, like a Prometheus server polling mid-run
      // (rendering off the same lock-free snapshot the HTTP path uses).
      // 25 ms is already ~600x more aggressive than a real scrape
      // interval; it prices scrape concurrency without turning the bench
      // into an exporter-formatting microbenchmark.
      scraper = std::thread([&registry, &stop, &scrapes] {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::string page =
              tdfs::obs::RenderPrometheusText(registry);
          scrapes.fetch_add(1, std::memory_order_relaxed);
          (void)page;
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
      });
    }
    std::vector<std::future<tdfs::RunResult>> futures;
    futures.reserve(stream.size());
    for (const tdfs::QueryGraph& query : stream) {
      futures.push_back(service.Submit(query));
    }
    for (auto& future : futures) {
      tdfs::RunResult r = future.get();
      if (r.status.ok()) {
        ++mode.jobs_ok;
        mode.total_matches += r.match_count;
      }
    }
    if (scraper.joinable()) {
      stop.store(true, std::memory_order_relaxed);
      scraper.join();
    }
    mode.scrapes = scrapes.load();
    service.StopMetricsServer();
  }
  mode.wall_ms = wall.ElapsedMillis();
  mode.slow_lines = slow_lines.load();
  if (obs_on) {
    tdfs::SetLogSink(previous_sink);
  }
  return mode;
}

tdfs::RunResult AsRunResult(const ModeResult& mode, int64_t jobs) {
  tdfs::RunResult run;
  run.match_count = mode.total_matches;
  run.total_ms = mode.wall_ms;
  run.match_ms = mode.wall_ms;
  if (mode.jobs_ok < jobs) {
    run.status = tdfs::Status::Internal("some jobs failed");
  }
  return run;
}

double Qps(const ModeResult& mode, int64_t jobs) {
  return mode.wall_ms > 0
             ? 1000.0 * static_cast<double>(jobs) / mode.wall_ms
             : 0.0;
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "obs_overhead",
      "Observability overhead: full tracing + metrics vs all-off",
      "Stream of 24 jobs cycling P1/P2/P5 on BA(4000, 4) through a "
      "4-worker service; identical totals required, obs-on priced "
      "against obs-off jobs/s.");

  tdfs::Graph graph = tdfs::GenerateBarabasiAlbert(4000, 4, /*seed=*/7);
  const int kRepeats = 8;
  const int pattern_ids[] = {1, 2, 5};
  std::vector<tdfs::QueryGraph> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (int p : pattern_ids) {
      stream.push_back(tdfs::Pattern(p));
    }
  }
  const int64_t jobs = static_cast<int64_t>(stream.size());

  tdfs::EngineConfig config =
      tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());

  // Interleave repeats so machine drift hits both modes equally; keep the
  // best (least-interfered) wall time per mode.
  tdfs::bench::SetBenchGroup("ba4000");
  ModeResult off;
  ModeResult on;
  for (int rep = 0; rep < 5; ++rep) {
    const ModeResult off_rep = RunStream(graph, stream, config, false);
    const ModeResult on_rep = RunStream(graph, stream, config, true);
    if (off.wall_ms <= 0 || off_rep.wall_ms < off.wall_ms) {
      off = off_rep;
    }
    if (on.wall_ms <= 0 || on_rep.wall_ms < on.wall_ms) {
      on = on_rep;
    }
  }

  const double overhead_pct =
      off.wall_ms > 0 ? 100.0 * (on.wall_ms - off.wall_ms) / off.wall_ms
                      : 0.0;

  tdfs::bench::TablePrinter table(
      {"Mode", "wall ms", "jobs/s", "overhead", "matches"});
  const ModeResult* modes[] = {&off, &on};
  const char* names[] = {"obs-off", "obs-on"};
  for (int i = 0; i < 2; ++i) {
    const ModeResult& mode = *modes[i];
    table.AddRow({names[i], tdfs::bench::Ms(mode.wall_ms),
                  tdfs::bench::Ms(Qps(mode, jobs)),
                  i == 0 ? "-" : tdfs::bench::Ms(overhead_pct) + "%",
                  std::to_string(mode.total_matches)});
    tdfs::RunResult run = AsRunResult(mode, jobs);
    tdfs::bench::RecordBenchCell(names[i], "wall_ms", run,
                                 tdfs::bench::Ms(mode.wall_ms));
    tdfs::bench::RecordBenchCell(names[i], "jobs_per_s", run,
                                 tdfs::bench::Ms(Qps(mode, jobs)));
  }
  table.Print();
  std::cout << "slow-query lines formatted (obs-on): " << on.slow_lines
            << "\n";
  std::cout << "overhead: " << tdfs::bench::Ms(overhead_pct) << "%\n";

  const bool counts_identical = off.total_matches == on.total_matches &&
                                off.jobs_ok == jobs && on.jobs_ok == jobs;
  std::cout << "counts identical across modes: "
            << (counts_identical ? "yes" : "NO — BUG") << "\n";
  return counts_identical ? 0 : 1;
}
