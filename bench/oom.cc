// Out-of-core matching: exact completion under arena starvation.
//
// Workload: T-DFS (paged stacks) on the YouTube stand-in — the paper's
// canonical straggler graph — over the fig09 patterns that complete
// within the cell budget. Per pattern:
//
//   oracle  — oversized arena (the preset 4096 pages), spill off; its
//             pages_peak defines the pattern's true footprint.
//   0.5x / 0.25x / 0.1x — arena shrunk to that fraction of pages_peak
//             (floor 1 page) with --spill on: the run must still finish
//             with the oracle's exact match count (spill keeps the
//             traversal exact, only slower; bit-identical work_units is
//             enforced by the single-warp property test).
//   0.1x no-spill — the same starved arena without the spill tier, to
//             show the seed behavior this tier replaces: OOM.
//
// The exit code enforces the exactness bar: any spill-enabled cell that
// fails, or disagrees with its oracle on counts or work_units, fails the
// binary. Cells render as ms (spill cells typically carry the paper's
// degraded marker '*' — retries/degradation never engage, so a plain
// number means spill cost is pure copy overhead).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

// Fig09 patterns that finish under the default cell budget on the
// YouTube stand-in (the 'T' rows would only measure the timeout).
const int kPatterns[] = {1, 2, 5, 6, 7};

const double kFractions[] = {0.5, 0.25, 0.1};

std::string FractionName(double f) {
  if (f == 0.5) {
    return "0.5x";
  }
  if (f == 0.25) {
    return "0.25x";
  }
  return "0.1x";
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "oom",
      "Spill-to-host: exact completion at 0.5x/0.25x/0.1x arena sizing",
      "T-DFS paged stacks on YouTube; arenas sized as fractions of each "
      "pattern's oracle pages_peak; spill cells must reproduce the "
      "oracle's match count and work_units bit-exactly.");

  tdfs::Graph g = tdfs::LoadDataset(tdfs::DatasetId::kYoutube);
  tdfs::bench::SetBenchGroup("youtube");
  std::cout << "--- youtube (" << g.Summary() << ") ---\n";

  std::vector<std::string> headers = {"Pattern", "oracle(peak)"};
  for (double f : kFractions) {
    headers.push_back(FractionName(f));
  }
  headers.push_back("0.1x no-spill");
  tdfs::bench::TablePrinter table(headers);

  int failures = 0;
  for (int p : kPatterns) {
    const tdfs::QueryGraph query = tdfs::Pattern(p);
    const std::string pattern = tdfs::PatternName(p);
    std::vector<std::string> row = {pattern};

    tdfs::EngineConfig oracle_config =
        tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
    const tdfs::bench::CellResult oracle = tdfs::bench::RunCell(
        g, query, oracle_config, /*bfs=*/false, pattern, "oracle");
    const int64_t peak = oracle.run.counters.pages_peak;
    row.push_back(oracle.text + " (" + std::to_string(peak) + "p)");
    if (!oracle.run.status.ok()) {
      std::cerr << "oracle failed for " << pattern << ": "
                << oracle.run.status << "\n";
      ++failures;
      for (size_t i = 2; i < headers.size(); ++i) {
        row.push_back("-");
      }
      table.AddRow(std::move(row));
      continue;
    }

    for (double f : kFractions) {
      tdfs::EngineConfig config = oracle_config;
      config.page_pool_pages = std::max<int32_t>(
          1, static_cast<int32_t>(static_cast<double>(peak) * f));
      config.spill_to_host = true;
      const tdfs::bench::CellResult cell = tdfs::bench::RunCell(
          g, query, config, /*bfs=*/false, pattern, FractionName(f));
      row.push_back(cell.text);
      if (!cell.run.status.ok()) {
        std::cerr << pattern << " @ " << FractionName(f)
                  << " failed with spill on: " << cell.run.status << "\n";
        ++failures;
        continue;
      }
      // Count exactness only: the 8-warp parallel schedule perturbs
      // work_units run-to-run even without spill, so bit-identity of
      // work_units is enforced by the deterministic single-warp property
      // test (SpillExactnessTest), not here.
      if (cell.run.match_count != oracle.run.match_count) {
        std::cerr << "EXACTNESS VIOLATION " << pattern << " @ "
                  << FractionName(f) << ": counts "
                  << cell.run.match_count << " vs "
                  << oracle.run.match_count << "\n";
        ++failures;
      }
      if (cell.run.counters.spill_allocs == 0 &&
          config.page_pool_pages < peak) {
        std::cerr << "note: " << pattern << " @ " << FractionName(f)
                  << " never spilled (arena " << config.page_pool_pages
                  << "p, oracle peak " << peak << "p)\n";
      }
    }

    // The seed behavior: the same starved arena without the tier.
    tdfs::EngineConfig no_spill = oracle_config;
    no_spill.page_pool_pages = std::max<int32_t>(
        1, static_cast<int32_t>(static_cast<double>(peak) * 0.1));
    no_spill.spill_to_host = false;
    const tdfs::bench::CellResult dry = tdfs::bench::RunCell(
        g, query, no_spill, /*bfs=*/false, pattern, "0.1x-nospill");
    row.push_back(dry.text);

    table.AddRow(std::move(row));
  }

  table.Print();
  std::cout << "\n"
            << (failures == 0 ? "all spill cells exact\n"
                              : "FAILURES: " + std::to_string(failures) +
                                    "\n");
  return failures == 0 ? 0 : 1;
}
