// Planner ablation: greedy degree-ordered plans vs the cost-based planner
// (PR 8) on label-skewed graphs, labeled patterns P12-P22.
//
// The cost planner targets exactly this regime: wildly uneven label
// frequencies (Zipf) on top of a power-law degree distribution make the
// greedy order — which looks only at query degrees — start from the wrong
// vertex and intersect the big label classes first. Rows are planners,
// columns are patterns, cells are simulated GPU milliseconds; a third
// row reports the greedy/cost speedup per pattern (higher is better).
// Counts are asserted identical cell by cell — the planner is an
// order/backend knob, never a semantics knob.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

struct Fixture {
  const char* name;
  tdfs::Graph graph;
};

std::vector<int> LabeledPatterns() {
  std::vector<int> labeled;
  for (int p : tdfs::AllPatternIndices()) {
    if (tdfs::Pattern(p).IsLabeled()) {
      labeled.push_back(p);
    }
  }
  return labeled;
}

std::string Ratio(double greedy_ms, double cost_ms) {
  if (greedy_ms <= 0.0 || cost_ms <= 0.0) {
    return "-";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", greedy_ms / cost_ms);
  return buf;
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "planner",
      "greedy vs cost-based planner, label-skewed graphs, P12-P22",
      "Zipf(1.5) labels over power-law graphs; cells are simulated GPU "
      "ms; the speedup row is greedy_ms / cost_ms (higher is better).");

  std::vector<Fixture> fixtures;
  {
    tdfs::Graph hubba = tdfs::GenerateHubbedPowerLaw(
        20000, 3, /*hubs=*/12, /*hub_degree=*/400, /*seed=*/9001);
    hubba.AssignZipfLabels(4, /*skew=*/1.5, 9002);
    fixtures.push_back({"hubba-zipf", std::move(hubba)});
    tdfs::Graph rmat = tdfs::GenerateRmat(16384, 120000, 0.57, 0.19, 0.19,
                                          /*seed=*/9003);
    rmat.AssignZipfLabels(4, /*skew=*/1.5, 9004);
    fixtures.push_back({"rmat-zipf", std::move(rmat)});
  }

  const std::vector<int> patterns = LabeledPatterns();
  int mismatches = 0;
  for (const Fixture& fixture : fixtures) {
    tdfs::bench::SetBenchGroup(fixture.name);
    std::cout << "--- " << fixture.name << " ("
              << fixture.graph.Summary() << ") ---\n";

    std::vector<std::string> headers = {"Planner"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);

    tdfs::EngineConfig greedy_cfg =
        tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
    tdfs::EngineConfig cost_cfg = greedy_cfg;
    cost_cfg.planner = tdfs::PlannerKind::kCost;

    std::vector<std::string> greedy_row = {"greedy"};
    std::vector<std::string> cost_row = {"cost"};
    std::vector<std::string> speedup_row = {"speedup"};
    for (int p : patterns) {
      const tdfs::QueryGraph q = tdfs::Pattern(p);
      const std::string col = tdfs::PatternName(p);
      tdfs::bench::CellResult greedy = tdfs::bench::RunCell(
          fixture.graph, q, greedy_cfg, /*bfs=*/false, "greedy", col);
      tdfs::bench::CellResult cost = tdfs::bench::RunCell(
          fixture.graph, q, cost_cfg, /*bfs=*/false, "cost", col);
      greedy_row.push_back(greedy.text);
      cost_row.push_back(cost.text);
      if (greedy.run.status.ok() && cost.run.status.ok() &&
          greedy.run.match_count != cost.run.match_count) {
        std::cerr << "COUNT MISMATCH on " << fixture.name << "/" << col
                  << ": greedy=" << greedy.run.match_count
                  << " cost=" << cost.run.match_count << "\n";
        ++mismatches;
      }
      const std::string ratio =
          (greedy.run.status.ok() && cost.run.status.ok())
              ? Ratio(greedy.run.SimulatedGpuMs(), cost.run.SimulatedGpuMs())
              : "-";
      speedup_row.push_back(ratio);
      // Speedup cells ride along in the JSON so the trajectory guard can
      // watch the planner's win itself, not just raw latencies.
      tdfs::bench::RecordBenchCell("speedup", col, cost.run, ratio);
    }
    table.AddRow(std::move(greedy_row));
    table.AddRow(std::move(cost_row));
    table.AddRow(std::move(speedup_row));
    table.Print();
    std::cout << "\n";
  }
  if (mismatches > 0) {
    std::cerr << "planner bench: " << mismatches << " count mismatch(es)\n";
    return 1;
  }
  return 0;
}
