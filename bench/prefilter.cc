// Candidate prefiltering ablation: unfiltered vs LDF-seeded vs
// neighborhood-refined candidate-induced execution on Zipf-labeled
// power-law graphs, labeled patterns P12-P22.
//
// Prefiltering targets exactly the labeled regime: a skewed label
// distribution means most vertices can never bind to most query vertices,
// so the candidate-induced CSR shrinks every span the engine intersects.
// Rows are prefilter modes (cells are end-to-end simulated milliseconds:
// kernel time plus the host-side filter build), then the neighborhood
// filter's vertex/edge prune ratios, then the off/neighborhood e2e
// speedup. Counts are asserted identical cell by cell — prefiltering is a
// pure optimization, never a semantics knob.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

struct Fixture {
  const char* name;
  tdfs::Graph graph;
};

std::vector<int> LabeledPatterns() {
  std::vector<int> labeled;
  for (int p : tdfs::AllPatternIndices()) {
    if (tdfs::Pattern(p).IsLabeled()) {
      labeled.push_back(p);
    }
  }
  return labeled;
}

// End-to-end cost of one run: simulated kernel time plus the
// candidate-filter build (0 when prefiltering is off). The build is
// charged at the same simulated warp-parallel rate as the kernel: its
// per-(u, v) safety checks are independent within a round — the classic
// on-device candidate-index build (EGSM constructs its CT-index on the
// GPU) — so host wall time divided by the warp count is the
// apples-to-apples figure against SimulatedGpuMs.
double EndToEndMs(const tdfs::RunResult& run) {
  return run.SimulatedGpuMs() +
         run.counters.prefilter_ms /
             static_cast<double>(tdfs::bench::BenchWarps());
}

std::string Ratio(double off_ms, double filtered_ms) {
  if (off_ms <= 0.0 || filtered_ms <= 0.0) {
    return "-";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", off_ms / filtered_ms);
  return buf;
}

std::string Percent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * ratio);
  return buf;
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "prefilter",
      "candidate prefiltering off/ldf/neighborhood, labeled P12-P22",
      "Zipf(1.5) labels over power-law graphs; mode rows are simulated "
      "kernel ms; prune rows are the neighborhood filter's vertex/edge "
      "prune ratios; the speedup row is end-to-end off_ms / "
      "neighborhood_ms with the filter build charged at the same "
      "warp-parallel rate as the kernel (higher is better).");

  std::vector<Fixture> fixtures;
  {
    tdfs::Graph ba = tdfs::GenerateBarabasiAlbert(30000, 4, /*seed=*/9101);
    ba.AssignZipfLabels(8, /*skew=*/1.5, 9102);
    fixtures.push_back({"ba-zipf", std::move(ba)});
    tdfs::Graph hubba = tdfs::GenerateHubbedPowerLaw(
        20000, 3, /*hubs=*/12, /*hub_degree=*/400, /*seed=*/9103);
    hubba.AssignZipfLabels(8, /*skew=*/1.5, 9104);
    fixtures.push_back({"hubba-zipf", std::move(hubba)});
  }

  const std::vector<int> patterns = LabeledPatterns();
  int mismatches = 0;
  for (const Fixture& fixture : fixtures) {
    tdfs::bench::SetBenchGroup(fixture.name);
    std::cout << "--- " << fixture.name << " ("
              << fixture.graph.Summary() << ") ---\n";

    std::vector<std::string> headers = {"Prefilter"};
    for (int p : patterns) {
      headers.push_back(tdfs::PatternName(p));
    }
    tdfs::bench::TablePrinter table(headers);

    tdfs::EngineConfig off_cfg =
        tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
    tdfs::EngineConfig ldf_cfg = off_cfg;
    ldf_cfg.prefilter = tdfs::PrefilterKind::kLDF;
    tdfs::EngineConfig nbr_cfg = off_cfg;
    nbr_cfg.prefilter = tdfs::PrefilterKind::kNeighborhood;

    std::vector<std::string> off_row = {"off"};
    std::vector<std::string> ldf_row = {"ldf"};
    std::vector<std::string> nbr_row = {"neighborhood"};
    std::vector<std::string> vprune_row = {"v-pruned"};
    std::vector<std::string> eprune_row = {"e-pruned"};
    std::vector<std::string> speedup_row = {"speedup"};
    for (int p : patterns) {
      const tdfs::QueryGraph q = tdfs::Pattern(p);
      const std::string col = tdfs::PatternName(p);
      tdfs::bench::CellResult off = tdfs::bench::RunCell(
          fixture.graph, q, off_cfg, /*bfs=*/false, "off", col);
      tdfs::bench::CellResult ldf = tdfs::bench::RunCell(
          fixture.graph, q, ldf_cfg, /*bfs=*/false, "ldf", col);
      tdfs::bench::CellResult nbr = tdfs::bench::RunCell(
          fixture.graph, q, nbr_cfg, /*bfs=*/false, "neighborhood", col);
      off_row.push_back(off.text);
      ldf_row.push_back(ldf.text);
      nbr_row.push_back(nbr.text);
      for (const tdfs::bench::CellResult* filtered : {&ldf, &nbr}) {
        if (off.run.status.ok() && filtered->run.status.ok() &&
            off.run.match_count != filtered->run.match_count) {
          std::cerr << "COUNT MISMATCH on " << fixture.name << "/" << col
                    << ": off=" << off.run.match_count
                    << " filtered=" << filtered->run.match_count << "\n";
          ++mismatches;
        }
      }
      const auto& nc = nbr.run.counters;
      const bool have_nbr = nbr.run.status.ok() && nc.prefilter_original_vertices > 0;
      const double v_prune =
          have_nbr ? 1.0 - static_cast<double>(nc.prefilter_kept_vertices) /
                               static_cast<double>(nc.prefilter_original_vertices)
                   : 0.0;
      const double e_prune =
          have_nbr && nc.prefilter_original_edges > 0
              ? 1.0 - static_cast<double>(nc.prefilter_kept_edges) /
                          static_cast<double>(nc.prefilter_original_edges)
              : 0.0;
      vprune_row.push_back(have_nbr ? Percent(v_prune) : "-");
      eprune_row.push_back(have_nbr ? Percent(e_prune) : "-");
      const std::string ratio =
          (off.run.status.ok() && nbr.run.status.ok())
              ? Ratio(EndToEndMs(off.run), EndToEndMs(nbr.run))
              : "-";
      speedup_row.push_back(ratio);
      // Prune ratios and the speedup ride along in the JSON so the
      // trajectory guard watches the filter's win itself, not just the
      // raw latencies.
      tdfs::bench::RecordBenchCell("v_prune", col, nbr.run,
                                   have_nbr ? Percent(v_prune) : "-");
      tdfs::bench::RecordBenchCell("e_prune", col, nbr.run,
                                   have_nbr ? Percent(e_prune) : "-");
      tdfs::bench::RecordBenchCell("speedup", col, nbr.run, ratio);
    }
    table.AddRow(std::move(off_row));
    table.AddRow(std::move(ldf_row));
    table.AddRow(std::move(nbr_row));
    table.AddRow(std::move(vprune_row));
    table.AddRow(std::move(eprune_row));
    table.AddRow(std::move(speedup_row));
    table.Print();
    std::cout << "\n";
  }
  if (mismatches > 0) {
    std::cerr << "prefilter bench: " << mismatches << " count mismatch(es)\n";
    return 1;
  }
  return 0;
}
