#include "stack_tables.h"

#include <iostream>

#include "harness.h"
#include "query/patterns.h"

namespace tdfs::bench {

int RunStackTables(DatasetId dataset, const char* memory_table,
                   const char* time_table) {
  Graph g = LoadDataset(dataset);
  if (g.IsLabeled()) {
    g.ClearLabels();
  }
  const std::vector<int> patterns = {1, 2, 3, 4, 5, 6, 7};

  // The paper's page granularity is ~1/14 of YouTube's d_max (2048-int
  // pages vs d_max 28754). The analogs have d_max ~200-250, so pages are
  // scaled to 16 ints to preserve that ratio; with the default 8 KiB page
  // a single page would exceed d_max and the comparison would be
  // meaningless.
  const int64_t page_bytes = 64;

  PrintBanner(std::string(memory_table) + " / " + time_table,
              "Paged vs array stacks on " + DatasetName(dataset),
              "Graph: " + g.Summary() +
                  ". Array capacity = d_max per level (correct but "
                  "wasteful); STMatch row = half-steal baseline with the "
                  "same d_max arrays. Pages scaled to " +
                  std::to_string(page_bytes) +
                  " B to preserve the paper's d_max/page ratio.");

  EngineConfig paged = WithBenchDefaults(TdfsConfig());
  paged.page_bytes = page_bytes;
  paged.page_pool_pages = 65536;
  EngineConfig array = WithBenchDefaults(TdfsConfig());
  array.stack = StackKind::kArrayMaxDegree;
  EngineConfig stmatch = WithBenchDefaults(StmatchConfig());

  std::vector<std::string> headers = {"Method"};
  for (int p : patterns) {
    headers.push_back(PatternName(p));
  }

  // Run each (method, pattern) cell once; report memory and time from the
  // same runs.
  TablePrinter memory(headers);
  TablePrinter time(headers);
  struct Row {
    const char* name;
    const EngineConfig* config;
    bool in_memory_table;
  };
  const Row rows[] = {
      {"Page-based", &paged, true},
      {"Array-based", &array, true},
      {"STMatch", &stmatch, false},  // time table only, as in the paper
  };
  for (const Row& row : rows) {
    std::vector<std::string> memory_row = {row.name};
    std::vector<std::string> time_row = {row.name};
    for (int p : patterns) {
      CellResult cell = RunCell(g, Pattern(p), *row.config);
      time_row.push_back(cell.text);
      memory_row.push_back(cell.run.status.ok()
                               ? Bytes(cell.run.counters.stack_bytes_peak)
                               : cell.text);
    }
    if (row.in_memory_table) {
      memory.AddRow(std::move(memory_row));
    }
    time.AddRow(std::move(time_row));
  }

  std::cout << "[" << memory_table << "] Stack memory consumption\n";
  memory.Print();
  std::cout << "\n[" << time_table << "] Execution time\n";
  time.Print();
  std::cout << "\nExpected shape: page-based memory is a small fraction of "
               "the d_max arrays; page-based runtime is somewhat slower "
               "than arrays (page-table indirection) but far ahead of "
               "STMatch.\n";
  return 0;
}

}  // namespace tdfs::bench
