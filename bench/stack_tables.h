// Shared driver for the stack-backend comparison (Tables V-VIII).

#ifndef TDFS_BENCH_STACK_TABLES_H_
#define TDFS_BENCH_STACK_TABLES_H_

#include "graph/datasets.h"

namespace tdfs::bench {

/// Prints the stack-memory table (Table V / VII) and the execution-time
/// table (Table VI / VIII) for one dataset: rows {Page-based, Array-based,
/// STMatch}, columns P1-P7.
int RunStackTables(DatasetId dataset, const char* memory_table,
                   const char* time_table);

}  // namespace tdfs::bench

#endif  // TDFS_BENCH_STACK_TABLES_H_
