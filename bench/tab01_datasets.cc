// Table I: dataset statistics (|V|, |E|, average degree, max degree) for
// the 12 synthetic analogs, in the paper's order. The absolute sizes are
// scaled down (see DESIGN.md); the columns to compare with the paper are
// the avg-degree and skew (max/avg) orderings.

#include <iostream>
#include <sstream>

#include "graph/datasets.h"
#include "harness.h"

int main() {
  tdfs::bench::PrintBanner(
      "Table I", "Datasets (synthetic analogs)",
      "Absolute sizes are laptop-scale; degree shape and skew ordering "
      "mirror the paper's graphs.");
  tdfs::bench::TablePrinter table(
      {"Dataset", "|V|", "|E|", "Avg deg", "Max deg", "Skew", "Labels"});
  for (tdfs::DatasetId id : tdfs::AllDatasets()) {
    tdfs::Graph g = tdfs::LoadDataset(id);
    std::ostringstream avg;
    avg.precision(3);
    avg << g.AvgDegree();
    std::ostringstream skew;
    skew.precision(3);
    skew << g.MaxDegree() / g.AvgDegree();
    table.AddRow({tdfs::DatasetName(id), std::to_string(g.NumVertices()),
                  std::to_string(g.NumEdges()), avg.str(),
                  std::to_string(g.MaxDegree()), skew.str(),
                  g.IsLabeled() ? std::to_string(g.NumLabels()) : "-"});
  }
  table.Print();
  return 0;
}
