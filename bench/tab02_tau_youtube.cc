// Table II: ablation of the timeout threshold tau on YouTube, P1-P11.

#include "graph/datasets.h"
#include "tau_ablation.h"

int main() {
  return tdfs::bench::RunTauAblation(tdfs::DatasetId::kYoutube, "Table II");
}
