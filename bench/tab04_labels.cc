// Table IV: effect of increasing label selectivity on Friendster, patterns
// P8-P10, T-DFS ("Ours") vs EGSM. The data graph is relabeled with |L| in
// {4, 8, 12, 16}; query vertices take label (i mod |L|) capped at 4
// distinct labels as in P12-P22.
//
// Observations to reproduce: EGSM OOMs at |L| = 4 (its index plus
// materialized edge candidates exceed device memory when selectivity is
// low); T-DFS stays ahead at every |L| but the gap narrows as labels get
// more selective, because the label-bucketed index prunes more of EGSM's
// candidate lists up front.

#include <iostream>

#include "graph/datasets.h"
#include "harness.h"
#include "query/patterns.h"

namespace {

tdfs::QueryGraph LabeledPattern(int index, int num_labels) {
  tdfs::QueryGraph q = tdfs::Pattern(index);
  for (int u = 0; u < q.NumVertices(); ++u) {
    q.SetVertexLabel(u, u % std::min(num_labels, 4));
  }
  return q;
}

}  // namespace

int main() {
  tdfs::Graph g = tdfs::LoadDataset(tdfs::DatasetId::kFriendster);
  tdfs::bench::PrintBanner(
      "Table IV", "Label selectivity on Friendster, P8-P10, Ours vs EGSM",
      "Graph: " + g.Summary() +
          "; relabeled per row. EGSM's device-memory model: index + "
          "materialized candidate edges must fit the budget.");

  // Budget calibrated to the analog's scale the same way the paper's
  // 40 GB relates to Friendster: roomy for selective labelings, too small
  // for the |L|=4 candidate explosion.
  const int64_t egsm_budget = 2 * g.NumDirectedEdges();

  tdfs::bench::TablePrinter table({"|L|", "P8 Ours", "P8 EGSM", "P9 Ours",
                                   "P9 EGSM", "P10 Ours", "P10 EGSM"});
  for (int num_labels : {4, 8, 12, 16}) {
    g.AssignUniformLabels(num_labels, 9000 + num_labels);
    std::vector<std::string> row = {std::to_string(num_labels)};
    for (int p : {8, 9, 10}) {
      tdfs::QueryGraph q = LabeledPattern(p, num_labels);
      tdfs::EngineConfig ours =
          tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());
      row.push_back(tdfs::bench::RunCell(g, q, ours).text);
      tdfs::EngineConfig egsm =
          tdfs::bench::WithBenchDefaults(tdfs::EgsmConfig());
      egsm.device_memory_budget_bytes = egsm_budget;
      row.push_back(tdfs::bench::RunCell(g, q, egsm).text);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
