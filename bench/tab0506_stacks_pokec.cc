// Tables V and VI: stack memory consumption and execution time on Pokec,
// page-based vs array-based vs STMatch, P1-P7.

#include "graph/datasets.h"
#include "stack_tables.h"

int main() {
  return tdfs::bench::RunStackTables(tdfs::DatasetId::kPokec, "Table V",
                                     "Table VI");
}
