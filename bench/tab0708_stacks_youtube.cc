// Tables VII and VIII: stack memory consumption and execution time on
// YouTube, page-based vs array-based vs STMatch, P1-P7.

#include "graph/datasets.h"
#include "stack_tables.h"

int main() {
  return tdfs::bench::RunStackTables(tdfs::DatasetId::kYoutube, "Table VII",
                                     "Table VIII");
}
