#include "tau_ablation.h"

#include <cmath>
#include <iostream>
#include <limits>

#include "harness.h"
#include "query/patterns.h"

namespace tdfs::bench {

int RunTauAblation(DatasetId dataset, const char* table_name) {
  Graph g = LoadDataset(dataset);
  if (g.IsLabeled()) {
    g.ClearLabels();  // the paper's tau tables use unlabeled matching
  }
  PrintBanner(table_name,
              "Effect of the timeout threshold tau on " +
                  DatasetName(dataset),
              "Rows: tau (ms; inf = No Steal). Paper values {1,10,100,"
              "1000,inf} are scaled 10x down with the workload. "
              "Graph: " + g.Summary());

  const double taus[] = {0.1, 1.0, 10.0, 100.0,
                         std::numeric_limits<double>::infinity()};
  std::vector<std::string> headers = {"tau(ms)"};
  for (int p : UnlabeledPatternIndices()) {
    headers.push_back(PatternName(p));
  }
  TablePrinter table(headers);
  for (double tau : taus) {
    EngineConfig config = WithBenchDefaults(TdfsConfig());
    // The paper's tau tables run their heaviest patterns for tens of
    // seconds under a 1000 s cap; give these cells triple the usual
    // budget so the straggler-heavy columns resolve instead of printing T.
    config.max_run_ms = CellBudgetMs() * 3;
    if (std::isinf(tau)) {
      config.steal = StealStrategy::kNone;
    } else {
      SetTauMs(&config, tau);
    }
    std::vector<std::string> row = {std::isinf(tau) ? "inf" : Ms(tau)};
    for (int p : UnlabeledPatternIndices()) {
      row.push_back(RunCell(g, Pattern(p), config).text);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::cout << "\nExpected shape: tau = 1 ms (the scaled default) is best "
               "or near-best everywhere; very small tau pays task-"
               "management overhead, very large tau leaves stragglers "
               "undecomposed.\n";
  return 0;
}

}  // namespace tdfs::bench
