// Shared driver for the timeout-threshold ablation (Tables II and III).

#ifndef TDFS_BENCH_TAU_ABLATION_H_
#define TDFS_BENCH_TAU_ABLATION_H_

#include "graph/datasets.h"

namespace tdfs::bench {

/// Runs the tau sweep of Table II/III on one dataset: rows tau in
/// {0.1, 1, 10, 100, inf} ms (the paper's {1, 10, 100, 1000, inf} scaled
/// down 10x with the workload), columns P1-P11.
int RunTauAblation(DatasetId dataset, const char* table_name);

}  // namespace tdfs::bench

#endif  // TDFS_BENCH_TAU_ABLATION_H_
