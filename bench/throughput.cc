// Batch-service throughput: cold one-shot runs vs the warm match service.
//
// Workload: a repeated stream of small patterns against one BA graph — the
// query-serving shape the service layer targets. Three rows:
//
//   cold     — sequential RunMatching per job: every job recompiles its
//              plan and allocates + zero-fills a fresh page pool (32 MB)
//              and task-queue ring (12 MB).
//   warm-1w  — MatchService with ONE worker: isolates what the plan cache
//              and engine-arena reuse buy, with no added concurrency.
//   warm     — MatchService with the full worker pool: reuse plus
//              concurrent jobs instead of back-to-back execution.
//
// The table reports wall ms for the whole stream and queries/sec per row,
// plus the speedup over cold. Counts are cross-checked: every mode must
// report the identical total match count (arena reuse is bit-exact).

#include <future>
#include <iostream>
#include <vector>

#include "graph/generators.h"
#include "harness.h"
#include "query/patterns.h"
#include "service/match_service.h"
#include "util/timer.h"

namespace {

struct ModeResult {
  double wall_ms = 0.0;
  uint64_t total_matches = 0;
  int64_t jobs_ok = 0;
};

ModeResult RunCold(const tdfs::Graph& graph,
                   const std::vector<tdfs::QueryGraph>& stream,
                   const tdfs::EngineConfig& config) {
  ModeResult mode;
  tdfs::Timer wall;
  for (const tdfs::QueryGraph& query : stream) {
    tdfs::RunResult r = tdfs::RunMatching(graph, query, config);
    if (r.status.ok()) {
      ++mode.jobs_ok;
      mode.total_matches += r.match_count;
    }
  }
  mode.wall_ms = wall.ElapsedMillis();
  return mode;
}

ModeResult RunWarm(const tdfs::Graph& graph,
                   const std::vector<tdfs::QueryGraph>& stream,
                   const tdfs::EngineConfig& config, int workers) {
  ModeResult mode;
  tdfs::ServiceOptions options;
  options.num_workers = workers;
  options.max_pending_jobs = static_cast<int>(stream.size()) + 1;
  tdfs::Timer wall;
  tdfs::MatchService service(graph, config, options);
  std::vector<std::future<tdfs::RunResult>> futures;
  futures.reserve(stream.size());
  for (const tdfs::QueryGraph& query : stream) {
    futures.push_back(service.Submit(query));
  }
  for (auto& future : futures) {
    tdfs::RunResult r = future.get();
    if (r.status.ok()) {
      ++mode.jobs_ok;
      mode.total_matches += r.match_count;
    }
  }
  mode.wall_ms = wall.ElapsedMillis();
  return mode;
}

// The recorder wants a RunResult per cell; synthesize one carrying the
// whole stream's wall time and match total.
tdfs::RunResult AsRunResult(const ModeResult& mode, int64_t jobs) {
  tdfs::RunResult run;
  run.match_count = mode.total_matches;
  run.total_ms = mode.wall_ms;
  run.match_ms = mode.wall_ms;
  if (mode.jobs_ok < jobs) {
    run.status = tdfs::Status::Internal("some jobs failed");
  }
  return run;
}

std::string Qps(const ModeResult& mode, int64_t jobs) {
  if (mode.wall_ms <= 0) {
    return "0";
  }
  const double qps = 1000.0 * static_cast<double>(jobs) / mode.wall_ms;
  return tdfs::bench::Ms(qps);
}

}  // namespace

int main() {
  tdfs::bench::PrintBanner(
      "throughput",
      "Batch service: cold one-shot runs vs warm plan-cache + arena runs",
      "Stream of 24 jobs cycling P1/P2/P5 on BA(4000, 4); identical total "
      "counts required across modes.");

  tdfs::Graph graph = tdfs::GenerateBarabasiAlbert(4000, 4, /*seed=*/7);
  const int kRepeats = 8;
  const int pattern_ids[] = {1, 2, 5};
  std::vector<tdfs::QueryGraph> stream;
  for (int r = 0; r < kRepeats; ++r) {
    for (int p : pattern_ids) {
      stream.push_back(tdfs::Pattern(p));
    }
  }
  const int64_t jobs = static_cast<int64_t>(stream.size());

  tdfs::EngineConfig config =
      tdfs::bench::WithBenchDefaults(tdfs::TdfsConfig());

  tdfs::bench::SetBenchGroup("ba4000");
  const ModeResult cold = RunCold(graph, stream, config);
  const ModeResult warm1 = RunWarm(graph, stream, config, /*workers=*/1);
  const ModeResult warm = RunWarm(graph, stream, config, /*workers=*/4);

  tdfs::bench::TablePrinter table(
      {"Mode", "wall ms", "jobs/s", "speedup", "matches"});
  const ModeResult* modes[] = {&cold, &warm1, &warm};
  const char* names[] = {"cold", "warm-1w", "warm"};
  for (int i = 0; i < 3; ++i) {
    const ModeResult& mode = *modes[i];
    const double speedup =
        mode.wall_ms > 0 ? cold.wall_ms / mode.wall_ms : 0.0;
    table.AddRow({names[i], tdfs::bench::Ms(mode.wall_ms), Qps(mode, jobs),
                  tdfs::bench::Ms(speedup) + "x",
                  std::to_string(mode.total_matches)});
    tdfs::RunResult run = AsRunResult(mode, jobs);
    tdfs::bench::RecordBenchCell(names[i], "wall_ms", run,
                                 tdfs::bench::Ms(mode.wall_ms));
    tdfs::bench::RecordBenchCell(names[i], "jobs_per_s", run,
                                 Qps(mode, jobs));
  }
  table.Print();

  const bool counts_identical = cold.total_matches == warm1.total_matches &&
                                cold.total_matches == warm.total_matches &&
                                cold.jobs_ok == jobs &&
                                warm1.jobs_ok == jobs && warm.jobs_ok == jobs;
  std::cout << "counts identical across modes: "
            << (counts_identical ? "yes" : "NO — BUG") << "\n";
  return counts_identical && warm.wall_ms < cold.wall_ms ? 0 : 1;
}
