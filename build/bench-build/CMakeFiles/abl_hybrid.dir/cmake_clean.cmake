file(REMOVE_RECURSE
  "../bench/abl_hybrid"
  "../bench/abl_hybrid.pdb"
  "CMakeFiles/abl_hybrid.dir/abl_hybrid.cc.o"
  "CMakeFiles/abl_hybrid.dir/abl_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
