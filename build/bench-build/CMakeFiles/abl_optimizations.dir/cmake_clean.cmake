file(REMOVE_RECURSE
  "../bench/abl_optimizations"
  "../bench/abl_optimizations.pdb"
  "CMakeFiles/abl_optimizations.dir/abl_optimizations.cc.o"
  "CMakeFiles/abl_optimizations.dir/abl_optimizations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
