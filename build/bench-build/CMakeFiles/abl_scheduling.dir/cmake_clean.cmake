file(REMOVE_RECURSE
  "../bench/abl_scheduling"
  "../bench/abl_scheduling.pdb"
  "CMakeFiles/abl_scheduling.dir/abl_scheduling.cc.o"
  "CMakeFiles/abl_scheduling.dir/abl_scheduling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
