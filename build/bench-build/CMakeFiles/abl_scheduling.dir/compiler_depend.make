# Empty compiler generated dependencies file for abl_scheduling.
# This may be replaced when dependencies are built.
