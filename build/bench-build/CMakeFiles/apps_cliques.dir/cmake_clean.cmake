file(REMOVE_RECURSE
  "../bench/apps_cliques"
  "../bench/apps_cliques.pdb"
  "CMakeFiles/apps_cliques.dir/apps_cliques.cc.o"
  "CMakeFiles/apps_cliques.dir/apps_cliques.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
