# Empty dependencies file for apps_cliques.
# This may be replaced when dependencies are built.
