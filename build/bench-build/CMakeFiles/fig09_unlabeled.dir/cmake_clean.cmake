file(REMOVE_RECURSE
  "../bench/fig09_unlabeled"
  "../bench/fig09_unlabeled.pdb"
  "CMakeFiles/fig09_unlabeled.dir/fig09_unlabeled.cc.o"
  "CMakeFiles/fig09_unlabeled.dir/fig09_unlabeled.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_unlabeled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
