# Empty compiler generated dependencies file for fig09_unlabeled.
# This may be replaced when dependencies are built.
