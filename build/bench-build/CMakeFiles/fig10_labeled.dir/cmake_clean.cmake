file(REMOVE_RECURSE
  "../bench/fig10_labeled"
  "../bench/fig10_labeled.pdb"
  "CMakeFiles/fig10_labeled.dir/fig10_labeled.cc.o"
  "CMakeFiles/fig10_labeled.dir/fig10_labeled.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_labeled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
