# Empty dependencies file for fig10_labeled.
# This may be replaced when dependencies are built.
