file(REMOVE_RECURSE
  "../bench/fig11_steal"
  "../bench/fig11_steal.pdb"
  "CMakeFiles/fig11_steal.dir/fig11_steal.cc.o"
  "CMakeFiles/fig11_steal.dir/fig11_steal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_steal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
