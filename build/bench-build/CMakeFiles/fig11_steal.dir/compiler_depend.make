# Empty compiler generated dependencies file for fig11_steal.
# This may be replaced when dependencies are built.
