file(REMOVE_RECURSE
  "../bench/fig12_multigpu"
  "../bench/fig12_multigpu.pdb"
  "CMakeFiles/fig12_multigpu.dir/fig12_multigpu.cc.o"
  "CMakeFiles/fig12_multigpu.dir/fig12_multigpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
