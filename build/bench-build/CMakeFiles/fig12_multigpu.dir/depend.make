# Empty dependencies file for fig12_multigpu.
# This may be replaced when dependencies are built.
