# Empty dependencies file for micro_intersect.
# This may be replaced when dependencies are built.
