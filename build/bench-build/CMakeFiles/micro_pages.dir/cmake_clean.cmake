file(REMOVE_RECURSE
  "../bench/micro_pages"
  "../bench/micro_pages.pdb"
  "CMakeFiles/micro_pages.dir/micro_pages.cc.o"
  "CMakeFiles/micro_pages.dir/micro_pages.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
