# Empty dependencies file for micro_pages.
# This may be replaced when dependencies are built.
