file(REMOVE_RECURSE
  "../bench/tab01_datasets"
  "../bench/tab01_datasets.pdb"
  "CMakeFiles/tab01_datasets.dir/tab01_datasets.cc.o"
  "CMakeFiles/tab01_datasets.dir/tab01_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
