# Empty compiler generated dependencies file for tab01_datasets.
# This may be replaced when dependencies are built.
