file(REMOVE_RECURSE
  "../bench/tab02_tau_youtube"
  "../bench/tab02_tau_youtube.pdb"
  "CMakeFiles/tab02_tau_youtube.dir/tab02_tau_youtube.cc.o"
  "CMakeFiles/tab02_tau_youtube.dir/tab02_tau_youtube.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_tau_youtube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
