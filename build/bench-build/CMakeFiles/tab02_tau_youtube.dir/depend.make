# Empty dependencies file for tab02_tau_youtube.
# This may be replaced when dependencies are built.
