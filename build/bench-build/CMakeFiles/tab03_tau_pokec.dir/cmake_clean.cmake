file(REMOVE_RECURSE
  "../bench/tab03_tau_pokec"
  "../bench/tab03_tau_pokec.pdb"
  "CMakeFiles/tab03_tau_pokec.dir/tab03_tau_pokec.cc.o"
  "CMakeFiles/tab03_tau_pokec.dir/tab03_tau_pokec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_tau_pokec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
