# Empty compiler generated dependencies file for tab03_tau_pokec.
# This may be replaced when dependencies are built.
