file(REMOVE_RECURSE
  "../bench/tab04_labels"
  "../bench/tab04_labels.pdb"
  "CMakeFiles/tab04_labels.dir/tab04_labels.cc.o"
  "CMakeFiles/tab04_labels.dir/tab04_labels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
