# Empty dependencies file for tab04_labels.
# This may be replaced when dependencies are built.
