file(REMOVE_RECURSE
  "../bench/tab0506_stacks_pokec"
  "../bench/tab0506_stacks_pokec.pdb"
  "CMakeFiles/tab0506_stacks_pokec.dir/tab0506_stacks_pokec.cc.o"
  "CMakeFiles/tab0506_stacks_pokec.dir/tab0506_stacks_pokec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab0506_stacks_pokec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
