# Empty compiler generated dependencies file for tab0506_stacks_pokec.
# This may be replaced when dependencies are built.
