file(REMOVE_RECURSE
  "../bench/tab0708_stacks_youtube"
  "../bench/tab0708_stacks_youtube.pdb"
  "CMakeFiles/tab0708_stacks_youtube.dir/tab0708_stacks_youtube.cc.o"
  "CMakeFiles/tab0708_stacks_youtube.dir/tab0708_stacks_youtube.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab0708_stacks_youtube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
