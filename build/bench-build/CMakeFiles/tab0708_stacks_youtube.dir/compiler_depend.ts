# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab0708_stacks_youtube.
