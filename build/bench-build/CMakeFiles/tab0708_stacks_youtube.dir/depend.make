# Empty dependencies file for tab0708_stacks_youtube.
# This may be replaced when dependencies are built.
