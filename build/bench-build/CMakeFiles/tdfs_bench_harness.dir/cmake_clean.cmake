file(REMOVE_RECURSE
  "CMakeFiles/tdfs_bench_harness.dir/harness.cc.o"
  "CMakeFiles/tdfs_bench_harness.dir/harness.cc.o.d"
  "CMakeFiles/tdfs_bench_harness.dir/stack_tables.cc.o"
  "CMakeFiles/tdfs_bench_harness.dir/stack_tables.cc.o.d"
  "CMakeFiles/tdfs_bench_harness.dir/tau_ablation.cc.o"
  "CMakeFiles/tdfs_bench_harness.dir/tau_ablation.cc.o.d"
  "libtdfs_bench_harness.a"
  "libtdfs_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
