file(REMOVE_RECURSE
  "libtdfs_bench_harness.a"
)
