# Empty dependencies file for tdfs_bench_harness.
# This may be replaced when dependencies are built.
