file(REMOVE_RECURSE
  "CMakeFiles/clique_communities.dir/clique_communities.cc.o"
  "CMakeFiles/clique_communities.dir/clique_communities.cc.o.d"
  "clique_communities"
  "clique_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clique_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
