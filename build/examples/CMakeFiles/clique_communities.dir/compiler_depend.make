# Empty compiler generated dependencies file for clique_communities.
# This may be replaced when dependencies are built.
