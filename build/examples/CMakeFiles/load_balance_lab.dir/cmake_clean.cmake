file(REMOVE_RECURSE
  "CMakeFiles/load_balance_lab.dir/load_balance_lab.cc.o"
  "CMakeFiles/load_balance_lab.dir/load_balance_lab.cc.o.d"
  "load_balance_lab"
  "load_balance_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
