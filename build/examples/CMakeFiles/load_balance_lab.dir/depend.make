# Empty dependencies file for load_balance_lab.
# This may be replaced when dependencies are built.
