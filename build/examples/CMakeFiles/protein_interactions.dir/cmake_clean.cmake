file(REMOVE_RECURSE
  "CMakeFiles/protein_interactions.dir/protein_interactions.cc.o"
  "CMakeFiles/protein_interactions.dir/protein_interactions.cc.o.d"
  "protein_interactions"
  "protein_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
