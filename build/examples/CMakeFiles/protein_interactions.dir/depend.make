# Empty dependencies file for protein_interactions.
# This may be replaced when dependencies are built.
