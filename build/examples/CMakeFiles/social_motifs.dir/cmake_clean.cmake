file(REMOVE_RECURSE
  "CMakeFiles/social_motifs.dir/social_motifs.cc.o"
  "CMakeFiles/social_motifs.dir/social_motifs.cc.o.d"
  "social_motifs"
  "social_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
