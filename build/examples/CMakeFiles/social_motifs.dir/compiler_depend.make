# Empty compiler generated dependencies file for social_motifs.
# This may be replaced when dependencies are built.
