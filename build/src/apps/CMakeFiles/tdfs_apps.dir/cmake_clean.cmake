file(REMOVE_RECURSE
  "CMakeFiles/tdfs_apps.dir/kclique.cc.o"
  "CMakeFiles/tdfs_apps.dir/kclique.cc.o.d"
  "CMakeFiles/tdfs_apps.dir/mce.cc.o"
  "CMakeFiles/tdfs_apps.dir/mce.cc.o.d"
  "libtdfs_apps.a"
  "libtdfs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
