file(REMOVE_RECURSE
  "libtdfs_apps.a"
)
