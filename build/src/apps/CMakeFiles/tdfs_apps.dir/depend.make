# Empty dependencies file for tdfs_apps.
# This may be replaced when dependencies are built.
