
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bfs_engine.cc" "src/core/CMakeFiles/tdfs_core.dir/bfs_engine.cc.o" "gcc" "src/core/CMakeFiles/tdfs_core.dir/bfs_engine.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/tdfs_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/tdfs_core.dir/config.cc.o.d"
  "/root/repo/src/core/dfs_engine.cc" "src/core/CMakeFiles/tdfs_core.dir/dfs_engine.cc.o" "gcc" "src/core/CMakeFiles/tdfs_core.dir/dfs_engine.cc.o.d"
  "/root/repo/src/core/hybrid_engine.cc" "src/core/CMakeFiles/tdfs_core.dir/hybrid_engine.cc.o" "gcc" "src/core/CMakeFiles/tdfs_core.dir/hybrid_engine.cc.o.d"
  "/root/repo/src/core/matcher.cc" "src/core/CMakeFiles/tdfs_core.dir/matcher.cc.o" "gcc" "src/core/CMakeFiles/tdfs_core.dir/matcher.cc.o.d"
  "/root/repo/src/core/ref_engine.cc" "src/core/CMakeFiles/tdfs_core.dir/ref_engine.cc.o" "gcc" "src/core/CMakeFiles/tdfs_core.dir/ref_engine.cc.o.d"
  "/root/repo/src/core/result.cc" "src/core/CMakeFiles/tdfs_core.dir/result.cc.o" "gcc" "src/core/CMakeFiles/tdfs_core.dir/result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tdfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tdfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/tdfs_query.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/tdfs_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/tdfs_vgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
