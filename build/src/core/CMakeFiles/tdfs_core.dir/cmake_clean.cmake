file(REMOVE_RECURSE
  "CMakeFiles/tdfs_core.dir/bfs_engine.cc.o"
  "CMakeFiles/tdfs_core.dir/bfs_engine.cc.o.d"
  "CMakeFiles/tdfs_core.dir/config.cc.o"
  "CMakeFiles/tdfs_core.dir/config.cc.o.d"
  "CMakeFiles/tdfs_core.dir/dfs_engine.cc.o"
  "CMakeFiles/tdfs_core.dir/dfs_engine.cc.o.d"
  "CMakeFiles/tdfs_core.dir/hybrid_engine.cc.o"
  "CMakeFiles/tdfs_core.dir/hybrid_engine.cc.o.d"
  "CMakeFiles/tdfs_core.dir/matcher.cc.o"
  "CMakeFiles/tdfs_core.dir/matcher.cc.o.d"
  "CMakeFiles/tdfs_core.dir/ref_engine.cc.o"
  "CMakeFiles/tdfs_core.dir/ref_engine.cc.o.d"
  "CMakeFiles/tdfs_core.dir/result.cc.o"
  "CMakeFiles/tdfs_core.dir/result.cc.o.d"
  "libtdfs_core.a"
  "libtdfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
