file(REMOVE_RECURSE
  "libtdfs_core.a"
)
