# Empty compiler generated dependencies file for tdfs_core.
# This may be replaced when dependencies are built.
