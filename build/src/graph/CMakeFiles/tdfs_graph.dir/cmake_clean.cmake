file(REMOVE_RECURSE
  "CMakeFiles/tdfs_graph.dir/datasets.cc.o"
  "CMakeFiles/tdfs_graph.dir/datasets.cc.o.d"
  "CMakeFiles/tdfs_graph.dir/degeneracy.cc.o"
  "CMakeFiles/tdfs_graph.dir/degeneracy.cc.o.d"
  "CMakeFiles/tdfs_graph.dir/generators.cc.o"
  "CMakeFiles/tdfs_graph.dir/generators.cc.o.d"
  "CMakeFiles/tdfs_graph.dir/graph.cc.o"
  "CMakeFiles/tdfs_graph.dir/graph.cc.o.d"
  "CMakeFiles/tdfs_graph.dir/io.cc.o"
  "CMakeFiles/tdfs_graph.dir/io.cc.o.d"
  "CMakeFiles/tdfs_graph.dir/label_index.cc.o"
  "CMakeFiles/tdfs_graph.dir/label_index.cc.o.d"
  "libtdfs_graph.a"
  "libtdfs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
