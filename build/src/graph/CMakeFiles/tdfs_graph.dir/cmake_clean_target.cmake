file(REMOVE_RECURSE
  "libtdfs_graph.a"
)
