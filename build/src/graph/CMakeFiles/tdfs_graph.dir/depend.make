# Empty dependencies file for tdfs_graph.
# This may be replaced when dependencies are built.
