
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/page_allocator.cc" "src/mem/CMakeFiles/tdfs_mem.dir/page_allocator.cc.o" "gcc" "src/mem/CMakeFiles/tdfs_mem.dir/page_allocator.cc.o.d"
  "/root/repo/src/mem/warp_stack.cc" "src/mem/CMakeFiles/tdfs_mem.dir/warp_stack.cc.o" "gcc" "src/mem/CMakeFiles/tdfs_mem.dir/warp_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tdfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
