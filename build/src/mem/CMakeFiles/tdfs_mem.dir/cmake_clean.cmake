file(REMOVE_RECURSE
  "CMakeFiles/tdfs_mem.dir/page_allocator.cc.o"
  "CMakeFiles/tdfs_mem.dir/page_allocator.cc.o.d"
  "CMakeFiles/tdfs_mem.dir/warp_stack.cc.o"
  "CMakeFiles/tdfs_mem.dir/warp_stack.cc.o.d"
  "libtdfs_mem.a"
  "libtdfs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
