file(REMOVE_RECURSE
  "libtdfs_mem.a"
)
