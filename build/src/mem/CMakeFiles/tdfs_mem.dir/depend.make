# Empty dependencies file for tdfs_mem.
# This may be replaced when dependencies are built.
