
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/automorphism.cc" "src/query/CMakeFiles/tdfs_query.dir/automorphism.cc.o" "gcc" "src/query/CMakeFiles/tdfs_query.dir/automorphism.cc.o.d"
  "/root/repo/src/query/patterns.cc" "src/query/CMakeFiles/tdfs_query.dir/patterns.cc.o" "gcc" "src/query/CMakeFiles/tdfs_query.dir/patterns.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/query/CMakeFiles/tdfs_query.dir/plan.cc.o" "gcc" "src/query/CMakeFiles/tdfs_query.dir/plan.cc.o.d"
  "/root/repo/src/query/query_graph.cc" "src/query/CMakeFiles/tdfs_query.dir/query_graph.cc.o" "gcc" "src/query/CMakeFiles/tdfs_query.dir/query_graph.cc.o.d"
  "/root/repo/src/query/query_io.cc" "src/query/CMakeFiles/tdfs_query.dir/query_io.cc.o" "gcc" "src/query/CMakeFiles/tdfs_query.dir/query_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tdfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
