file(REMOVE_RECURSE
  "CMakeFiles/tdfs_query.dir/automorphism.cc.o"
  "CMakeFiles/tdfs_query.dir/automorphism.cc.o.d"
  "CMakeFiles/tdfs_query.dir/patterns.cc.o"
  "CMakeFiles/tdfs_query.dir/patterns.cc.o.d"
  "CMakeFiles/tdfs_query.dir/plan.cc.o"
  "CMakeFiles/tdfs_query.dir/plan.cc.o.d"
  "CMakeFiles/tdfs_query.dir/query_graph.cc.o"
  "CMakeFiles/tdfs_query.dir/query_graph.cc.o.d"
  "CMakeFiles/tdfs_query.dir/query_io.cc.o"
  "CMakeFiles/tdfs_query.dir/query_io.cc.o.d"
  "libtdfs_query.a"
  "libtdfs_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
