file(REMOVE_RECURSE
  "libtdfs_query.a"
)
