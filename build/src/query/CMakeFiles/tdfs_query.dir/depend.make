# Empty dependencies file for tdfs_query.
# This may be replaced when dependencies are built.
