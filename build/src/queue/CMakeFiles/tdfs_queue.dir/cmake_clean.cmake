file(REMOVE_RECURSE
  "CMakeFiles/tdfs_queue.dir/task_queue.cc.o"
  "CMakeFiles/tdfs_queue.dir/task_queue.cc.o.d"
  "libtdfs_queue.a"
  "libtdfs_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
