file(REMOVE_RECURSE
  "libtdfs_queue.a"
)
