# Empty compiler generated dependencies file for tdfs_queue.
# This may be replaced when dependencies are built.
