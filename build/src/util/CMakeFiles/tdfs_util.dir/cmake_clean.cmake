file(REMOVE_RECURSE
  "CMakeFiles/tdfs_util.dir/intersect.cc.o"
  "CMakeFiles/tdfs_util.dir/intersect.cc.o.d"
  "CMakeFiles/tdfs_util.dir/logging.cc.o"
  "CMakeFiles/tdfs_util.dir/logging.cc.o.d"
  "CMakeFiles/tdfs_util.dir/status.cc.o"
  "CMakeFiles/tdfs_util.dir/status.cc.o.d"
  "libtdfs_util.a"
  "libtdfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
