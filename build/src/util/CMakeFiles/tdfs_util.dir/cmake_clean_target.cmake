file(REMOVE_RECURSE
  "libtdfs_util.a"
)
