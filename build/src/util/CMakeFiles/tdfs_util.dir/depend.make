# Empty dependencies file for tdfs_util.
# This may be replaced when dependencies are built.
