file(REMOVE_RECURSE
  "CMakeFiles/tdfs_vgpu.dir/scheduler.cc.o"
  "CMakeFiles/tdfs_vgpu.dir/scheduler.cc.o.d"
  "libtdfs_vgpu.a"
  "libtdfs_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
