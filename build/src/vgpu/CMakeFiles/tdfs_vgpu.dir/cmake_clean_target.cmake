file(REMOVE_RECURSE
  "libtdfs_vgpu.a"
)
