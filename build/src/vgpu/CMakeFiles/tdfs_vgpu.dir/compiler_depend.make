# Empty compiler generated dependencies file for tdfs_vgpu.
# This may be replaced when dependencies are built.
