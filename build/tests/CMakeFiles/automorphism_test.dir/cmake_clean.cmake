file(REMOVE_RECURSE
  "CMakeFiles/automorphism_test.dir/automorphism_test.cc.o"
  "CMakeFiles/automorphism_test.dir/automorphism_test.cc.o.d"
  "automorphism_test"
  "automorphism_test.pdb"
  "automorphism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automorphism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
