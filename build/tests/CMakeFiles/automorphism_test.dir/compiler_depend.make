# Empty compiler generated dependencies file for automorphism_test.
# This may be replaced when dependencies are built.
