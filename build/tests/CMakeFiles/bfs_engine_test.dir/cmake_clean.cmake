file(REMOVE_RECURSE
  "CMakeFiles/bfs_engine_test.dir/bfs_engine_test.cc.o"
  "CMakeFiles/bfs_engine_test.dir/bfs_engine_test.cc.o.d"
  "bfs_engine_test"
  "bfs_engine_test.pdb"
  "bfs_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
