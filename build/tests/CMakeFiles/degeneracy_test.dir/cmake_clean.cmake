file(REMOVE_RECURSE
  "CMakeFiles/degeneracy_test.dir/degeneracy_test.cc.o"
  "CMakeFiles/degeneracy_test.dir/degeneracy_test.cc.o.d"
  "degeneracy_test"
  "degeneracy_test.pdb"
  "degeneracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degeneracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
