# Empty compiler generated dependencies file for degeneracy_test.
# This may be replaced when dependencies are built.
