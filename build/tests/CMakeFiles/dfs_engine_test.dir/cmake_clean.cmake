file(REMOVE_RECURSE
  "CMakeFiles/dfs_engine_test.dir/dfs_engine_test.cc.o"
  "CMakeFiles/dfs_engine_test.dir/dfs_engine_test.cc.o.d"
  "dfs_engine_test"
  "dfs_engine_test.pdb"
  "dfs_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
