# Empty compiler generated dependencies file for dfs_engine_test.
# This may be replaced when dependencies are built.
