file(REMOVE_RECURSE
  "CMakeFiles/induced_test.dir/induced_test.cc.o"
  "CMakeFiles/induced_test.dir/induced_test.cc.o.d"
  "induced_test"
  "induced_test.pdb"
  "induced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/induced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
