# Empty dependencies file for induced_test.
# This may be replaced when dependencies are built.
