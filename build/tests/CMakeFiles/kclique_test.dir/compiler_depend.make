# Empty compiler generated dependencies file for kclique_test.
# This may be replaced when dependencies are built.
