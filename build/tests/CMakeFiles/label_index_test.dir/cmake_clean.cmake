file(REMOVE_RECURSE
  "CMakeFiles/label_index_test.dir/label_index_test.cc.o"
  "CMakeFiles/label_index_test.dir/label_index_test.cc.o.d"
  "label_index_test"
  "label_index_test.pdb"
  "label_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
