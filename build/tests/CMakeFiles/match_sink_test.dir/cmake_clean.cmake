file(REMOVE_RECURSE
  "CMakeFiles/match_sink_test.dir/match_sink_test.cc.o"
  "CMakeFiles/match_sink_test.dir/match_sink_test.cc.o.d"
  "match_sink_test"
  "match_sink_test.pdb"
  "match_sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
