# Empty dependencies file for match_sink_test.
# This may be replaced when dependencies are built.
