file(REMOVE_RECURSE
  "CMakeFiles/mce_test.dir/mce_test.cc.o"
  "CMakeFiles/mce_test.dir/mce_test.cc.o.d"
  "mce_test"
  "mce_test.pdb"
  "mce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
