# Empty compiler generated dependencies file for mce_test.
# This may be replaced when dependencies are built.
