
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query_graph_test.cc" "tests/CMakeFiles/query_graph_test.dir/query_graph_test.cc.o" "gcc" "tests/CMakeFiles/query_graph_test.dir/query_graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/tdfs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tdfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tdfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/tdfs_query.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/tdfs_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tdfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/tdfs_vgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
