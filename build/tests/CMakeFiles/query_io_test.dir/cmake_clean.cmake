file(REMOVE_RECURSE
  "CMakeFiles/query_io_test.dir/query_io_test.cc.o"
  "CMakeFiles/query_io_test.dir/query_io_test.cc.o.d"
  "query_io_test"
  "query_io_test.pdb"
  "query_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
