# Empty dependencies file for query_io_test.
# This may be replaced when dependencies are built.
