file(REMOVE_RECURSE
  "CMakeFiles/ref_engine_test.dir/ref_engine_test.cc.o"
  "CMakeFiles/ref_engine_test.dir/ref_engine_test.cc.o.d"
  "ref_engine_test"
  "ref_engine_test.pdb"
  "ref_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
