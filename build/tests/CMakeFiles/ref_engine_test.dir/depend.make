# Empty dependencies file for ref_engine_test.
# This may be replaced when dependencies are built.
