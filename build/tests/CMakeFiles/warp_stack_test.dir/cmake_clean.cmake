file(REMOVE_RECURSE
  "CMakeFiles/warp_stack_test.dir/warp_stack_test.cc.o"
  "CMakeFiles/warp_stack_test.dir/warp_stack_test.cc.o.d"
  "warp_stack_test"
  "warp_stack_test.pdb"
  "warp_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
