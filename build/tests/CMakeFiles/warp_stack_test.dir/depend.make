# Empty dependencies file for warp_stack_test.
# This may be replaced when dependencies are built.
