file(REMOVE_RECURSE
  "CMakeFiles/tdfs_cli.dir/tdfs_cli.cc.o"
  "CMakeFiles/tdfs_cli.dir/tdfs_cli.cc.o.d"
  "tdfs"
  "tdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdfs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
