# Empty compiler generated dependencies file for tdfs_cli.
# This may be replaced when dependencies are built.
