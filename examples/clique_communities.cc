// Community cohesion analysis with the clique applications.
//
// Maximal cliques and k-clique counts are standard cohesion measures in
// community detection. This example generates a planted-partition network
// (known ground-truth communities), then uses the substrate's clique
// applications to measure how clique structure concentrates inside
// communities: the k-clique census for growing k, the maximal-clique
// count, and a sampled check (via subgraph-matching enumeration) of how
// many triangles stay within one community.
//
//   ./build/examples/clique_communities

#include <iomanip>
#include <iostream>

#include "apps/kclique.h"
#include "apps/mce.h"
#include "core/match_sink.h"
#include "core/matcher.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"

int main() {
  const int64_t n = 3000;
  const int32_t communities = 30;  // 100 vertices each
  tdfs::Graph network =
      tdfs::GeneratePlantedPartition(n, communities, 0.35, 0.002, /*seed=*/5);
  std::cout << "network: " << network.Summary() << " (" << communities
            << " planted communities of " << n / communities << ")\n";
  tdfs::DegeneracyResult degeneracy = tdfs::ComputeDegeneracy(network);
  std::cout << "degeneracy: " << degeneracy.degeneracy
            << " (bounds every warp's clique-DFS fanout)\n\n";

  // k-clique census.
  std::cout << "k-clique census:\n";
  for (int k = 3; k <= 6; ++k) {
    tdfs::RunResult r = tdfs::CountKCliques(network, k);
    if (!r.status.ok()) {
      std::cerr << r.status << "\n";
      return 1;
    }
    std::cout << "  k=" << k << ": " << std::setw(10) << r.match_count
              << "  (" << std::fixed << std::setprecision(1) << r.match_ms
              << " ms)\n";
  }

  // Maximal cliques.
  tdfs::RunResult mce = tdfs::CountMaximalCliques(network);
  if (!mce.status.ok()) {
    std::cerr << mce.status << "\n";
    return 1;
  }
  std::cout << "maximal cliques: " << mce.match_count << " ("
            << std::setprecision(1) << mce.match_ms << " ms, "
            << mce.counters.tasks_enqueued << " decomposed tasks)\n\n";

  // Sample triangles through the matching engine and check community
  // purity (planted partition => triangles should be overwhelmingly
  // intra-community).
  tdfs::QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  tdfs::MatchSink sink(3, 20000);
  tdfs::RunResult match =
      tdfs::RunMatchingCollect(network, triangle, tdfs::TdfsConfig(), &sink);
  if (!match.status.ok()) {
    std::cerr << match.status << "\n";
    return 1;
  }
  const int64_t community_size = n / communities;
  int64_t intra = 0;
  for (int64_t i = 0; i < sink.NumMatches(); ++i) {
    auto m = sink.Match(i);
    const int64_t c0 = m[0] / community_size;
    intra += (m[1] / community_size == c0 && m[2] / community_size == c0)
                 ? 1
                 : 0;
  }
  std::cout << "triangles: " << match.match_count << " total; of "
            << sink.NumMatches() << " sampled, "
            << std::setprecision(1)
            << 100.0 * intra / std::max<int64_t>(sink.NumMatches(), 1)
            << "% lie inside one planted community\n";
  return 0;
}
