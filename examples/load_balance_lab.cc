// Load-balancing laboratory: run the same matching job under all four
// strategies of Fig. 11 (timeout / half-steal / new-kernel / none) and
// print their runtimes and mechanism counters side by side. A hands-on
// version of the paper's Section IV-C comparison on a skewed graph.
//
//   ./build/examples/load_balance_lab [pattern 1..22]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

int main(int argc, char** argv) {
  int pattern = 8;  // hexagon: the paper's straggler-heavy pattern
  if (argc > 1) {
    auto parsed = tdfs::PatternFromName(argv[1]);
    if (!parsed.ok()) {
      std::cerr << "usage: load_balance_lab [P1..P22]\n";
      return 1;
    }
    pattern = parsed.value();
  }
  tdfs::QueryGraph query = tdfs::Pattern(pattern);

  // A heavy power-law tail so some initial edge tasks own giant subtrees.
  tdfs::Graph graph = tdfs::GenerateBarabasiAlbert(6000, 4, /*seed=*/99);
  std::cout << "graph: " << graph.Summary() << "\n";
  std::cout << "query: " << tdfs::PatternName(pattern) << " ("
            << tdfs::PatternStructureName(pattern) << ")\n\n";

  struct Row {
    const char* name;
    tdfs::StealStrategy strategy;
  };
  const Row rows[] = {
      {"Timeout Steal (T-DFS)", tdfs::StealStrategy::kTimeout},
      {"Half Steal (STMatch)", tdfs::StealStrategy::kHalfSteal},
      {"New Kernel (EGSM)", tdfs::StealStrategy::kNewKernel},
      {"No Steal", tdfs::StealStrategy::kNone},
  };

  std::cout << std::left << std::setw(24) << "strategy" << std::setw(12)
            << "wall(ms)" << std::setw(12) << "sim(ms)" << std::setw(12)
            << "count" << "balancing activity\n";
  for (const Row& row : rows) {
    tdfs::EngineConfig config = tdfs::TdfsConfig();
    config.steal = row.strategy;
    config.timeout_ms = 1.0;
    config.newkernel_fanout_threshold = 64;
    tdfs::RunResult r = tdfs::RunMatching(graph, query, config);
    if (!r.status.ok()) {
      std::cerr << row.name << ": " << r.status << "\n";
      continue;
    }
    std::cout << std::left << std::setw(24) << row.name << std::setw(12)
              << std::fixed << std::setprecision(1) << r.match_ms
              << std::setw(12) << r.SimulatedGpuMs() << std::setw(12)
              << r.match_count;
    switch (row.strategy) {
      case tdfs::StealStrategy::kTimeout:
        std::cout << r.counters.timeout_splits << " splits, "
                  << r.counters.tasks_enqueued << " tasks, queue peak "
                  << r.counters.queue_peak_tasks;
        break;
      case tdfs::StealStrategy::kHalfSteal:
        std::cout << r.counters.steal_successes << "/"
                  << r.counters.steal_attempts << " steals";
        break;
      case tdfs::StealStrategy::kNewKernel:
        std::cout << r.counters.kernels_launched << " child kernels, "
                  << r.counters.child_warps_launched << " child warps";
        break;
      case tdfs::StealStrategy::kNone:
        std::cout << "-";
        break;
    }
    std::cout << "\n";
  }
  std::cout << "\nAll four rows must report the same count; they differ "
               "only in how the work moved between warps. sim(ms) is the "
               "simulated warp-parallel time (wall x busiest-warp work "
               "share): on a host where virtual warps share CPU cores, "
               "wall time shows mechanism overheads while sim time shows "
               "balance.\n";
  return 0;
}
