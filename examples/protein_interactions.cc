// Labeled motif search in a protein-interaction-style network — the
// biological-network use case from the paper's introduction.
//
// Vertices carry one of four "protein family" labels (kinase, receptor,
// ligase, scaffold). The example searches for labeled signaling motifs,
// e.g. a kinase bridging two receptors, showing how label filters shrink
// the search space: the same structure is matched unlabeled and labeled,
// and the work-unit counters are compared.
//
//   ./build/examples/protein_interactions

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/query_graph.h"

namespace {

constexpr const char* kFamilies[] = {"kinase", "receptor", "ligase",
                                     "scaffold"};

tdfs::QueryGraph SignalingTriangle() {
  // receptor - kinase - receptor, closed: a cross-activation loop.
  tdfs::QueryGraph q(3, {{0, 1}, {1, 2}, {2, 0}});
  q.SetVertexLabel(0, 1);  // receptor
  q.SetVertexLabel(1, 0);  // kinase
  q.SetVertexLabel(2, 1);  // receptor
  return q;
}

tdfs::QueryGraph ScaffoldComplex() {
  // A scaffold protein holding a kinase, a ligase, and a receptor that
  // also interact pairwise through the scaffold's partners: K4 minus the
  // ligase-receptor edge (a labeled diamond).
  tdfs::QueryGraph q(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
  q.SetVertexLabel(0, 3);  // scaffold
  q.SetVertexLabel(1, 0);  // kinase
  q.SetVertexLabel(2, 2);  // ligase
  q.SetVertexLabel(3, 1);  // receptor
  return q;
}

}  // namespace

int main() {
  // Interaction networks are modular: planted partition gives the protein
  // complexes; labels mark the families.
  tdfs::Graph network =
      tdfs::GeneratePlantedPartition(8000, 400, 0.25, 0.0002, /*seed=*/11);
  network.AssignUniformLabels(4, /*seed=*/12);
  std::cout << "interaction network: " << network.Summary() << "\n";
  std::cout << "families: ";
  for (const char* f : kFamilies) {
    std::cout << f << " ";
  }
  std::cout << "\n\n";

  tdfs::EngineConfig config = tdfs::TdfsConfig();

  // Unlabeled baseline: how many closed triads of any family?
  tdfs::QueryGraph any_triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  tdfs::RunResult all = tdfs::RunMatching(network, any_triangle, config);
  if (!all.status.ok()) {
    std::cerr << all.status << "\n";
    return 1;
  }

  tdfs::RunResult signaling =
      tdfs::RunMatching(network, SignalingTriangle(), config);
  tdfs::RunResult complexes =
      tdfs::RunMatching(network, ScaffoldComplex(), config);
  if (!signaling.status.ok() || !complexes.status.ok()) {
    std::cerr << signaling.status << " / " << complexes.status << "\n";
    return 1;
  }

  std::cout << std::left << std::setw(28) << "motif" << std::setw(12)
            << "count" << std::setw(12) << "time(ms)" << "work units\n";
  auto row = [](const char* name, const tdfs::RunResult& r) {
    std::cout << std::left << std::setw(28) << name << std::setw(12)
              << r.match_count << std::setw(12) << std::fixed
              << std::setprecision(1) << r.match_ms
              << r.counters.work_units << "\n";
  };
  row("triangle (any family)", all);
  row("receptor-kinase-receptor", signaling);
  row("scaffold complex", complexes);

  std::cout << "\nLabel filters prune candidates during set intersection, "
               "so the labeled searches do a fraction of the unlabeled "
               "search's work ("
            << signaling.counters.work_units << " vs "
            << all.counters.work_units << " units).\n";
  return 0;
}
