// Quickstart: count triangles and 4-cliques in a small synthetic social
// network with T-DFS, and sanity-check against the serial reference engine.
//
//   ./build/examples/quickstart

#include <iostream>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

int main() {
  // 1. Get a data graph. Build your own with tdfs::GraphBuilder, load one
  //    with tdfs::LoadEdgeListText, or generate one:
  tdfs::Graph graph = tdfs::GenerateBarabasiAlbert(
      /*num_vertices=*/5000, /*edges_per_vertex=*/4, /*seed=*/7);
  std::cout << "data graph: " << graph.Summary() << "\n";

  // 2. Pick a query. The paper's evaluation suite is available as
  //    tdfs::Pattern(1..22); arbitrary queries via tdfs::QueryGraph.
  tdfs::QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  tdfs::QueryGraph four_clique = tdfs::Pattern(2);

  // 3. Run T-DFS (warp-based DFS, timeout load balancing, paged stacks).
  tdfs::EngineConfig config = tdfs::TdfsConfig();
  tdfs::RunResult triangles = tdfs::RunMatching(graph, triangle, config);
  if (!triangles.status.ok()) {
    std::cerr << "matching failed: " << triangles.status << "\n";
    return 1;
  }
  std::cout << "triangles:   " << triangles.match_count << "  ("
            << triangles.match_ms << " ms, "
            << triangles.counters.work_units << " work units)\n";

  tdfs::RunResult cliques = tdfs::RunMatching(graph, four_clique, config);
  std::cout << "4-cliques:   " << cliques.match_count << "  ("
            << cliques.match_ms << " ms)\n";

  // 4. Cross-check with the serial oracle (slow, but independent).
  tdfs::RunResult oracle = tdfs::RunMatchingRef(graph, triangle, config);
  std::cout << "oracle says: " << oracle.match_count << " triangles -> "
            << (oracle.match_count == triangles.match_count ? "MATCH"
                                                            : "MISMATCH")
            << "\n";
  return oracle.match_count == triangles.match_count ? 0 : 1;
}
