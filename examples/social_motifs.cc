// Social-network motif census — the workload class that motivates the
// paper's introduction (social network analysis via subgraph search).
//
// Generates a power-law "follower" network, then counts a census of
// sociologically meaningful motifs: closed triads (triangles), co-follow
// diamonds, tight 4-cliques, and bridged communities (two triangles joined
// by an edge). Reports per-motif counts, runtimes, and the load-balancing
// counters that show the timeout mechanism working on a skewed graph.
//
//   ./build/examples/social_motifs [num_vertices]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace {

struct Motif {
  const char* name;
  const char* meaning;
  tdfs::QueryGraph query;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t n = 8000;
  if (argc > 1) {
    n = std::atoll(argv[1]);
    if (n < 100) {
      std::cerr << "usage: social_motifs [num_vertices >= 100]\n";
      return 1;
    }
  }

  // Power-law degree distribution: a few celebrity accounts with huge
  // followings — exactly the skew that makes straggler tasks.
  tdfs::Graph network = tdfs::GenerateBarabasiAlbert(n, 5, /*seed=*/2024);
  std::cout << "follower network: " << network.Summary() << "\n\n";

  const std::vector<Motif> motifs = {
      {"closed triad", "mutual friends",
       tdfs::QueryGraph(3, {{0, 1}, {1, 2}, {2, 0}})},
      {"diamond", "two communities sharing a pair", tdfs::Pattern(1)},
      {"4-clique", "tight friend group", tdfs::Pattern(2)},
      {"bridged triangles", "two groups joined by one tie",
       tdfs::Pattern(11)},
  };

  tdfs::EngineConfig config = tdfs::TdfsConfig();
  config.timeout_ms = 1.0;  // aggressive balancing for a skewed graph

  std::cout << std::left << std::setw(20) << "motif" << std::setw(14)
            << "count" << std::setw(12) << "time(ms)" << std::setw(10)
            << "splits" << "tasks-queued\n";
  for (const Motif& motif : motifs) {
    tdfs::RunResult r = tdfs::RunMatching(network, motif.query, config);
    if (!r.status.ok()) {
      std::cerr << motif.name << ": " << r.status << "\n";
      return 1;
    }
    std::cout << std::left << std::setw(20) << motif.name << std::setw(14)
              << r.match_count << std::setw(12) << std::fixed
              << std::setprecision(1) << r.match_ms << std::setw(10)
              << r.counters.timeout_splits << r.counters.tasks_enqueued
              << "    // " << motif.meaning << "\n";
  }

  std::cout << "\nInterpretation: a high splits/tasks count means the "
               "timeout mechanism broke straggler subtrees (rooted at "
               "celebrity accounts) into queue tasks that idle warps "
               "drained.\n";
  return 0;
}
