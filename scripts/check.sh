#!/usr/bin/env bash
# Full verification pipeline: build, tests, a quick benchmark smoke pass,
# and (optionally) sanitizer builds of the concurrency-heavy tests.
#
#   scripts/check.sh               # build + ctest + bench smoke
#   scripts/check.sh --tsan        # additionally run ThreadSanitizer subset
#   scripts/check.sh --asan        # additionally run AddressSanitizer subset
#   scripts/check.sh --failpoints  # additionally run an env-armed fault pass
#   scripts/check.sh --obs         # additionally run the observability pass
#                                  # (traced job -> validate_trace, bench
#                                  # JSON recorder, obs tests under tsan)
#   scripts/check.sh --obs2        # additionally run the service-
#                                  # observability pass (span ledger /
#                                  # exporter / logging tests under tsan,
#                                  # span-bearing batch trace validated,
#                                  # serve + metrics + flame CLI smokes,
#                                  # tracing-off zero-overhead regression,
#                                  # obs_overhead bench + bench_diff)
#   scripts/check.sh --service     # additionally run the service-layer pass
#                                  # (cache/arena/service tests under tsan,
#                                  # CLI batch smoke)
#   scripts/check.sh --dyn         # additionally run the dynamic-update
#                                  # pass (delta/incremental tests under
#                                  # tsan, CLI stream smoke with --verify
#                                  # on a generated update file)
#   scripts/check.sh --simd        # additionally run the intersection-
#                                  # backend pass (differential tests under
#                                  # ASan+UBSan with the backend forced
#                                  # scalar and forced vector, plus a CLI
#                                  # smoke of every --intersect mode)
#   scripts/check.sh --plan        # additionally run the query-planner
#                                  # pass (planner differential + plan +
#                                  # plan-cache tests under ASan+UBSan, a
#                                  # CLI smoke asserting --planner cost
#                                  # counts match greedy, and the planner
#                                  # bench through the recorder with
#                                  # bench_diff over the committed
#                                  # BENCH_planner.json baseline)
#   scripts/check.sh --prefilter   # additionally run the candidate-
#                                  # prefiltering pass (filter unit +
#                                  # differential + service suites under
#                                  # ASan+UBSan, a CLI smoke asserting
#                                  # --prefilter off/ldf/neighborhood
#                                  # count identically, and the prefilter
#                                  # bench with bench_diff over the
#                                  # committed BENCH_prefilter.json)
#   scripts/check.sh --shard       # additionally run the shard-parallel
#                                  # pass (partitioner + cross-shard
#                                  # differential suites under ASan+UBSan
#                                  # and TSan, a CLI smoke asserting
#                                  # --sharding off/hash/greedy count
#                                  # identically, and the shard bench with
#                                  # bench_diff over the committed
#                                  # BENCH_shard.json)
#   scripts/check.sh --oom         # additionally run the out-of-core pass
#                                  # (governor/spill differential tests
#                                  # under ASan, the oom bench through the
#                                  # TDFS_BENCH_JSON recorder, and a CLI
#                                  # smoke on a 0.1x arena with --spill on)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cmake -B build -G Ninja >/dev/null
cmake --build build

echo "== tests =="
ctest --test-dir build -j1 --output-on-failure

echo "== bench smoke (tight budget) =="
TDFS_BENCH_BUDGET_MS=500 ./build/bench/tab01_datasets
TDFS_BENCH_BUDGET_MS=500 ./build/bench/tab0708_stacks_youtube

# Concurrency-focused test filter for sanitizer runs.
SAN_TESTS='task_queue_test|page_allocator_test|atomics_test|scheduler_test|match_sink_test|failpoint_test|resilience_test'

for flag in "$@"; do
  case "$flag" in
    --tsan) SAN=thread ;;
    --asan) SAN=address ;;
    --obs)
      # Observability pass: one small traced matching job through the CLI,
      # schema-validated by the dedicated checker (monotone per-track
      # timestamps, required lifecycle events, every counter field); one
      # tight-budget bench run through the TDFS_BENCH_JSON recorder; and
      # the obs tests under ThreadSanitizer (the rings and registry are
      # touched from every warp thread).
      echo "== observability =="
      OBS_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type er --out "${OBS_TMP}/g.txt" \
          --vertices 2000 --edges 8000 --seed 7 >/dev/null
      ./build/tools/tdfs match --graph "${OBS_TMP}/g.txt" --pattern P5 \
          --warps 4 --tau-units 100 --json "${OBS_TMP}/run.json" \
          --trace-out "${OBS_TMP}/trace.json"
      ./build/tools/validate_trace \
          --trace "${OBS_TMP}/trace.json" \
          --require adopt,split,enqueue,dequeue,page_acquire,page_release \
          --run "${OBS_TMP}/run.json"
      TDFS_BENCH_JSON="${OBS_TMP}/BENCH_fig09.json" \
          TDFS_BENCH_BUDGET_MS=10 ./build/bench/fig09_unlabeled >/dev/null
      test -s "${OBS_TMP}/BENCH_fig09.json"
      cmake -B build-thread -G Ninja -DTDFS_SANITIZE=thread >/dev/null
      cmake --build build-thread --target obs_test json_test
      ./build-thread/tests/obs_test
      ./build-thread/tests/json_test
      rm -rf "${OBS_TMP}"
      continue
      ;;
    --obs2)
      # Service-observability pass. The span ledger, Prometheus endpoint,
      # and log sink are all touched concurrently by workers + scrapers,
      # so their tests run under ThreadSanitizer. Then CLI proofs:
      # a span-bearing batch trace through validate_trace (balanced
      # begin/end, parent-before-child), the serve endpoint scraped live,
      # the one-shot metrics dump, a flame-out export, a tracing-off
      # zero-overhead check (identical counts and work), and the
      # obs_overhead bench through the recorder with bench_diff proving
      # both the no-regression and the regression-detected paths.
      echo "== service observability =="
      cmake -B build-thread -G Ninja -DTDFS_SANITIZE=thread >/dev/null
      for t in span_test prometheus_test logging_test attribution_test \
               obs_test; do
        cmake --build build-thread --target "$t"
      done
      for t in span_test prometheus_test logging_test attribution_test; do
        "./build-thread/tests/$t"
      done
      # TracingOffTest asserts exact work-unit equality across repeat
      # runs — a determinism property, not a race property. TSan's
      # scheduler perturbation occasionally shifts multi-warp steal
      # points enough to move the count by ~0.3%, so that suite stays
      # with the plain ctest run (which enforces it) and the tsan pass
      # keeps the race coverage.
      ./build-thread/tests/obs_test --gtest_filter='-TracingOffTest.*'
      OBS2_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type ba --out "${OBS2_TMP}/g.txt" \
          --vertices 2000 --attach 4 --seed 7 >/dev/null
      printf 'P1\nP2\nP5\nP2\n' > "${OBS2_TMP}/batch.txt"
      # Span-bearing trace: service stages + warp events on one timeline.
      ./build/tools/tdfs batch --graph "${OBS2_TMP}/g.txt" \
          --queries "${OBS2_TMP}/batch.txt" --workers 2 \
          --trace-out "${OBS2_TMP}/trace.json" >/dev/null
      ./build/tools/validate_trace --trace "${OBS2_TMP}/trace.json" \
          --require adopt
      # Live scrape: serve in the background, poll the printed port.
      ./build/tools/tdfs serve --graph "${OBS2_TMP}/g.txt" --pattern P2 \
          --metrics-port 0 --duration-ms 2000 --slow-ms 0.001 \
          > "${OBS2_TMP}/serve.log" 2> "${OBS2_TMP}/serve.err" &
      SERVE_PID=$!
      for _ in $(seq 50); do
        PORT=$(sed -n 's|.*http://127.0.0.1:\([0-9]*\)/metrics.*|\1|p' \
            "${OBS2_TMP}/serve.log")
        [ -n "${PORT}" ] && break
        sleep 0.1
      done
      test -n "${PORT}"
      python3 -c "
import sys, urllib.request
page = urllib.request.urlopen(
    'http://127.0.0.1:${PORT}/metrics', timeout=5).read().decode()
assert '# TYPE tdfs_service_jobs_submitted counter' in page, page[:400]
assert '_bucket{' in page and '+Inf' in page, page[:400]
print('scrape ok:', len(page), 'bytes')
"
      wait "${SERVE_PID}"
      grep -q "^stage engine_run:" "${OBS2_TMP}/serve.log"
      # One-shot exposition dump. Capture to a file rather than piping
      # into grep -q: grep exits at the first match and the CLI's
      # remaining writes would die of SIGPIPE under pipefail.
      ./build/tools/tdfs metrics --graph "${OBS2_TMP}/g.txt" \
          --pattern P1 --jobs 2 > "${OBS2_TMP}/metrics.txt"
      grep -q 'tdfs_service_jobs_completed{name="service.jobs_completed"} 2' \
          "${OBS2_TMP}/metrics.txt"
      # Collapsed-stack attribution export.
      ./build/tools/tdfs match --graph "${OBS2_TMP}/g.txt" --pattern P5 \
          --warps 4 --flame-out "${OBS2_TMP}/flame.txt" >/dev/null
      grep -q "^tdfs;cell" "${OBS2_TMP}/flame.txt"
      # Zero-overhead contract: tracing must not change the computation.
      ./build/tools/tdfs match --graph "${OBS2_TMP}/g.txt" --pattern P5 \
          --warps 4 --json "${OBS2_TMP}/plain.json" >/dev/null
      ./build/tools/tdfs match --graph "${OBS2_TMP}/g.txt" --pattern P5 \
          --warps 4 --json "${OBS2_TMP}/traced.json" \
          --trace-out "${OBS2_TMP}/t2.json" >/dev/null
      for field in match_count work_units; do
        a=$(grep -m1 -o "\"${field}\": [0-9]*" "${OBS2_TMP}/plain.json")
        b=$(grep -m1 -o "\"${field}\": [0-9]*" "${OBS2_TMP}/traced.json")
        if [ "$a" != "$b" ]; then
          echo "tracing changed the computation: ${field} ${a} vs ${b}"
          exit 1
        fi
      done
      echo "-- tracing-off/on: counts and work identical --"
      # Overhead bench through the recorder; bench_diff must accept the
      # self-diff and reject an injected 2x wall-time regression.
      TDFS_BENCH_JSON="${OBS2_TMP}/BENCH_obs_overhead.json" \
          ./build/bench/obs_overhead >/dev/null
      test -s "${OBS2_TMP}/BENCH_obs_overhead.json"
      python3 tools/bench_diff.py "${OBS2_TMP}/BENCH_obs_overhead.json" \
          "${OBS2_TMP}/BENCH_obs_overhead.json"
      python3 - "${OBS2_TMP}" <<'EOF'
import json, sys
tmp = sys.argv[1]
doc = json.load(open(f"{tmp}/BENCH_obs_overhead.json"))
for cell in doc["cells"]:
    if cell["col"] == "wall_ms":
        cell["text"] = str(2 * float(cell["text"]))
json.dump(doc, open(f"{tmp}/BENCH_regressed.json", "w"))
EOF
      if python3 tools/bench_diff.py \
          "${OBS2_TMP}/BENCH_obs_overhead.json" \
          "${OBS2_TMP}/BENCH_regressed.json" >/dev/null; then
        echo "bench_diff missed a 2x wall-time regression"; exit 1
      fi
      echo "-- bench_diff: self-diff clean, injected regression caught --"
      rm -rf "${OBS2_TMP}"
      continue
      ;;
    --service)
      # Service-layer pass: the batch subsystem is concurrency all the way
      # down (LRU cache under racing Gets, arena leases across workers,
      # futures fulfilled by whichever worker finishes last), so its tests
      # run under ThreadSanitizer, plus the queue test that guards the
      # occupancy accounting they depend on. Then one CLI batch smoke run
      # proves the plumbing end to end.
      echo "== service =="
      cmake -B build-thread -G Ninja -DTDFS_SANITIZE=thread >/dev/null
      for t in plan_cache_test engine_arena_test match_service_test \
               task_queue_test; do
        cmake --build build-thread --target "$t"
      done
      for t in plan_cache_test engine_arena_test match_service_test \
               task_queue_test; do
        "./build-thread/tests/$t"
      done
      SVC_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type ba --out "${SVC_TMP}/g.txt" \
          --vertices 2000 --attach 4 --seed 7 >/dev/null
      printf 'P1\nP2\nP1\n' > "${SVC_TMP}/batch.txt"
      ./build/tools/tdfs batch --graph "${SVC_TMP}/g.txt" \
          --queries "${SVC_TMP}/batch.txt" --workers 2 \
          --out "${SVC_TMP}/results.json"
      test -s "${SVC_TMP}/results.json"
      rm -rf "${SVC_TMP}"
      continue
      ;;
    --dyn)
      # Dynamic-update pass: snapshot publication and continuous-query
      # maintenance race with submitted jobs by design, so the dyn and
      # service tests run under ThreadSanitizer. Then one end-to-end CLI
      # run: generate a random update stream, replay it with --verify 1
      # (every batch's incremental counts cross-checked against a full
      # recount — the command fails on any mismatch).
      echo "== dynamic updates =="
      cmake -B build-thread -G Ninja -DTDFS_SANITIZE=thread >/dev/null
      for t in graph_delta_test incremental_test match_service_test; do
        cmake --build build-thread --target "$t"
      done
      for t in graph_delta_test incremental_test match_service_test; do
        "./build-thread/tests/$t"
      done
      DYN_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type er --out "${DYN_TMP}/g.txt" \
          --vertices 300 --edges 1800 --seed 5 >/dev/null
      ./build/tools/tdfs stream --graph "${DYN_TMP}/g.txt" \
          --gen-updates "${DYN_TMP}/u.txt" --batches 4 --inserts 6 \
          --deletes 4 --seed 11
      ./build/tools/tdfs stream --graph "${DYN_TMP}/g.txt" \
          --updates "${DYN_TMP}/u.txt" --pattern P2 --verify 1 \
          --out "${DYN_TMP}/stream.json"
      test -s "${DYN_TMP}/stream.json"
      rm -rf "${DYN_TMP}"
      continue
      ;;
    --simd)
      # Intersection-backend pass: the differential suite (outputs AND
      # work units identical across scalar/SIMD/bitmap) under ASan+UBSan,
      # run twice — once with the backend capped to scalar via TDFS_SIMD
      # (what a machine without AVX2 executes; the cap also proves the
      # fallback path is clean) and once with full vector dispatch. Then a
      # CLI smoke run of every --intersect mode on a hub-heavy graph,
      # asserting identical match counts and work units across modes.
      echo "== simd backends =="
      cmake -B build-address-ub -G Ninja \
          -DTDFS_SANITIZE=address,undefined >/dev/null
      for t in intersect_backend_test hub_bitmap_test intersect_test; do
        cmake --build build-address-ub --target "$t"
      done
      for t in intersect_backend_test hub_bitmap_test intersect_test; do
        echo "-- $t (TDFS_SIMD=scalar: no-AVX2 fallback) --"
        TDFS_SIMD=scalar "./build-address-ub/tests/$t"
        echo "-- $t (full vector dispatch) --"
        "./build-address-ub/tests/$t"
      done
      SIMD_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type hubba --out "${SIMD_TMP}/g.txt" \
          --vertices 2000 --attach 2 --hubs 6 --hub-degree 600 \
          --seed 3 >/dev/null
      for mode in auto scalar simd bitmap-off; do
        ./build/tools/tdfs match --graph "${SIMD_TMP}/g.txt" --pattern P3 \
            --warps 4 --tau-units 100000 --intersect "$mode" \
            --json "${SIMD_TMP}/run-${mode}.json" >/dev/null
      done
      for mode in scalar simd bitmap-off; do
        for field in match_count work_units; do
          a=$(grep -o "\"${field}\": [0-9]*" "${SIMD_TMP}/run-auto.json" \
              | head -1)
          b=$(grep -o "\"${field}\": [0-9]*" \
              "${SIMD_TMP}/run-${mode}.json" | head -1)
          if [ "$a" != "$b" ]; then
            echo "backend divergence: ${field} auto=${a} ${mode}=${b}"
            exit 1
          fi
        done
        echo "-- --intersect ${mode}: counts and work match auto --"
      done
      rm -rf "${SIMD_TMP}"
      continue
      ;;
    --plan)
      # Query-planner pass: the exactness differentials (cost-planned
      # counts == greedy == oracle on the pattern suite and random
      # labeled queries) plus the plan/plan-cache suites under
      # ASan+UBSan; a CLI smoke proving --planner cost and greedy count
      # identically on a label-skewed hub graph; and the planner bench
      # through the TDFS_BENCH_JSON recorder, with bench_diff watching
      # the trajectory against the committed baseline.
      echo "== cost planner =="
      cmake -B build-address-ub -G Ninja \
          -DTDFS_SANITIZE=address,undefined >/dev/null
      for t in cost_planner_test plan_test plan_cache_test; do
        cmake --build build-address-ub --target "$t"
        echo "-- $t (ASan+UBSan) --"
        "./build-address-ub/tests/$t"
      done
      PLAN_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type hubba --out "${PLAN_TMP}/g.txt" \
          --vertices 3000 --attach 3 --hubs 6 --hub-degree 300 \
          --seed 5 >/dev/null
      for planner in greedy cost; do
        ./build/tools/tdfs match --graph "${PLAN_TMP}/g.txt" \
            --pattern P14 --labels 4 --warps 4 --planner "$planner" \
            --json "${PLAN_TMP}/run-${planner}.json" >/dev/null
      done
      a=$(grep -o '"match_count": [0-9]*' "${PLAN_TMP}/run-greedy.json" \
          | head -1)
      b=$(grep -o '"match_count": [0-9]*' "${PLAN_TMP}/run-cost.json" \
          | head -1)
      if [ "$a" != "$b" ]; then
        echo "planner divergence: greedy=${a} cost=${b}"; exit 1
      fi
      echo "-- --planner cost: counts match greedy --"
      TDFS_BENCH_JSON="${PLAN_TMP}/BENCH_planner.json" \
          TDFS_BENCH_BUDGET_MS=1000 ./build/bench/planner >/dev/null
      python3 tools/bench_diff.py BENCH_planner.json \
          "${PLAN_TMP}/BENCH_planner.json"
      rm -rf "${PLAN_TMP}"
      continue
      ;;
    --prefilter)
      # Candidate-prefiltering pass: the filter build walks raw CSR spans
      # with remapped indices — exactly where an off-by-one becomes a
      # silent OOB read — so the unit, differential (filtered counts ==
      # unfiltered oracle across engines x graphs x kinds), and service
      # suites run under ASan+UBSan. Then a CLI smoke proving the modes
      # are a pure optimization (identical counts off/ldf/neighborhood on
      # a label-skewed hub graph), and the prefilter bench through the
      # recorder with bench_diff watching the committed baseline.
      echo "== candidate prefiltering =="
      cmake -B build-address-ub -G Ninja \
          -DTDFS_SANITIZE=address,undefined >/dev/null
      for t in candidate_filter_test prefilter_differential_test \
               prefilter_service_test label_index_test; do
        cmake --build build-address-ub --target "$t"
        echo "-- $t (ASan+UBSan) --"
        "./build-address-ub/tests/$t"
      done
      PREF_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type hubba --out "${PREF_TMP}/g.txt" \
          --vertices 3000 --attach 3 --hubs 6 --hub-degree 300 \
          --seed 5 >/dev/null
      for mode in off ldf neighborhood; do
        ./build/tools/tdfs match --graph "${PREF_TMP}/g.txt" \
            --pattern P14 --labels 4 --warps 4 --prefilter "$mode" \
            --json "${PREF_TMP}/run-${mode}.json" >/dev/null
      done
      a=$(grep -o '"match_count": [0-9]*' "${PREF_TMP}/run-off.json" \
          | head -1)
      for mode in ldf neighborhood; do
        b=$(grep -o '"match_count": [0-9]*' \
            "${PREF_TMP}/run-${mode}.json" | head -1)
        if [ "$a" != "$b" ]; then
          echo "prefilter divergence: off=${a} ${mode}=${b}"; exit 1
        fi
        echo "-- --prefilter ${mode}: counts match off --"
      done
      TDFS_BENCH_JSON="${PREF_TMP}/BENCH_prefilter.json" \
          TDFS_BENCH_BUDGET_MS=1000 ./build/bench/prefilter >/dev/null
      # The speedup row divides by the filter's host build time, so it
      # carries real machine-load noise on top of the simulated cells;
      # gate the trajectory at a wider threshold than the default 10%.
      python3 tools/bench_diff.py --threshold 40 BENCH_prefilter.json \
          "${PREF_TMP}/BENCH_prefilter.json"
      rm -rf "${PREF_TMP}"
      continue
      ;;
    --shard)
      # Shard-parallel pass. The partitioner's id remapping and the
      # cross-shard routing protocol are where an off-by-one becomes a
      # silent OOB or a lost work token, so both suites run under
      # ASan+UBSan; the per-shard engines, queues, and the exchange's
      # token accounting run concurrently, so they repeat under TSan.
      # Then a CLI smoke proving sharding is a pure execution strategy
      # (identical counts off/hash/greedy), and the shard bench through
      # bench_diff against the committed baseline.
      echo "== shard-parallel execution =="
      cmake -B build-address-ub -G Ninja \
          -DTDFS_SANITIZE=address,undefined >/dev/null
      for t in partition_test shard_differential_test; do
        cmake --build build-address-ub --target "$t"
        echo "-- $t (ASan+UBSan) --"
        "./build-address-ub/tests/$t"
      done
      cmake -B build-thread -G Ninja -DTDFS_SANITIZE=thread >/dev/null
      for t in partition_test shard_differential_test; do
        cmake --build build-thread --target "$t"
        echo "-- $t (TSan) --"
        "./build-thread/tests/$t"
      done
      SHARD_TMP=$(mktemp -d)
      ./build/tools/tdfs generate --type ba --out "${SHARD_TMP}/g.txt" \
          --vertices 4000 --attach 6 --seed 11 >/dev/null
      for mode in off hash greedy; do
        ./build/tools/tdfs match --graph "${SHARD_TMP}/g.txt" \
            --pattern P2 --warps 4 --devices 4 --sharding "$mode" \
            --json "${SHARD_TMP}/run-${mode}.json" >/dev/null
      done
      a=$(grep -o '"match_count": [0-9]*' "${SHARD_TMP}/run-off.json" \
          | head -1)
      for mode in hash greedy; do
        b=$(grep -o '"match_count": [0-9]*' \
            "${SHARD_TMP}/run-${mode}.json" | head -1)
        if [ "$a" != "$b" ]; then
          echo "sharding divergence: off=${a} ${mode}=${b}"; exit 1
        fi
        echo "-- --sharding ${mode}: counts match off --"
      done
      TDFS_BENCH_JSON="${SHARD_TMP}/BENCH_shard.json" \
          TDFS_BENCH_BUDGET_MS=3000 ./build/bench/fig_shard >/dev/null
      # Modeled times divide simulated compute by metered interconnect
      # traffic; both are deterministic, but the wall-clock-derived
      # match_ms scale factor carries machine noise — same wide gate as
      # the prefilter bench.
      python3 tools/bench_diff.py --threshold 40 BENCH_shard.json \
          "${SHARD_TMP}/BENCH_shard.json"
      rm -rf "${SHARD_TMP}"
      continue
      ;;
    --oom)
      # Out-of-core pass: the governor/spill machinery (host extents,
      # promotion memcpy, concurrent reservation waiters) runs under
      # AddressSanitizer — exactly the code where a lifetime bug becomes
      # silent corruption; then the oom bench (exact counts at
      # 0.5x/0.25x/0.1x arena sizing, OOM without spill) through the
      # bench JSON recorder; then one CLI proof that --spill on turns a
      # kResourceExhausted run into an exact one on a 10x-starved arena.
      echo "== out-of-core (governor + spill) =="
      cmake -B build-address -G Ninja -DTDFS_SANITIZE=address >/dev/null
      for t in memory_governor_test page_allocator_test warp_stack_test \
               resilience_test match_service_test; do
        cmake --build build-address --target "$t"
      done
      for t in memory_governor_test page_allocator_test warp_stack_test \
               resilience_test match_service_test; do
        "./build-address/tests/$t"
      done
      OOM_TMP=$(mktemp -d)
      TDFS_BENCH_JSON="${OOM_TMP}/BENCH_oom.json" ./build/bench/oom
      test -s "${OOM_TMP}/BENCH_oom.json"
      ./build/tools/tdfs generate --type hubba --out "${OOM_TMP}/g.txt" \
          --vertices 2000 --attach 3 --hubs 3 --hub-degree 400 \
          --seed 7 >/dev/null
      if ./build/tools/tdfs match --graph "${OOM_TMP}/g.txt" --pattern P5 \
          --warps 4 --tau-units 4096 --pages 2 --spill off \
          >/dev/null 2>&1; then
        echo "expected OOM on the starved arena without spill"; exit 1
      fi
      ./build/tools/tdfs match --graph "${OOM_TMP}/g.txt" --pattern P5 \
          --warps 4 --tau-units 4096 --pages 2 --spill on \
          --json "${OOM_TMP}/spill.json"
      test -s "${OOM_TMP}/spill.json"
      rm -rf "${OOM_TMP}"
      continue
      ;;
    --failpoints)
      # Fault-injection pass: the resilience suite exercises the recovery
      # machinery programmatically, then one engine run is driven purely by
      # the TDFS_FAILPOINTS env spec to prove the env plumbing end to end.
      echo "== failpoints =="
      ./build/tests/failpoint_test
      ./build/tests/resilience_test
      TDFS_FAILPOINTS='page_alloc=every:97' \
          TDFS_BENCH_BUDGET_MS=500 ./build/bench/tab01_datasets
      continue
      ;;
    *) echo "unknown flag $flag"; exit 1 ;;
  esac
  echo "== ${SAN} sanitizer =="
  cmake -B "build-${SAN}" -G Ninja -DTDFS_SANITIZE="${SAN}" >/dev/null
  for t in task_queue_test page_allocator_test atomics_test \
           scheduler_test match_sink_test failpoint_test resilience_test \
           dfs_engine_test; do
    cmake --build "build-${SAN}" --target "$t"
  done
  for t in task_queue_test page_allocator_test atomics_test \
           scheduler_test match_sink_test failpoint_test resilience_test; do
    "./build-${SAN}/tests/$t"
  done
  # One engine correctness pass under the sanitizer (subset: fast cases).
  "./build-${SAN}/tests/dfs_engine_test" \
      --gtest_filter='TdfsEngineTest.MatchesOracleOnRandomGraph:TdfsEngineTest.TinyVirtualTimeout*'
done

echo "ALL CHECKS PASSED"
