#include "apps/kclique.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/degeneracy.h"
#include "queue/task_queue.h"
#include "util/intersect.h"
#include "util/timer.h"
#include "vgpu/atomics.h"
#include "vgpu/scheduler.h"

namespace tdfs {

namespace {

constexpr int64_t kIdleSleepNanos = 20'000;

struct CliqueShared {
  const OrientedGraph* oriented = nullptr;
  const EngineConfig* config = nullptr;
  int k = 0;
  std::unique_ptr<TaskQueue> queue;
  std::atomic<int64_t> vertex_cursor{0};
  std::atomic<int64_t> work_items{0};
  std::atomic<uint64_t> cliques{0};
  int64_t deadline_ns = 0;
  std::atomic<bool> expired{false};
  std::mutex counters_mu;
  RunCounters counters;
};

// One warp: DFS over clique prefixes. Level d holds the candidate set
// C_d = common out-neighborhood of the current prefix of size d.
class CliqueWarp {
 public:
  explicit CliqueWarp(CliqueShared* shared)
      : shared_(*shared),
        g_(*shared->oriented),
        k_(shared->k),
        stacks_(k_ + 1),
        prefix_(k_, -1) {}

  void Run() {
    while (true) {
      if (shared_.config->steal == StealStrategy::kTimeout) {
        Task task;
        if (shared_.queue->Dequeue(&task)) {
          ++local_.tasks_dequeued;
          ProcessTask(task);
          shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
      }
      const int64_t begin = TakeChunk();
      if (begin >= 0) {
        ProcessChunk(begin);
        shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (shared_.work_items.load(std::memory_order_acquire) == 0 ||
          shared_.expired.load(std::memory_order_relaxed)) {
        break;
      }
      vgpu::Nanosleep(kIdleSleepNanos);
    }
    Finish();
  }

 private:
  bool DeadlineHit() {
    if (shared_.deadline_ns == 0) {
      return false;
    }
    if ((++deadline_probe_ & 0x3FF) == 0 &&
        Timer::Now() > shared_.deadline_ns) {
      shared_.expired.store(true, std::memory_order_relaxed);
    }
    return shared_.expired.load(std::memory_order_relaxed);
  }

  int64_t TakeChunk() {
    shared_.work_items.fetch_add(1, std::memory_order_acq_rel);
    const int64_t begin = shared_.vertex_cursor.fetch_add(
        shared_.config->chunk_size, std::memory_order_acq_rel);
    if (begin >= g_.NumVertices()) {
      shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
      return -1;
    }
    return begin;
  }

  void ResetClock() {
    if (shared_.config->clock == ClockKind::kWall) {
      t0_ns_ = Timer::Now();
    } else {
      t0_work_ = work_.units;
    }
  }

  bool TimedOut() const {
    if (shared_.config->steal != StealStrategy::kTimeout) {
      return false;
    }
    if (shared_.config->clock == ClockKind::kWall) {
      return Timer::Now() - t0_ns_ >
             static_cast<int64_t>(shared_.config->timeout_ms * 1e6);
    }
    return work_.units - t0_work_ > shared_.config->timeout_work_units;
  }

  void ProcessChunk(int64_t begin) {
    const int64_t end = std::min<int64_t>(
        begin + shared_.config->chunk_size, g_.NumVertices());
    ResetClock();
    for (int64_t i = begin; i < end; ++i) {
      const VertexId v = static_cast<VertexId>(i);
      if (g_.OutDegree(v) < k_ - 1) {
        continue;  // cannot head a k-clique
      }
      prefix_[0] = v;
      // C_1 = out-neighbors of v.
      VertexSpan out = g_.OutNeighbors(v);
      stacks_[1].assign(out.begin(), out.end());
      Explore(1, /*decomposable=*/true);
      if (TimedOut() && i + 1 < end) {
        // Flush the rest of the chunk as 1-vertex tasks <v', -2, -2>? The
        // queue holds 2-or-3-vertex tasks; re-enqueue as (v', u) pairs is
        // the decomposition below. Cheaper: just keep processing — vertex
        // roots are already the finest initial granularity.
        ResetClock();
      }
    }
  }

  void ProcessTask(const Task& task) {
    ResetClock();
    prefix_[0] = task.v1;
    prefix_[1] = task.v2;
    std::vector<VertexId>& c2 = stacks_[2];
    c2.clear();
    IntersectAuto(g_.OutNeighbors(task.v1), g_.OutNeighbors(task.v2), &c2,
                  &work_);
    if (!task.HasThird()) {
      Explore(2, /*decomposable=*/true);
      return;
    }
    prefix_[2] = task.v3;
    std::vector<VertexId>& c3 = stacks_[3];
    c3.clear();
    IntersectAuto(VertexSpan(c2), g_.OutNeighbors(task.v3), &c3, &work_);
    Explore(3, /*decomposable=*/false);
  }

  // Counts k-cliques extending prefix_[0..depth) whose candidate set
  // (common out-neighborhood) is stacks_[depth]. Decomposition mirrors
  // Alg. 4: when a straggler times out at depth <= 2, the remaining
  // candidates become queue tasks.
  void Explore(int depth, bool decomposable) {
    std::vector<VertexId>& candidates = stacks_[depth];
    work_.Add(candidates.size());
    if (depth == k_ - 1) {
      cliques_ += candidates.size();
      return;
    }
    if (static_cast<int>(candidates.size()) + depth < k_) {
      return;  // not enough vertices left
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (DeadlineHit()) {
        return;
      }
      if (decomposable && depth <= 2 && TimedOut()) {
        // Enqueue the remaining branches as (depth+1)-vertex tasks.
        bool queued_all = true;
        for (size_t j = i; j < candidates.size(); ++j) {
          Task task{prefix_[0],
                    depth >= 2 ? prefix_[1] : candidates[j],
                    depth >= 2 ? candidates[j] : kNoThirdVertex};
          shared_.work_items.fetch_add(1, std::memory_order_acq_rel);
          if (!shared_.queue->Enqueue(task)) {
            shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
            ++local_.queue_full_failures;
            queued_all = false;
            i = j;  // resume in place from this branch
            ResetClock();
            break;
          }
          ++local_.tasks_enqueued;
        }
        if (queued_all) {
          ++local_.timeout_splits;
          return;
        }
      }
      prefix_[depth] = candidates[i];
      std::vector<VertexId>& next = stacks_[depth + 1];
      next.clear();
      IntersectAuto(VertexSpan(candidates), g_.OutNeighbors(candidates[i]),
                    &next, &work_);
      Explore(depth + 1, decomposable && depth + 1 <= 2);
    }
  }

  void Finish() {
    shared_.cliques.fetch_add(cliques_, std::memory_order_relaxed);
    local_.work_units += work_.units;
    local_.max_warp_work_units = local_.work_units;
    std::lock_guard<std::mutex> lock(shared_.counters_mu);
    shared_.counters.MergeFrom(local_);
  }

  CliqueShared& shared_;
  const OrientedGraph& g_;
  const int k_;
  std::vector<std::vector<VertexId>> stacks_;
  std::vector<VertexId> prefix_;
  WorkCounter work_;
  uint64_t cliques_ = 0;
  RunCounters local_;
  int64_t t0_ns_ = 0;
  uint64_t t0_work_ = 0;
  uint32_t deadline_probe_ = 0;
};

uint64_t CountRef(const OrientedGraph& g, std::vector<VertexId>* prefix,
                  const std::vector<VertexId>& candidates, int depth,
                  int k) {
  if (depth == k - 1) {
    return candidates.size();
  }
  uint64_t total = 0;
  for (VertexId v : candidates) {
    std::vector<VertexId> next;
    IntersectMerge(VertexSpan(candidates), g.OutNeighbors(v), &next);
    prefix->push_back(v);
    total += CountRef(g, prefix, next, depth + 1, k);
    prefix->pop_back();
  }
  return total;
}

}  // namespace

RunResult CountKCliques(const Graph& graph, int k,
                        const EngineConfig& config) {
  RunResult result;
  if (k < 2) {
    result.status = Status::InvalidArgument("k must be >= 2");
    return result;
  }
  if (config.steal != StealStrategy::kTimeout &&
      config.steal != StealStrategy::kNone) {
    result.status = Status::InvalidArgument(
        "k-clique counting supports timeout or no stealing");
    return result;
  }
  Timer total_timer;
  Timer preprocess_timer;
  OrientedGraph oriented(graph);
  result.counters.preprocess_ms = preprocess_timer.ElapsedMillis();

  CliqueShared shared;
  shared.oriented = &oriented;
  shared.config = &config;
  shared.k = k;
  if (config.steal == StealStrategy::kTimeout) {
    shared.queue = std::make_unique<TaskQueue>(config.queue_capacity_ints);
  }
  if (config.max_run_ms > 0) {
    shared.deadline_ns =
        Timer::Now() + static_cast<int64_t>(config.max_run_ms * 1e6);
  }

  Timer match_timer;
  std::vector<std::unique_ptr<CliqueWarp>> warps;
  warps.reserve(config.num_warps);
  for (int w = 0; w < config.num_warps; ++w) {
    warps.push_back(std::make_unique<CliqueWarp>(&shared));
  }
  vgpu::LaunchKernel(config.num_warps,
                     [&warps](int warp_id) { warps[warp_id]->Run(); });
  result.match_ms = match_timer.ElapsedMillis();

  result.match_count = shared.cliques.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shared.counters_mu);
    RunCounters merged = shared.counters;
    merged.preprocess_ms += result.counters.preprocess_ms;
    result.counters = merged;
  }
  if (shared.queue != nullptr) {
    result.counters.queue_peak_tasks = shared.queue->PeakSizeInts() / 3;
  }
  if (shared.expired.load(std::memory_order_relaxed)) {
    result.status = Status::DeadlineExceeded("k-clique counting aborted");
  }
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

uint64_t CountKCliquesRef(const Graph& graph, int k) {
  TDFS_CHECK(k >= 2);
  OrientedGraph oriented(graph);
  uint64_t total = 0;
  std::vector<VertexId> prefix;
  for (VertexId v = 0; v < oriented.NumVertices(); ++v) {
    VertexSpan out = oriented.OutNeighbors(v);
    std::vector<VertexId> candidates(out.begin(), out.end());
    prefix.assign(1, v);
    total += CountRef(oriented, &prefix, candidates, 1, k);
  }
  return total;
}

}  // namespace tdfs
