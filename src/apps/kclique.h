// k-clique counting on the T-DFS substrate.
//
// The paper's first three techniques (timeout decomposition, the lock-free
// task queue, paged stacks) are "general for depth-first subgraph search on
// GPUs, not just limited to ... subgraph matching" (Section I; refs [20],
// [21] apply the warp-DFS paradigm to clique problems). This application
// substantiates that: k-clique counting with the classic
// degeneracy-oriented DFS — each warp extends cliques along out-neighbors
// in the orientation (so each clique is counted exactly once, no symmetry
// restrictions needed), stragglers decompose through the same TaskQueue
// with the same <= 3-vertex task format, and candidates live in the same
// per-warp stacks.

#ifndef TDFS_APPS_KCLIQUE_H_
#define TDFS_APPS_KCLIQUE_H_

#include "core/config.h"
#include "core/result.h"
#include "graph/graph.h"

namespace tdfs {

/// Counts k-cliques (k >= 2) with warp-DFS over the degeneracy
/// orientation. Honors config.{num_warps, chunk_size, steal(kTimeout/
/// kNone), timeout, queue, clock, max_run_ms}.
RunResult CountKCliques(const Graph& graph, int k,
                        const EngineConfig& config = TdfsConfig());

/// Serial reference counter (oracle for tests).
uint64_t CountKCliquesRef(const Graph& graph, int k);

}  // namespace tdfs

#endif  // TDFS_APPS_KCLIQUE_H_
