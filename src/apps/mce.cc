#include "apps/mce.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/degeneracy.h"
#include "queue/task_queue.h"
#include "util/intersect.h"
#include "util/timer.h"
#include "vgpu/atomics.h"
#include "vgpu/scheduler.h"

namespace tdfs {

namespace {

constexpr int64_t kIdleSleepNanos = 20'000;

struct MceShared {
  const Graph* graph = nullptr;
  const OrientedGraph* oriented = nullptr;
  const EngineConfig* config = nullptr;
  std::unique_ptr<TaskQueue> queue;
  std::atomic<int64_t> vertex_cursor{0};
  std::atomic<int64_t> work_items{0};
  std::atomic<uint64_t> cliques{0};
  int64_t deadline_ns = 0;
  std::atomic<bool> expired{false};
  std::mutex counters_mu;
  RunCounters counters;
};

class MceWarp {
 public:
  explicit MceWarp(MceShared* shared)
      : shared_(*shared), graph_(*shared->graph), g_(*shared->oriented) {}

  void Run() {
    while (true) {
      if (shared_.config->steal == StealStrategy::kTimeout) {
        Task task;
        if (shared_.queue->Dequeue(&task)) {
          ++local_.tasks_dequeued;
          ProcessTask(task);
          shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
      }
      const int64_t begin = TakeChunk();
      if (begin >= 0) {
        ProcessChunk(begin);
        shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (shared_.work_items.load(std::memory_order_acquire) == 0 ||
          shared_.expired.load(std::memory_order_relaxed)) {
        break;
      }
      vgpu::Nanosleep(kIdleSleepNanos);
    }
    Finish();
  }

 private:
  using Vec = std::vector<VertexId>;

  bool DeadlineHit() {
    if (shared_.deadline_ns == 0) {
      return false;
    }
    if ((++deadline_probe_ & 0x3FF) == 0 &&
        Timer::Now() > shared_.deadline_ns) {
      shared_.expired.store(true, std::memory_order_relaxed);
    }
    return shared_.expired.load(std::memory_order_relaxed);
  }

  int64_t TakeChunk() {
    shared_.work_items.fetch_add(1, std::memory_order_acq_rel);
    const int64_t begin = shared_.vertex_cursor.fetch_add(
        shared_.config->chunk_size, std::memory_order_acq_rel);
    if (begin >= graph_.NumVertices()) {
      shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
      return -1;
    }
    return begin;
  }

  void ResetClock() {
    if (shared_.config->clock == ClockKind::kWall) {
      t0_ns_ = Timer::Now();
    } else {
      t0_work_ = work_.units;
    }
  }

  bool TimedOut() const {
    if (shared_.config->steal != StealStrategy::kTimeout) {
      return false;
    }
    if (shared_.config->clock == ClockKind::kWall) {
      return Timer::Now() - t0_ns_ >
             static_cast<int64_t>(shared_.config->timeout_ms * 1e6);
    }
    return work_.units - t0_work_ > shared_.config->timeout_work_units;
  }

  // (P, X) of a prefix built by ascending-id iteration at the unpivoted
  // top levels: P = commonNbrs ∩ laterInDegeneracyOrder(prefix[0]) ∩
  // {id > id(last prefix vertex)}; X = commonNbrs \ P.
  void BuildPrefixSets(const Vec& prefix, Vec* p, Vec* x) {
    Vec common(graph_.Neighbors(prefix[0]).begin(),
               graph_.Neighbors(prefix[0]).end());
    for (size_t i = 1; i < prefix.size(); ++i) {
      Vec next;
      IntersectAuto(VertexSpan(common), graph_.Neighbors(prefix[i]), &next,
                    &work_);
      common = std::move(next);
    }
    p->clear();
    x->clear();
    const int64_t root_pos = g_.OrderPosition(prefix[0]);
    const VertexId min_id =
        prefix.size() > 1 ? prefix.back() : kEmptySlot;  // -1 if none
    for (VertexId w : common) {
      if (g_.OrderPosition(w) > root_pos && w > min_id) {
        p->push_back(w);
      } else {
        x->push_back(w);
      }
    }
    // X must be sorted for the intersection chains below; the partition of
    // a sorted `common` keeps both halves sorted already.
    work_.Add(common.size());
  }

  void ProcessChunk(int64_t begin) {
    const int64_t end = std::min<int64_t>(
        begin + shared_.config->chunk_size, graph_.NumVertices());
    ResetClock();
    for (int64_t i = begin; i < end; ++i) {
      if (DeadlineHit()) {
        return;
      }
      const VertexId v = static_cast<VertexId>(i);
      Vec prefix = {v};
      Vec p;
      Vec x;
      BuildPrefixSets(prefix, &p, &x);
      ExploreTopLevel(prefix, p, x, /*decomposable=*/true);
    }
  }

  void ProcessTask(const Task& task) {
    ResetClock();
    Vec prefix = {task.v1, task.v2};
    if (task.HasThird()) {
      prefix.push_back(task.v3);
    }
    Vec p;
    Vec x;
    BuildPrefixSets(prefix, &p, &x);
    if (!task.HasThird() && prefix.size() == 2) {
      ExploreTopLevel(prefix, p, x, /*decomposable=*/true);
    } else {
      BkPivot(p, x);
    }
  }

  // Unpivoted ascending-id iteration at prefix sizes 1 and 2, so that the
  // remaining branches are expressible as <= 3-int queue tasks when the
  // warp times out.
  void ExploreTopLevel(Vec& prefix, Vec& p, Vec& x, bool decomposable) {
    if (p.empty() && x.empty()) {
      ++cliques_;  // prefix itself is maximal
      return;
    }
    // p is sorted ascending by id (subset of sorted lists).
    for (size_t i = 0; i < p.size(); ++i) {
      if (DeadlineHit()) {
        return;
      }
      if (decomposable && prefix.size() <= 2 && TimedOut()) {
        bool queued_all = true;
        for (size_t j = i; j < p.size(); ++j) {
          Task task = prefix.size() == 1
                          ? Task{prefix[0], p[j], kNoThirdVertex}
                          : Task{prefix[0], prefix[1], p[j]};
          shared_.work_items.fetch_add(1, std::memory_order_acq_rel);
          if (!shared_.queue->Enqueue(task)) {
            shared_.work_items.fetch_sub(1, std::memory_order_acq_rel);
            ++local_.queue_full_failures;
            queued_all = false;
            i = j;
            ResetClock();
            break;
          }
          ++local_.tasks_enqueued;
        }
        if (queued_all) {
          ++local_.timeout_splits;
          return;
        }
      }
      const VertexId branch = p[i];
      Vec p_next;
      Vec x_next;
      IntersectAuto(VertexSpan(p).subspan(i + 1),
                    graph_.Neighbors(branch), &p_next, &work_);
      // X of the branch: all common neighbors not in p_next = (X ∪
      // processed P) ∩ N(branch).
      Vec processed(p.begin(), p.begin() + static_cast<int64_t>(i));
      Vec x_candidates;
      IntersectAuto(VertexSpan(x), graph_.Neighbors(branch), &x_candidates,
                    &work_);
      Vec processed_in;
      IntersectAuto(VertexSpan(processed), graph_.Neighbors(branch),
                    &processed_in, &work_);
      x_next.resize(x_candidates.size() + processed_in.size());
      std::merge(x_candidates.begin(), x_candidates.end(),
                 processed_in.begin(), processed_in.end(), x_next.begin());
      prefix.push_back(branch);
      if (prefix.size() <= 2) {
        ExploreTopLevel(prefix, p_next, x_next, decomposable);
      } else {
        BkPivot(p_next, x_next);
      }
      prefix.pop_back();
    }
  }

  // Classic Bron-Kerbosch with Tomita pivoting below the decomposable
  // levels. Only counts; prefix identity no longer matters.
  void BkPivot(Vec& p, Vec& x) {
    if (p.empty()) {
      if (x.empty()) {
        ++cliques_;
      }
      return;
    }
    if (DeadlineHit()) {
      return;
    }
    // Pivot: vertex of P ∪ X with the most neighbors in P.
    VertexId pivot = -1;
    size_t best = 0;
    bool first = true;
    for (const Vec* side : {&p, &x}) {
      for (VertexId candidate : *side) {
        const size_t overlap = IntersectCount(
            VertexSpan(p), graph_.Neighbors(candidate), &work_);
        if (first || overlap > best) {
          pivot = candidate;
          best = overlap;
          first = false;
        }
      }
    }
    Vec branches;
    DifferenceMerge(VertexSpan(p), graph_.Neighbors(pivot), &branches,
                    &work_);
    for (VertexId u : branches) {
      Vec p_next;
      Vec x_next;
      IntersectAuto(VertexSpan(p), graph_.Neighbors(u), &p_next, &work_);
      IntersectAuto(VertexSpan(x), graph_.Neighbors(u), &x_next, &work_);
      BkPivot(p_next, x_next);
      // Move u from P to X (both stay sorted).
      p.erase(std::lower_bound(p.begin(), p.end(), u));
      x.insert(std::lower_bound(x.begin(), x.end(), u), u);
    }
  }

  void Finish() {
    shared_.cliques.fetch_add(cliques_, std::memory_order_relaxed);
    local_.work_units += work_.units;
    local_.max_warp_work_units = local_.work_units;
    std::lock_guard<std::mutex> lock(shared_.counters_mu);
    shared_.counters.MergeFrom(local_);
  }

  MceShared& shared_;
  const Graph& graph_;
  const OrientedGraph& g_;
  WorkCounter work_;
  uint64_t cliques_ = 0;
  RunCounters local_;
  int64_t t0_ns_ = 0;
  uint64_t t0_work_ = 0;
  uint32_t deadline_probe_ = 0;
};

// Serial reference: plain BK with pivoting from (R = {}, P = V, X = {}).
class RefBk {
 public:
  RefBk(const Graph& graph,
        const std::function<void(std::span<const VertexId>)>& visitor)
      : graph_(graph), visitor_(visitor) {}

  uint64_t Run() {
    std::vector<VertexId> p(graph_.NumVertices());
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      p[v] = v;
    }
    std::vector<VertexId> x;
    Recurse(p, x);
    return count_;
  }

 private:
  using Vec = std::vector<VertexId>;

  void Recurse(Vec& p, Vec& x) {
    if (p.empty()) {
      if (x.empty()) {
        ++count_;
        if (visitor_) {
          visitor_(std::span<const VertexId>(r_));
        }
      }
      return;
    }
    VertexId pivot = -1;
    size_t best = 0;
    bool first = true;
    for (const Vec* side : {&p, &x}) {
      for (VertexId candidate : *side) {
        const size_t overlap =
            IntersectCount(VertexSpan(p), graph_.Neighbors(candidate));
        if (first || overlap > best) {
          pivot = candidate;
          best = overlap;
          first = false;
        }
      }
    }
    Vec branches;
    DifferenceMerge(VertexSpan(p), graph_.Neighbors(pivot), &branches);
    for (VertexId u : branches) {
      Vec p_next;
      Vec x_next;
      IntersectMerge(VertexSpan(p), graph_.Neighbors(u), &p_next);
      IntersectMerge(VertexSpan(x), graph_.Neighbors(u), &x_next);
      r_.push_back(u);
      Recurse(p_next, x_next);
      r_.pop_back();
      p.erase(std::lower_bound(p.begin(), p.end(), u));
      x.insert(std::lower_bound(x.begin(), x.end(), u), u);
    }
  }

  const Graph& graph_;
  const std::function<void(std::span<const VertexId>)>& visitor_;
  std::vector<VertexId> r_;
  uint64_t count_ = 0;
};

}  // namespace

RunResult CountMaximalCliques(const Graph& graph,
                              const EngineConfig& config) {
  RunResult result;
  if (config.steal != StealStrategy::kTimeout &&
      config.steal != StealStrategy::kNone) {
    result.status = Status::InvalidArgument(
        "maximal clique enumeration supports timeout or no stealing");
    return result;
  }
  Timer total_timer;
  Timer preprocess_timer;
  OrientedGraph oriented(graph);
  result.counters.preprocess_ms = preprocess_timer.ElapsedMillis();

  MceShared shared;
  shared.graph = &graph;
  shared.oriented = &oriented;
  shared.config = &config;
  if (config.steal == StealStrategy::kTimeout) {
    shared.queue = std::make_unique<TaskQueue>(config.queue_capacity_ints);
  }
  if (config.max_run_ms > 0) {
    shared.deadline_ns =
        Timer::Now() + static_cast<int64_t>(config.max_run_ms * 1e6);
  }

  Timer match_timer;
  std::vector<std::unique_ptr<MceWarp>> warps;
  warps.reserve(config.num_warps);
  for (int w = 0; w < config.num_warps; ++w) {
    warps.push_back(std::make_unique<MceWarp>(&shared));
  }
  vgpu::LaunchKernel(config.num_warps,
                     [&warps](int warp_id) { warps[warp_id]->Run(); });
  result.match_ms = match_timer.ElapsedMillis();

  result.match_count = shared.cliques.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shared.counters_mu);
    RunCounters merged = shared.counters;
    merged.preprocess_ms += result.counters.preprocess_ms;
    result.counters = merged;
  }
  if (shared.queue != nullptr) {
    result.counters.queue_peak_tasks = shared.queue->PeakSizeInts() / 3;
  }
  if (shared.expired.load(std::memory_order_relaxed)) {
    result.status = Status::DeadlineExceeded("MCE aborted");
  }
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

uint64_t CountMaximalCliquesRef(
    const Graph& graph,
    const std::function<void(std::span<const VertexId>)>& visitor) {
  RefBk bk(graph, visitor);
  return bk.Run();
}

}  // namespace tdfs
