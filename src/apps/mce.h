// Maximal clique enumeration on the T-DFS substrate.
//
// Bron-Kerbosch with Tomita pivoting, parallelized the way [21] and this
// paper's framework prescribe: each warp owns a subtree of the BK
// recursion, initial tasks are the vertices in degeneracy order (P = later
// ordered neighbors, X = earlier ones), and straggler subtrees decompose
// through the same lock-free task queue. To keep queue tasks within the
// paper's <= 3-int format, the top two recursion levels iterate their
// candidate sets in ascending-id order *without* pivoting — which makes a
// branch's (P, X) reconstructible from the 2- or 3-vertex prefix alone —
// and deeper levels pivot as usual.

#ifndef TDFS_APPS_MCE_H_
#define TDFS_APPS_MCE_H_

#include <functional>

#include "core/config.h"
#include "core/result.h"
#include "graph/graph.h"

namespace tdfs {

/// Counts maximal cliques. Honors config.{num_warps, chunk_size,
/// steal(kTimeout/kNone), timeout, queue, clock, max_run_ms}.
RunResult CountMaximalCliques(const Graph& graph,
                              const EngineConfig& config = TdfsConfig());

/// Serial reference (Bron-Kerbosch with pivoting, no ordering tricks);
/// optional visitor receives each maximal clique (sorted by id).
uint64_t CountMaximalCliquesRef(
    const Graph& graph,
    const std::function<void(std::span<const VertexId>)>& visitor = nullptr);

}  // namespace tdfs

#endif  // TDFS_APPS_MCE_H_
