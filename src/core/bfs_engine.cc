#include "core/bfs_engine.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "core/candidates.h"
#include "query/candidate_filter.h"
#include "graph/hub_bitmap.h"
#include "mem/memory_governor.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "vgpu/scheduler.h"

namespace tdfs {

namespace {

// Rows processed per parallel grab.
constexpr int64_t kRowBlock = 256;

// One level of materialized partial matches: row-major, `width` vertices
// per row.
struct Level {
  int width = 0;
  std::vector<VertexId> rows;

  int64_t NumRows() const {
    return width == 0 ? 0 : static_cast<int64_t>(rows.size()) / width;
  }
  int64_t Bytes() const {
    return static_cast<int64_t>(rows.size()) * sizeof(VertexId);
  }
  const VertexId* Row(int64_t r) const { return rows.data() + r * width; }
};

// Runs fn(row_index) over [begin, end) with num_warps workers. Stops early
// (leaving rows unprocessed) once the deadline passes; the caller reports
// kDeadlineExceeded, so partial work is never mistaken for a result.
void ParallelRows(int num_warps, int64_t begin, int64_t end,
                  int64_t deadline_ns,
                  const std::function<void(int, int64_t)>& fn) {
  std::atomic<int64_t> cursor{begin};
  vgpu::LaunchKernel(num_warps, [&](int warp_id) {
    while (true) {
      if (deadline_ns > 0 && Timer::Now() > deadline_ns) {
        return;
      }
      const int64_t b = cursor.fetch_add(kRowBlock);
      if (b >= end) {
        return;
      }
      const int64_t e = std::min(b + kRowBlock, end);
      for (int64_t r = b; r < e; ++r) {
        fn(warp_id, r);
      }
    }
  });
}

}  // namespace

RunResult RunBfsEngine(const Graph& graph, const MatchPlan& plan,
                       const EngineConfig& config) {
  RunResult result;
  for (int pos = 0; pos < plan.num_vertices; ++pos) {
    TDFS_CHECK_MSG(plan.reuse_source[pos] < 0,
                   "BFS engine requires a plan compiled without reuse");
  }
  Timer total_timer;
  const int64_t deadline_ns =
      config.max_run_ms > 0
          ? Timer::Now() + static_cast<int64_t>(config.max_run_ms * 1e6)
          : 0;
  const int k = plan.num_vertices;
  RunCounters counters;

  // Level 2: the filtered initial edges.
  std::vector<std::unique_ptr<Level>> levels;
  auto edge_level = std::make_unique<Level>();
  edge_level->width = 2;
  const int64_t num_directed = graph.NumDirectedEdges();
  for (int64_t e = 0; e < num_directed; ++e) {
    const VertexId v0 = graph.EdgeSource(e);
    const VertexId v1 = graph.EdgeTarget(e);
    ++counters.edges_scanned;
    if (PassesEdgeFilter(plan, graph, v0, v1, config.use_degree_filter) &&
        PrefilterAdmitsEdge(config.prefiltered, plan.order[0], plan.order[1],
                            v0, v1)) {
      edge_level->rows.push_back(v0);
      edge_level->rows.push_back(v1);
      ++counters.initial_tasks;
    }
  }
  levels.push_back(std::move(edge_level));

  if (k == 2) {
    result.match_count =
        static_cast<uint64_t>(levels.back()->NumRows());
    result.match_ms = total_timer.ElapsedMillis();
    result.total_ms = result.match_ms;
    result.counters = counters;
    return result;
  }

  std::atomic<uint64_t> matches{0};
  int64_t peak_bytes = levels.back()->Bytes();
  int64_t batches = 0;

  // Intersection backend (BFS fetches plain CSR rows, so bitmaps are keyed
  // by full adjacency — no label index here).
  HubBitmapIndex bitmaps;
  if (UsesHubBitmaps(config.intersect)) {
    bitmaps = HubBitmapIndex::Build(graph, nullptr, config.bitmap_min_degree);
  }
  const StepDispatchTable steps(plan, config.intersect, &bitmaps);

  // Per-warp scratch (ComputeCandidates ping-pong buffers, prefix copies,
  // and work meters).
  std::vector<CandidateScratch> scratch(config.num_warps);
  std::vector<std::vector<VertexId>> cand(config.num_warps);
  std::vector<std::vector<VertexId>> match_buf(
      config.num_warps, std::vector<VertexId>(k, -1));
  std::vector<WorkCounter> work_buf(config.num_warps);
  auto row_match = [&](int w) -> std::vector<VertexId>& {
    return match_buf[w];
  };
  auto work = [&](int w) -> WorkCounter& { return work_buf[w]; };

  // One trace track for the whole BFS pipeline (the batching loop is
  // host-driven; per-warp timelines would only show the row cursor). The
  // track's clock is the job's cumulative work, advanced at batch ends.
  WorkCounter bfs_clock;
  obs::WarpTracer tracer;
  obs::Histogram* h_batch_rows = nullptr;
  if (config.trace != nullptr) {
    tracer = obs::WarpTracer(config.trace, 0, "bfs", &bfs_clock);
    h_batch_rows = config.trace->metrics()->GetHistogram("bfs.batch_rows");
  }

  auto resident_bytes = [&levels]() {
    int64_t bytes = 0;
    for (const auto& level : levels) {
      bytes += level->Bytes();
    }
    return bytes;
  };

  for (int pos = 2; pos < k; ++pos) {
    const Level& cur = *levels.back();
    const int64_t num_rows = cur.NumRows();
    const bool last = pos == k - 1;
    auto next = std::make_unique<Level>();
    next->width = pos + 1;

    // Upper bound of a row's fanout: its smallest backward neighbor list
    // (the pre-intersection estimate PBE batches with).
    auto row_bound = [&](int64_t r) {
      const VertexId* row = cur.Row(r);
      int64_t bound = std::numeric_limits<int64_t>::max();
      for (int b : plan.backward[pos]) {
        bound = std::min(bound, graph.Degree(row[b]));
      }
      return bound;
    };

    auto deadline_exceeded = [&]() {
      if (deadline_ns == 0 || Timer::Now() <= deadline_ns) {
        return false;
      }
      result.status = Status::DeadlineExceeded(
          "BFS matching aborted after " + std::to_string(config.max_run_ms) +
          " ms; partial count");
      result.match_count = matches.load(std::memory_order_relaxed);
      result.match_ms = total_timer.ElapsedMillis();
      result.total_ms = result.match_ms;
      result.counters = counters;
      return true;
    };

    int64_t row = 0;
    while (row < num_rows) {
      if (deadline_exceeded()) {
        return result;
      }
      // Cut a batch whose *estimated* extension fits the remaining budget.
      // Governor pressure (other runs filling the device) derates the
      // budget before each level is materialized — exact, just more and
      // smaller batches.
      const int64_t effective_budget =
          MemoryGovernor::Resolve(config.governor)
              ->DeratedBudget(config.bfs_memory_budget_bytes);
      if (effective_budget != config.bfs_memory_budget_bytes &&
          tracer.enabled()) {
        tracer.Event(obs::TraceEvent::kMemPressure,
                     static_cast<int64_t>(MemoryGovernor::Resolve(
                                              config.governor)
                                              ->Pressure()));
      }
      const int64_t budget_left = std::max<int64_t>(
          effective_budget - resident_bytes() - next->Bytes(), 0);
      int64_t batch_end = row;
      int64_t est_bytes = 0;
      while (batch_end < num_rows) {
        const int64_t add =
            row_bound(batch_end) * next->width * static_cast<int64_t>(
                                                     sizeof(VertexId));
        if (batch_end > row && est_bytes + add > budget_left) {
          break;
        }
        est_bytes += add;
        ++batch_end;
      }
      ++batches;

      // Pass 1 (count): exact number of valid extensions per row.
      std::vector<int64_t> counts(batch_end - row, 0);
      ParallelRows(config.num_warps, row, batch_end, deadline_ns,
                   [&](int w, int64_t r) {
        const VertexId* prefix = cur.Row(r);
        std::copy(prefix, prefix + cur.width, row_match(w).begin());
        ComputeCandidates(
            graph, nullptr, plan, row_match(w).data(), pos, steps.At(pos),
            &scratch[w], &cand[w], &work(w));
        int64_t n = 0;
        for (VertexId v : cand[w]) {
          work(w).Add(1);
          if (PrefilterAdmits(config.prefiltered, plan.order[pos], v) &&
              PassesConsumeChecks(plan, graph, row_match(w).data(), pos, v,
                                  config.use_degree_filter)) {
            ++n;
          }
        }
        counts[r - row] = n;
      });

      if (last) {
        uint64_t found = 0;
        for (int64_t c : counts) {
          found += static_cast<uint64_t>(c);
        }
        matches.fetch_add(found, std::memory_order_relaxed);
      } else {
        // Exact allocation, then pass 2 (fill): recompute and write — the
        // deliberate redundant pass of PBE's tight-allocation scheme.
        std::vector<int64_t> offsets(counts.size() + 1, 0);
        std::partial_sum(counts.begin(), counts.end(), offsets.begin() + 1);
        const int64_t base_row = next->NumRows();
        next->rows.resize((base_row + offsets.back()) * next->width);
        ParallelRows(
            config.num_warps, row, batch_end, deadline_ns,
            [&](int w, int64_t r) {
              const VertexId* prefix = cur.Row(r);
              std::copy(prefix, prefix + cur.width, row_match(w).begin());
              ComputeCandidates(
                  graph, nullptr, plan, row_match(w).data(), pos, steps.At(pos),
                  &scratch[w], &cand[w], &work(w));
              int64_t out = (base_row + offsets[r - row]) * next->width;
              for (VertexId v : cand[w]) {
                work(w).Add(1);
                if (!PrefilterAdmits(config.prefiltered, plan.order[pos], v) ||
                    !PassesConsumeChecks(plan, graph, row_match(w).data(),
                                         pos, v,
                                         config.use_degree_filter)) {
                  continue;
                }
                for (int p = 0; p < cur.width; ++p) {
                  next->rows[out + p] = prefix[p];
                }
                next->rows[out + cur.width] = v;
                out += next->width;
              }
            });
      }
      peak_bytes = std::max(peak_bytes, resident_bytes() + next->Bytes());
      if (tracer.enabled()) {
        uint64_t total = 0;
        for (const WorkCounter& w : work_buf) {
          total += w.units;
        }
        bfs_clock.Add(total - bfs_clock.units);
        tracer.Event(obs::TraceEvent::kBfsBatch, batch_end - row);
      }
      obs::Observe(h_batch_rows, batch_end - row);
      row = batch_end;
    }
    if (deadline_exceeded()) {  // a ParallelRows pass may have aborted
      return result;
    }
    if (!last) {
      levels.push_back(std::move(next));
    }
  }

  result.match_count = matches.load(std::memory_order_relaxed);
  result.match_ms = total_timer.ElapsedMillis();
  result.total_ms = result.match_ms;
  counters.bfs_batches = batches;
  counters.bfs_peak_bytes = peak_bytes;
  for (const WorkCounter& w : work_buf) {
    counters.work_units += w.units;
    counters.max_warp_work_units =
        std::max(counters.max_warp_work_units, w.units);
  }
  result.counters = counters;
  return result;
}

}  // namespace tdfs
