// Breadth-first (level-synchronous) matching engine — the PBE baseline [29].
//
// Partial matches are materialized one query position at a time. Before
// extending, the engine estimates an upper bound on the next level's size
// (the smallest backward neighbor list per row) and cuts the current level
// into batches that fit the device-memory budget; each batch is then
// extended with PBE's two-pass scheme — a counting pass for exact
// allocation followed by a fill pass that recomputes the same candidates —
// which is the redundant-computation overhead the paper describes in
// Section II. All prior levels are kept resident (PBE's prefix tree), so
// peak memory is the sum of level footprints.

#ifndef TDFS_CORE_BFS_ENGINE_H_
#define TDFS_CORE_BFS_ENGINE_H_

#include "core/config.h"
#include "core/result.h"
#include "graph/graph.h"
#include "query/plan.h"

namespace tdfs {

/// Runs BFS matching. The plan must have reuse disabled (PBE has no
/// per-path stack to reuse from); CompilePlan with use_reuse = false.
RunResult RunBfsEngine(const Graph& graph, const MatchPlan& plan,
                       const EngineConfig& config);

}  // namespace tdfs

#endif  // TDFS_CORE_BFS_ENGINE_H_
