// Candidate computation shared by all engines (Eq. 1 + optimizations).
//
// For a position `pos` with matched prefix match[0..pos), the candidate set
// is the intersection of the neighbor lists of the matched backward
// neighbors, label-filtered for the query vertex at `pos`. With reuse
// enabled the chain starts from the stored candidates of an earlier
// position (Fig. 7). Neighbor lists come either from the CSR graph or, for
// the EGSM baseline, from the label index.
//
// All intersections route through an IntersectDispatch (scalar, SIMD, or
// hub-bitmap backend per EngineConfig::intersect). Work metering is
// backend-invariant, so candidates AND work_units are identical whichever
// backend runs.

#ifndef TDFS_CORE_CANDIDATES_H_
#define TDFS_CORE_CANDIDATES_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/hub_bitmap.h"
#include "graph/label_index.h"
#include "query/plan.h"
#include "util/intersect.h"

namespace tdfs {

/// Ping-pong buffers reused across candidate computations by one warp.
struct CandidateScratch {
  std::vector<VertexId> a;
  std::vector<VertexId> b;
  std::vector<VertexId> base;
};

/// Per-position IntersectDispatch routing for one compiled plan.
///
/// The run-level EngineConfig::intersect mode remains the default for
/// every position; positions the cost planner pinned via
/// MatchPlan::step_backend get their own dispatch (scalar where expected
/// lists are tiny, SIMD without bitmap probing mid-range, the full
/// bitmap-capable dispatch on expected hub steps). Two invariants:
///
///  * Forced-scalar runs (IntersectMode::kScalar — the differential
///    oracle mode) ignore the table entirely: every position stays on the
///    scalar reference dispatch.
///  * Backend routing never changes candidates or work_units (the work
///    model is backend-invariant), so any table resolves to the same
///    counts — only wall-clock differs.
class StepDispatchTable {
 public:
  /// Scalar everywhere (reference behaviour).
  StepDispatchTable() = default;

  StepDispatchTable(const MatchPlan& plan, IntersectMode mode,
                    const HubBitmapIndex* bitmaps)
      : run_(mode, bitmaps) {
    if (mode == IntersectMode::kScalar || plan.step_backend.empty()) {
      return;
    }
    table_.reserve(plan.step_backend.size());
    for (StepBackend backend : plan.step_backend) {
      switch (backend) {
        case StepBackend::kScalar:
          table_.push_back(IntersectDispatch());
          break;
        case StepBackend::kSimd:
          table_.push_back(
              IntersectDispatch(IntersectMode::kSimd, /*bitmaps=*/nullptr));
          break;
        case StepBackend::kInherit:
        case StepBackend::kBitmap:
          // kBitmap resolves to the run dispatch: under kAuto the bitmap
          // arm engages exactly on hub lists, and an explicit
          // simd/bitmap-off run mode keeps bitmaps disabled (the user's
          // switch wins over the planner's hint).
          table_.push_back(run_);
          break;
      }
    }
  }

  /// The run-level dispatch (positions outside the table, stored-base
  /// reuse of untabled plans, count-only probes).
  const IntersectDispatch& run() const { return run_; }

  /// Dispatch for the intersection chain at `pos`.
  const IntersectDispatch& At(int pos) const {
    return table_.empty() || pos < 0 ||
                   pos >= static_cast<int>(table_.size())
               ? run_
               : table_[pos];
  }

 private:
  IntersectDispatch run_;
  std::vector<IntersectDispatch> table_;
};

namespace internal {

/// Appends the elements of `in` whose data-graph label equals `label`.
inline void CopyWithLabelFilter(const Graph& graph, VertexSpan in,
                                Label label, std::vector<VertexId>* out,
                                WorkCounter* work) {
  if (work != nullptr) {
    work->Add(in.size());
  }
  if (label == kNoLabel) {
    out->insert(out->end(), in.begin(), in.end());
    return;
  }
  for (VertexId v : in) {
    if (graph.VertexLabel(v) == label) {
      out->push_back(v);
    }
  }
}

}  // namespace internal

/// Fetches the (label-filtered when indexed) neighbor list used for one
/// backward position. Shared by the direct and reuse-based chains.
inline VertexSpan BackwardNeighborList(const Graph& graph,
                                       const LabelIndex* index,
                                       VertexId matched, Label label,
                                       WorkCounter* work) {
  if (index != nullptr) {
    // One extra indirection per access: the CT-index cost the paper
    // charges EGSM with.
    if (work != nullptr) {
      work->Add(2);
    }
    return index->NeighborsWithLabel(matched, label);
  }
  return graph.Neighbors(matched);
}

/// Intersects a stored stack level (accessed element-wise through `get`,
/// which models the paged read the GPU performs *in place* — Alg. 5's
/// operator[]) with a sorted neighbor list, appending to `out`. Chooses
/// between merge, probing the list into the base (binary search over
/// `get`), and probing the base into the list, by the 32x size-ratio
/// heuristic. The base must be sorted ascending and duplicate-free, which
/// stored candidate sets are (they are intersections of sorted lists).
///
/// `list_owner`/`list_label` identify whose adjacency bucket `list` is so
/// the bitmap backend can engage (owner -1 when it is not an adjacency
/// list). On SIMD/bitmap backends the merge arm first gathers the paged
/// base into `gather_scratch` (unmetered, like get() itself); the
/// binary-search arm stays scalar on every backend — the paged base has no
/// contiguous layout to vectorize and its charge defines the work model.
template <typename GetFn>
void IntersectStoredBase(const IntersectDispatch& isect, int64_t base_size,
                         GetFn&& get, VertexSpan list, VertexId list_owner,
                         Label list_label,
                         std::vector<VertexId>* gather_scratch,
                         std::vector<VertexId>* out, WorkCounter* work) {
  if (base_size == 0 || list.empty()) {
    return;
  }
  uint64_t steps = 0;
  if (list.size() * 32 < static_cast<size_t>(base_size)) {
    // Small list: binary-search each element in the stored base.
    int64_t lo = 0;
    for (VertexId x : list) {
      int64_t l = lo;
      int64_t r = base_size;
      while (l < r) {
        const int64_t m = l + (r - l) / 2;
        ++steps;
        if (get(m) < x) {
          l = m + 1;
        } else {
          r = m;
        }
      }
      if (l < base_size && get(l) == x) {
        out->push_back(x);
        lo = l + 1;
      } else {
        lo = l;
      }
      ++steps;
      if (lo >= base_size) {
        break;
      }
    }
  } else if (static_cast<size_t>(base_size) < list.size() / 32) {
    // Small base: probe each stored element against the list. A bitmap
    // over the list answers each probe in O(1) but charges the same
    // binary-search cost SortedContains would.
    const HubBitmapView* bm = isect.Bitmap(list_owner, list_label);
    for (int64_t i = 0; i < base_size; ++i) {
      const VertexId v = get(i);
      ++steps;
      if (bm != nullptr) {
        if (work != nullptr) {
          work->Add(BinarySearchLogCost(list.size()));
        }
        if (bm->Test(v)) {
          out->push_back(v);
        }
      } else if (SortedContains(list, v, work)) {
        out->push_back(v);
      }
    }
  } else {
    const HubBitmapView* bm = isect.Bitmap(list_owner, list_label);
    if (bm == nullptr && isect.simd_level() == SimdLevel::kScalar) {
      // Comparable sizes: linear merge over sequential paged reads.
      int64_t i = 0;
      size_t j = 0;
      VertexId v = get(0);
      while (true) {
        ++steps;
        if (v < list[j]) {
          if (++i >= base_size) {
            break;
          }
          v = get(i);
        } else if (v > list[j]) {
          if (++j >= list.size()) {
            break;
          }
        } else {
          out->push_back(v);
          ++j;
          if (++i >= base_size || j >= list.size()) {
            break;
          }
          v = get(i);
        }
      }
    } else {
      // SIMD/bitmap merge arm: gather the paged level into contiguous
      // scratch first, then run the backend kernel. The charge
      // (MergeStepsWork) equals the scalar in-place loop's step count.
      gather_scratch->clear();
      gather_scratch->reserve(static_cast<size_t>(base_size));
      for (int64_t i = 0; i < base_size; ++i) {
        gather_scratch->push_back(get(i));
      }
      const VertexSpan base_span(*gather_scratch);
      if (bm != nullptr) {
        BitmapMergeInto(base_span, list, *bm, out, work);
      } else {
        isect.kernels().merge(base_span, list, out, work);
      }
    }
  }
  if (work != nullptr) {
    work->Add(steps);
  }
}

/// Scalar-backend compatibility overload (no bitmap, no gather).
template <typename GetFn>
void IntersectStoredBase(int64_t base_size, GetFn&& get, VertexSpan list,
                         std::vector<VertexId>* out, WorkCounter* work) {
  IntersectStoredBase(IntersectDispatch(), base_size,
                      std::forward<GetFn>(get), list, /*list_owner=*/-1,
                      kNoLabel, /*gather_scratch=*/nullptr, out, work);
}

/// Computes the candidates of `pos` into `out` (cleared first) from the
/// backward neighbor lists alone. The plan must NOT designate a reuse
/// source for `pos` — engines with stored stacks handle the reuse path
/// themselves via IntersectStoredBase, so that the stored level is read in
/// place rather than copied (the whole point of Fig. 7's optimization).
/// When `index` is non-null, neighbor lists are fetched per label bucket
/// (already filtered); otherwise CSR lists are used and the label filter is
/// applied to the final result.
inline void ComputeCandidates(const Graph& graph, const LabelIndex* index,
                              const MatchPlan& plan, const VertexId* match,
                              int pos, const IntersectDispatch& isect,
                              CandidateScratch* scratch,
                              std::vector<VertexId>* out,
                              WorkCounter* work) {
  TDFS_CHECK_MSG(plan.reuse_source[pos] < 0,
                 "reuse-source positions are computed by the engine");
  out->clear();
  const Label label = plan.label_filter[pos];
  const std::vector<int>& backward = plan.backward[pos];
  // Bitmaps are keyed the way the spans were fetched: per label bucket
  // behind an index, full CSR rows otherwise.
  const Label lookup_label = index != nullptr ? label : kNoLabel;

  struct OwnedList {
    VertexSpan span;
    VertexId owner;
  };
  std::vector<OwnedList> lists;
  lists.reserve(backward.size());
  for (int b : backward) {
    lists.push_back(
        {BackwardNeighborList(graph, index, match[b], label, work),
         match[b]});
  }
  // Ascending size so the intersection shrinks as early as possible.
  std::sort(lists.begin(), lists.end(), [](const OwnedList& x,
                                           const OwnedList& y) {
    return x.span.size() < y.span.size();
  });

  // Labels already applied when reading through the index; with CSR lists
  // the *smallest* list is label-filtered up front ("we also filter
  // candidates based on their labels during subgraph extension",
  // Section III), which shrinks the whole intersection chain and makes
  // every later result label-correct for free.
  const bool need_label_pass = index == nullptr && label != kNoLabel;

  if (lists.size() == 1) {
    internal::CopyWithLabelFilter(graph, lists[0].span,
                                  need_label_pass ? label : kNoLabel, out,
                                  work);
    return;
  }
  std::vector<VertexId>* current = &scratch->a;
  std::vector<VertexId>* next = &scratch->b;
  size_t first_unmerged = 2;
  if (need_label_pass) {
    scratch->a.clear();
    internal::CopyWithLabelFilter(graph, lists[0].span, label, &scratch->a,
                                  work);
    first_unmerged = 1;
  } else {
    scratch->a.clear();
    isect.Auto(lists[0].span, lists[1].span, lists[1].owner, lookup_label,
               &scratch->a, work);
  }
  for (size_t l = first_unmerged; l < lists.size(); ++l) {
    next->clear();
    isect.Auto(VertexSpan(*current), lists[l].span, lists[l].owner,
               lookup_label, next, work);
    std::swap(current, next);
    if (current->empty()) {
      break;
    }
  }
  out->insert(out->end(), current->begin(), current->end());
}

/// Scalar-backend compatibility overload.
inline void ComputeCandidates(const Graph& graph, const LabelIndex* index,
                              const MatchPlan& plan, const VertexId* match,
                              int pos, CandidateScratch* scratch,
                              std::vector<VertexId>* out,
                              WorkCounter* work) {
  ComputeCandidates(graph, index, plan, match, pos, IntersectDispatch(),
                    scratch, out, work);
}

}  // namespace tdfs

#endif  // TDFS_CORE_CANDIDATES_H_
