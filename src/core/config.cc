#include "core/config.h"

#include <algorithm>
#include <limits>

namespace tdfs {

bool RetryableFailure(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kInternal;
}

void ApplyRetryEscalation(EngineConfig* cfg, int next_attempt,
                          const Status& failure) {
  if (!cfg->retry.escalate ||
      failure.code() != StatusCode::kResourceExhausted) {
    return;
  }
  if (next_attempt == 2) {
    cfg->release_stack_pages = true;
  } else if (next_attempt == 3) {
    const int64_t grown = static_cast<int64_t>(cfg->page_pool_pages) *
                          std::max(cfg->retry.pool_growth_factor, 2);
    cfg->page_pool_pages = static_cast<int32_t>(
        std::min<int64_t>(grown, std::numeric_limits<int32_t>::max()));
  } else {
    cfg->stack = StackKind::kArrayMaxDegree;  // always fits
  }
}

const char* StealStrategyName(StealStrategy s) {
  switch (s) {
    case StealStrategy::kTimeout:
      return "timeout";
    case StealStrategy::kHalfSteal:
      return "half-steal";
    case StealStrategy::kNewKernel:
      return "new-kernel";
    case StealStrategy::kNone:
      return "none";
  }
  return "?";
}

const char* StackKindName(StackKind s) {
  switch (s) {
    case StackKind::kPaged:
      return "paged";
    case StackKind::kArrayMaxDegree:
      return "array-dmax";
    case StackKind::kArrayFixed:
      return "array-fixed";
  }
  return "?";
}

EngineConfig TdfsConfig() {
  return EngineConfig{};  // the defaults are T-DFS
}

EngineConfig StmatchConfig() {
  EngineConfig config;
  config.steal = StealStrategy::kHalfSteal;
  config.stack = StackKind::kArrayMaxDegree;  // paper sets capacity to d_max
                                              // "unless otherwise stated"
  config.host_side_edge_filter = true;
  config.separate_vertex_removal = true;
  config.use_reuse = false;  // reuse is the T-DFS/GPU-reuse-line opt [30]
  return config;
}

EngineConfig EgsmConfig() {
  EngineConfig config;
  config.steal = StealStrategy::kNewKernel;
  config.stack = StackKind::kArrayMaxDegree;
  config.use_symmetry_breaking = false;  // "EGSM ... does not conduct
                                         // automorphism check" (Sec. IV-B)
  config.use_label_index = true;
  config.use_reuse = false;
  return config;
}

EngineConfig PbeConfig() {
  EngineConfig config;
  config.steal = StealStrategy::kNone;
  return config;
}

}  // namespace tdfs
