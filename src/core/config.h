// Engine configuration.
//
// One config struct drives every engine so that the benchmark harness can
// vary exactly one knob at a time (Section IV-C/D ablations). Presets
// reproduce the four systems the paper compares:
//
//   TdfsConfig()    — timeout stealing, paged stacks, symmetry breaking,
//                     reuse, warp-parallel edge filtering (this paper).
//   StmatchConfig() — half stealing with stack locks, fixed-capacity array
//                     stacks, host-side single-core edge filtering,
//                     set-difference vertex removal [47].
//   EgsmConfig()    — new-kernel load balancing, label-index (CT-index
//                     stand-in) neighbor access, NO automorphism-based
//                     symmetry breaking [43].
//   PbeConfig()     — BFS extension with a device-memory budget, pipelined
//                     batches, two-pass (count+fill) sizing [29].

#ifndef TDFS_CORE_CONFIG_H_
#define TDFS_CORE_CONFIG_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/sharding_kind.h"
#include "query/planner_kind.h"
#include "query/prefilter_kind.h"
#include "queue/task_queue.h"
#include "util/intersect.h"
#include "util/status.h"

namespace tdfs::obs {
class TraceSession;
}  // namespace tdfs::obs

namespace tdfs::shard {
struct ShardExchange;  // shard/exchange.h
}  // namespace tdfs::shard

namespace tdfs {

class DeltaEdgeSet;    // query/plan.h
class FilteredGraph;   // query/candidate_filter.h
struct GraphStats;     // query/cost_planner.h
class GraphPartition;  // graph/partition.h

/// Load-balancing strategy for the warp-DFS engines (Fig. 11).
enum class StealStrategy {
  kTimeout,    // T-DFS: decompose stragglers into Q_task
  kHalfSteal,  // STMatch: lock a victim's stack, take half a level
  kNewKernel,  // EGSM: spawn a child kernel for hot subtrees
  kNone,       // no balancing beyond initial chunked distribution
};

/// Stack backend (Tables V-VIII).
enum class StackKind {
  kPaged,           // dynamic pages (this paper)
  kArrayMaxDegree,  // d_max-capacity arrays: correct but wasteful
  kArrayFixed,      // hardcoded capacity (STMatch's 4096): may truncate
};

/// Timeout clock. Wall matches the paper; virtual (work-unit driven) makes
/// decomposition deterministic for tests.
enum class ClockKind { kWall, kVirtual };

const char* StealStrategyName(StealStrategy s);
const char* StackKindName(StackKind s);

/// Whole-job retry and escalation for RunMatching. A failed attempt
/// (kResourceExhausted from an undersized page pool, kInternal from a lost
/// kernel/device) is re-executed from scratch — counts from failed
/// attempts are discarded, so retries never change the reported result.
/// Attempts escalate through a ladder of increasingly heavy-handed
/// fallbacks for resource exhaustion:
///
///   attempt 2: enable the page-release heuristic (release_stack_pages)
///   attempt 3: grow page_pool_pages by pool_growth_factor
///   attempt 4+: fall back to StackKind::kArrayMaxDegree (always fits)
///
/// Plain failures (device loss) retry without escalating. The default
/// max_attempts = 1 preserves fail-fast semantics; services opt in.
struct RetryPolicy {
  /// Total attempts per device job, including the first. 1 = no retry.
  int max_attempts = 1;

  /// Sleep between attempts (doubling), host-side.
  double backoff_ms = 0.0;

  /// Ceiling for the doubling backoff. With high max_attempts an uncapped
  /// doubling sleeps for minutes; services configure deep retry ladders
  /// and must not stall a worker that long. <= 0 disables the cap.
  double max_backoff_ms = 1000.0;

  /// Walk the resource-exhaustion escalation ladder above. When false,
  /// retries re-run with the original config unchanged.
  bool escalate = true;

  /// Pool growth per escalation-ladder step 3.
  int pool_growth_factor = 4;
};

class MemoryGovernor;
class PageAllocator;

/// Borrowed per-run resources for engine reuse (the service layer's
/// EngineArena hands these out). When EngineConfig::resources is set, the
/// engine adopts each resource *iff* its geometry matches the config
/// (allocator: page count and page size; queue: capacity in ints) and
/// falls back to fresh allocation otherwise — the retry escalation ladder
/// grows page_pool_pages mid-job, and a stale-sized pool must never be
/// reused. Adopted resources have their stats reset at the start of the
/// run (per-run peaks stay per-run) and their observability sink rebound
/// to the run's trace session (or detached when tracing is off).
///
/// The caller must guarantee the resources are idle — no other run is
/// using them — and outlive the run. The engine returns every page before
/// completing (stacks release on destruction), but a deadline-aborted or
/// failed run can leave tasks in the queue; recyclers must drain it
/// (TaskQueue::DrainForReuse) before the next run.
struct EngineResources {
  PageAllocator* allocator = nullptr;  // used when StackKind::kPaged
  TaskQueue* queue = nullptr;          // used when StealStrategy::kTimeout
};

struct EngineConfig {
  // ---- execution shape ----
  int num_warps = 8;
  int num_devices = 1;

  /// Initial tasks handed to a warp per fetch (paper default: 8).
  int chunk_size = 8;

  // ---- load balancing ----
  StealStrategy steal = StealStrategy::kTimeout;

  ClockKind clock = ClockKind::kWall;

  /// tau for ClockKind::kWall, in milliseconds (paper default: 10 ms).
  /// +infinity disables decomposition (the "No Steal" row of Fig. 11 is
  /// steal == kNone, which skips the clock entirely).
  double timeout_ms = 10.0;

  /// tau for ClockKind::kVirtual, in work units.
  uint64_t timeout_work_units = 1 << 18;

  /// Q_task capacity in ints (multiple of 3; paper default 3M = 12 MB).
  int32_t queue_capacity_ints = TaskQueue::kDefaultCapacityInts;

  /// Maximum matched vertices in a decomposed task (paper: 3, following
  /// STMatch's StopLevel).
  int stop_level = 3;

  /// Idle warps prefer Q_task over new initial chunks (Section III: this
  /// keeps Q_task small). false reverses the priority — the ablation knob
  /// for that design choice.
  bool queue_first = true;

  // ---- stacks ----
  StackKind stack = StackKind::kPaged;

  /// Level capacity for StackKind::kArrayFixed (STMatch default: 4096).
  int64_t fixed_stack_capacity = 4096;

  /// Page pool size for StackKind::kPaged.
  int32_t page_pool_pages = 4096;
  int64_t page_bytes = 8192;
  int32_t page_table_capacity = 40;

  /// The paper's optional page-release heuristic (free half a level's
  /// pages when at most a quarter are used). Off by default — the paper
  /// found releasing unnecessary because paged footprints stay tiny.
  bool release_stack_pages = false;

  // ---- spill-to-host tier (out-of-core matching) ----
  /// When the page pool is dry, overflow into host-backed spill pages
  /// (exact, slower) instead of failing or degrading — see
  /// mem/memory_governor.h. Off by default: the paper's engine is
  /// arena-only, and the pressure ladder below stays the first response.
  bool spill_to_host = false;

  /// Cap on concurrently live spill pages; 0 = allocator default
  /// (32x page_pool_pages). The governor's byte ceiling applies on top.
  int32_t max_spill_pages = 0;

  /// Budget authority for spill grants, pressure levels, and admission
  /// reservations. Null (the default) uses the process-global governor,
  /// which is inert until given a budget (CLI --mem-budget). Not owned;
  /// must outlive every run.
  MemoryGovernor* governor = nullptr;

  // ---- graceful degradation under page-pool pressure ----
  /// When a paged-stack write finds the pool dry, the warp first releases
  /// its own dead pages (levels deeper than its position, sparse tails),
  /// then retries the write up to this many times with doubling backoff
  /// while other warps free pages. 0 disables in-run retries.
  int pressure_max_retries = 10;

  /// Initial retry backoff; doubles per retry, capped at 64x.
  int64_t pressure_backoff_ns = 20'000;

  /// After retries fail at the *root* of a task (nothing consumed yet),
  /// the task is re-enqueued to Q_task for later instead of poisoning the
  /// job — bounded by this many deferrals per run to rule out livelock
  /// when the pool never recovers. 0 disables deferral.
  int64_t pressure_max_deferrals = 1024;

  /// Whole-job retry/escalation policy (applied per device by
  /// RunMatching; see RetryPolicy).
  RetryPolicy retry;

  // ---- plan / algorithm options ----
  bool use_symmetry_breaking = true;
  bool use_reuse = true;

  /// Vertex-induced matching (matched vertices must be non-adjacent where
  /// the query vertices are). Default false: the paper counts non-induced
  /// embeddings, as is standard for subgraph matching.
  bool induced = false;

  /// Degree-based pruning of initial edges and candidates ("edge
  /// filtering"). Label checks are always applied (correctness).
  bool use_degree_filter = true;

  /// STMatch: run the edge filter on the host with one core before the
  /// kernel, charged as preprocessing time.
  bool host_side_edge_filter = false;

  /// STMatch: remove already-matched vertices with an independent
  /// set-difference pass instead of folding the check into consumption.
  bool separate_vertex_removal = false;

  /// EGSM: fetch neighbors through the label index (CT-index stand-in).
  bool use_label_index = false;

  // ---- intersection backend ----
  /// Kernel backend for candidate intersections (util/intersect.h):
  /// kAuto = best detected SIMD kernels plus the hub bitmap index;
  /// kScalar = reference scalar kernels; kSimd / kBitmapOff = SIMD kernels
  /// without bitmaps. Results and work_units are identical across modes —
  /// only wall time changes.
  IntersectMode intersect = IntersectMode::kAuto;

  /// Adjacency lists at least this long get a bitmap in the hub index
  /// (per label bucket under use_label_index). Only read when the mode
  /// uses bitmaps.
  int64_t bitmap_min_degree = 256;

  // ---- query planner ----
  /// Matching-order planner (query/planner_kind.h): kGreedy = the paper's
  /// static max-degree heuristic; kCost = data-graph-statistics-driven
  /// order search with per-position backend choices. Counts are identical
  /// either way — only the enumeration order (and hence wall time / work)
  /// changes.
  PlannerKind planner = PlannerKind::kGreedy;

  /// Optional precomputed stats for the cost planner (borrowed; must
  /// outlive the run). When null and planner == kCost, entry points that
  /// hold the data graph compute stats on the fly; contexts without a
  /// graph at plan time fall back to the greedy order.
  const GraphStats* graph_stats = nullptr;

  // ---- candidate prefiltering ----
  /// Candidate-prefiltering pipeline (query/prefilter_kind.h): before
  /// matching, per-query-vertex candidate sets are computed (LDF seeding,
  /// optionally neighborhood-safety refined) and the engines run on the
  /// candidate-induced CSR. Counts are bit-identical to kOff. Ignored
  /// (treated as kOff) for induced matching, delta plans, initial_edges
  /// runs and the ref engine — see query/candidate_filter.h for why.
  PrefilterKind prefilter = PrefilterKind::kOff;

  /// Borrowed prebuilt filtered view matching `prefilter` for the run's
  /// graph + query (the service layer's cache hands these out; RunMatching
  /// builds one on the fly when null and prefilter != kOff). When set, the
  /// engine's graph argument must already be prefiltered->graph(), and the
  /// engines add O(1) candidate-membership checks on top of their plan
  /// checks. Not owned; must outlive the run.
  const FilteredGraph* prefiltered = nullptr;

  // ---- new-kernel strategy ----
  int newkernel_fanout_threshold = 256;
  int newkernel_child_warps = 4;
  /// Global budget of child kernels per job (prevents explosion; beyond it
  /// subtrees are processed in place).
  int newkernel_max_kernels = 512;
  /// Concurrent child kernels (a real device also bounds resident
  /// kernels); beyond it subtrees are processed in place. Also keeps the
  /// ephemeral child stacks from exhausting the shared page pool.
  int newkernel_max_concurrent = 16;
  /// Emulated launch + per-kernel stack-allocation latency.
  int64_t newkernel_launch_overhead_ns = 200'000;

  // ---- BFS (PBE) engine ----
  /// Device-memory budget for materialized partial matches.
  int64_t bfs_memory_budget_bytes = int64_t{64} << 20;

  // ---- run deadline ----
  /// Abort the job (status kDeadlineExceeded, partial count) once this many
  /// milliseconds of kernel time have elapsed; 0 = unlimited. The paper
  /// uses the same device: runs beyond 1000 s are reported as 'T' in
  /// Fig. 11. The benchmark harness uses a smaller cap.
  double max_run_ms = 0.0;

  // ---- observability ----
  /// When set, engines register one trace track per warp, record task-
  /// lifecycle events, and populate the session's metrics registry
  /// (obs/trace.h). Null (the default) disables all recording; the hooks
  /// left in the hot paths then cost a pointer test. Not owned; must
  /// outlive the run.
  obs::TraceSession* trace = nullptr;

  /// Span parenting for the session's span ledger (obs/span.h): when
  /// `trace` is set, the per-device engine_run span is recorded on this
  /// ledger track under this parent span id. Defaults place it as a root
  /// span on track 0; the service layer points these at the owning job's
  /// slice track so engine time nests inside the job tree.
  int64_t span_track = 0;
  uint64_t span_parent = 0;

  // ---- resource reuse (service layer) ----
  /// Borrowed page pool / task queue to run on instead of allocating
  /// fresh ones (see EngineResources above for the adoption rules). Null
  /// (the default) allocates per run. Not owned; must outlive the run.
  const EngineResources* resources = nullptr;

  // ---- incremental maintenance (dyn layer) ----
  /// When set, the warp-DFS engine enumerates ONLY these directed edges as
  /// initial tasks (round-robin across devices) instead of every edge of
  /// the graph. The caller pre-applies PassesEdgeFilter; per-edge filtering
  /// is skipped like the host-prefilter path. Indices must be valid for
  /// the run's graph. Not owned; must outlive the run.
  const std::vector<int64_t>* initial_edges = nullptr;

  /// Delta-edge membership for delta plans (MatchPlan::delta_forbidden
  /// consume checks). Null for ordinary runs. Not owned; must outlive the
  /// run.
  const DeltaEdgeSet* delta_edges = nullptr;

  // ---- EGSM OOM model (Table IV) ----
  /// If > 0, fail with ResourceExhausted when the label index plus the
  /// materialized candidate-edge set exceeds this many bytes.
  int64_t device_memory_budget_bytes = 0;

  // ---- shard-parallel execution (src/shard/) ----
  /// kOff (default) keeps the shared-CSR multi-device path. kHash/kGreedy
  /// partition the data graph (graph/partition.h) and run one worker per
  /// shard: its own shard CSR, page arena, and task queue, with
  /// cross-shard initial edges routed as fixed-width task messages to the
  /// owner shard's queue and cross-shard steals only after a shard's own
  /// work drains. Counts and work_units are bit-identical to kOff.
  ShardingKind sharding = ShardingKind::kOff;

  /// Worker count for sharded runs; 0 (default) uses num_devices.
  int num_shards = 0;

  /// Halo cap: boundary vertices whose global degree is at most this get
  /// their adjacency replicated into every neighboring shard, so the
  /// common cross-shard lookup never leaves the shard. 0 disables halos.
  int64_t shard_halo_max_degree = 256;

  /// Route each shard's cross-boundary initial edges (target owned
  /// elsewhere, above the halo cap) to the owner shard's queue at seeding
  /// time. Only effective with StealStrategy::kTimeout (the only strategy
  /// with a queue); false keeps every owned edge local.
  bool shard_route_initial = true;

  /// If > 0, per-worker resident-graph budget in bytes: an unsharded run
  /// fails with kResourceExhausted when the full CSR exceeds it (every
  /// worker must hold the whole graph); a sharded run admits each shard
  /// against its own resident footprint — the mechanism that lets graphs
  /// larger than one worker's budget complete when sharded.
  int64_t graph_budget_bytes = 0;

  /// NUMA placement hints: shard s's arena is tagged with
  /// numa_nodes[s % size]. Advisory (recorded on the allocator and
  /// exported per shard); page placement itself relies on first-touch by
  /// the owning worker thread. Empty = no hints.
  std::vector<int> numa_nodes;

  /// Prebuilt partition to run on (borrowed; must outlive the run and
  /// match this config's sharding/num_shards/halo geometry for the run's
  /// graph). Null (the default) partitions on the fly, charged to
  /// preprocess_ms like the other host-side preprocessing.
  const GraphPartition* partition = nullptr;

  // -- internal: set by the shard runner on per-shard engine configs --
  /// Cross-shard coordination state (shared queues, global work tokens,
  /// job expiry). Not owned; null for ordinary runs.
  shard::ShardExchange* shard_exchange = nullptr;

  /// This engine's shard id within the exchange; -1 for ordinary runs.
  int shard_id = -1;
};

/// Failures worth re-executing under RetryPolicy: an undersized page pool
/// (the escalation ladder can fix it) or a lost kernel/device (a fresh
/// execution can simply succeed). Bad input, deadlines, and corruption are
/// not retryable.
bool RetryableFailure(const Status& status);

/// Walks one step of the RetryPolicy escalation ladder (see RetryPolicy)
/// before attempt number `next_attempt`. Only resource exhaustion
/// escalates; device loss retries with the config unchanged.
void ApplyRetryEscalation(EngineConfig* cfg, int next_attempt,
                          const Status& failure);

/// Presets (see file comment).
EngineConfig TdfsConfig();
EngineConfig StmatchConfig();
EngineConfig EgsmConfig();
EngineConfig PbeConfig();

}  // namespace tdfs

#endif  // TDFS_CORE_CONFIG_H_
