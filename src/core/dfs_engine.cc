#include "core/dfs_engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/candidates.h"
#include "query/candidate_filter.h"
#include "graph/hub_bitmap.h"
#include "graph/label_index.h"
#include "mem/page_allocator.h"
#include "mem/warp_stack.h"
#include "obs/trace.h"
#include "queue/task_queue.h"
#include "shard/exchange.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/prng.h"
#include "util/time_attr.h"
#include "util/timer.h"
#include "vgpu/atomics.h"
#include "vgpu/scheduler.h"

namespace tdfs {

namespace {

// Idle-warp backoff: spin (yielding the core) for this many polls after
// running dry, then park with a doubling sleep. Work usually reappears
// within a few polls (a neighbor finishing a chunk, a timeout split), so
// the spin phase keeps adoption latency near zero; the park phase keeps a
// starved tail of warps from burning the cores the busy warps need.
constexpr int kIdleSpinPolls = 16;
constexpr int64_t kIdleParkMinNanos = 2'000;
constexpr int64_t kIdleParkMaxNanos = 64'000;

// ---------------------------------------------------------------------------
// Shared per-job state
// ---------------------------------------------------------------------------

template <typename Stack>
class WarpRunner;

template <typename Stack>
struct SharedState {
  const Graph* graph = nullptr;
  const MatchPlan* plan = nullptr;
  const EngineConfig* config = nullptr;
  int device_id = 0;

  // EGSM neighbor access path (null unless use_label_index).
  std::unique_ptr<LabelIndex> index;

  // Intersection backend for this run: kernel table resolved from
  // config.intersect plus the hub bitmap index (empty unless the mode uses
  // bitmaps), fanned out per order position when the cost planner pinned
  // step backends (plan.step_backend). Built during preprocessing,
  // read-only afterwards.
  HubBitmapIndex bitmaps;
  StepDispatchTable steps;

  // Paged-stack page pool (null unless StackKind::kPaged) and T-DFS task
  // queue (null unless StealStrategy::kTimeout). The raw pointers are what
  // warps use; they target either the run-owned instances below or
  // borrowed arena resources (config.resources) when those match the
  // config's geometry — see EngineResources in core/config.h.
  PageAllocator* allocator = nullptr;
  TaskQueue* queue = nullptr;
  std::unique_ptr<PageAllocator> owned_allocator;
  std::unique_ptr<TaskQueue> owned_queue;

  // Cursor over this device's owned directed edges (or over the
  // host-prefiltered edge list when STMatch-style preprocessing is on).
  // Ownership of global edge j is edge_offset + j * edge_stride: device
  // round-robin for the shared-CSR path, offset 0 / stride 1 for shard
  // views (a shard's CSR already holds exactly its owned edges).
  std::atomic<int64_t> edge_cursor{0};
  int64_t num_owned_edges = 0;
  int64_t edge_offset = 0;
  int64_t edge_stride = 1;
  std::vector<int64_t> host_filtered_edges;  // empty unless host filter

  // Outstanding work tokens: +1 per chunk in flight, +1 per queued task,
  // +1 per pending child kernel. Warps exit when the cursor is exhausted
  // and this reaches zero — a token is always created before the work item
  // becomes visible, so zero means globally done. Sharded runs point this
  // at the job-global counter in the ShardExchange (tokens span shards, so
  // a warp parks until EVERY shard's work is done and a routed task can
  // never strand its token); ordinary runs use the private counter.
  std::atomic<int64_t>* work_items = &own_work_items;
  std::atomic<int64_t> own_work_items{0};

  // Cross-shard coordination (null for ordinary runs) and this engine's
  // shard id within it.
  shard::ShardExchange* exchange = nullptr;
  int shard_id = -1;

  // Observability handles, resolved once per job (null when tracing is
  // off; the recording helpers no-op on null).
  obs::Histogram* h_task_work = nullptr;     // work units per adopted task
  obs::Histogram* h_split_depth = nullptr;   // level at each timeout split
  obs::Histogram* h_isect_size = nullptr;    // candidates per extension
  obs::Counter* c_idle_polls = nullptr;      // dry polls across all warps
  obs::Counter* c_steal_probes = nullptr;    // victim stacks inspected
  std::atomic<int32_t> child_track_seq{0};   // child-warp track naming

  // New-kernel strategy bookkeeping.
  std::atomic<int32_t> kernel_budget{0};
  std::atomic<int32_t> kernels_active{0};
  vgpu::LaunchStats launch_stats;
  std::mutex child_threads_mu;
  std::vector<std::thread> child_threads;

  // Half-steal: the resident warp contexts, probe-able by thieves.
  std::vector<std::unique_ptr<WarpRunner<Stack>>> warps;

  // Run deadline (0 = unlimited). Once any warp observes it passing, the
  // sticky flag makes every warp unwind; the job reports
  // kDeadlineExceeded with a partial count (the paper's 'T' entries).
  int64_t deadline_ns = 0;
  std::atomic<bool> expired{false};

  bool Expired() const {
    if (expired.load(std::memory_order_relaxed)) {
      return true;
    }
    // One shard hitting the deadline (or dying) unwinds the whole job:
    // with a shared work-token count, a lone surviving shard would
    // otherwise park forever on the dead shards' stranded tokens.
    return exchange != nullptr &&
           exchange->expired.load(std::memory_order_relaxed);
  }

  // Optional match collection (query-vertex order).
  MatchSink* sink = nullptr;

  // Result aggregation.
  std::atomic<uint64_t> matches{0};
  std::mutex counters_mu;
  RunCounters counters;
  // Wall-time attribution, merged from per-warp sinks under counters_mu.
  // Only populated when the job runs with a trace session.
  TimeAttributionSink attr;
  std::atomic<int64_t> stack_bytes_total{0};
  std::atomic<bool> stack_overflow{false};

  // Degradation state. pressure_mode flips on the first pool-dry write and
  // turns on the paper's page-release heuristic for every warp;
  // pool_failure records that a write stayed dry through retries (so the
  // final error can say "pool pressure", not just "overflow"); degraded
  // records any in-run fallback (pressure measures, a lost child kernel
  // re-run inline). deferrals bounds pressure re-enqueues per run.
  std::atomic<bool> pressure_mode{false};
  std::atomic<bool> pool_failure{false};
  std::atomic<bool> degraded{false};
  std::atomic<int64_t> deferrals{0};

  int64_t OwnedEdgeIndex(int64_t j) const {
    return edge_offset + j * edge_stride;
  }
};

// ---------------------------------------------------------------------------
// Warp context + DFS loop
// ---------------------------------------------------------------------------

template <typename Stack>
class WarpRunner {
 public:
  WarpRunner(SharedState<Stack>* shared, Stack stack)
      : shared_(shared),
        graph_(*shared->graph),
        plan_(*shared->plan),
        config_(*shared->config),
        k_(shared->plan->num_vertices),
        stack_(std::move(stack)),
        size_(k_, 0),
        limit_(k_, 0),
        iter_(k_, 0),
        match_(k_, -1) {}

  // Registers this warp's trace track (one timeline row per warp) and
  // routes the stack's page events through it. Called after construction,
  // once the warp's identity (resident index / child lane) is known; a
  // no-op when the job runs without a trace session.
  void InitObs(const std::string& track_name) {
    tracer_ = obs::WarpTracer(config_.trace, shared_->device_id, track_name,
                              &work_);
    // Tracing also turns on sampled wall-time attribution: intersection
    // dispatch charges (cell, arm) through the WorkCounter's sink.
    work_.attr = config_.trace != nullptr ? &attr_ : nullptr;
    if constexpr (std::is_same_v<Stack, PagedWarpStack>) {
      if (tracer_.enabled()) {
        stack_.SetTracer(&tracer_);
      }
    }
  }

  // Main resident-warp loop: drain the queue first, then initial chunks,
  // then steal (strategy-dependent), until the job is globally done.
  void ResidentLoop() {
    int idle_polls = 0;
    while (true) {
      bool did_work = false;
      // Queue-first scheduling keeps Q_task small (Section III); the
      // reversed priority is an ablation (bench/abl_queue_first).
      for (int attempt = 0; attempt < 2 && !did_work; ++attempt) {
        const bool try_queue = (attempt == 0) == config_.queue_first;
        if (try_queue) {
          if (config_.steal != StealStrategy::kTimeout) {
            continue;
          }
          Task task;
          if (shared_->queue->Dequeue(&task)) {
            ++local_.tasks_dequeued;
            tracer_.Event(obs::TraceEvent::kDequeue,
                          shared_->queue->ApproxSize());
            ObsAdopt(task.HasThird() ? 3 : 2);
            ProcessQueueTask(task);
            ObsTaskDone();
            shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
            did_work = true;
          }
        } else {
          int64_t begin = 0;
          int64_t end = 0;
          if (TakeChunk(&begin, &end)) {
            ObsAdopt(end - begin);
            ProcessChunk(begin, end);
            ObsTaskDone();
            shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
            did_work = true;
          }
        }
      }
      if (did_work) {
        idle_polls = 0;
        MaybePromoteSpilled();
        continue;
      }
      if (config_.steal == StealStrategy::kHalfSteal && TrySteal()) {
        idle_polls = 0;
        continue;
      }
      // Cross-shard steal tier: only once this shard's own queue and
      // cursor gave nothing this round does a warp pull from a sibling
      // shard's queue.
      if (shared_->exchange != nullptr &&
          config_.steal == StealStrategy::kTimeout &&
          TryCrossShardDequeue()) {
        idle_polls = 0;
        MaybePromoteSpilled();
        continue;
      }
      if (shared_->work_items->load(std::memory_order_acquire) == 0 ||
          shared_->Expired()) {
        break;
      }
      // Spin-then-park adaptive backoff (see kIdleSpinPolls).
      if (shared_->c_idle_polls != nullptr) {
        lc_idle_polls_.Add();
      }
      if (idle_polls < kIdleSpinPolls) {
        ++idle_polls;
        std::this_thread::yield();
      } else {
        const int64_t park_ns =
            std::min(kIdleParkMaxNanos,
                     kIdleParkMinNanos << (idle_polls - kIdleSpinPolls));
        if (park_ns < kIdleParkMaxNanos) {
          ++idle_polls;
        }
        vgpu::Nanosleep(park_ns);
      }
    }
    Finish();
  }

  // Eager spill promotion (between tasks only, so a task always sees a
  // stable page mapping): migrate held spill pages back into arena pages
  // as other warps release them. Contents are copied, so live data — even
  // reuse sources — survives; work_units are untouched, keeping spilled
  // runs bit-identical to oversized-arena runs. Under Half Steal a thief
  // may be reading this stack, so promotion takes the same lock.
  void MaybePromoteSpilled() {
    if constexpr (std::is_same_v<Stack, PagedWarpStack>) {
      if (!config_.spill_to_host || stack_.SpillPagesHeld() == 0) {
        return;
      }
      if (config_.steal == StealStrategy::kHalfSteal) {
        std::lock_guard<std::mutex> lock(steal_mu_);
        stack_.PromoteSpilled();
      } else {
        stack_.PromoteSpilled();
      }
    }
  }

  // Child-kernel warp entry (New Kernel strategy): process a strided slice
  // of `candidates` at `level` below the prefix already in match_.
  void ChildSlice(int level, const std::vector<VertexId>& candidates,
                  int lane, int stride) {
    // Rebuild every reuse source up to and *including* `level`: positions
    // deeper than `level` may reuse stack[level] itself, which this warp
    // never extended (it iterates the handed-over candidate vector).
    // Child warps have no Q_task hand-off, so a dry pool here can only
    // poison the job (the escalation ladder in RunMatching recovers).
    const StackWrite sources = PopulateReuseSources(level + 1);
    const bool sources_ok = sources == StackWrite::kOk;
    if (!sources_ok) {
      MarkWriteFailure(sources);
    }
    ObsAdopt(static_cast<int64_t>(candidates.size()));
    SetBusy(2, level);
    for (size_t i = lane; sources_ok && i < candidates.size();
         i += static_cast<size_t>(stride)) {
      if (DeadlineHit()) {
        break;
      }
      const VertexId v = candidates[i];
      if (!Valid(level, v)) {
        continue;
      }
      LockedAssign(&match_[level], v);
      if (level + 1 == k_) {
        ++matches_;
      } else {
        ProcessSubtree(level + 1, /*extend_first=*/true,
                       /*decomposable=*/false);
      }
    }
    ClearBusy();
    ObsTaskDone();
    // Charge this ephemeral warp's dedicated stack to the job's footprint —
    // the per-kernel allocation cost of the New Kernel strategy.
    shared_->stack_bytes_total.fetch_add(StackMemoryBytes(),
                                         std::memory_order_relaxed);
    Finish();
  }

  // Thief entry: state already installed by StealFrom.
  void RunStolen(int base_level) {
    reuse_cache_valid_ = false;  // stolen state overwrote the stack
    tracer_.Event(obs::TraceEvent::kSteal, base_level);
    ObsAdopt(base_level);
    SetBusy(base_level, base_level);
    ProcessSubtree(base_level, /*extend_first=*/false,
                   /*decomposable=*/false);
    ClearBusy();
    ObsTaskDone();
    shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
    ++local_.steal_successes;
  }

  int64_t StackMemoryBytes() const { return stack_.MemoryBytes(); }

 private:
  // ---- observability ----

  // Brackets one adopted unit of work (chunk / queue task / child slice /
  // stolen slice): records the adopt event and, at ObsTaskDone, the work
  // units the task consumed into the task-duration histogram.
  void ObsAdopt(int64_t arg) {
    tracer_.Event(obs::TraceEvent::kAdopt, arg);
    adopt_work_ = work_.units;
  }

  void ObsTaskDone() {
    if (shared_->h_task_work != nullptr) {
      lh_task_work_.Observe(static_cast<int64_t>(work_.units - adopt_work_));
    }
  }

  // ---- clock ----

  void ResetClock() {
    if (config_.clock == ClockKind::kWall) {
      t0_ns_ = Timer::Now();
    } else {
      t0_work_ = work_.units;
    }
  }

  bool TimedOut() const {
    if (config_.clock == ClockKind::kWall) {
      return Timer::Now() - t0_ns_ >
             static_cast<int64_t>(config_.timeout_ms * 1e6);
    }
    return work_.units - t0_work_ > config_.timeout_work_units;
  }

  // ---- initial tasks ----

  bool TakeChunk(int64_t* begin, int64_t* end) {
    // Token first, so work_items can never read 0 while a chunk exists.
    shared_->work_items->fetch_add(1, std::memory_order_acq_rel);
    const int64_t total = shared_->num_owned_edges;
    const int64_t b =
        shared_->edge_cursor.fetch_add(config_.chunk_size,
                                       std::memory_order_acq_rel);
    if (b >= total) {
      shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    *begin = b;
    *end = std::min<int64_t>(b + config_.chunk_size, total);
    return true;
  }

  // Resolves the j-th owned initial task to a data edge.
  void OwnedEdge(int64_t j, VertexId* v0, VertexId* v1) const {
    int64_t edge_index;
    if (!shared_->host_filtered_edges.empty()) {
      edge_index = shared_->host_filtered_edges[j];
    } else {
      edge_index = shared_->OwnedEdgeIndex(j);
    }
    *v0 = graph_.EdgeSource(edge_index);
    *v1 = graph_.EdgeTarget(edge_index);
  }

  void ProcessChunk(int64_t begin, int64_t end) {
    SetBusy(2, 2);
    reuse_cache_valid_ = false;  // chunk processing overwrites stack[2]
    ResetClock();
    for (int64_t j = begin; j < end; ++j) {
      VertexId v0;
      VertexId v1;
      OwnedEdge(j, &v0, &v1);
      ++local_.edges_scanned;
      if (shared_->host_filtered_edges.empty() &&
          !PassesEdgeFilter(plan_, graph_, v0, v1,
                            config_.use_degree_filter)) {
        continue;
      }
      if (!PrefilterAdmitsEdge(config_.prefiltered, plan_.order[0],
                               plan_.order[1], v0, v1)) {
        continue;
      }
      ++local_.initial_tasks;
      if (k_ == 2) {
        ++matches_;
        if (shared_->sink != nullptr && !shared_->sink->Full()) {
          LockedAssign(&match_[0], v0);
          EmitMatch(v1);
        }
        continue;
      }
      LockedAssign(&match_[0], v0);
      LockedAssign(&match_[1], v1);
      const bool decomposable =
          config_.steal == StealStrategy::kTimeout && config_.stop_level >= 3;
      const SubtreeExit exit = ProcessSubtree(2, /*extend_first=*/true,
                                              decomposable, CanDefer());
      if (exit == SubtreeExit::kStackPressure) {
        // Pool dry before any candidate was consumed: hand the whole task
        // back to Q_task so another warp (or this one, later, after pages
        // have been freed) replays it from scratch. Exact because nothing
        // of this subtree was counted yet.
        if (!DeferTask(Task{v0, v1, kNoThirdVertex})) {
          MarkWriteFailure(StackWrite::kPoolExhausted);
        }
        continue;
      }
      if (exit == SubtreeExit::kDecomposed ||
          (config_.steal == StealStrategy::kTimeout && j + 1 < end &&
           TimedOut())) {
        // Timeout fired: flush the rest of this chunk into Q_task as
        // two-vertex tasks instead of processing it (Fig. 5). This is also
        // the only decomposition path when stop_level == 2.
        j = FlushChunkRemainder(j + 1, end);
      }
    }
    ClearBusy();
  }

  // Enqueues edges [from, end) as <v0, v1, -2> tasks. Returns the index of
  // the last edge handled (so the caller's loop resumes correctly if the
  // queue filled up and some edges must be processed in place).
  int64_t FlushChunkRemainder(int64_t from, int64_t end) {
    for (int64_t j = from; j < end; ++j) {
      VertexId v0;
      VertexId v1;
      OwnedEdge(j, &v0, &v1);
      ++local_.edges_scanned;
      if (shared_->host_filtered_edges.empty() &&
          !PassesEdgeFilter(plan_, graph_, v0, v1,
                            config_.use_degree_filter)) {
        continue;
      }
      if (!PrefilterAdmitsEdge(config_.prefiltered, plan_.order[0],
                               plan_.order[1], v0, v1)) {
        continue;
      }
      ++local_.initial_tasks;
      shared_->work_items->fetch_add(1, std::memory_order_acq_rel);
      if (!shared_->queue->Enqueue(Task{v0, v1, kNoThirdVertex})) {
        shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
        ++local_.queue_full_failures;
        // Queue full: process this edge in place with a fresh clock
        // (Alg. 4 lines 17-20) and let the loop continue enqueue attempts
        // on later timeouts.
        ResetClock();
        LockedAssign(&match_[0], v0);
        LockedAssign(&match_[1], v1);
        const SubtreeExit exit = ProcessSubtree(2, /*extend_first=*/true,
                                                config_.stop_level >= 3,
                                                CanDefer());
        if (exit == SubtreeExit::kStackPressure) {
          if (!DeferTask(Task{v0, v1, kNoThirdVertex})) {
            MarkWriteFailure(StackWrite::kPoolExhausted);
          }
          continue;
        }
        if (exit == SubtreeExit::kDecomposed) {
          continue;  // decomposed again; keep flushing the rest
        }
      } else {
        ++local_.tasks_enqueued;
        tracer_.Event(obs::TraceEvent::kEnqueue,
                      shared_->queue->ApproxSize());
      }
    }
    return end;
  }

  void ProcessQueueTask(const Task& task) {
    SetBusy(2, 2);
    ResetClock();
    LockedAssign(&match_[0], task.v1);
    LockedAssign(&match_[1], task.v2);
    if (!task.HasThird()) {
      reuse_cache_valid_ = false;  // this path overwrites stack[2]
      const bool decomposable =
          config_.steal == StealStrategy::kTimeout && config_.stop_level >= 3;
      if (ProcessSubtree(2, /*extend_first=*/true, decomposable,
                         CanDefer()) == SubtreeExit::kStackPressure) {
        if (!DeferTask(task)) {
          MarkWriteFailure(StackWrite::kPoolExhausted);
        }
      }
      ClearBusy();
      return;
    }
    // Three matched vertices: not decomposable any further (the StopLevel
    // rule). The task's v3 is a raw candidate for position 2; re-apply the
    // consume checks, and rebuild any level-2 reuse source it bypassed.
    // Decomposed siblings share (v1, v2) and FIFO order keeps them mostly
    // contiguous per warp, so the rebuild is memoized on that pair —
    // without this, a straggler split into thousands of tasks recomputes
    // the same (possibly hub-sized) intersection thousands of times.
    TDFS_CHECK(k_ > 3);
    if (!(reuse_cache_valid_ && reuse_cache_v0_ == task.v1 &&
          reuse_cache_v1_ == task.v2)) {
      reuse_cache_valid_ = false;  // rebuild in flight: don't trust on retry
      if (const StackWrite w = PopulateReuseSources(3);
          w != StackWrite::kOk) {
        // The rebuild itself ran dry. Nothing of this task was consumed
        // yet, so it can be deferred whole.
        if (!(w == StackWrite::kPoolExhausted && DeferTask(task))) {
          MarkWriteFailure(w);
        }
        ClearBusy();
        return;
      }
      reuse_cache_valid_ = true;
      reuse_cache_v0_ = task.v1;
      reuse_cache_v1_ = task.v2;
    }
    if (Valid(2, task.v3)) {
      LockedAssign(&match_[2], task.v3);
      if (ProcessSubtree(3, /*extend_first=*/true, /*decomposable=*/false,
                         CanDefer()) == SubtreeExit::kStackPressure) {
        if (!DeferTask(task)) {
          MarkWriteFailure(StackWrite::kPoolExhausted);
        }
      }
    }
    ClearBusy();
  }

  // ---- DFS core ----

  // kStackPressure: the base extension found the page pool dry before any
  // candidate was consumed; the caller may defer the task instead of
  // poisoning the job (only returned when `deferrable`).
  enum class SubtreeExit { kDone, kDecomposed, kStackPressure };

  // Slow path of match collection: reorder the completed match from plan
  // positions to query-vertex order and hand it to the sink.
  void EmitMatch(VertexId last) {
    std::vector<VertexId> by_query_vertex(k_);
    for (int p = 0; p < k_ - 1; ++p) {
      by_query_vertex[plan_.order[p]] = match_[p];
    }
    by_query_vertex[plan_.order[k_ - 1]] = last;
    shared_->sink->Add(std::span<const VertexId>(by_query_vertex));
  }

  // Deadline probe: a relaxed flag read per call, an actual clock read
  // every 1024 calls. Returns true once the job's time budget is gone.
  bool DeadlineHit() {
    if (shared_->deadline_ns == 0) {
      return false;
    }
    if ((++deadline_probe_ & 0x3FF) == 0 &&
        Timer::Now() > shared_->deadline_ns) {
      if (!shared_->Expired()) {
        tracer_.Event(obs::TraceEvent::kDeadlineFire);
      }
      shared_->expired.store(true, std::memory_order_relaxed);
      if (shared_->exchange != nullptr) {
        shared_->exchange->expired.store(true, std::memory_order_relaxed);
      }
    }
    return shared_->Expired();
  }

  // Consume-time candidate checks (injectivity, symmetry restrictions,
  // degree filter). One work unit per check, matching the single scan a
  // warp lane performs.
  bool Valid(int pos, VertexId v) {
    work_.Add(1);
    return PrefilterAdmits(config_.prefiltered, plan_.order[pos], v) &&
           PassesConsumeChecks(plan_, graph_, match_.data(), pos, v,
                               config_.use_degree_filter,
                               config_.delta_edges);
  }

  // Computes candidates of `level` into stack_[level]. Returns kOk, or the
  // write failure after pressure recovery (release + bounded retries) was
  // exhausted; the *caller* decides whether a failure poisons the job
  // (MarkWriteFailure) or the task can be deferred instead.
  StackWrite ExtendLevel(int level) {
    // Sampled per-cell wall time: count every extension, time 1 in 64.
    // attr_cell stays set for the whole extension so nested dispatch
    // calls charge their arm time to this cell.
    TimeAttributionSink* const attr = work_.attr;
    int64_t attr_t0 = 0;
    bool attr_sampled = false;
    if (attr != nullptr) {
      work_.attr_cell = level;
      ++attr->cell_calls[TimeAttributionSink::CellSlot(level)];
      attr_sampled =
          (attr->cell_tick++ & TimeAttributionSink::kSampleMask) == 0;
      if (attr_sampled) {
        attr_t0 = Timer::Now();
      }
    }
    cand_.clear();
    const int src = plan_.reuse_source[level];
    if (src >= 0) {
      tracer_.Event(obs::TraceEvent::kReuseHit, level);
      // Fig. 7 reuse: start from the stored candidates of `src`, read in
      // place from the (paged) stack rather than copied out.
      const std::vector<int>& rest = plan_.reuse_rest[level];
      auto stored = [this, src](int64_t i) { return stack_.Get(src, i); };
      if (rest.empty()) {
        // Identical backward sets: the result *is* the stored level.
        cand_.reserve(static_cast<size_t>(size_[src]));
        for (int64_t i = 0; i < size_[src]; ++i) {
          cand_.push_back(stored(i));
        }
        work_.Add(static_cast<uint64_t>(size_[src]));
      } else {
        auto rest_list = [this, level](int backward_pos) {
          return BackwardNeighborList(graph_, shared_->index.get(),
                                      match_[backward_pos],
                                      plan_.label_filter[level], &work_);
        };
        // Bitmaps are keyed the way the spans are fetched: per label
        // bucket behind the index, full CSR rows otherwise.
        const Label lookup_label = shared_->index != nullptr
                                       ? plan_.label_filter[level]
                                       : kNoLabel;
        const IntersectDispatch& isect = shared_->steps.At(level);
        IntersectStoredBase(isect, size_[src], stored,
                            rest_list(rest[0]), match_[rest[0]],
                            lookup_label, &scratch_.base, &cand_, &work_);
        for (size_t l = 1; l < rest.size(); ++l) {
          scratch_.b.clear();
          isect.Auto(VertexSpan(cand_), rest_list(rest[l]),
                     match_[rest[l]], lookup_label, &scratch_.b,
                     &work_);
          std::swap(cand_, scratch_.b);
          if (cand_.empty()) {
            break;
          }
        }
      }
      // Stored levels are already label-filtered; intersecting keeps that.
    } else {
      ComputeCandidates(graph_, shared_->index.get(), plan_, match_.data(),
                        level, shared_->steps.At(level), &scratch_, &cand_,
                        &work_);
    }
    const std::vector<VertexId>* final_cands = &cand_;
    if (config_.separate_vertex_removal) {
      // STMatch's extra pass: remove already-matched vertices with an
      // independent set-difference (Section IV-B calls this out as the
      // costly implementation choice).
      removal_scratch_.assign(match_.begin(), match_.begin() + level);
      std::sort(removal_scratch_.begin(), removal_scratch_.end());
      diff_scratch_.clear();
      DifferenceMerge(VertexSpan(cand_), VertexSpan(removal_scratch_),
                      &diff_scratch_, &work_);
      final_cands = &diff_scratch_;
    }
    // Publish content, size, and a reset iterator in one critical section:
    // with Half Steal a thief must never observe a size that disagrees with
    // the stored content (this per-extension lock hold is the very
    // contention the strategy comparison measures).
    std::unique_lock<std::mutex> lock(steal_mu_, std::defer_lock);
    if (config_.steal == StealStrategy::kHalfSteal) {
      lock.lock();
    }
    int64_t n = 0;
    StackWrite failure = StackWrite::kOk;
    for (VertexId v : *final_cands) {
      StackWrite w = stack_.TrySet(level, n, v);
      if (w == StackWrite::kPoolExhausted) {
        w = RecoverPoolExhaustion(level, n, v);
      }
      if (w != StackWrite::kOk) {
        failure = w;
        break;
      }
      ++n;
    }
    size_[level] = n;
    limit_[level] = n;
    iter_[level] = 0;
    work_.Add(static_cast<uint64_t>(n));
    if (shared_->h_isect_size != nullptr) {
      lh_isect_size_.Observe(n);
    }
    if constexpr (std::is_same_v<Stack, PagedWarpStack>) {
      if (config_.release_stack_pages ||
          shared_->pressure_mode.load(std::memory_order_relaxed)) {
        stack_.MaybeShrinkLevel(level, n);
      }
    }
    if (attr != nullptr) {
      const int slot = TimeAttributionSink::CellSlot(level);
      if (attr_sampled) {
        attr->cell_ns[slot] += static_cast<uint64_t>(Timer::Now() - attr_t0);
        ++attr->cell_sampled[slot];
      }
      work_.attr_cell = -1;
    }
    return failure;
  }

  // A paged-stack write found the shared pool dry. Degrade instead of
  // giving up: flip the job into pressure mode (which switches on the
  // paper's page-release heuristic everywhere), return this warp's own
  // dead pages — levels deeper than the one being extended hold stale
  // candidates that the next descent recomputes anyway, and live levels
  // may have sparse tails — then retry the write with doubling backoff
  // while other warps release pages. Called from ExtendLevel's publication
  // section, so under Half Steal the victim lock is already held.
  StackWrite RecoverPoolExhaustion(int level, int64_t pos, VertexId v) {
    shared_->pressure_mode.store(true, std::memory_order_relaxed);
    shared_->degraded.store(true, std::memory_order_relaxed);
    if (shared_->stack_overflow.load(std::memory_order_relaxed)) {
      // The job is already poisoned; recovery cannot un-poison it, so
      // don't burn backoff time on every subsequent write.
      return StackWrite::kPoolExhausted;
    }
    if constexpr (std::is_same_v<Stack, PagedWarpStack>) {
      int64_t released = 0;
      for (int s = level + 1; s < k_; ++s) {
        released += stack_.ReleaseLevel(s);
      }
      for (int s = 2; s < level; ++s) {
        released += stack_.MaybeShrinkLevel(s, size_[s]);
      }
      local_.pressure_pages_released += released;
      int64_t backoff = config_.pressure_backoff_ns;
      for (int attempt = 0; attempt < config_.pressure_max_retries;
           ++attempt) {
        ++local_.pressure_retries;
        const StackWrite w = stack_.TrySet(level, pos, v);
        if (w != StackWrite::kPoolExhausted) {
          return w;
        }
        if (DeadlineHit()) {
          break;
        }
        vgpu::Nanosleep(backoff);
        if (backoff < config_.pressure_backoff_ns * 64) {
          backoff *= 2;
        }
      }
    }
    return StackWrite::kPoolExhausted;
  }

  // A stack write failed for good: poison the job (sticky), recording
  // whether the cause was pool pressure so the final status says so.
  void MarkWriteFailure(StackWrite why) {
    shared_->stack_overflow.store(true, std::memory_order_relaxed);
    if (why == StackWrite::kPoolExhausted) {
      shared_->pool_failure.store(true, std::memory_order_relaxed);
    }
  }

  // True when stack-pressure task deferral is available at all.
  bool CanDefer() const {
    return config_.steal == StealStrategy::kTimeout &&
           shared_->queue != nullptr && config_.pressure_max_deferrals > 0;
  }

  // Re-enqueues a task whose root extension found the pool dry (nothing
  // of the task has been consumed, so replaying it later is exact).
  // Returns false when deferral is unavailable, over budget, or the queue
  // is full — the caller then poisons the job as before.
  bool DeferTask(const Task& task) {
    if (!CanDefer()) {
      return false;
    }
    if (shared_->deferrals.fetch_add(1, std::memory_order_acq_rel) >=
        config_.pressure_max_deferrals) {
      return false;
    }
    shared_->work_items->fetch_add(1, std::memory_order_acq_rel);
    if (!shared_->queue->Enqueue(task)) {
      shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
      ++local_.queue_full_failures;
      return false;
    }
    ++local_.tasks_enqueued;  // keeps enqueued == dequeued at job end
    ++local_.deferred_tasks;
    tracer_.Event(obs::TraceEvent::kEnqueue, shared_->queue->ApproxSize());
    return true;
  }

  // Iterative backtracking from `base` (Alg. 2 with the Alg. 4 additions).
  // Precondition: match_[0..base) set; when !extend_first, stack_[base]
  // already holds candidates with iter_[base] positioned.
  SubtreeExit ProcessSubtree(int base, bool extend_first, bool decomposable,
                             bool deferrable = false) {
    int level = base;
    if (extend_first) {
      const StackWrite w = ExtendLevel(level);  // also resets iter_[level]
      if (w != StackWrite::kOk) {
        if (w == StackWrite::kPoolExhausted && deferrable) {
          // Nothing of this subtree has been consumed yet; hand the whole
          // task back to the caller for deferral.
          return SubtreeExit::kStackPressure;
        }
        // Keep the seed semantics: process the truncated level (the job is
        // poisoned, so the partial count is discarded either way).
        MarkWriteFailure(w);
      }
    }
    LockedAssign(&current_level_, level);
    while (true) {
      if (DeadlineHit()) {
        return SubtreeExit::kDone;  // abandon; job reports the deadline
      }
      if (level == k_ - 1) {
        // Last position: count valid candidates without descending.
        // (Thieves never window the last level — high caps at k-2 — so
        // one locked read of the bound suffices.)
        const int64_t last_limit = LockedReadLimit(level);
        uint64_t found = 0;
        for (int64_t i = 0; i < last_limit; ++i) {
          const VertexId v = stack_.Get(level, i);
          if (Valid(level, v)) {
            ++found;
            if (shared_->sink != nullptr && !shared_->sink->Full()) {
              EmitMatch(v);
            }
          }
        }
        matches_ += found;
        --level;
        if (level < base) {
          return SubtreeExit::kDone;
        }
        LockedAssign(&current_level_, level);
        LockedIncrement(&iter_[level]);
        continue;
      }
      if (iter_[level] >= LockedReadLimit(level)) {
        --level;
        if (level < base) {
          return SubtreeExit::kDone;
        }
        LockedAssign(&current_level_, level);
        LockedIncrement(&iter_[level]);
        continue;
      }
      const VertexId v = stack_.Get(level, iter_[level]);
      if (!Valid(level, v)) {
        LockedIncrement(&iter_[level]);
        continue;
      }
      if (decomposable && level == 2 && TimedOut()) {
        if (EnqueueRemainingLevel2()) {
          ++local_.timeout_splits;
          tracer_.Event(obs::TraceEvent::kTimeoutSplit, level);
          obs::Observe(shared_->h_split_depth, level);
          return SubtreeExit::kDecomposed;
        }
        // Queue full: the failed candidate is back under iter_[2]; restore
        // regular backtracking with a fresh clock (Alg. 4 lines 17-20) and
        // re-enter the loop so it is processed in place.
        ResetClock();
        continue;
      }
      LockedAssign(&match_[level], v);
      ++level;
      // Mid-subtree, candidates above have been consumed already, so a
      // failed extension cannot be deferred — truncate and poison.
      if (const StackWrite w = ExtendLevel(level); w != StackWrite::kOk) {
        MarkWriteFailure(w);
      }
      LockedAssign(&current_level_, level);
      if (config_.steal == StealStrategy::kNewKernel && level < k_ - 1 &&
          size_[level] >= config_.newkernel_fanout_threshold) {
        if (SpawnChildKernel(level)) {
          // The child kernel owns every candidate of this level; backtrack.
          LockedAssign(&iter_[level], size_[level]);
        }
      }
    }
  }

  // Turns the remaining level-2 candidates (iter_[2] onward) into
  // <v0, v1, c> tasks. Returns false if the queue filled up (caller
  // resumes in-place processing).
  bool EnqueueRemainingLevel2() {
    while (iter_[2] < LockedReadLimit(2)) {
      const VertexId c = stack_.Get(2, iter_[2]);
      LockedIncrement(&iter_[2]);
      if (!Valid(2, c)) {
        continue;
      }
      shared_->work_items->fetch_add(1, std::memory_order_acq_rel);
      if (!shared_->queue->Enqueue(Task{match_[0], match_[1], c})) {
        shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
        ++local_.queue_full_failures;
        // Undo the advance so the caller processes c in place.
        LockedAssign(&iter_[2], iter_[2] - 1);
        return false;
      }
      ++local_.tasks_enqueued;
      tracer_.Event(obs::TraceEvent::kEnqueue, shared_->queue->ApproxSize());
    }
    return true;
  }

  // Recomputes stack levels in [2, upto) that later positions reuse
  // (needed when a warp starts from a prefix it did not extend itself:
  // dequeued 3-vertex tasks, child-kernel slices). Ascending order and a
  // "reused by anyone deeper" condition make the population transitive:
  // a reuse source whose own extension reuses an earlier level finds that
  // level already rebuilt. Stops at the first failed rebuild — a stale
  // reuse source must never be intersected against.
  StackWrite PopulateReuseSources(int upto) {
    for (int s = 2; s < upto; ++s) {
      bool needed = false;
      for (int j = s + 1; j < k_ && !needed; ++j) {
        needed = plan_.reuse_source[j] == s;
      }
      if (needed) {
        if (const StackWrite w = ExtendLevel(s); w != StackWrite::kOk) {
          return w;
        }
      }
    }
    return StackWrite::kOk;
  }

  // ---- New Kernel strategy ----

  bool SpawnChildKernel(int level) {
    if (shared_->kernel_budget.fetch_sub(1, std::memory_order_acq_rel) <=
        0) {
      shared_->kernel_budget.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Bound *resident* kernels as the device would; this also keeps the
    // ephemeral child stacks from draining the shared page pool.
    if (shared_->kernels_active.fetch_add(1, std::memory_order_acq_rel) >=
        config_.newkernel_max_concurrent) {
      shared_->kernels_active.fetch_sub(1, std::memory_order_relaxed);
      shared_->kernel_budget.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    shared_->work_items->fetch_add(1, std::memory_order_acq_rel);
    auto prefix = std::make_shared<std::vector<VertexId>>(
        match_.begin(), match_.begin() + level);
    auto candidates = std::make_shared<std::vector<VertexId>>();
    candidates->reserve(static_cast<size_t>(size_[level]));
    for (int64_t i = 0; i < size_[level]; ++i) {
      candidates->push_back(stack_.Get(level, i));
    }
    ++local_.kernels_launched;
    local_.child_warps_launched += config_.newkernel_child_warps;
    SharedState<Stack>* shared = shared_;
    const int child_warps = config_.newkernel_child_warps;
    const int64_t overhead = config_.newkernel_launch_overhead_ns;
    const int32_t child_seq =
        shared_->child_track_seq.fetch_add(1, std::memory_order_relaxed);
    std::thread t([shared, prefix, candidates, level, child_warps,
                   overhead, child_seq] {
      const bool launched = vgpu::LaunchKernel(
          child_warps,
          [shared, prefix, candidates, level, child_warps,
           child_seq](int lane) {
            // Every child warp allocates a fresh stack — the per-kernel
            // memory cost the paper charges this strategy with.
            WarpRunner<Stack> child(shared, MakeStack(*shared));
            child.InitObs("child" + std::to_string(child_seq) + "-w" +
                          std::to_string(lane));
            std::copy(prefix->begin(), prefix->end(), child.match_.begin());
            child.ChildSlice(level, *candidates, lane, child_warps);
          },
          &shared->launch_stats, overhead, shared->config->trace,
          shared->device_id);
      if (!launched) {
        // Launch failure (injected device fault). The subtree was already
        // handed off, so losing it would lose counts — run it inline with
        // a single recovery warp instead. Slower, never wrong.
        shared->degraded.store(true, std::memory_order_relaxed);
        WarpRunner<Stack> solo(shared, MakeStack(*shared));
        solo.InitObs("recover" + std::to_string(child_seq));
        std::copy(prefix->begin(), prefix->end(), solo.match_.begin());
        solo.ChildSlice(level, *candidates, 0, 1);
      }
      shared->kernels_active.fetch_sub(1, std::memory_order_acq_rel);
      shared->work_items->fetch_sub(1, std::memory_order_acq_rel);
    });
    std::lock_guard<std::mutex> lock(shared_->child_threads_mu);
    shared_->child_threads.push_back(std::move(t));
    return true;
  }

  // ---- Half Steal strategy ----

  // Per-warp steal randomness, lazily seeded from the warp's identity
  // (self_index_ is assigned after construction). Only steal-victim
  // selection consumes it, so counts stay exact regardless of order.
  uint64_t NextStealRand() {
    if (steal_rng_state_ == 0) {
      steal_rng_state_ =
          0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(self_index_) + 1) +
          static_cast<uint64_t>(shared_->device_id) + 1;
    }
    SplitMix64 mix(steal_rng_state_);
    const uint64_t r = mix();
    steal_rng_state_ = r | 1;  // keep the lazy-seed sentinel unreachable
    return r;
  }

  // Thieves probe victims from a randomized start. A fixed linear scan
  // from self_index_+1 makes every idle thief converge on the same victim
  // (convoying: all locks pile onto warp 0's successor); the random start
  // spreads probe traffic across the pool.
  bool TrySteal() {
    ++local_.steal_attempts;
    const int n = static_cast<int>(shared_->warps.size());
    if (n <= 1) {
      return false;
    }
    const int start =
        static_cast<int>(NextStealRand() % static_cast<uint64_t>(n));
    for (int offset = 0; offset < n; ++offset) {
      WarpRunner<Stack>* victim = shared_->warps[(start + offset) % n].get();
      if (victim == this) {
        continue;
      }
      ++local_.steal_probes;
      lc_steal_probes_.Add();
      if (StealFrom(victim)) {
        return true;
      }
    }
    return false;
  }

  // ---- cross-shard steal tier (sharded runs only) ----

  // Pulls one task from a sibling shard's queue, randomized scan start.
  // The adopted task runs against THIS shard's view (non-local adjacency
  // resolves through the halo or a remote fetch, so the subtree's work is
  // identical to the owner processing it), and any tasks it spawns —
  // timeout splits, pressure deferrals — go to this shard's own queue.
  // Tokens are conserved because the work-token count spans all shards.
  bool TryCrossShardDequeue() {
    auto* ex = shared_->exchange;
    const int num = ex->num_shards;
    if (num <= 1) {
      return false;
    }
    const int start =
        static_cast<int>(NextStealRand() % static_cast<uint64_t>(num));
    for (int k = 0; k < num; ++k) {
      const int s = (start + k) % num;
      if (s == shared_->shard_id) {
        continue;
      }
      TaskQueue* queue = ex->queues[static_cast<size_t>(s)];
      if (queue == nullptr) {
        continue;
      }
      Task task;
      if (queue->Dequeue(&task)) {
        ++local_.tasks_dequeued;
        ++local_.shard_cross_steals;
        tracer_.Event(obs::TraceEvent::kDequeue, queue->ApproxSize());
        ObsAdopt(task.HasThird() ? 3 : 2);
        ProcessQueueTask(task);
        ObsTaskDone();
        shared_->work_items->fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
    return false;
  }

  bool StealFrom(WarpRunner<Stack>* victim) {
    std::unique_lock<std::mutex> lock(victim->steal_mu_);
    if (!victim->busy_) {
      return false;
    }
    const int low = std::max(victim->busy_base_, 2);
    const int high = std::min(victim->current_level_, k_ - 2);
    for (int level = low; level <= high; ++level) {
      const int64_t remaining =
          victim->limit_[level] - victim->iter_[level] - 1;
      if (remaining < 1) {
        continue;
      }
      const int64_t take = (remaining + 1) / 2;
      const int64_t mid = victim->limit_[level] - take;
      // Copy the path prefix and the stack levels up to and including the
      // stolen one *in full* (deeper positions may reuse any of them as an
      // intersection base), then window the stolen level to its tail via
      // iter/limit. This copy — performed while holding the victim's lock,
      // with the victim blocked on its own stack — is the cost the paper
      // attributes to Half Steal.
      std::copy(victim->match_.begin(), victim->match_.begin() + level,
                match_.begin());
      for (int s = 2; s <= level; ++s) {
        for (int64_t i = 0; i < victim->size_[s]; ++i) {
          stack_.Set(s, i, victim->stack_.Get(s, i));
        }
        size_[s] = victim->size_[s];
        work_.Add(static_cast<uint64_t>(victim->size_[s]));
      }
      iter_[level] = mid;                     // thief takes [mid, limit)
      limit_[level] = victim->limit_[level];
      victim->limit_[level] = mid;            // victim keeps [iter, mid)
      lock.unlock();
      shared_->work_items->fetch_add(1, std::memory_order_acq_rel);
      RunStolen(level);
      return true;
    }
    return false;
  }

  // Victim-side mutation guards: with Half Steal enabled every touch of
  // iter_/size_/match_/current_level_ locks the warp's own stack mutex —
  // the overhead STMatch pays on every DFS step (Section II, Fig. 2).
  template <typename T>
  void LockedAssign(T* slot, T value) {
    if (config_.steal == StealStrategy::kHalfSteal) {
      std::lock_guard<std::mutex> lock(steal_mu_);
      *slot = value;
    } else {
      *slot = value;
    }
  }

  void LockedIncrement(int64_t* slot) {
    if (config_.steal == StealStrategy::kHalfSteal) {
      std::lock_guard<std::mutex> lock(steal_mu_);
      ++*slot;
    } else {
      ++*slot;
    }
  }

  // The one field a thief *writes* into a victim is limit_; the victim
  // must therefore read it under its own lock (everything else is either
  // self-written or only read by thieves).
  int64_t LockedReadLimit(int level) {
    if (config_.steal == StealStrategy::kHalfSteal) {
      std::lock_guard<std::mutex> lock(steal_mu_);
      return limit_[level];
    }
    return limit_[level];
  }

  void SetBusy(int base, int level) {
    if (config_.steal != StealStrategy::kHalfSteal) {
      busy_ = true;
      busy_base_ = base;
      current_level_ = level;
      return;
    }
    std::lock_guard<std::mutex> lock(steal_mu_);
    busy_ = true;
    busy_base_ = base;
    current_level_ = level;
  }

  void ClearBusy() {
    if (config_.steal != StealStrategy::kHalfSteal) {
      busy_ = false;
      return;
    }
    std::lock_guard<std::mutex> lock(steal_mu_);
    busy_ = false;
  }

  // ---- teardown ----

  void Finish() {
    // Release stack pages before the clock below is folded away and
    // zeroed, so the page_release trace event carries the warp's final
    // timestamp instead of 0 from the destructor (which would break the
    // per-track monotonicity the exporter guarantees).
    if constexpr (std::is_same_v<Stack, PagedWarpStack>) {
      if (tracer_.enabled()) {
        stack_.ReleaseAll();
        stack_.SetTracer(nullptr);
      }
    }
    shared_->matches.fetch_add(matches_, std::memory_order_relaxed);
    matches_ = 0;
    local_.work_units += work_.units;
    work_.units = 0;
    // Each warp context finishes exactly once, so its lifetime total is
    // the per-warp figure the makespan metric maximizes over.
    local_.max_warp_work_units = local_.work_units;
    std::lock_guard<std::mutex> lock(shared_->counters_mu);
    shared_->counters.MergeFrom(local_);
    local_ = RunCounters{};
    if (work_.attr != nullptr) {
      shared_->attr.MergeFrom(attr_);
      attr_ = TimeAttributionSink{};
      work_.attr = nullptr;
    }
    // Warp-local metric buffers drain into the shared handles exactly
    // once: per-event recording stays free of cross-warp cache traffic.
    lh_task_work_.FlushTo(shared_->h_task_work);
    lh_isect_size_.FlushTo(shared_->h_isect_size);
    lc_idle_polls_.FlushTo(shared_->c_idle_polls);
    lc_steal_probes_.FlushTo(shared_->c_steal_probes);
  }

 public:
  static Stack MakeStack(SharedState<Stack>& shared);

  int self_index_ = 0;

 private:
  SharedState<Stack>* shared_;
  const Graph& graph_;
  const MatchPlan& plan_;
  const EngineConfig& config_;
  const int k_;

  Stack stack_;
  // size_ = stored candidate count (the content, used as a reuse base);
  // limit_ = iteration bound (window end). They differ only when a thief
  // has taken the tail [limit_, size_-original) of a level: stealing moves
  // the window but must never truncate the content, because deeper
  // positions intersect against the full set (Fig. 7 reuse).
  std::vector<int64_t> size_;
  std::vector<int64_t> limit_;
  std::vector<int64_t> iter_;
  std::vector<VertexId> match_;

  CandidateScratch scratch_;
  std::vector<VertexId> cand_;
  std::vector<VertexId> removal_scratch_;
  std::vector<VertexId> diff_scratch_;

  WorkCounter work_;
  uint64_t matches_ = 0;
  RunCounters local_;
  TimeAttributionSink attr_;  // referenced by work_.attr when tracing

  obs::WarpTracer tracer_;   // disabled unless InitObs ran with a session
  uint64_t adopt_work_ = 0;  // work_.units at the last ObsAdopt
  // Warp-local mirrors of the shared trace metrics (see Finish).
  obs::LocalHistogram lh_task_work_;
  obs::LocalHistogram lh_isect_size_;
  obs::LocalCounter lc_idle_polls_;
  obs::LocalCounter lc_steal_probes_;

  // Steal-victim randomization state; 0 = not yet seeded (NextStealRand).
  uint64_t steal_rng_state_ = 0;

  int64_t t0_ns_ = 0;
  uint64_t t0_work_ = 0;
  uint32_t deadline_probe_ = 0;

  // Memo for the level-2 reuse-source rebuild of 3-vertex queue tasks.
  bool reuse_cache_valid_ = false;
  VertexId reuse_cache_v0_ = -1;
  VertexId reuse_cache_v1_ = -1;

  // Half-steal visibility.
  std::mutex steal_mu_;
  bool busy_ = false;
  int busy_base_ = 2;
  int current_level_ = 2;
};

template <>
PagedWarpStack WarpRunner<PagedWarpStack>::MakeStack(
    SharedState<PagedWarpStack>& shared) {
  return PagedWarpStack(shared.allocator, shared.plan->num_vertices,
                        shared.config->page_table_capacity);
}

template <>
ArrayWarpStack WarpRunner<ArrayWarpStack>::MakeStack(
    SharedState<ArrayWarpStack>& shared) {
  const int64_t capacity =
      shared.config->stack == StackKind::kArrayFixed
          ? shared.config->fixed_stack_capacity
          : std::max<int64_t>(shared.graph->MaxDegree(), 1);
  return ArrayWarpStack(shared.plan->num_vertices, capacity);
}

// ---------------------------------------------------------------------------
// Job driver
// ---------------------------------------------------------------------------

template <typename Stack>
RunResult RunDfsEngineT(const Graph& graph, const MatchPlan& plan,
                        const EngineConfig& config, int device_id,
                        MatchSink* sink) {
  RunResult result;
  if (TDFS_INJECT_FAILURE("device_run")) {
    // Whole-device fault (the model for a device falling off the bus or a
    // kernel aborting): fail before any work so RunMatching's failover can
    // re-execute this edge slice elsewhere.
    result.status = Status::Internal("injected device failure (device " +
                                     std::to_string(device_id) + ")");
    result.counters.failpoint_fires = 1;  // fired before the run's snapshot
    return result;
  }
  const int64_t failpoint_fires_before = fail::TotalFires();
  SharedState<Stack> shared;
  shared.graph = &graph;
  shared.plan = &plan;
  shared.config = &config;
  shared.device_id = device_id;
  shared.sink = sink;
  if (config.shard_id >= 0) {
    // Sharded run: this engine owns shard_id's view, whose CSR already
    // holds exactly the shard's owned edges (offset 0 / stride 1 covers
    // them all; device_id only names spans and trace tracks). Work tokens
    // live on the job-global exchange counter so routed tasks and
    // cross-shard steals keep the termination protocol exact.
    shared.shard_id = config.shard_id;
    shared.edge_offset = 0;
    shared.edge_stride = 1;
    if (config.shard_exchange != nullptr) {
      shared.exchange = config.shard_exchange;
      shared.work_items = &config.shard_exchange->work_items;
    }
  } else {
    shared.edge_offset = device_id;
    shared.edge_stride = config.num_devices;
  }
  if (sink != nullptr) {
    TDFS_CHECK_MSG(sink->num_vertices() == plan.num_vertices,
                   "sink width does not match the query");
  }
  shared.kernel_budget.store(config.newkernel_max_kernels,
                             std::memory_order_relaxed);
  if (config.trace != nullptr) {
    obs::MetricsRegistry* metrics = config.trace->metrics();
    shared.h_task_work = metrics->GetHistogram("dfs.task_work_units");
    shared.h_split_depth = metrics->GetHistogram("dfs.split_depth");
    shared.h_isect_size = metrics->GetHistogram("dfs.intersection_size");
    shared.c_idle_polls = metrics->GetCounter("dfs.idle_polls");
    shared.c_steal_probes = metrics->GetCounter("dfs.steal_probes");
  }

  Timer total_timer;
  if (config.max_run_ms > 0) {
    // The deadline bounds the *whole* run, preprocessing included: a
    // host-side edge filter or OOM-model scan over a huge graph must not
    // consume a budget the kernel then never sees.
    shared.deadline_ns =
        Timer::Now() + static_cast<int64_t>(config.max_run_ms * 1e6);
  }
  const auto preprocess_deadline_hit = [&shared](int64_t iteration) {
    return shared.deadline_ns != 0 && (iteration & 0xFFF) == 0 &&
           Timer::Now() > shared.deadline_ns;
  };

  // ---- preprocessing (charged separately, Section IV-B) ----
  Timer preprocess_timer;
  if (config.use_label_index) {
    // The label index can only answer "neighbors with label L" queries; an
    // unlabeled query position on a labeled graph needs the full list, so
    // the index is skipped (plain CSR) in that mixed case.
    bool every_position_labeled = true;
    for (Label l : plan.label_filter) {
      every_position_labeled = every_position_labeled && l != kNoLabel;
    }
    // Shard views also skip the index: it buckets every global vertex's
    // adjacency, which a shard neither holds nor should replicate. The
    // engine falls back to plain CSR access — counts are unchanged (the
    // index is an access-path optimization).
    if ((!graph.IsLabeled() || every_position_labeled) &&
        !graph.IsShardView()) {
      shared.index = std::make_unique<LabelIndex>(graph);
    }
  }
  // Intersection backend: resolve the kernel table and (mode permitting)
  // build the hub bitmap index — per label bucket when the index is in
  // play, so label-filtered spans never meet a full-row bitmap. Charged as
  // preprocessing, like the label index.
  if (UsesHubBitmaps(config.intersect)) {
    shared.bitmaps = HubBitmapIndex::Build(graph, shared.index.get(),
                                           config.bitmap_min_degree);
  }
  shared.steps = StepDispatchTable(plan, config.intersect, &shared.bitmaps);
  const int64_t num_directed = graph.NumDirectedEdges();
  int64_t owned = 0;
  for (int64_t e = shared.edge_offset; e < num_directed;
       e += shared.edge_stride) {
    ++owned;
  }
  if (config.initial_edges != nullptr) {
    // Incremental-maintenance seeding: enumerate only the caller-supplied
    // directed edges (round-robin across devices), reusing the
    // host-prefilter slot so warps skip the per-edge filter — the dyn
    // layer already applied PassesEdgeFilter when building the seed list.
    // The shard runner uses the same slot for a shard's kept-local seeds
    // (offset 0 / stride 1: the list is already per-shard).
    const std::vector<int64_t>& seeds = *config.initial_edges;
    for (int64_t j = shared.edge_offset;
         j < static_cast<int64_t>(seeds.size()); j += shared.edge_stride) {
      const int64_t e = seeds[j];
      if (e < 0 || e >= num_directed) {
        result.total_ms = total_timer.ElapsedMillis();
        result.status = Status::InvalidArgument(
            "initial_edges[" + std::to_string(j) + "] = " +
            std::to_string(e) + " is not a directed-edge index of the " +
            "graph (expected [0, " + std::to_string(num_directed) + "))");
        return result;
      }
      shared.host_filtered_edges.push_back(e);
    }
    shared.num_owned_edges =
        static_cast<int64_t>(shared.host_filtered_edges.size());
  } else if (config.host_side_edge_filter) {
    // STMatch-style single-core host prefilter over this device's edges.
    for (int64_t j = 0; j < owned; ++j) {
      if (preprocess_deadline_hit(j)) {
        result.counters.preprocess_ms = preprocess_timer.ElapsedMillis();
        result.total_ms = total_timer.ElapsedMillis();
        result.status = Status::DeadlineExceeded(
            "matching aborted during preprocessing after " +
            std::to_string(config.max_run_ms) + " ms");
        return result;
      }
      const int64_t e = shared.OwnedEdgeIndex(j);
      const VertexId v0 = graph.EdgeSource(e);
      const VertexId v1 = graph.EdgeTarget(e);
      if (PassesEdgeFilter(plan, graph, v0, v1, config.use_degree_filter) &&
          PrefilterAdmitsEdge(config.prefiltered, plan.order[0],
                              plan.order[1], v0, v1)) {
        shared.host_filtered_edges.push_back(e);
      }
    }
    shared.num_owned_edges =
        static_cast<int64_t>(shared.host_filtered_edges.size());
  } else {
    shared.num_owned_edges = owned;
  }
  result.counters.preprocess_ms = preprocess_timer.ElapsedMillis();

  // EGSM OOM model (Table IV): the CT-index materializes compact candidate
  // sets per query edge (three ints per candidate across its cuc/off/nbr
  // levels). At low label selectivity nearly every data edge is a
  // candidate for every query edge, which is what blows past device memory
  // in the paper; higher |L| shrinks this superlinearly.
  if (config.device_memory_budget_bytes > 0 && shared.index != nullptr) {
    int64_t candidate_edges = 0;
    for (int64_t e = 0; e < num_directed; ++e) {
      if (preprocess_deadline_hit(e)) {
        result.total_ms = total_timer.ElapsedMillis();
        result.status = Status::DeadlineExceeded(
            "matching aborted during preprocessing after " +
            std::to_string(config.max_run_ms) + " ms");
        return result;
      }
      if (PassesEdgeFilter(plan, graph, graph.EdgeSource(e),
                           graph.EdgeTarget(e), config.use_degree_filter) &&
          PrefilterAdmitsEdge(config.prefiltered, plan.order[0],
                              plan.order[1], graph.EdgeSource(e),
                              graph.EdgeTarget(e))) {
        ++candidate_edges;
      }
    }
    int64_t query_edges = 0;
    for (const auto& backward : plan.backward) {
      query_edges += static_cast<int64_t>(backward.size());
    }
    const int64_t needed = candidate_edges * query_edges * 12;
    if (needed > config.device_memory_budget_bytes) {
      result.status = Status::ResourceExhausted(
          "CT-index candidate materialization needs " +
          std::to_string(needed) + " bytes > budget " +
          std::to_string(config.device_memory_budget_bytes));
      return result;
    }
  }

  // ---- shared structures ----
  // Borrowed arena resources are adopted only when their geometry matches
  // the config — the retry escalation ladder grows page_pool_pages, and a
  // stale-sized borrowed pool must never shadow that. Adopted resources
  // get their stats reset (per-run peaks) and their observability sink
  // rebound to this run's trace session (or detached when tracing is off:
  // a previous traced run may have left a dangling histogram attached).
  if (config.stack == StackKind::kPaged) {
    PageAllocator* borrowed =
        config.resources != nullptr ? config.resources->allocator : nullptr;
    if (borrowed != nullptr && borrowed->num_pages() == config.page_pool_pages &&
        borrowed->page_bytes() == config.page_bytes &&
        borrowed->spill_enabled() == config.spill_to_host) {
      if (borrowed->PagesInUse() != 0) {
        // A pristine lease has zero pages out; nonzero means a previous
        // borrower leaked. ResetStats would rebaseline the peak to the
        // leak and hide it, so refuse the resources instead — loudly and
        // non-retryably (the same lease would fail every attempt).
        result.counters.adoption_rejects = 1;
        result.total_ms = total_timer.ElapsedMillis();
        result.status = Status::FailedPrecondition(
            "borrowed page allocator has " +
            std::to_string(borrowed->PagesInUse()) +
            " pages still in use; refusing adoption (leaked by a previous "
            "lease)");
        return result;
      }
      borrowed->ResetStats();
      shared.allocator = borrowed;
    } else {
      SpillOptions spill;
      spill.enabled = config.spill_to_host;
      spill.max_spill_pages = config.max_spill_pages;
      spill.governor = config.governor;
      shared.owned_allocator = std::make_unique<PageAllocator>(
          config.page_pool_pages, config.page_bytes, spill);
      shared.allocator = shared.owned_allocator.get();
    }
    shared.allocator->AttachObs(
        config.trace != nullptr
            ? config.trace->metrics()->GetHistogram("mem.page_pool_occupancy")
            : nullptr);
  }
  if (config.steal == StealStrategy::kTimeout) {
    TaskQueue* borrowed =
        config.resources != nullptr ? config.resources->queue : nullptr;
    if (borrowed != nullptr &&
        borrowed->capacity_ints() == config.queue_capacity_ints) {
      borrowed->ResetStats();
      shared.queue = borrowed;
    } else {
      shared.owned_queue =
          std::make_unique<TaskQueue>(config.queue_capacity_ints);
      shared.queue = shared.owned_queue.get();
    }
    shared.queue->AttachObs(
        config.trace != nullptr
            ? config.trace->metrics()->GetHistogram("queue.occupancy_tasks")
            : nullptr);
  }

  Timer match_timer;
  shared.warps.reserve(config.num_warps);
  for (int w = 0; w < config.num_warps; ++w) {
    auto runner = std::make_unique<WarpRunner<Stack>>(
        &shared, WarpRunner<Stack>::MakeStack(shared));
    runner->self_index_ = w;
    runner->InitObs("warp" + std::to_string(w));
    shared.warps.push_back(std::move(runner));
  }

  if (!vgpu::LaunchKernel(
          config.num_warps,
          [&shared](int warp_id) { shared.warps[warp_id]->ResidentLoop(); },
          &shared.launch_stats, /*launch_overhead_ns=*/0, config.trace,
          device_id)) {
    // Main kernel never ran: no partial state to reconcile. Report an
    // internal (retryable) failure; RunMatching's policy decides whether
    // to re-execute this device's slice.
    result.counters.failpoint_fires =
        fail::TotalFires() - failpoint_fires_before;
    result.total_ms = total_timer.ElapsedMillis();
    result.status = Status::Internal(
        "kernel launch failed on device " + std::to_string(device_id));
    return result;
  }

  // Child kernels may still be registered after warps exit (they hold work
  // tokens, so warps waited for their completion; join the threads).
  {
    std::lock_guard<std::mutex> lock(shared.child_threads_mu);
    for (auto& t : shared.child_threads) {
      t.join();
    }
    shared.child_threads.clear();
  }
  result.match_ms = match_timer.ElapsedMillis();

  // ---- collect ----
  result.match_count = shared.matches.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shared.counters_mu);
    RunCounters merged = shared.counters;
    merged.preprocess_ms += result.counters.preprocess_ms;
    result.counters = merged;
    if (config.trace != nullptr && !shared.attr.Empty()) {
      result.attribution = TimeAttribution::FromSink(shared.attr);
    }
  }
  int64_t stack_bytes =
      shared.stack_bytes_total.load(std::memory_order_relaxed);
  for (const auto& warp : shared.warps) {
    stack_bytes += warp->StackMemoryBytes();
  }
  result.counters.stack_bytes_peak = stack_bytes;
  if (shared.allocator != nullptr) {
    result.counters.pages_peak = shared.allocator->PeakPagesInUse();
    result.counters.alloc_misses = shared.allocator->AllocMisses();
    result.counters.spill_allocs = shared.allocator->TotalSpillAllocs();
    result.counters.spill_pages_peak = shared.allocator->SpillPagesPeak();
    result.counters.spill_promotions = shared.allocator->SpillPromotions();
    // Peak pool usage is the honest device footprint for the paged design.
    result.counters.stack_bytes_peak =
        shared.allocator->PeakPagesInUse() * shared.allocator->page_bytes() +
        static_cast<int64_t>(config.num_warps) * plan.num_vertices *
            config.page_table_capacity *
            static_cast<int64_t>(sizeof(PageId));
  }
  result.counters.stack_overflow =
      shared.stack_overflow.load(std::memory_order_relaxed);
  result.counters.failpoint_fires =
      fail::TotalFires() - failpoint_fires_before;
  result.counters.degraded_mode =
      shared.pressure_mode.load(std::memory_order_relaxed) ||
      shared.degraded.load(std::memory_order_relaxed);
  if (shared.queue != nullptr) {
    result.counters.queue_peak_tasks = shared.queue->PeakSizeInts() / 3;
  }
  if (shared.Expired()) {
    result.status = Status::DeadlineExceeded(
        "matching aborted after " + std::to_string(config.max_run_ms) +
        " ms; partial count");
    result.total_ms = total_timer.ElapsedMillis();
    return result;
  }
  if (result.counters.stack_overflow &&
      config.stack != StackKind::kArrayFixed) {
    // Truncation is expected (and reported) for the hardcoded-capacity
    // baseline; for the paged backend it means the pool is undersized.
    if (shared.pool_failure.load(std::memory_order_relaxed)) {
      result.status = Status::ResourceExhausted(
          "page pool exhausted despite pressure release/retries"
          " (retries=" +
          std::to_string(result.counters.pressure_retries) +
          ", deferred=" + std::to_string(result.counters.deferred_tasks) +
          "); grow page_pool_pages or enable retry escalation");
    } else {
      result.status = Status::ResourceExhausted(
          "stack overflow: page pool or capacity too small for this job");
    }
  }
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace

RunResult RunDfsEngine(const Graph& graph, const MatchPlan& plan,
                       const EngineConfig& config, int device_id,
                       MatchSink* sink) {
  if (config.stack == StackKind::kPaged) {
    return RunDfsEngineT<PagedWarpStack>(graph, plan, config, device_id,
                                         sink);
  }
  return RunDfsEngineT<ArrayWarpStack>(graph, plan, config, device_id,
                                       sink);
}

}  // namespace tdfs
