// The warp-based depth-first matching engine (Alg. 2 / Alg. 4).
//
// One engine implements all four load-balancing strategies of Fig. 11 —
// timeout decomposition into the lock-free task queue (T-DFS), lock-based
// half stealing (STMatch), child-kernel spawning (EGSM), and no stealing —
// over either stack backend (paged / fixed arrays), so that any benchmark
// comparison varies exactly one mechanism. The paper does the same: it
// re-implements Half Steal and New Kernel inside the T-DFS framework for
// Section IV-C.

#ifndef TDFS_CORE_DFS_ENGINE_H_
#define TDFS_CORE_DFS_ENGINE_H_

#include "core/config.h"
#include "core/match_sink.h"
#include "core/result.h"
#include "graph/graph.h"
#include "query/plan.h"

namespace tdfs {

/// Runs the matching job for the slice of initial edges owned by
/// `device_id` under round-robin partitioning over `config.num_devices`
/// (Section IV-E). Single-device jobs pass the defaults. When `sink` is
/// non-null, matches are additionally collected (in query-vertex order)
/// until the sink fills.
RunResult RunDfsEngine(const Graph& graph, const MatchPlan& plan,
                       const EngineConfig& config, int device_id = 0,
                       MatchSink* sink = nullptr);

}  // namespace tdfs

#endif  // TDFS_CORE_DFS_ENGINE_H_
