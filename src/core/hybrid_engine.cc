#include "core/hybrid_engine.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <vector>

#include "core/candidates.h"
#include "core/matcher.h"
#include "query/candidate_filter.h"
#include "graph/hub_bitmap.h"
#include "mem/memory_governor.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "vgpu/scheduler.h"

namespace tdfs {

namespace {

constexpr int64_t kRowBlock = 128;

struct HybridLevel {
  int width = 0;
  std::vector<VertexId> rows;

  int64_t NumRows() const {
    return width == 0 ? 0 : static_cast<int64_t>(rows.size()) / width;
  }
  int64_t Bytes() const {
    return static_cast<int64_t>(rows.size()) * sizeof(VertexId);
  }
  const VertexId* Row(int64_t r) const { return rows.data() + r * width; }
};

// Per-warp working state for both phases.
struct WarpScratch {
  CandidateScratch scratch;
  std::vector<VertexId> cand;
  std::vector<VertexId> match;
  WorkCounter work;
  uint64_t matches = 0;
};

// Depth-first completion of one materialized prefix.
void DfsFromRow(const Graph& graph, const MatchPlan& plan,
                const EngineConfig& config, const StepDispatchTable& steps,
                WarpScratch* ws, int pos) {
  ws->cand.clear();
  std::vector<VertexId> candidates;
  ComputeCandidates(
      graph, nullptr, plan, ws->match.data(), pos, steps.At(pos),
      &ws->scratch, &candidates, &ws->work);
  const bool last = pos == plan.num_vertices - 1;
  for (VertexId v : candidates) {
    ws->work.Add(1);
    if (!PrefilterAdmits(config.prefiltered, plan.order[pos], v) ||
        !PassesConsumeChecks(plan, graph, ws->match.data(), pos, v,
                             config.use_degree_filter)) {
      continue;
    }
    if (last) {
      ++ws->matches;
    } else {
      ws->match[pos] = v;
      DfsFromRow(graph, plan, config, steps, ws, pos + 1);
      ws->match[pos] = -1;
    }
  }
}

// Shared body for the filtered and unfiltered paths: `graph` is what the
// engine enumerates (possibly a candidate-induced CSR); `stats_graph`
// supplies the planner's statistics (the original graph when prefiltering,
// so plans agree with what the service layer would compile).
RunResult RunHybridImpl(const Graph& graph, const QueryGraph& query,
                        const EngineConfig& local, const Graph* stats_graph) {
  RunResult result;
  Result<MatchPlan> compiled = PlanForConfig(
      query, local, stats_graph != nullptr ? stats_graph : &graph);
  if (!compiled.ok()) {
    result.status = compiled.status();
    return result;
  }
  const MatchPlan& plan = compiled.value();
  const int k = plan.num_vertices;

  Timer total_timer;
  const int64_t deadline_ns =
      local.max_run_ms > 0
          ? Timer::Now() + static_cast<int64_t>(local.max_run_ms * 1e6)
          : 0;
  RunCounters counters;

  // Phase 1: BFS levels while the estimated next level fits the budget.
  HybridLevel current;
  current.width = 2;
  for (int64_t e = 0; e < graph.NumDirectedEdges(); ++e) {
    const VertexId v0 = graph.EdgeSource(e);
    const VertexId v1 = graph.EdgeTarget(e);
    ++counters.edges_scanned;
    if (PassesEdgeFilter(plan, graph, v0, v1, local.use_degree_filter) &&
        PrefilterAdmitsEdge(local.prefiltered, plan.order[0], plan.order[1],
                            v0, v1)) {
      current.rows.push_back(v0);
      current.rows.push_back(v1);
      ++counters.initial_tasks;
    }
  }
  if (k == 2) {
    result.match_count = static_cast<uint64_t>(current.NumRows());
    result.match_ms = total_timer.ElapsedMillis();
    result.total_ms = result.match_ms;
    result.counters = counters;
    return result;
  }

  std::vector<WarpScratch> warps(local.num_warps);
  for (WarpScratch& ws : warps) {
    ws.match.assign(k, -1);
  }

  // Intersection backend (plain CSR rows; full-adjacency bitmaps).
  HubBitmapIndex bitmaps;
  if (UsesHubBitmaps(local.intersect)) {
    bitmaps = HubBitmapIndex::Build(graph, nullptr, local.bitmap_min_degree);
  }
  const StepDispatchTable steps(plan, local.intersect, &bitmaps);

  // Single track for the host-driven BFS phase (one kBfsBatch per level),
  // clocked by the job's cumulative work at batch ends.
  WorkCounter hybrid_clock;
  obs::WarpTracer tracer;
  obs::Histogram* h_batch_rows = nullptr;
  if (local.trace != nullptr) {
    tracer = obs::WarpTracer(local.trace, 0, "hybrid-bfs", &hybrid_clock);
    h_batch_rows =
        local.trace->metrics()->GetHistogram("hybrid.batch_rows");
  }
  auto obs_batch = [&](int64_t batch_rows) {
    if (tracer.enabled()) {
      uint64_t total = 0;
      for (const WarpScratch& ws : warps) {
        total += ws.work.units;
      }
      hybrid_clock.Add(total - hybrid_clock.units);
      tracer.Event(obs::TraceEvent::kBfsBatch, batch_rows);
    }
    obs::Observe(h_batch_rows, batch_rows);
  };
  auto parallel_rows = [&](int64_t num_rows, auto&& fn) {
    std::atomic<int64_t> cursor{0};
    vgpu::LaunchKernel(local.num_warps, [&](int warp_id) {
      while (true) {
        if (deadline_ns > 0 && Timer::Now() > deadline_ns) {
          return;
        }
        const int64_t b = cursor.fetch_add(kRowBlock);
        if (b >= num_rows) {
          return;
        }
        const int64_t e = std::min(b + kRowBlock, num_rows);
        for (int64_t r = b; r < e; ++r) {
          fn(warp_id, r);
        }
      }
    });
  };
  auto deadline_exceeded = [&]() {
    return deadline_ns > 0 && Timer::Now() > deadline_ns;
  };

  int pos = 2;
  int64_t peak_bytes = current.Bytes();
  while (pos < k - 1) {
    // Estimated next-level footprint: per-row minimum backward list size.
    int64_t estimate = 0;
    for (int64_t r = 0; r < current.NumRows(); ++r) {
      const VertexId* row = current.Row(r);
      int64_t bound = std::numeric_limits<int64_t>::max();
      for (int b : plan.backward[pos]) {
        bound = std::min(bound, graph.Degree(row[b]));
      }
      estimate += bound;
    }
    const int64_t next_bytes =
        estimate * (pos + 1) * static_cast<int64_t>(sizeof(VertexId));
    // Governor pressure derates the materialization budget before each
    // BFS level, switching to DFS earlier when the device is contended —
    // exact either way (DFS enumerates the same matches).
    const int64_t effective_budget =
        MemoryGovernor::Resolve(local.governor)
            ->DeratedBudget(local.bfs_memory_budget_bytes);
    if (effective_budget != local.bfs_memory_budget_bytes &&
        tracer.enabled()) {
      tracer.Event(
          obs::TraceEvent::kMemPressure,
          static_cast<int64_t>(
              MemoryGovernor::Resolve(local.governor)->Pressure()));
    }
    if (current.Bytes() + next_bytes > effective_budget) {
      break;  // next level may not fit: switch to DFS
    }
    // Extend breadth-first (single pass; per-warp staging buffers merged
    // after the parallel section).
    ++counters.bfs_batches;
    std::vector<std::vector<VertexId>> staged(local.num_warps);
    parallel_rows(current.NumRows(), [&](int w, int64_t r) {
      WarpScratch& ws = warps[w];
      const VertexId* prefix = current.Row(r);
      std::copy(prefix, prefix + pos, ws.match.begin());
      std::vector<VertexId> candidates;
      ComputeCandidates(
          graph, nullptr, plan, ws.match.data(), pos, steps.At(pos),
          &ws.scratch, &candidates, &ws.work);
      for (VertexId v : candidates) {
        ws.work.Add(1);
        if (!PrefilterAdmits(local.prefiltered, plan.order[pos], v) ||
            !PassesConsumeChecks(plan, graph, ws.match.data(), pos, v,
                                 local.use_degree_filter)) {
          continue;
        }
        staged[w].insert(staged[w].end(), prefix, prefix + pos);
        staged[w].push_back(v);
      }
    });
    if (deadline_exceeded()) {
      result.status = Status::DeadlineExceeded("hybrid matching aborted");
      result.counters = counters;
      return result;
    }
    HybridLevel next;
    next.width = pos + 1;
    for (const auto& part : staged) {
      next.rows.insert(next.rows.end(), part.begin(), part.end());
    }
    peak_bytes = std::max(peak_bytes, current.Bytes() + next.Bytes());
    obs_batch(current.NumRows());
    current = std::move(next);
    ++pos;
  }

  // Phase 2: DFS from every materialized row.
  const int switch_pos = pos;
  parallel_rows(current.NumRows(), [&](int w, int64_t r) {
    WarpScratch& ws = warps[w];
    const VertexId* prefix = current.Row(r);
    std::copy(prefix, prefix + switch_pos, ws.match.begin());
    DfsFromRow(graph, plan, local, steps, &ws, switch_pos);
  });
  if (deadline_exceeded()) {
    result.status = Status::DeadlineExceeded("hybrid matching aborted");
    result.counters = counters;
    return result;
  }

  for (const WarpScratch& ws : warps) {
    result.match_count += ws.matches;
    counters.work_units += ws.work.units;
    counters.max_warp_work_units =
        std::max(counters.max_warp_work_units, ws.work.units);
  }
  counters.bfs_peak_bytes = peak_bytes;
  result.counters = counters;
  result.match_ms = total_timer.ElapsedMillis();
  result.total_ms = result.match_ms;
  return result;
}

}  // namespace

RunResult RunMatchingHybrid(const Graph& graph, const QueryGraph& query,
                            const EngineConfig& config) {
  EngineConfig local = config;
  local.use_reuse = false;  // the hybrid DFS phase has no reuse stack
  const bool prefilter_applies =
      local.prefilter != PrefilterKind::kOff && !local.induced &&
      local.initial_edges == nullptr && local.delta_edges == nullptr;
  if (prefilter_applies && local.prefiltered == nullptr) {
    Timer total_timer;
    Timer build_timer;
    const FilteredGraph fg = BuildFilteredGraph(graph, query, local.prefilter);
    const double build_ms = build_timer.ElapsedMillis();
    local.prefiltered = &fg;
    RunResult result;
    if (!fg.AnyCandidateSetEmpty()) {
      result = RunHybridImpl(fg.graph(), query, local, &graph);
    }
    result.counters.prefilter_ms = build_ms;
    result.counters.prefilter_original_vertices = fg.stats().original_vertices;
    result.counters.prefilter_original_edges = fg.stats().original_edges;
    result.counters.prefilter_kept_vertices = fg.stats().kept_vertices;
    result.counters.prefilter_kept_edges = fg.stats().kept_edges;
    result.total_ms = total_timer.ElapsedMillis();
    return result;
  }
  return RunHybridImpl(graph, query, local, nullptr);
}

}  // namespace tdfs
