// Hybrid BFS-DFS matching engine — the paper's future-work design
// (Section V): "explore using BFS subgraph extension initially when the
// extended subgraphs fit in the device memory, and switch to DFS
// processing when the next level of subgraphs cannot fit".
//
// Levels are extended breadth-first (coalesced, like EGSM's BFS phase)
// while the *estimated* next level fits the device-memory budget; once it
// would not — or only the last position remains — every materialized
// partial match becomes a fine-grained DFS task processed by the warp
// pool. Because the BFS phase already produced many more tasks than warps,
// no stealing is needed in the DFS phase.

#ifndef TDFS_CORE_HYBRID_ENGINE_H_
#define TDFS_CORE_HYBRID_ENGINE_H_

#include "core/config.h"
#include "core/result.h"
#include "graph/graph.h"
#include "query/plan.h"
#include "query/query_graph.h"

namespace tdfs {

/// Runs hybrid matching. Uses config.bfs_memory_budget_bytes as the device
/// budget for materialized levels; reuse is disabled (BFS rows carry no
/// per-path stacks). counters.bfs_batches records the number of
/// breadth-first levels taken before switching.
RunResult RunMatchingHybrid(const Graph& graph, const QueryGraph& query,
                            const EngineConfig& config = TdfsConfig());

}  // namespace tdfs

#endif  // TDFS_CORE_HYBRID_ENGINE_H_
