// Bounded, thread-safe collection of matches from the parallel engines.
//
// The GPU-style engines count matches (like the paper's evaluation); for
// library users who need the embeddings themselves, a MatchSink collects
// up to a capped number of them. Admission is a single CAS on the stored
// counter (claim a slot or refuse, atomically), so concurrent appenders
// can never overshoot the cap; only the row copy itself takes the mutex,
// and once full Full() short-circuits without synchronization, so
// enumeration of a bounded sample does not serialize the search.

#ifndef TDFS_CORE_MATCH_SINK_H_
#define TDFS_CORE_MATCH_SINK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "util/intersect.h"
#include "util/status.h"

namespace tdfs {

class MatchSink {
 public:
  /// Collect at most `capacity` matches of `num_vertices` vertices each.
  MatchSink(int num_vertices, int64_t capacity)
      : num_vertices_(num_vertices), capacity_(capacity) {
    TDFS_CHECK(num_vertices >= 1);
    TDFS_CHECK(capacity >= 0);
  }

  /// True once the cap is reached (cheap; callers skip Add then).
  bool Full() const {
    return stored_.load(std::memory_order_relaxed) >= capacity_;
  }

  /// Appends one match (data vertices in *plan-order positions*). Returns
  /// false when the sink is full. Thread-safe.
  bool Add(std::span<const VertexId> match) {
    // Single-CAS admission: a slot below capacity_ is claimed (or the
    // add refused) in one atomic step, so no interleaving of concurrent
    // appenders can ever admit more than capacity_ rows. A check-then-
    // fetch_add sequence would let racing appenders all pass the check
    // and push stored_ past the cap.
    int64_t claimed = stored_.load(std::memory_order_relaxed);
    do {
      if (claimed >= capacity_) {
        return false;
      }
    } while (!stored_.compare_exchange_weak(claimed, claimed + 1,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed));
    TDFS_CHECK(static_cast<int>(match.size()) == num_vertices_);
    std::lock_guard<std::mutex> lock(mu_);
    data_.insert(data_.end(), match.begin(), match.end());
    return true;
  }

  int64_t NumMatches() const {
    return stored_.load(std::memory_order_relaxed);
  }

  int num_vertices() const { return num_vertices_; }

  /// Match i as a span into internal storage. Call only after the run.
  std::span<const VertexId> Match(int64_t i) const {
    return std::span<const VertexId>(
        data_.data() + i * num_vertices_,
        static_cast<size_t>(num_vertices_));
  }

 private:
  const int num_vertices_;
  const int64_t capacity_;
  std::mutex mu_;
  std::vector<VertexId> data_;
  std::atomic<int64_t> stored_{0};
};

}  // namespace tdfs

#endif  // TDFS_CORE_MATCH_SINK_H_
