#include "core/matcher.h"

#include <algorithm>

#include "util/timer.h"

namespace tdfs {

Result<MatchPlan> PlanForConfig(const QueryGraph& query,
                                const EngineConfig& config) {
  PlanOptions options;
  options.use_symmetry_breaking = config.use_symmetry_breaking;
  options.use_reuse = config.use_reuse;
  options.induced = config.induced;
  return CompilePlan(query, options);
}

RunResult RunMatching(const Graph& graph, const QueryGraph& query,
                      const EngineConfig& config) {
  RunResult result;
  Result<MatchPlan> plan = PlanForConfig(query, config);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  if (config.num_devices <= 1) {
    return RunDfsEngine(graph, plan.value(), config);
  }
  // Multi-device: round-robin edge ownership, one job per device, summed
  // counts. Devices run back-to-back on this host; per_device_ms records
  // each device's kernel time so SimulatedParallelMs() = max (Fig. 12).
  Timer total_timer;
  for (int d = 0; d < config.num_devices; ++d) {
    RunResult device_result = RunDfsEngine(graph, plan.value(), config, d);
    if (!device_result.status.ok()) {
      return device_result;
    }
    result.match_count += device_result.match_count;
    // Per-device *simulated* kernel time (see SimulatedGpuMs): devices run
    // back-to-back on this host, so raw wall times would hide both intra-
    // device parallelism and inter-device balance.
    result.per_device_ms.push_back(device_result.SimulatedGpuMs());
    result.counters.MergeFrom(device_result.counters);
  }
  result.match_ms = result.SimulatedParallelMs();
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

RunResult RunMatchingCollect(const Graph& graph, const QueryGraph& query,
                             const EngineConfig& config, MatchSink* sink) {
  RunResult result;
  TDFS_CHECK(sink != nullptr);
  Result<MatchPlan> plan = PlanForConfig(query, config);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  if (config.num_devices <= 1) {
    return RunDfsEngine(graph, plan.value(), config, 0, sink);
  }
  Timer total_timer;
  for (int d = 0; d < config.num_devices; ++d) {
    RunResult device_result =
        RunDfsEngine(graph, plan.value(), config, d, sink);
    if (!device_result.status.ok()) {
      return device_result;
    }
    result.match_count += device_result.match_count;
    result.per_device_ms.push_back(device_result.SimulatedGpuMs());
    result.counters.MergeFrom(device_result.counters);
  }
  result.match_ms = result.SimulatedParallelMs();
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

RunResult RunMatchingBfs(const Graph& graph, const QueryGraph& query,
                         const EngineConfig& config) {
  RunResult result;
  EngineConfig bfs_config = config;
  bfs_config.use_reuse = false;  // BFS has no per-path stack to reuse from
  Result<MatchPlan> plan = PlanForConfig(query, bfs_config);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  return RunBfsEngine(graph, plan.value(), bfs_config);
}

RunResult RunMatchingRef(const Graph& graph, const QueryGraph& query,
                         const EngineConfig& config,
                         const MatchVisitor& visitor) {
  RunResult result;
  Result<MatchPlan> plan = PlanForConfig(query, config);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  return RunRefEngine(graph, plan.value(), config.use_degree_filter,
                      visitor);
}

}  // namespace tdfs
