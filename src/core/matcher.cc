#include "core/matcher.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "obs/trace.h"
#include "query/candidate_filter.h"
#include "query/cost_planner.h"
#include "shard/shard_runner.h"
#include "util/timer.h"

namespace tdfs {

bool PrefilterApplies(const EngineConfig& config) {
  return config.prefilter != PrefilterKind::kOff && !config.induced &&
         config.initial_edges == nullptr && config.delta_edges == nullptr;
}

void RecordPrefilterStats(const FilteredGraph& fg, double build_ms,
                          RunCounters* counters) {
  counters->prefilter_ms = build_ms;
  counters->prefilter_original_vertices = fg.stats().original_vertices;
  counters->prefilter_original_edges = fg.stats().original_edges;
  counters->prefilter_kept_vertices = fg.stats().kept_vertices;
  counters->prefilter_kept_edges = fg.stats().kept_edges;
}

namespace {

// Runs one device's matching job under config.retry: failed attempts are
// discarded wholesale (their counts never leak into the result, so a retry
// can never change the reported match count) and re-executed, escalating
// per the ladder. Fault-observability counters from failed attempts are
// carried into the final result so a recovered run still shows what it
// survived. Not used when matches are collected into a sink — a failed
// attempt may already have emitted rows, and replaying would duplicate
// them.
RunResult RunDeviceJobWithRetry(const Graph& graph, const MatchPlan& plan,
                                const EngineConfig& config, int device_id) {
  Timer job_timer;
  // One engine_run span per device job, covering every retry attempt
  // (failed attempts are part of what the caller waited for). Parent and
  // track come from the submitter via the config (service slice track, or
  // the defaults for standalone runs).
  obs::SpanLedger::Span run_span;
  if (config.trace != nullptr) {
    run_span = config.trace->spans()->Begin("engine_run", config.span_track,
                                            config.span_parent, device_id);
  }
  EngineConfig attempt_config = config;
  RunCounters carry;
  double backoff_ms = config.retry.backoff_ms;
  if (config.retry.max_backoff_ms > 0) {
    backoff_ms = std::min(backoff_ms, config.retry.max_backoff_ms);
  }
  const int max_attempts = std::max(config.retry.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    RunResult r = RunDfsEngine(graph, plan, attempt_config, device_id);
    r.counters.attempts = attempt;
    r.counters.failpoint_fires += carry.failpoint_fires;
    r.counters.pressure_retries += carry.pressure_retries;
    r.counters.pressure_pages_released += carry.pressure_pages_released;
    r.counters.deferred_tasks += carry.deferred_tasks;
    if (attempt > 1) {
      r.counters.degraded_mode = true;
    }
    if (r.status.ok() || attempt >= max_attempts ||
        !RetryableFailure(r.status)) {
      // Whole-job wall time: failed attempts and backoff sleeps are real
      // elapsed time; reporting only the last attempt's total_ms would
      // under-state what the caller actually waited.
      r.total_ms = job_timer.ElapsedMillis();
      return r;
    }
    carry.failpoint_fires = r.counters.failpoint_fires;
    carry.pressure_retries = r.counters.pressure_retries;
    carry.pressure_pages_released = r.counters.pressure_pages_released;
    carry.deferred_tasks = r.counters.deferred_tasks;
    ApplyRetryEscalation(&attempt_config, attempt + 1, r.status);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= 2;
      if (config.retry.max_backoff_ms > 0) {
        backoff_ms = std::min(backoff_ms, config.retry.max_backoff_ms);
      }
    }
  }
}

}  // namespace

Result<MatchPlan> PlanForConfig(const QueryGraph& query,
                                const EngineConfig& config) {
  return PlanForConfig(query, config, /*graph=*/nullptr);
}

Result<MatchPlan> PlanForConfig(const QueryGraph& query,
                                const EngineConfig& config,
                                const Graph* graph) {
  PlanOptions options;
  options.use_symmetry_breaking = config.use_symmetry_breaking;
  options.use_reuse = config.use_reuse;
  options.induced = config.induced;
  options.planner = config.planner;
  options.planner_bitmap_min_degree = config.bitmap_min_degree;
  if (PrefilterApplies(config)) {
    options.prefilter = config.prefilter;
    if (config.prefiltered != nullptr) {
      options.candidate_counts = &config.prefiltered->candidate_counts();
    }
  }
  GraphStats local_stats;
  if (config.planner == PlannerKind::kCost) {
    if (config.graph_stats != nullptr) {
      options.stats = config.graph_stats;
    } else if (graph != nullptr) {
      local_stats = GraphStats::Compute(*graph);
      options.stats = &local_stats;
    }
    // Neither available: CompilePlan falls back to the greedy order.
  }
  return CompilePlan(query, options);
}

RunResult RunMatchingDevice(const Graph& graph, const MatchPlan& plan,
                            const EngineConfig& config, int device_id) {
  return RunDeviceJobWithRetry(graph, plan, config, device_id);
}

RunResult RunMatchingPlanned(const Graph& graph, const MatchPlan& plan,
                             const EngineConfig& config) {
  if (shard::ShardingApplies(config)) {
    return shard::RunMatchingSharded(graph, plan, config);
  }
  // Unsharded: every worker reads the full CSR, so a per-worker graph
  // budget fails the job outright — sharding is the way out.
  if (config.graph_budget_bytes > 0 &&
      graph.CsrBytes() > config.graph_budget_bytes) {
    RunResult result;
    result.status = Status(
        StatusCode::kResourceExhausted,
        "graph CSR exceeds per-worker graph_budget_bytes; shard the graph "
        "(EngineConfig::sharding) to split it across workers");
    return result;
  }
  if (config.num_devices <= 1) {
    return RunDeviceJobWithRetry(graph, plan, config, 0);
  }
  // Multi-device: round-robin edge ownership, one job per device, summed
  // counts. Devices run back-to-back on this host; per_device_ms records
  // each device's kernel time so SimulatedParallelMs() = max (Fig. 12).
  // Each device job runs under the retry policy, so a device failure is
  // recovered by re-executing exactly that device's edge slice — the
  // failover path for a lost device.
  RunResult result;
  Timer total_timer;
  for (int d = 0; d < config.num_devices; ++d) {
    RunResult device_result = RunDeviceJobWithRetry(graph, plan, config, d);
    if (!device_result.status.ok()) {
      return device_result;
    }
    if (device_result.counters.attempts > 1) {
      ++device_result.counters.devices_recovered;
    }
    result.match_count += device_result.match_count;
    // Per-device *simulated* kernel time (see SimulatedGpuMs): devices run
    // back-to-back on this host, so raw wall times would hide both intra-
    // device parallelism and inter-device balance.
    result.per_device_ms.push_back(device_result.SimulatedGpuMs());
    result.counters.MergeFrom(device_result.counters);
    result.attribution.MergeFrom(device_result.attribution);
  }
  result.match_ms = result.SimulatedParallelMs();
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

RunResult RunMatching(const Graph& graph, const QueryGraph& query,
                      const EngineConfig& config) {
  if (PrefilterApplies(config) && config.prefiltered == nullptr) {
    // Build the candidate-induced view, then run the ordinary path on it.
    // The plan is compiled against the ORIGINAL graph's statistics plus
    // the exact candidate cardinalities; the engines run on fg.graph()
    // with O(1) membership checks layered on via filtered_config.
    Timer total_timer;
    Timer build_timer;
    const FilteredGraph fg = BuildFilteredGraph(graph, query, config.prefilter);
    const double build_ms = build_timer.ElapsedMillis();
    EngineConfig filtered_config = config;
    filtered_config.prefiltered = &fg;
    Result<MatchPlan> plan = PlanForConfig(query, filtered_config, &graph);
    RunResult result;
    if (!plan.ok()) {
      result.status = plan.status();
      return result;
    }
    if (fg.AnyCandidateSetEmpty()) {
      // Some query vertex has no candidate at all: count is zero without
      // running an engine.
      RecordPrefilterStats(fg, build_ms, &result.counters);
      result.total_ms = total_timer.ElapsedMillis();
      return result;
    }
    result = RunMatchingPlanned(fg.graph(), plan.value(), filtered_config);
    RecordPrefilterStats(fg, build_ms, &result.counters);
    result.total_ms = total_timer.ElapsedMillis();
    return result;
  }
  Result<MatchPlan> plan = PlanForConfig(query, config, &graph);
  if (!plan.ok()) {
    RunResult result;
    result.status = plan.status();
    return result;
  }
  return RunMatchingPlanned(graph, plan.value(), config);
}

RunResult RunMatchingCollect(const Graph& graph, const QueryGraph& query,
                             const EngineConfig& config, MatchSink* sink) {
  RunResult result;
  TDFS_CHECK(sink != nullptr);
  Result<MatchPlan> plan = PlanForConfig(query, config, &graph);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  // Collection runs stay fail-fast regardless of config.retry: a failed
  // attempt may already have emitted matches into the sink, and replaying
  // the job would duplicate them. Counting runs have no such hazard.
  if (config.num_devices <= 1) {
    return RunDfsEngine(graph, plan.value(), config, 0, sink);
  }
  Timer total_timer;
  for (int d = 0; d < config.num_devices; ++d) {
    RunResult device_result =
        RunDfsEngine(graph, plan.value(), config, d, sink);
    if (!device_result.status.ok()) {
      return device_result;
    }
    result.match_count += device_result.match_count;
    result.per_device_ms.push_back(device_result.SimulatedGpuMs());
    result.counters.MergeFrom(device_result.counters);
    // Collection is fail-fast (no retry), so each device job is exactly
    // one engine execution; report it explicitly so collection and
    // counting runs export the same attempts semantics (>= 1, max over
    // device jobs) instead of relying on merge defaults.
    result.counters.attempts =
        std::max(result.counters.attempts, device_result.counters.attempts);
  }
  result.match_ms = result.SimulatedParallelMs();
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

RunResult RunMatchingBfs(const Graph& graph, const QueryGraph& query,
                         const EngineConfig& config) {
  RunResult result;
  EngineConfig bfs_config = config;
  bfs_config.use_reuse = false;  // BFS has no per-path stack to reuse from
  if (PrefilterApplies(bfs_config) && bfs_config.prefiltered == nullptr) {
    Timer total_timer;
    Timer build_timer;
    const FilteredGraph fg =
        BuildFilteredGraph(graph, query, bfs_config.prefilter);
    const double build_ms = build_timer.ElapsedMillis();
    bfs_config.prefiltered = &fg;
    Result<MatchPlan> plan = PlanForConfig(query, bfs_config, &graph);
    if (!plan.ok()) {
      result.status = plan.status();
      return result;
    }
    if (!fg.AnyCandidateSetEmpty()) {
      result = shard::ShardingApplies(bfs_config)
                   ? shard::RunBfsSharded(fg.graph(), plan.value(),
                                          bfs_config)
                   : RunBfsEngine(fg.graph(), plan.value(), bfs_config);
    }
    RecordPrefilterStats(fg, build_ms, &result.counters);
    result.total_ms = total_timer.ElapsedMillis();
    return result;
  }
  Result<MatchPlan> plan = PlanForConfig(query, bfs_config, &graph);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  if (shard::ShardingApplies(bfs_config)) {
    return shard::RunBfsSharded(graph, plan.value(), bfs_config);
  }
  return RunBfsEngine(graph, plan.value(), bfs_config);
}

RunResult RunMatchingRef(const Graph& graph, const QueryGraph& query,
                         const EngineConfig& config,
                         const MatchVisitor& visitor) {
  RunResult result;
  Result<MatchPlan> plan = PlanForConfig(query, config, &graph);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  return RunRefEngine(graph, plan.value(), config.use_degree_filter,
                      visitor, config.trace);
}

}  // namespace tdfs
