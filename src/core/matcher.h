// Public entry point: subgraph matching with a chosen engine configuration.
//
// Typical use:
//
//   tdfs::Graph g = tdfs::GenerateBarabasiAlbert(10000, 4, /*seed=*/1);
//   tdfs::QueryGraph q = tdfs::Pattern(2);  // 4-clique
//   tdfs::RunResult r = tdfs::RunMatching(g, q, tdfs::TdfsConfig());
//   if (r.status.ok()) std::cout << r.match_count << "\n";
//
// RunMatching compiles a MatchPlan from the query and the config's plan
// options, then dispatches: StealStrategy::kNone/kTimeout/kHalfSteal/
// kNewKernel run the warp-DFS engine; PBE's BFS engine is selected with
// RunMatchingBfs. Multi-device jobs (config.num_devices > 1) run each
// device's slice and report per-device times (Fig. 12).

#ifndef TDFS_CORE_MATCHER_H_
#define TDFS_CORE_MATCHER_H_

#include "core/bfs_engine.h"
#include "core/config.h"
#include "core/dfs_engine.h"
#include "core/ref_engine.h"
#include "core/result.h"
#include "graph/graph.h"
#include "query/plan.h"
#include "query/query_graph.h"

namespace tdfs {

class FilteredGraph;  // query/candidate_filter.h

/// True when the config's prefilter request is sound for this run shape.
/// Induced matching needs negative adjacency checks that dropped edges
/// would falsify; initial_edges / delta_edges index the ORIGINAL graph's
/// edge space. All fall back to unfiltered execution (never an error).
bool PrefilterApplies(const EngineConfig& config);

/// Stamps a filtered view's build stats into a result's counters (pass
/// build_ms = 0 when the view came prebuilt from a cache).
void RecordPrefilterStats(const FilteredGraph& fg, double build_ms,
                          RunCounters* counters);

/// Compiles the plan implied by `config` for this query.
Result<MatchPlan> PlanForConfig(const QueryGraph& query,
                                const EngineConfig& config);

/// Same, but with the data graph available for the cost planner: when
/// config.planner == kCost, GraphStats are taken from config.graph_stats
/// or computed from `graph` on the fly (one O(n) pass). With a null graph
/// and no precomputed stats the cost planner degrades to greedy.
Result<MatchPlan> PlanForConfig(const QueryGraph& query,
                                const EngineConfig& config,
                                const Graph* graph);

/// Depth-first matching (T-DFS and the DFS baselines).
RunResult RunMatching(const Graph& graph, const QueryGraph& query,
                      const EngineConfig& config = TdfsConfig());

/// RunMatching on an already-compiled plan. The plan must have been
/// compiled with options matching `config` (PlanForConfig) for a query
/// isomorphic to the one being counted — the service layer's plan cache
/// feeds this to skip recompilation on repeated queries.
RunResult RunMatchingPlanned(const Graph& graph, const MatchPlan& plan,
                             const EngineConfig& config);

/// One device's slice of a counting job, executed under config.retry
/// (failed attempts are discarded and re-run, escalating per the ladder;
/// see RetryPolicy). This is the unit the service layer schedules: a
/// multi-device job is `num_devices` independent calls with device_id in
/// [0, config.num_devices). total_ms covers all attempts and backoff.
RunResult RunMatchingDevice(const Graph& graph, const MatchPlan& plan,
                            const EngineConfig& config, int device_id);

/// Depth-first matching that additionally collects matches into `sink`
/// (in query-vertex order) until the sink's capacity is reached. The
/// returned match_count is still exact even when the sink fills early.
RunResult RunMatchingCollect(const Graph& graph, const QueryGraph& query,
                             const EngineConfig& config, MatchSink* sink);

/// Breadth-first matching (the PBE baseline).
RunResult RunMatchingBfs(const Graph& graph, const QueryGraph& query,
                         const EngineConfig& config = PbeConfig());

/// Serial oracle on the same plan (slow; for validation and enumeration).
RunResult RunMatchingRef(const Graph& graph, const QueryGraph& query,
                         const EngineConfig& config = TdfsConfig(),
                         const MatchVisitor& visitor = nullptr);

}  // namespace tdfs

#endif  // TDFS_CORE_MATCHER_H_
