#include "core/ref_engine.h"

#include <vector>

#include "core/candidates.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace tdfs {

namespace {

class RefMatcher {
 public:
  RefMatcher(const Graph& graph, const MatchPlan& plan, bool degree_filter,
             const MatchVisitor& visitor, obs::TraceSession* trace)
      : graph_(graph),
        plan_(plan),
        degree_filter_(degree_filter),
        visitor_(visitor),
        match_(plan.num_vertices, -1) {
    if (trace != nullptr) {
      tracer_ = obs::WarpTracer(trace, 0, "ref", &clock_);
      h_isect_ = trace->metrics()->GetHistogram("ref.intersection_size");
    }
  }

  uint64_t Run() {
    const int64_t num_directed = graph_.NumDirectedEdges();
    for (int64_t e = 0; e < num_directed; ++e) {
      const VertexId v0 = graph_.EdgeSource(e);
      const VertexId v1 = graph_.EdgeTarget(e);
      if (!PassesEdgeFilter(plan_, graph_, v0, v1, degree_filter_)) {
        continue;
      }
      match_[0] = v0;
      match_[1] = v1;
      tracer_.Event(obs::TraceEvent::kAdopt, e);
      Recurse(2);
    }
    return count_;
  }

 private:
  void Recurse(int pos) {
    if (pos == plan_.num_vertices) {
      ++count_;
      if (visitor_) {
        // Report in query-vertex order.
        std::vector<VertexId> by_query_vertex(plan_.num_vertices);
        for (int p = 0; p < plan_.num_vertices; ++p) {
          by_query_vertex[plan_.order[p]] = match_[p];
        }
        visitor_(std::span<const VertexId>(by_query_vertex));
      }
      return;
    }
    // Plain intersection chain; deliberately no reuse or scratch reuse.
    std::vector<VertexId> candidates;
    bool first = true;
    for (int b : plan_.backward[pos]) {
      VertexSpan nbrs = graph_.Neighbors(match_[b]);
      if (first) {
        candidates.assign(nbrs.begin(), nbrs.end());
        first = false;
      } else {
        // Routed through a default (scalar-everywhere) StepDispatchTable:
        // the oracle consumes the same per-position dispatch surface as
        // the parallel engines but stays pinned to the scalar kernel,
        // independent of the SIMD/bitmap backends it validates.
        std::vector<VertexId> next;
        steps_.At(pos).kernels().merge(VertexSpan(candidates), nbrs, &next,
                                       nullptr);
        candidates = std::move(next);
      }
    }
    clock_.Add(candidates.size());
    obs::Observe(h_isect_, static_cast<int64_t>(candidates.size()));
    const Label label = plan_.label_filter[pos];
    for (VertexId v : candidates) {
      if (label != kNoLabel && graph_.VertexLabel(v) != label) {
        continue;
      }
      if (!PassesConsumeChecks(plan_, graph_, match_.data(), pos, v,
                               degree_filter_)) {
        continue;
      }
      match_[pos] = v;
      Recurse(pos + 1);
    }
    match_[pos] = -1;
  }

  const Graph& graph_;
  const MatchPlan& plan_;
  const bool degree_filter_;
  const MatchVisitor& visitor_;
  std::vector<VertexId> match_;
  uint64_t count_ = 0;

  // Scalar dispatch at every position (the default table).
  const StepDispatchTable steps_;

  // The serial oracle keeps no work meter; the trace clock counts
  // candidates considered, which is monotone and proportional to work.
  WorkCounter clock_;
  obs::WarpTracer tracer_;
  obs::Histogram* h_isect_ = nullptr;
};

}  // namespace

RunResult RunRefEngine(const Graph& graph, const MatchPlan& plan,
                       bool use_degree_filter, const MatchVisitor& visitor,
                       obs::TraceSession* trace) {
  RunResult result;
  Timer timer;
  RefMatcher matcher(graph, plan, use_degree_filter, visitor, trace);
  result.match_count = matcher.Run();
  result.match_ms = timer.ElapsedMillis();
  result.total_ms = result.match_ms;
  return result;
}

}  // namespace tdfs
