// Serial reference engine (the correctness oracle).
//
// A direct recursive implementation of Ullmann-style backtracking (Alg. 1)
// over the same MatchPlan the parallel engines use. Deliberately built with
// no shared code in its traversal (plain vectors, no stacks, no queue) so a
// bug in the parallel machinery cannot hide in the oracle. Supports match
// enumeration through a visitor, which the GPU-style engines do not.

#ifndef TDFS_CORE_REF_ENGINE_H_
#define TDFS_CORE_REF_ENGINE_H_

#include <functional>

#include "core/result.h"
#include "graph/graph.h"
#include "query/plan.h"

namespace tdfs::obs {
class TraceSession;
}  // namespace tdfs::obs

namespace tdfs {

/// Called once per match with the data vertices in *query-vertex* order
/// (entry u = match of query vertex u, independent of the plan's order).
using MatchVisitor = std::function<void(std::span<const VertexId>)>;

/// Counts (and optionally enumerates) all matches of the plan.
/// `use_degree_filter` mirrors EngineConfig::use_degree_filter. When
/// `trace` is set, the oracle records a single "ref" track (one adopt per
/// accepted initial edge) and an intersection-size histogram — enough to
/// compare its shape against the parallel engines without touching its
/// deliberately shared-nothing traversal.
RunResult RunRefEngine(const Graph& graph, const MatchPlan& plan,
                       bool use_degree_filter = true,
                       const MatchVisitor& visitor = nullptr,
                       obs::TraceSession* trace = nullptr);

}  // namespace tdfs

#endif  // TDFS_CORE_REF_ENGINE_H_
