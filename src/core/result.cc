#include "core/result.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/time_attr.h"

namespace tdfs {

namespace {
// Compile-time completeness check: a mirror struct declared from
// TDFS_RUN_COUNTER_FIELDS has the same members in the same order, so its
// size (padding included) matches RunCounters exactly — until a field is
// added to the struct but not the list.
#define TDFS_FIELD_DECL(name) decltype(RunCounters::name) name;
struct CounterFieldMirror {
  TDFS_RUN_COUNTER_FIELDS(TDFS_FIELD_DECL)
};
#undef TDFS_FIELD_DECL
static_assert(sizeof(CounterFieldMirror) == sizeof(RunCounters),
              "TDFS_RUN_COUNTER_FIELDS is out of sync with RunCounters");
}  // namespace

void RunCounters::MergeFrom(const RunCounters& other) {
  work_units += other.work_units;
  max_warp_work_units =
      std::max(max_warp_work_units, other.max_warp_work_units);
  edges_scanned += other.edges_scanned;
  initial_tasks += other.initial_tasks;
  timeout_splits += other.timeout_splits;
  tasks_enqueued += other.tasks_enqueued;
  tasks_dequeued += other.tasks_dequeued;
  queue_full_failures += other.queue_full_failures;
  queue_peak_tasks = std::max(queue_peak_tasks, other.queue_peak_tasks);
  steal_attempts += other.steal_attempts;
  steal_successes += other.steal_successes;
  steal_probes += other.steal_probes;
  shard_cross_msgs += other.shard_cross_msgs;
  shard_halo_hits += other.shard_halo_hits;
  shard_remote_reads += other.shard_remote_reads;
  shard_cross_steals += other.shard_cross_steals;
  kernels_launched += other.kernels_launched;
  child_warps_launched += other.child_warps_launched;
  stack_bytes_peak += other.stack_bytes_peak;
  pages_peak = std::max(pages_peak, other.pages_peak);
  alloc_misses += other.alloc_misses;
  spill_allocs += other.spill_allocs;
  spill_pages_peak = std::max(spill_pages_peak, other.spill_pages_peak);
  spill_promotions += other.spill_promotions;
  stack_overflow = stack_overflow || other.stack_overflow;
  failpoint_fires += other.failpoint_fires;
  pressure_retries += other.pressure_retries;
  pressure_pages_released += other.pressure_pages_released;
  deferred_tasks += other.deferred_tasks;
  adoption_rejects += other.adoption_rejects;
  attempts = std::max(attempts, other.attempts);
  degraded_mode = degraded_mode || other.degraded_mode;
  devices_recovered += other.devices_recovered;
  bfs_batches += other.bfs_batches;
  bfs_peak_bytes = std::max(bfs_peak_bytes, other.bfs_peak_bytes);
  preprocess_ms += other.preprocess_ms;
  prefilter_ms = std::max(prefilter_ms, other.prefilter_ms);
  prefilter_original_vertices =
      std::max(prefilter_original_vertices, other.prefilter_original_vertices);
  prefilter_original_edges =
      std::max(prefilter_original_edges, other.prefilter_original_edges);
  prefilter_kept_vertices =
      std::max(prefilter_kept_vertices, other.prefilter_kept_vertices);
  prefilter_kept_edges =
      std::max(prefilter_kept_edges, other.prefilter_kept_edges);
}

std::string RunResult::Summary() const {
  std::ostringstream oss;
  if (!status.ok()) {
    oss << status.ToString();
    return oss.str();
  }
  oss << "matches=" << match_count << " time_ms=" << match_ms;
  if (counters.preprocess_ms > 0) {
    oss << " (+" << counters.preprocess_ms << "ms preprocess)";
  }
  if (counters.stack_overflow) {
    oss << " [STACK OVERFLOW: count unreliable]";
  }
  if (counters.attempts > 1 || counters.degraded_mode ||
      counters.pressure_retries > 0 || counters.deferred_tasks > 0 ||
      counters.devices_recovered > 0) {
    // A degraded run still produced an exact count, but the operator
    // should see how hard the engine had to work for it — including the
    // faults injected and the pages the pressure path had to claw back.
    oss << " [degraded: attempts=" << counters.attempts
        << " pressure_retries=" << counters.pressure_retries
        << " pages_released=" << counters.pressure_pages_released
        << " deferred=" << counters.deferred_tasks
        << " devices_recovered=" << counters.devices_recovered
        << " failpoint_fires=" << counters.failpoint_fires << "]";
  } else if (counters.failpoint_fires > 0) {
    oss << " [failpoints fired: " << counters.failpoint_fires << "]";
  }
  if (counters.spill_allocs > 0 || counters.alloc_misses > 0) {
    // Out-of-core traffic: the count is exact either way, but the
    // operator should see the run outgrew the device arena.
    oss << " [spill: allocs=" << counters.spill_allocs
        << " peak_pages=" << counters.spill_pages_peak
        << " promotions=" << counters.spill_promotions
        << " alloc_misses=" << counters.alloc_misses << "]";
  }
  return oss.str();
}

uint64_t TimeAttribution::EstimatedNs(uint64_t calls, uint64_t sampled,
                                      uint64_t ns) {
  return TimeAttributionSink::EstimateNs(calls, sampled, ns);
}

TimeAttribution TimeAttribution::FromSink(const TimeAttributionSink& sink) {
  TimeAttribution out;
  const auto cell_name = [](int slot) {
    return slot == TimeAttributionSink::kMaxCells - 1
               ? std::string("other")
               : "cell" + std::to_string(slot);
  };
  for (int c = 0; c < TimeAttributionSink::kMaxCells; ++c) {
    if (sink.cell_calls[c] != 0) {
      out.cells.push_back({cell_name(c), sink.cell_calls[c],
                           sink.cell_sampled[c], sink.cell_ns[c]});
    }
    for (int a = 0; a < kNumIntersectArms; ++a) {
      if (sink.arm_calls[c][a] != 0) {
        out.arms.push_back({cell_name(c), IntersectArmName(a),
                            sink.arm_calls[c][a], sink.arm_sampled[c][a],
                            sink.arm_ns[c][a]});
      }
    }
  }
  return out;
}

void TimeAttribution::MergeFrom(const TimeAttribution& other) {
  for (const CellBucket& theirs : other.cells) {
    CellBucket* mine = nullptr;
    for (CellBucket& candidate : cells) {
      if (candidate.name == theirs.name) {
        mine = &candidate;
        break;
      }
    }
    if (mine == nullptr) {
      cells.push_back(theirs);
    } else {
      mine->calls += theirs.calls;
      mine->sampled += theirs.sampled;
      mine->ns += theirs.ns;
    }
  }
  for (const ArmBucket& theirs : other.arms) {
    ArmBucket* mine = nullptr;
    for (ArmBucket& candidate : arms) {
      if (candidate.cell == theirs.cell && candidate.arm == theirs.arm) {
        mine = &candidate;
        break;
      }
    }
    if (mine == nullptr) {
      arms.push_back(theirs);
    } else {
      mine->calls += theirs.calls;
      mine->sampled += theirs.sampled;
      mine->ns += theirs.ns;
    }
  }
}

void TimeAttribution::WriteCollapsed(std::ostream& os) const {
  for (const CellBucket& cell : cells) {
    const uint64_t cell_est = EstimatedNs(cell.calls, cell.sampled, cell.ns);
    uint64_t arm_total = 0;
    for (const ArmBucket& arm : arms) {
      if (arm.cell == cell.name) {
        arm_total += EstimatedNs(arm.calls, arm.sampled, arm.ns);
      }
    }
    const uint64_t residual = cell_est > arm_total ? cell_est - arm_total : 0;
    if (residual > 0) {
      os << "tdfs;" << cell.name << " " << residual << "\n";
    }
    for (const ArmBucket& arm : arms) {
      if (arm.cell != cell.name) {
        continue;
      }
      const uint64_t est = EstimatedNs(arm.calls, arm.sampled, arm.ns);
      if (est > 0) {
        os << "tdfs;" << cell.name << ";" << arm.arm << " " << est << "\n";
      }
    }
  }
}

void TimeAttribution::ToJson(obs::JsonWriter* w) const {
  w->BeginObject();
  w->Key("cells");
  w->BeginArray();
  for (const CellBucket& cell : cells) {
    w->BeginObject();
    w->KeyValue("name", cell.name);
    w->KeyValue("calls", cell.calls);
    w->KeyValue("sampled", cell.sampled);
    w->KeyValue("ns", cell.ns);
    w->KeyValue("estimated_ns", EstimatedNs(cell.calls, cell.sampled,
                                            cell.ns));
    w->EndObject();
  }
  w->EndArray();
  w->Key("arms");
  w->BeginArray();
  for (const ArmBucket& arm : arms) {
    w->BeginObject();
    w->KeyValue("cell", arm.cell);
    w->KeyValue("arm", arm.arm);
    w->KeyValue("calls", arm.calls);
    w->KeyValue("sampled", arm.sampled);
    w->KeyValue("ns", arm.ns);
    w->KeyValue("estimated_ns", EstimatedNs(arm.calls, arm.sampled,
                                            arm.ns));
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void RunResult::ToJson(obs::JsonWriter* w,
                       const obs::MetricsRegistry* metrics) const {
  w->BeginObject();
  w->Key("status");
  w->BeginObject();
  w->KeyValue("ok", status.ok());
  w->KeyValue("code", StatusCodeName(status.code()));
  w->KeyValue("message", status.message());
  w->EndObject();
  w->KeyValue("match_count", match_count);
  w->KeyValue("total_ms", total_ms);
  w->KeyValue("match_ms", match_ms);
  w->KeyValue("simulated_gpu_ms", SimulatedGpuMs());
  w->KeyValue("simulated_parallel_ms", SimulatedParallelMs());
  w->Key("per_device_ms");
  w->BeginArray();
  for (double t : per_device_ms) {
    w->Value(t);
  }
  w->EndArray();
  w->Key("counters");
  w->BeginObject();
#define TDFS_FIELD_JSON(name) w->KeyValue(#name, counters.name);
  TDFS_RUN_COUNTER_FIELDS(TDFS_FIELD_JSON)
#undef TDFS_FIELD_JSON
  w->EndObject();
  if (!per_shard.empty()) {
    w->Key("per_shard");
    w->BeginArray();
    for (const ShardRunStats& s : per_shard) {
      w->BeginObject();
      w->KeyValue("shard_id", s.shard_id);
      w->KeyValue("numa_node", s.numa_node);
      w->KeyValue("owned_rows", s.owned_rows);
      w->KeyValue("halo_rows", s.halo_rows);
      w->KeyValue("owned_edges", s.owned_edges);
      w->KeyValue("resident_bytes", s.resident_bytes);
      w->KeyValue("routed_out", s.routed_out);
      w->KeyValue("routed_in", s.routed_in);
      w->KeyValue("local_rows", s.local_rows);
      w->KeyValue("local_items", s.local_items);
      w->KeyValue("halo_rows_fetched", s.halo_rows_fetched);
      w->KeyValue("halo_items", s.halo_items);
      w->KeyValue("remote_rows", s.remote_rows);
      w->KeyValue("remote_items", s.remote_items);
      w->KeyValue("work_units", s.work_units);
      w->KeyValue("max_warp_work_units", s.max_warp_work_units);
      w->KeyValue("simulated_ms", s.simulated_ms);
      w->EndObject();
    }
    w->EndArray();
  }
  if (!attribution.Empty()) {
    w->Key("attribution");
    attribution.ToJson(w);
  }
  if (metrics != nullptr && !metrics->Empty()) {
    w->Key("metrics");
    metrics->WriteJson(w);
  }
  w->EndObject();
}

std::string RunResult::ToJsonString(
    const obs::MetricsRegistry* metrics) const {
  std::ostringstream oss;
  obs::JsonWriter w(oss, /*indent=*/2);
  ToJson(&w, metrics);
  oss << "\n";
  return oss.str();
}

}  // namespace tdfs
