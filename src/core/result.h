// Run results and per-run counters reported by every engine.

#ifndef TDFS_CORE_RESULT_H_
#define TDFS_CORE_RESULT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace tdfs::obs {
class JsonWriter;
class MetricsRegistry;
}  // namespace tdfs::obs

namespace tdfs {

/// Every RunCounters field, as X(name). ToJson and the round-trip schema
/// test expand this so the export can never silently fall behind the
/// struct: a field added to RunCounters without extending this list fails
/// the static_assert in result.cc.
#define TDFS_RUN_COUNTER_FIELDS(X) \
  X(work_units)                    \
  X(max_warp_work_units)           \
  X(edges_scanned)                 \
  X(initial_tasks)                 \
  X(timeout_splits)                \
  X(tasks_enqueued)                \
  X(tasks_dequeued)                \
  X(queue_full_failures)           \
  X(queue_peak_tasks)              \
  X(steal_attempts)                \
  X(steal_successes)               \
  X(steal_probes)                  \
  X(shard_cross_msgs)              \
  X(shard_halo_hits)               \
  X(shard_remote_reads)            \
  X(shard_cross_steals)            \
  X(kernels_launched)              \
  X(child_warps_launched)          \
  X(stack_bytes_peak)              \
  X(pages_peak)                    \
  X(alloc_misses)                  \
  X(spill_allocs)                  \
  X(spill_pages_peak)              \
  X(spill_promotions)              \
  X(stack_overflow)                \
  X(failpoint_fires)               \
  X(pressure_retries)              \
  X(pressure_pages_released)       \
  X(deferred_tasks)                \
  X(adoption_rejects)              \
  X(attempts)                      \
  X(degraded_mode)                 \
  X(devices_recovered)             \
  X(bfs_batches)                   \
  X(bfs_peak_bytes)                \
  X(preprocess_ms)                 \
  X(prefilter_ms)                  \
  X(prefilter_original_vertices)   \
  X(prefilter_original_edges)      \
  X(prefilter_kept_vertices)       \
  X(prefilter_kept_edges)

/// Counters accumulated over one matching job. All engines fill the fields
/// that apply to them; the rest stay zero. Values are exact once the job
/// has completed.
struct RunCounters {
  /// Abstract work units (set-intersection comparisons and probes). The
  /// machine-independent cost measure used by the virtual clock and for
  /// cross-engine shape comparisons.
  uint64_t work_units = 0;

  /// Work units of the single busiest warp. On a host where warps share
  /// CPU cores, wall time alone cannot expose load imbalance (an idle
  /// virtual warp frees the core for the straggler), so the simulated
  /// parallel makespan is derived from this: see
  /// RunResult::SimulatedGpuMs().
  uint64_t max_warp_work_units = 0;

  /// Directed edges inspected as initial tasks / surviving the edge filter.
  int64_t edges_scanned = 0;
  int64_t initial_tasks = 0;

  // -- timeout strategy --
  int64_t timeout_splits = 0;    // decomposition events
  int64_t tasks_enqueued = 0;    // tasks pushed to Q_task
  int64_t tasks_dequeued = 0;
  int64_t queue_full_failures = 0;
  int64_t queue_peak_tasks = 0;  // high-water mark of Q_task

  // -- half-steal strategy --
  int64_t steal_attempts = 0;
  int64_t steal_successes = 0;
  int64_t steal_probes = 0;  // victim stacks inspected across all attempts

  // -- sharded execution (src/shard/) --
  int64_t shard_cross_msgs = 0;    // initial-edge tasks routed to another
                                   // shard's queue at seeding time
  int64_t shard_halo_hits = 0;     // adjacency rows served from the halo
  int64_t shard_remote_reads = 0;  // adjacency rows fetched from the owner
  int64_t shard_cross_steals = 0;  // tasks dequeued from a sibling shard's
                                   // queue after this shard drained

  // -- new-kernel strategy --
  int64_t kernels_launched = 0;  // child kernels only
  int64_t child_warps_launched = 0;

  // -- memory --
  int64_t stack_bytes_peak = 0;   // sum over warps of stack footprint
  int64_t pages_peak = 0;         // paged backend: peak pages in use
                                  // (both tiers — true page demand)
  int64_t alloc_misses = 0;       // AllocPage calls that returned
                                  // kNullPage (every tier dry)
  int64_t spill_allocs = 0;       // host spill pages allocated
  int64_t spill_pages_peak = 0;   // peak concurrent spill pages
  int64_t spill_promotions = 0;   // spill pages promoted back to arena
  bool stack_overflow = false;    // fixed-capacity backend truncated

  // -- fault tolerance (never silent: Summary() reports degraded runs) --
  int64_t failpoint_fires = 0;     // injected faults observed by this job
  int64_t pressure_retries = 0;    // paged-stack writes retried under
                                   // pool pressure
  int64_t pressure_pages_released = 0;  // pages freed by pressure release
  int64_t deferred_tasks = 0;      // tasks re-enqueued instead of failing
  int64_t adoption_rejects = 0;    // borrowed resources refused because a
                                   // previous lease leaked pages
  int32_t attempts = 1;            // engine executions per device job
                                   // (>1 = retry/escalation kicked in)
  bool degraded_mode = false;      // ran with pressure measures engaged
  int64_t devices_recovered = 0;   // device slices re-executed to success

  // -- BFS (PBE) engine --
  int64_t bfs_batches = 0;
  int64_t bfs_peak_bytes = 0;

  /// Host-side preprocessing (STMatch's single-core edge filter, EGSM's
  /// index build), charged separately as in Section IV-B.
  double preprocess_ms = 0.0;

  // -- candidate prefiltering (query/candidate_filter.h) --
  /// Host-side candidate-filter build time (part of total_ms, like
  /// preprocess_ms). 0 when prefiltering was off or the filtered view came
  /// prebuilt from the service cache.
  double prefilter_ms = 0.0;
  /// Candidate-induced CSR size vs the original graph; all four are 0 when
  /// prefiltering was off. Shared per run, so MergeFrom takes max.
  int64_t prefilter_original_vertices = 0;
  int64_t prefilter_original_edges = 0;  // undirected
  int64_t prefilter_kept_vertices = 0;
  int64_t prefilter_kept_edges = 0;  // undirected

  /// Merges counters from another (sub-)run into this one.
  void MergeFrom(const RunCounters& other);
};

/// The outcome of one matching job.
struct TimeAttributionSink;  // util/time_attr.h

/// Exported wall-time attribution: where a traced run's time went, per
/// plan cell (matching-order position) and per intersection backend arm
/// nested under its cell. Populated from the engines' sampled
/// TimeAttributionSink (util/time_attr.h) only when the run had a trace
/// session; otherwise empty. `ns` is the raw sampled time; EstimatedNs
/// scales it back up by calls/sampled.
struct TimeAttribution {
  struct CellBucket {
    std::string name;  // "cell0".."cell15", "other"
    uint64_t calls = 0;
    uint64_t sampled = 0;
    uint64_t ns = 0;
  };
  struct ArmBucket {
    std::string cell;  // owning cell bucket name
    std::string arm;   // "merge_simd", "bitmap_gallop", ...
    uint64_t calls = 0;
    uint64_t sampled = 0;
    uint64_t ns = 0;
  };

  std::vector<CellBucket> cells;
  std::vector<ArmBucket> arms;

  bool Empty() const { return cells.empty() && arms.empty(); }

  /// Converts a merged engine sink; zero-call buckets are dropped.
  static TimeAttribution FromSink(const TimeAttributionSink& sink);

  static uint64_t EstimatedNs(uint64_t calls, uint64_t sampled, uint64_t ns);

  /// Key-wise accumulate (multi-device / multi-slice merges).
  void MergeFrom(const TimeAttribution& other);

  /// Collapsed-stack flamegraph lines: "tdfs;cellN[;arm] <estimated_ns>".
  /// The cell line carries the estimated cell time minus its arms' time
  /// (clamped at 0 — the layers sample independently), so stack totals
  /// add up the way flamegraph tooling expects.
  void WriteCollapsed(std::ostream& os) const;

  void ToJson(obs::JsonWriter* w) const;
};

/// Per-shard execution summary of a sharded run (src/shard/). Filled by
/// the shard runner only — empty for ordinary runs. Not part of
/// RunCounters: this is per-shard structure, not a mergeable total.
struct ShardRunStats {
  int shard_id = 0;
  int numa_node = -1;          // arena placement hint (-1 = none)
  int64_t owned_rows = 0;      // vertices this shard owns
  int64_t halo_rows = 0;       // boundary vertices halo-cached here
  int64_t owned_edges = 0;     // directed edges seeded from this shard
  int64_t resident_bytes = 0;  // private CSR + halo + id-map bytes
  int64_t routed_out = 0;      // initial edges routed to other shards
  int64_t routed_in = 0;       // initial edges received from other shards
  // Adjacency fetch traffic (rows and list items), by source tier.
  int64_t local_rows = 0;
  int64_t local_items = 0;
  int64_t halo_rows_fetched = 0;
  int64_t halo_items = 0;
  int64_t remote_rows = 0;
  int64_t remote_items = 0;
  uint64_t work_units = 0;          // this shard's share of total work
  uint64_t max_warp_work_units = 0;
  double simulated_ms = 0.0;        // this shard's SimulatedGpuMs share
};

struct RunResult {
  Status status;

  /// Number of matches (symmetry-broken count unless symmetry breaking was
  /// disabled, in which case every automorphic image is counted).
  uint64_t match_count = 0;

  /// End-to-end wall time including preprocessing.
  double total_ms = 0.0;

  /// Matching-kernel wall time (total_ms - preprocess time).
  double match_ms = 0.0;

  /// Per-device kernel times (multi-device runs). The simulated parallel
  /// makespan is the max entry; see vgpu/device.h.
  std::vector<double> per_device_ms;

  RunCounters counters;

  /// Per-shard stats for sharded runs (empty otherwise); exported under
  /// "per_shard" in ToJson.
  std::vector<ShardRunStats> per_shard;

  /// Per-cell / per-arm wall-time attribution (traced runs only).
  TimeAttribution attribution;

  /// Simulated GPU (warp-parallel) time: the share of the measured wall
  /// time attributable to the busiest warp,
  ///   match_ms * max_warp_work_units / work_units.
  /// If every warp did equal work this is match_ms / num_warps; if one
  /// straggler did everything it is match_ms. Mechanism overheads that
  /// cost time but no work units (stack locks, kernel launches) inflate
  /// match_ms and therefore this value too — exactly the costs the
  /// paper's strategy comparison measures. Falls back to match_ms when no
  /// work was metered.
  double SimulatedGpuMs() const {
    if (counters.work_units == 0 || counters.max_warp_work_units == 0) {
      return match_ms;
    }
    return match_ms * static_cast<double>(counters.max_warp_work_units) /
           static_cast<double>(counters.work_units);
  }

  /// Simulated parallel time across devices: max over per-device simulated
  /// times for multi-device runs, or this run's own simulated time for
  /// single-device runs (so 1-vs-N comparisons use the same metric).
  double SimulatedParallelMs() const {
    if (per_device_ms.empty()) {
      return SimulatedGpuMs();
    }
    double worst = 0.0;
    for (double t : per_device_ms) {
      worst = worst > t ? worst : t;
    }
    return worst;
  }

  /// Short human-readable line for harness output.
  std::string Summary() const;

  /// Machine-readable export: status, match count, timings (including the
  /// simulated metrics), per-device times, every RunCounters field (via
  /// TDFS_RUN_COUNTER_FIELDS), and — when `metrics` is non-null and
  /// non-empty — the run's metrics registry under "metrics".
  void ToJson(obs::JsonWriter* w,
              const obs::MetricsRegistry* metrics = nullptr) const;

  /// ToJson into a pretty-printed string.
  std::string ToJsonString(
      const obs::MetricsRegistry* metrics = nullptr) const;
};

}  // namespace tdfs

#endif  // TDFS_CORE_RESULT_H_
