#include "dyn/dynamic_graph.h"

#include <utility>

namespace tdfs::dyn {

DynamicGraph::DynamicGraph(const Graph& base)
    // Aliasing constructor: shares no control-block ownership (null
    // deleter target), just points at the caller's graph.
    : snapshot_(std::shared_ptr<const Graph>(), &base) {}

DynamicGraph::DynamicGraph(Graph&& base)
    : snapshot_(std::make_shared<const Graph>(std::move(base))) {}

std::shared_ptr<const Graph> DynamicGraph::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

int64_t DynamicGraph::Version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

Result<std::shared_ptr<const Graph>> DynamicGraph::Apply(
    const GraphDelta& delta) {
  // One rebuild at a time; readers keep taking the old snapshot until the
  // new one is published below.
  std::lock_guard<std::mutex> apply_lock(apply_mu_);
  const std::shared_ptr<const Graph> cur = Snapshot();
  if (Status s = delta.ValidateAgainst(*cur); !s.ok()) {
    return s;
  }

  GraphBuilder builder(cur->NumVertices());
  // Surviving base edges: each undirected edge once (source < target),
  // skipping deletions.
  const int64_t num_directed = cur->NumDirectedEdges();
  for (int64_t e = 0; e < num_directed; ++e) {
    const VertexId u = cur->EdgeSource(e);
    const VertexId v = cur->EdgeTarget(e);
    if (u < v && !delta.Deletes(u, v)) {
      builder.AddEdge(u, v);
    }
  }
  for (const EdgePair& e : delta.insertions()) {
    builder.AddEdge(e.first, e.second);
  }
  if (cur->IsLabeled()) {
    for (VertexId v = 0; v < cur->NumVertices(); ++v) {
      builder.SetLabel(v, cur->VertexLabel(v));
    }
  }
  auto next = std::make_shared<const Graph>(builder.Build());

  std::lock_guard<std::mutex> lock(mu_);
  snapshot_ = next;
  ++version_;
  return next;
}

}  // namespace tdfs::dyn
