// Versioned graph snapshots for batch-dynamic updates.
//
// DynamicGraph publishes an immutable CSR Graph per version. Applying a
// GraphDelta builds the next version's CSR and atomically swaps the
// published snapshot; readers that grabbed the previous shared_ptr keep a
// fully consistent graph for as long as they hold it (in-flight matching
// jobs are never exposed to a half-applied batch). The overlay is thus
// realized as copy-on-apply: engines keep their branch-free CSR hot path
// (Neighbors() stays two loads), and snapshot isolation falls out of
// shared_ptr lifetime instead of per-read version checks. Rebuild cost is
// O(|V| + |E|) per batch — for the match-maintenance workload the term
// that matters is the avoided recount, not the CSR rebuild.

#ifndef TDFS_DYN_DYNAMIC_GRAPH_H_
#define TDFS_DYN_DYNAMIC_GRAPH_H_

#include <memory>
#include <mutex>

#include "dyn/graph_delta.h"
#include "graph/graph.h"
#include "util/status.h"

namespace tdfs::dyn {

class DynamicGraph {
 public:
  /// Version 0 wraps `base` without copying (non-owning aliasing
  /// shared_ptr): a service that never applies a batch pays nothing.
  /// `base` must outlive this object and every snapshot handed out.
  explicit DynamicGraph(const Graph& base);

  /// Version 0 takes ownership of `base`.
  explicit DynamicGraph(Graph&& base);

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  /// The current published snapshot. Never null; safe to hold across
  /// concurrent Apply calls (snapshot isolation).
  std::shared_ptr<const Graph> Snapshot() const;

  /// Number of applied batches (0 = the base graph).
  int64_t Version() const;

  /// Validates `delta` against the current snapshot, builds the next
  /// version, and publishes it. Returns the new snapshot. Concurrent
  /// Apply calls are serialized; concurrent Snapshot readers are never
  /// blocked by a rebuild in progress.
  Result<std::shared_ptr<const Graph>> Apply(const GraphDelta& delta);

 private:
  mutable std::mutex mu_;        // guards snapshot_/version_ swaps
  std::mutex apply_mu_;          // serializes rebuilds (held across Build)
  std::shared_ptr<const Graph> snapshot_;
  int64_t version_ = 0;
};

}  // namespace tdfs::dyn

#endif  // TDFS_DYN_DYNAMIC_GRAPH_H_
