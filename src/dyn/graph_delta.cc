#include "dyn/graph_delta.h"

#include <algorithm>
#include <sstream>

namespace tdfs::dyn {

namespace {

// Normalize + sort + dedupe in place; nullopt-style error via Status.
Status Normalize(std::vector<EdgePair>* edges, const char* what) {
  for (EdgePair& e : *edges) {
    if (e.first < 0 || e.second < 0) {
      return Status::InvalidArgument(std::string(what) +
                                     " has a negative vertex id");
    }
    if (e.first == e.second) {
      return Status::InvalidArgument(
          std::string(what) + " contains the self-loop (" +
          std::to_string(e.first) + ", " + std::to_string(e.second) + ")");
    }
    if (e.first > e.second) {
      std::swap(e.first, e.second);
    }
  }
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
  return Status::OK();
}

}  // namespace

Result<GraphDelta> GraphDelta::Build(std::vector<EdgePair> insertions,
                                     std::vector<EdgePair> deletions) {
  GraphDelta delta;
  delta.insertions_ = std::move(insertions);
  delta.deletions_ = std::move(deletions);
  if (Status s = Normalize(&delta.insertions_, "insertion batch"); !s.ok()) {
    return s;
  }
  if (Status s = Normalize(&delta.deletions_, "deletion batch"); !s.ok()) {
    return s;
  }
  // An edge in both lists has no consistent one-batch meaning (insert
  // before or after the delete?) — the ambiguity would silently change
  // counts, so reject it.
  std::vector<EdgePair> both;
  std::set_intersection(delta.insertions_.begin(), delta.insertions_.end(),
                        delta.deletions_.begin(), delta.deletions_.end(),
                        std::back_inserter(both));
  if (!both.empty()) {
    return Status::InvalidArgument(
        "edge (" + std::to_string(both[0].first) + ", " +
        std::to_string(both[0].second) +
        ") is both inserted and deleted in the same batch");
  }
  return delta;
}

bool GraphDelta::ContainsEdge(const std::vector<EdgePair>& edges, VertexId u,
                              VertexId v) {
  const EdgePair key = u < v ? EdgePair{u, v} : EdgePair{v, u};
  return std::binary_search(edges.begin(), edges.end(), key);
}

Status GraphDelta::ValidateAgainst(const Graph& graph) const {
  const int64_t n = graph.NumVertices();
  const auto in_range = [n](const std::vector<EdgePair>& edges,
                            const char* kind) {
    for (const EdgePair& e : edges) {
      if (e.second >= n) {
        return Status::InvalidArgument(
            std::string(kind) + " (" + std::to_string(e.first) + ", " +
            std::to_string(e.second) + ") references a vertex beyond the " +
            "graph's " + std::to_string(n) + " vertices");
      }
    }
    return Status::OK();
  };
  if (Status s = in_range(insertions_, "insertion"); !s.ok()) {
    return s;
  }
  if (Status s = in_range(deletions_, "deletion"); !s.ok()) {
    return s;
  }
  for (const EdgePair& e : insertions_) {
    if (graph.HasEdge(e.first, e.second)) {
      return Status::InvalidArgument(
          "insertion (" + std::to_string(e.first) + ", " +
          std::to_string(e.second) + ") already exists in the graph");
    }
  }
  for (const EdgePair& e : deletions_) {
    if (!graph.HasEdge(e.first, e.second)) {
      return Status::InvalidArgument(
          "deletion (" + std::to_string(e.first) + ", " +
          std::to_string(e.second) + ") does not exist in the graph");
    }
  }
  return Status::OK();
}

std::string GraphDelta::Summary() const {
  std::ostringstream oss;
  oss << "+" << insertions_.size() << " -" << deletions_.size() << " edges";
  return oss.str();
}

}  // namespace tdfs::dyn
