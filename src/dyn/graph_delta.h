// Batch-dynamic graph updates: the delta type.
//
// A GraphDelta is one validated batch of undirected edge insertions and
// deletions. Build() normalizes endpoint order, sorts, dedupes, and
// rejects structurally impossible batches (self-loops, an edge both
// inserted and deleted); ValidateAgainst() checks the batch against a
// concrete graph (ids in range, insertions absent, deletions present).
// The incremental-maintenance layer (incremental.h) consumes deltas to
// update match counts without a full recount.

#ifndef TDFS_DYN_GRAPH_DELTA_H_
#define TDFS_DYN_GRAPH_DELTA_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tdfs::dyn {

/// An undirected edge as a normalized endpoint pair (first < second).
using EdgePair = std::pair<VertexId, VertexId>;

class GraphDelta {
 public:
  GraphDelta() = default;

  /// Normalizes (u, v) -> (min, max), sorts, dedupes. Fails with
  /// InvalidArgument on self-loops, negative ids, or an edge present in
  /// both lists (an insert+delete of the same edge in one batch has no
  /// consistent meaning — split it across batches).
  static Result<GraphDelta> Build(std::vector<EdgePair> insertions,
                                  std::vector<EdgePair> deletions);

  /// Sorted, deduped, normalized (first < second).
  const std::vector<EdgePair>& insertions() const { return insertions_; }
  const std::vector<EdgePair>& deletions() const { return deletions_; }

  bool empty() const { return insertions_.empty() && deletions_.empty(); }

  /// True iff {u, v} is in the insertion (resp. deletion) list.
  bool Inserts(VertexId u, VertexId v) const {
    return ContainsEdge(insertions_, u, v);
  }
  bool Deletes(VertexId u, VertexId v) const {
    return ContainsEdge(deletions_, u, v);
  }

  /// The batch is applicable to `graph`: every endpoint id is a vertex,
  /// every insertion is absent from the graph, every deletion is present.
  Status ValidateAgainst(const Graph& graph) const;

  /// "+3 -1 edges" style one-liner.
  std::string Summary() const;

 private:
  static bool ContainsEdge(const std::vector<EdgePair>& edges, VertexId u,
                           VertexId v);

  std::vector<EdgePair> insertions_;
  std::vector<EdgePair> deletions_;
};

}  // namespace tdfs::dyn

#endif  // TDFS_DYN_GRAPH_DELTA_H_
