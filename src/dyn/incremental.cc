#include "dyn/incremental.h"

#include <string>
#include <utility>
#include <vector>

#include "core/matcher.h"
#include "query/automorphism.h"

namespace tdfs::dyn {

namespace {

// Counts (raw, no symmetry breaking) the embeddings of `query` in `graph`
// that use at least one edge of `pairs`, via the first-delta-edge
// partition (one delta plan per canonical query-edge rank). Accumulates
// run statistics into `report`.
Result<uint64_t> CountSide(const Graph& graph, const QueryGraph& query,
                           const std::vector<EdgePair>& pairs,
                           const EngineConfig& config,
                           const IncrementalOptions& options,
                           DeltaCountReport* report) {
  if (pairs.empty()) {
    return uint64_t{0};
  }
  const DeltaEdgeSet delta_set = DeltaEdgeSet::FromEdges(pairs);

  PlanOptions plan_options;
  plan_options.use_symmetry_breaking = false;
  plan_options.use_reuse = config.use_reuse;
  plan_options.induced = false;

  EngineConfig run_config = config;
  run_config.use_symmetry_breaking = false;
  run_config.induced = false;
  run_config.host_side_edge_filter = false;
  run_config.delta_edges = &delta_set;
  if (options.resources != nullptr) {
    run_config.resources = options.resources;
  }
  if (options.trace != nullptr) {
    run_config.trace = options.trace;
  }

  uint64_t raw = 0;
  int64_t side_seeds = 0;
  int64_t side_runs = 0;
  for (int rank = 0; rank < query.NumEdges(); ++rank) {
    plan_options.delta_edge_rank = rank;

    std::shared_ptr<const MatchPlan> plan;
    if (options.plan_provider) {
      Result<std::shared_ptr<const MatchPlan>> cached =
          options.plan_provider(query, plan_options);
      if (!cached.ok()) {
        return cached.status();
      }
      plan = cached.value();
    } else {
      Result<MatchPlan> compiled = CompilePlan(query, plan_options);
      if (!compiled.ok()) {
        return compiled.status();
      }
      plan = std::make_shared<const MatchPlan>(std::move(compiled.value()));
    }

    // Seed both orientations of every delta edge that survives the
    // plan's initial-edge filter (labels/degrees at positions 0 and 1).
    std::vector<int64_t> seeds;
    seeds.reserve(2 * pairs.size());
    for (const EdgePair& e : pairs) {
      const int64_t fwd = graph.DirectedEdgeIndex(e.first, e.second);
      const int64_t rev = graph.DirectedEdgeIndex(e.second, e.first);
      if (fwd < 0 || rev < 0) {
        return Status::Internal(
            "delta edge (" + std::to_string(e.first) + ", " +
            std::to_string(e.second) + ") is missing from the side's graph");
      }
      if (PassesEdgeFilter(*plan, graph, e.first, e.second,
                           config.use_degree_filter)) {
        seeds.push_back(fwd);
      }
      if (PassesEdgeFilter(*plan, graph, e.second, e.first,
                           config.use_degree_filter)) {
        seeds.push_back(rev);
      }
    }
    if (seeds.empty()) {
      continue;
    }

    run_config.initial_edges = &seeds;
    const RunResult r = RunMatchingPlanned(graph, *plan, run_config);
    if (!r.status.ok()) {
      return r.status;
    }
    raw += r.match_count;
    report->counters.MergeFrom(r.counters);
    report->total_ms += r.total_ms;
    side_runs += 1;
    side_seeds += static_cast<int64_t>(seeds.size());
  }
  report->delta_plans_run += side_runs;
  report->seed_edges += side_seeds;

  if (options.metrics != nullptr && side_runs > 0) {
    obs::Add(options.metrics->GetCounter("dyn.delta_plans_run"), side_runs);
    obs::Add(options.metrics->GetCounter("dyn.seed_edges"), side_seeds);
  }
  if (options.trace != nullptr) {
    options.trace->RecordGlobal(0, obs::TraceEvent::kDeltaBatch, side_seeds);
  }
  return raw;
}

// Divides a raw (symmetry-free) embedding count by the automorphism
// group order, failing loudly if the group does not divide it (which
// would mean the partition under- or over-counted).
Result<uint64_t> Reduce(uint64_t raw, uint64_t aut, const char* side) {
  if (raw % aut != 0) {
    return Status::Internal(
        std::string("incremental ") + side + " count " + std::to_string(raw) +
        " is not divisible by the automorphism group order " +
        std::to_string(aut));
  }
  return raw / aut;
}

}  // namespace

Result<DeltaCountReport> CountDeltaMatches(const Graph& pre, const Graph& post,
                                           const QueryGraph& query,
                                           const GraphDelta& delta,
                                           const EngineConfig& config,
                                           const IncrementalOptions& options) {
  if (config.induced) {
    return Status::InvalidArgument(
        "incremental maintenance does not support induced matching: an "
        "edge deletion can create induced embeddings that contain no "
        "delta edge, so delta seeding cannot enumerate them");
  }
  if (query.NumEdges() == 0) {
    return Status::InvalidArgument("query has no edges");
  }

  DeltaCountReport report;
  // Deletions destroy embeddings of the PRE graph; insertions create
  // embeddings of the POST graph. Everything else is untouched.
  Result<uint64_t> raw_lost =
      CountSide(pre, query, delta.deletions(), config, options, &report);
  if (!raw_lost.ok()) {
    return raw_lost.status();
  }
  Result<uint64_t> raw_gained =
      CountSide(post, query, delta.insertions(), config, options, &report);
  if (!raw_gained.ok()) {
    return raw_gained.status();
  }

  const uint64_t aut = config.use_symmetry_breaking
                           ? static_cast<uint64_t>(AutomorphismCount(query))
                           : 1;
  Result<uint64_t> lost = Reduce(raw_lost.value(), aut, "lost");
  if (!lost.ok()) {
    return lost.status();
  }
  Result<uint64_t> gained = Reduce(raw_gained.value(), aut, "gained");
  if (!gained.ok()) {
    return gained.status();
  }
  report.lost = lost.value();
  report.gained = gained.value();
  return report;
}

}  // namespace tdfs::dyn
