// Incremental match maintenance over edge-delta batches.
//
// Given a query Q, a batch D = (D+, D-) applied to graph G yielding G',
// the exact new count is
//
//     count(G') = count(G) - lost + gained
//
// where `lost` is the number of embeddings of Q in G that use at least
// one D- edge (counted on the PRE-update graph) and `gained` is the
// number of embeddings of Q in G' that use at least one D+ edge (counted
// on the POST-update graph). Embeddings of G that avoid D- are exactly
// the embeddings of G' that avoid D+ (the two graphs agree outside the
// delta), which is what makes the mixed-batch subtraction exact.
//
// Each side is counted by the first-delta-edge partition: enumerate the
// query's edges in canonical order (lexicographic (a, b), a < b) and, for
// each rank j, run a delta plan (PlanOptions::delta_edge_rank = j) that
//   * seeds the engine with ONLY the delta data edges (both orientations)
//     as initial tasks — query edge j is pinned onto a delta edge, and
//   * forbids every query edge of rank < j from landing on a delta edge
//     (MatchPlan::delta_forbidden, checked at consume time).
// An embedding that uses delta edges is counted by exactly one rank: the
// smallest rank its delta edges give to a query edge. Summing over ranks
// is therefore exact and duplicate-free.
//
// Delta plans run with symmetry breaking OFF (each rank must see every
// automorphic image, or an image could be dropped by a restriction that
// the seeded orientation violates); when the caller's config uses
// symmetry breaking, the raw sums are divided by |Aut(Q)| — the
// automorphism group acts freely on embeddings, so the division is exact
// (a runtime check fails loudly if not). Induced matching is rejected:
// deleting an edge can CREATE induced embeddings elsewhere, which the
// delta seeding cannot see.

#ifndef TDFS_DYN_INCREMENTAL_H_
#define TDFS_DYN_INCREMENTAL_H_

#include <functional>
#include <memory>

#include "core/config.h"
#include "core/result.h"
#include "dyn/graph_delta.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/plan.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace tdfs::dyn {

/// Plan source for delta plans: the service layer passes its PlanCache
/// (so per-rank delta plans are compiled once per registered query); null
/// compiles fresh plans per call.
using PlanProvider = std::function<Result<std::shared_ptr<const MatchPlan>>(
    const QueryGraph&, const PlanOptions&)>;

struct IncrementalOptions {
  /// Null = compile per call.
  PlanProvider plan_provider;

  /// Borrowed warm engine resources (arena lease) reused across the
  /// per-rank runs. Null = allocate per run.
  const EngineResources* resources = nullptr;

  /// dyn.* counters (dyn.delta_plans_run, dyn.seed_edges). Null disables.
  obs::MetricsRegistry* metrics = nullptr;

  /// Per-side kDeltaBatch trace events (arg = seed-edge count). Null
  /// disables.
  obs::TraceSession* trace = nullptr;
};

/// One side's (insertions or deletions) incremental count breakdown plus
/// the combined report CountDeltaMatches returns.
struct DeltaCountReport {
  /// Embeddings destroyed by the batch's deletions (counted on `pre`).
  uint64_t lost = 0;

  /// Embeddings created by the batch's insertions (counted on `post`).
  uint64_t gained = 0;

  /// Delta-plan engine runs executed (<= 2 * query edges; empty-seed
  /// ranks are skipped).
  int64_t delta_plans_run = 0;

  /// Total seeded initial edges across runs (post edge filter, both
  /// orientations).
  int64_t seed_edges = 0;

  /// Merged engine counters across every delta-plan run.
  RunCounters counters;

  double total_ms = 0.0;

  /// new_count = old_count - lost + gained.
  uint64_t ApplyTo(uint64_t old_count) const {
    return old_count - lost + gained;
  }
};

/// Counts the embeddings lost to `delta`'s deletions on `pre` and gained
/// from its insertions on `post`. `pre` must be the graph before the
/// batch, `post` the graph after (DynamicGraph::Apply's result); the
/// counts follow config's matching semantics (labels, symmetry breaking,
/// degree filter). Fails on induced configs and on queries the delta
/// machinery cannot maintain (see file comment).
Result<DeltaCountReport> CountDeltaMatches(
    const Graph& pre, const Graph& post, const QueryGraph& query,
    const GraphDelta& delta, const EngineConfig& config,
    const IncrementalOptions& options = IncrementalOptions{});

}  // namespace tdfs::dyn

#endif  // TDFS_DYN_INCREMENTAL_H_
