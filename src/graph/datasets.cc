#include "graph/datasets.h"

#include "graph/generators.h"
#include "util/status.h"

namespace tdfs {

namespace {

// Per-dataset deterministic seeds; changing one regenerates only that graph.
constexpr uint64_t kSeedBase = 0x7df50000;

// Big datasets are labeled with 4 uniform labels, as in Fig. 10.
constexpr int32_t kBigGraphLabels = 4;

}  // namespace

const std::vector<DatasetId>& AllDatasets() {
  static const std::vector<DatasetId> kAll = {
      DatasetId::kAmazon,      DatasetId::kDblp,     DatasetId::kYoutube,
      DatasetId::kWebGoogle,   DatasetId::kCitPatents,
      DatasetId::kSocFacebook, DatasetId::kPokec,    DatasetId::kImdb,
      DatasetId::kOrkut,       DatasetId::kSinaweibo,
      DatasetId::kDatagenFb,   DatasetId::kFriendster,
  };
  return kAll;
}

const std::vector<DatasetId>& ModerateDatasets() {
  static const std::vector<DatasetId> kModerate = {
      DatasetId::kAmazon,      DatasetId::kDblp,     DatasetId::kYoutube,
      DatasetId::kWebGoogle,   DatasetId::kCitPatents,
      DatasetId::kSocFacebook, DatasetId::kPokec,    DatasetId::kImdb,
  };
  return kModerate;
}

const std::vector<DatasetId>& BigDatasets() {
  static const std::vector<DatasetId> kBig = {
      DatasetId::kOrkut,
      DatasetId::kSinaweibo,
      DatasetId::kDatagenFb,
      DatasetId::kFriendster,
  };
  return kBig;
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kAmazon:
      return "amazon";
    case DatasetId::kDblp:
      return "dblp";
    case DatasetId::kYoutube:
      return "youtube";
    case DatasetId::kWebGoogle:
      return "web-google";
    case DatasetId::kCitPatents:
      return "cit-patents";
    case DatasetId::kSocFacebook:
      return "soc-facebook";
    case DatasetId::kPokec:
      return "pokec";
    case DatasetId::kImdb:
      return "imdb";
    case DatasetId::kOrkut:
      return "orkut";
    case DatasetId::kSinaweibo:
      return "sinaweibo";
    case DatasetId::kDatagenFb:
      return "datagen-fb";
    case DatasetId::kFriendster:
      return "friendster";
  }
  return "unknown";
}

Result<DatasetId> DatasetFromName(const std::string& name) {
  for (DatasetId id : AllDatasets()) {
    if (DatasetName(id) == name) {
      return id;
    }
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

bool IsBigDataset(DatasetId id) {
  for (DatasetId big : BigDatasets()) {
    if (big == id) {
      return true;
    }
  }
  return false;
}

Graph LoadDataset(DatasetId id) {
  Graph g;
  switch (id) {
    case DatasetId::kAmazon:
      // Flat degrees, small max degree.
      g = GenerateErdosRenyi(6000, 16500, kSeedBase + 1);
      break;
    case DatasetId::kDblp:
      // Co-authorship communities of ~20.
      g = GeneratePlantedPartition(6000, 300, 0.29, 0.00018, kSeedBase + 2);
      break;
    case DatasetId::kYoutube:
      // Power-law tail plus celebrity hubs; the paper's canonical
      // straggler graph (YouTube's max degree is ~5000x its average).
      g = GenerateHubbedPowerLaw(8000, 3, /*num_hubs=*/3,
                                 /*hub_degree=*/500, kSeedBase + 3);
      break;
    case DatasetId::kWebGoogle:
      // Self-similar web-graph skew.
      g = GenerateRmat(4096, 18000, 0.55, 0.2, 0.2, kSeedBase + 4);
      break;
    case DatasetId::kCitPatents:
      g = GenerateErdosRenyi(9000, 40000, kSeedBase + 5);
      break;
    case DatasetId::kSocFacebook:
      g = GenerateBarabasiAlbert(7000, 4, kSeedBase + 6);
      break;
    case DatasetId::kPokec:
      // Densest moderate graph with a fat degree tail and hubs.
      g = GenerateHubbedPowerLaw(2500, 6, /*num_hubs=*/2,
                                 /*hub_degree=*/400, kSeedBase + 7);
      break;
    case DatasetId::kImdb:
      g = GeneratePlantedPartition(8000, 200, 0.167, 0.00019, kSeedBase + 8);
      break;
    case DatasetId::kOrkut:
      g = GeneratePlantedPartition(4000, 40, 0.36, 0.001, kSeedBase + 9);
      g.AssignUniformLabels(kBigGraphLabels, kSeedBase + 109);
      break;
    case DatasetId::kSinaweibo:
      // Extreme R-MAT skew (largest max-degree/avg-degree ratio).
      g = GenerateRmat(16384, 70000, 0.65, 0.15, 0.15, kSeedBase + 10);
      g.AssignUniformLabels(kBigGraphLabels, kSeedBase + 110);
      break;
    case DatasetId::kDatagenFb:
      // Densest graph in the suite (LDBC datagen analog).
      g = GeneratePlantedPartition(2500, 12, 0.21, 0.0017, kSeedBase + 11);
      g.AssignUniformLabels(kBigGraphLabels, kSeedBase + 111);
      break;
    case DatasetId::kFriendster:
      // Largest |V| and |E| in the suite.
      g = GenerateBarabasiAlbert(20000, 14, kSeedBase + 12);
      g.AssignUniformLabels(kBigGraphLabels, kSeedBase + 112);
      break;
  }
  return g;
}

}  // namespace tdfs
