// Registry of the 12 benchmark dataset analogs (Table I of the paper).
//
// The paper's real graphs cannot be downloaded in this offline environment,
// so each is replaced by a deterministic synthetic analog whose generator
// and parameters were chosen to match the property the paper's narrative
// attributes to that graph:
//
//   paper graph     |V| / |E| (paper)       analog (this repo)
//   --------------- ----------------------- -----------------------------
//   Amazon          335 K /   926 K         ER, flat degrees
//   DBLP            317 K /  1.05 M         planted partition (co-author
//                                           communities)
//   YouTube         1.13 M / 2.99 M         BA power law, very large d_max
//                                           (the paper's straggler example)
//   web-Google      876 K /  4.3 M          R-MAT, skewed
//   cit-Patents     3.8 M / 16.5 M          ER-ish moderate skew
//   soc-facebook    1.22 M / 5.4 M          BA with small m (bounded d_max)
//   Pokec           1.63 M / 22.3 M         BA power law, large d_max
//   imdb-2021       3.1 M / 23.7 M          planted partition
//   -- big graphs (labeled with 4 labels in Fig. 10) --
//   Orkut           3.1 M /  117 M          planted partition, dense
//   soc-sinaweibo   58.7 M /  261 M         R-MAT, extreme skew
//   Datagen-90-fb   12.9 M / 1.05 B         planted partition, very dense
//   Friendster      65.6 M / 1.81 B         BA + ER blend, high degree
//
// Sizes are scaled down ~100-1000x so the full benchmark suite completes in
// minutes on one CPU core; the scale *ratios* between moderate and big
// graphs, and the skew ordering (YouTube/Pokec/sinaweibo most skewed), are
// preserved because those drive every observation in Section IV.

#ifndef TDFS_GRAPH_DATASETS_H_
#define TDFS_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tdfs {

/// Identifies one of the 12 analog datasets.
enum class DatasetId {
  kAmazon,
  kDblp,
  kYoutube,
  kWebGoogle,
  kCitPatents,
  kSocFacebook,
  kPokec,
  kImdb,
  kOrkut,
  kSinaweibo,
  kDatagenFb,
  kFriendster,
};

/// All 12 datasets in Table I order.
const std::vector<DatasetId>& AllDatasets();

/// The first 8 (moderate, unlabeled in Fig. 9).
const std::vector<DatasetId>& ModerateDatasets();

/// The last 4 (big, labeled with 4 labels in Fig. 10).
const std::vector<DatasetId>& BigDatasets();

/// Table-I name of the dataset ("youtube", "pokec", ...).
std::string DatasetName(DatasetId id);

/// Parses a dataset name. Unknown names yield an error.
Result<DatasetId> DatasetFromName(const std::string& name);

/// Generates the analog graph. Deterministic per dataset id. Big datasets
/// come back labeled with 4 uniform labels (as in Fig. 10); call
/// ClearLabels() or AssignUniformLabels() to change that.
Graph LoadDataset(DatasetId id);

/// True for the 4 big datasets.
bool IsBigDataset(DatasetId id);

}  // namespace tdfs

#endif  // TDFS_GRAPH_DATASETS_H_
