#include "graph/degeneracy.h"

#include <algorithm>

#include "util/status.h"

namespace tdfs {

DegeneracyResult ComputeDegeneracy(const Graph& graph) {
  const int64_t n = graph.NumVertices();
  DegeneracyResult result;
  result.order.reserve(n);
  result.position.assign(n, -1);
  result.core.assign(n, 0);

  // Bucket queue over remaining degrees.
  std::vector<int64_t> degree(n);
  int64_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) {
    buckets[degree[v]].push_back(v);
  }
  std::vector<bool> removed(n, false);
  int64_t cursor = 0;  // smallest possibly-non-empty bucket
  int32_t current_core = 0;
  for (int64_t peeled = 0; peeled < n; ++peeled) {
    while (cursor <= max_degree && buckets[cursor].empty()) {
      ++cursor;
    }
    TDFS_CHECK(cursor <= max_degree || n == 0);
    // Lazy deletion: entries may be stale (vertex moved to a lower bucket
    // or already removed).
    VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || degree[v] != cursor) {
      --peeled;
      continue;
    }
    removed[v] = true;
    current_core = std::max(current_core, static_cast<int32_t>(cursor));
    result.core[v] = current_core;
    result.position[v] = static_cast<int64_t>(result.order.size());
    result.order.push_back(v);
    for (VertexId w : graph.Neighbors(v)) {
      if (!removed[w]) {
        --degree[w];
        buckets[degree[w]].push_back(w);
        if (degree[w] < cursor) {
          cursor = degree[w];
        }
      }
    }
  }
  result.degeneracy = current_core;
  return result;
}

OrientedGraph::OrientedGraph(const Graph& graph) {
  const int64_t n = graph.NumVertices();
  DegeneracyResult degeneracy = ComputeDegeneracy(graph);
  degeneracy_ = degeneracy.degeneracy;
  position_ = std::move(degeneracy.position);
  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : graph.Neighbors(v)) {
      if (position_[w] > position_[v]) {
        ++offsets_[v + 1];
      }
    }
  }
  for (int64_t v = 0; v < n; ++v) {
    offsets_[v + 1] += offsets_[v];
    max_out_degree_ = std::max(max_out_degree_, offsets_[v + 1] - offsets_[v]);
  }
  targets_.resize(offsets_[n]);
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : graph.Neighbors(v)) {
      if (position_[w] > position_[v]) {
        targets_[cursor[v]++] = w;
      }
    }
  }
  // Adjacency lists are sorted by id already (stable filter of sorted CSR).
}

}  // namespace tdfs
