// Degeneracy ordering and core numbers.
//
// The clique applications (k-clique counting, maximal clique enumeration)
// orient the graph by a degeneracy order: every vertex has at most
// `degeneracy` neighbors later in the order, which bounds DFS fanout and
// breaks clique symmetry for free. Computed with the standard O(V + E)
// bucket peeling.

#ifndef TDFS_GRAPH_DEGENERACY_H_
#define TDFS_GRAPH_DEGENERACY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tdfs {

struct DegeneracyResult {
  /// order[i] = vertex peeled i-th (smallest remaining degree first).
  std::vector<VertexId> order;

  /// position[v] = index of v in `order`.
  std::vector<int64_t> position;

  /// core[v] = core number of v (max k such that v is in a k-core).
  std::vector<int32_t> core;

  /// Graph degeneracy = max core number.
  int32_t degeneracy = 0;
};

/// Peels minimum-degree vertices repeatedly.
DegeneracyResult ComputeDegeneracy(const Graph& graph);

/// Directed (oriented) adjacency: for each vertex, its neighbors that come
/// *later* in the degeneracy order, sorted by vertex id. Out-degrees are
/// bounded by the degeneracy.
class OrientedGraph {
 public:
  explicit OrientedGraph(const Graph& graph);

  int64_t NumVertices() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }

  /// Later-ordered neighbors of v, sorted by id.
  VertexSpan OutNeighbors(VertexId v) const {
    return VertexSpan(targets_.data() + offsets_[v],
                      static_cast<size_t>(offsets_[v + 1] - offsets_[v]));
  }

  int64_t OutDegree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Position of v in the degeneracy order.
  int64_t OrderPosition(VertexId v) const { return position_[v]; }

  int32_t degeneracy() const { return degeneracy_; }

  /// Max out-degree (== degeneracy by construction, kept for assertions).
  int64_t MaxOutDegree() const { return max_out_degree_; }

 private:
  std::vector<int64_t> offsets_;
  std::vector<VertexId> targets_;
  std::vector<int64_t> position_;
  int32_t degeneracy_ = 0;
  int64_t max_out_degree_ = 0;
};

}  // namespace tdfs

#endif  // TDFS_GRAPH_DEGENERACY_H_
