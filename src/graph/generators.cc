#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/prng.h"

namespace tdfs {

namespace {

// Packs an edge into one 64-bit key for dedup during generation.
uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) {
    std::swap(u, v);
  }
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

}  // namespace

Graph GenerateErdosRenyi(int64_t num_vertices, int64_t num_edges,
                         uint64_t seed) {
  TDFS_CHECK(num_vertices >= 2);
  const int64_t max_edges = num_vertices * (num_vertices - 1) / 2;
  TDFS_CHECK_MSG(num_edges <= max_edges, "too many edges requested");
  Xoshiro256ss rng(seed);
  GraphBuilder builder(num_vertices);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(num_edges) * 2);
  int64_t added = 0;
  while (added < num_edges) {
    VertexId u =
        static_cast<VertexId>(rng.Below(static_cast<uint64_t>(num_vertices)));
    VertexId v =
        static_cast<VertexId>(rng.Below(static_cast<uint64_t>(num_vertices)));
    if (u == v) {
      continue;
    }
    if (seen.insert(EdgeKey(u, v)).second) {
      builder.AddEdge(u, v);
      ++added;
    }
  }
  return builder.Build();
}

Graph GenerateBarabasiAlbert(int64_t num_vertices, int32_t edges_per_vertex,
                             uint64_t seed) {
  TDFS_CHECK(edges_per_vertex >= 1);
  TDFS_CHECK(num_vertices > edges_per_vertex);
  Xoshiro256ss rng(seed);
  GraphBuilder builder(num_vertices);
  // repeated_targets implements preferential attachment: every endpoint of
  // every edge appears once, so sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<VertexId> repeated_targets;
  repeated_targets.reserve(
      static_cast<size_t>(num_vertices) * edges_per_vertex * 2);

  // Seed clique over the first (edges_per_vertex + 1) vertices.
  const VertexId seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      repeated_targets.push_back(u);
      repeated_targets.push_back(v);
    }
  }
  std::unordered_set<VertexId> picked;
  for (VertexId v = seed_size; v < num_vertices; ++v) {
    picked.clear();
    while (static_cast<int32_t>(picked.size()) < edges_per_vertex) {
      VertexId target =
          repeated_targets[rng.Below(repeated_targets.size())];
      picked.insert(target);
    }
    for (VertexId target : picked) {
      builder.AddEdge(v, target);
      repeated_targets.push_back(v);
      repeated_targets.push_back(target);
    }
  }
  return builder.Build();
}

Graph GenerateHubbedPowerLaw(int64_t num_vertices, int32_t edges_per_vertex,
                             int32_t num_hubs, int64_t hub_degree,
                             uint64_t seed) {
  TDFS_CHECK(num_hubs >= 0);
  TDFS_CHECK(hub_degree < num_vertices);
  Graph base = GenerateBarabasiAlbert(num_vertices, edges_per_vertex, seed);
  if (num_hubs == 0) {
    return base;
  }
  Xoshiro256ss rng(seed ^ 0x9e3779b97f4a7c15ULL);
  GraphBuilder builder(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (VertexId w : base.Neighbors(v)) {
      if (v < w) {
        builder.AddEdge(v, w);
      }
    }
  }
  // The hubs are the first `num_hubs` vertices (already the highest-degree
  // ones under preferential attachment).
  for (VertexId hub = 0; hub < num_hubs; ++hub) {
    int64_t added = 0;
    while (added < hub_degree) {
      VertexId w = static_cast<VertexId>(
          rng.Below(static_cast<uint64_t>(num_vertices)));
      if (w != hub) {
        builder.AddEdge(hub, w);  // duplicates deduped by the builder
        ++added;
      }
    }
  }
  return builder.Build();
}

Graph GenerateRmat(int64_t num_vertices, int64_t num_edges, double a,
                   double b, double c, uint64_t seed) {
  TDFS_CHECK(num_vertices >= 2);
  double d = 1.0 - a - b - c;
  TDFS_CHECK_MSG(a >= 0 && b >= 0 && c >= 0 && d >= -1e-9,
                 "rmat probabilities must sum to <= 1");
  int scale = 0;
  while ((int64_t{1} << scale) < num_vertices) {
    ++scale;
  }
  Xoshiro256ss rng(seed);
  GraphBuilder builder(num_vertices);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(num_edges) * 2);
  int64_t added = 0;
  int64_t attempts = 0;
  const int64_t max_attempts = num_edges * 64;
  while (added < num_edges && attempts < max_attempts) {
    ++attempts;
    int64_t u = 0;
    int64_t v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || u >= num_vertices || v >= num_vertices) {
      continue;
    }
    if (seen.insert(EdgeKey(static_cast<VertexId>(u),
                            static_cast<VertexId>(v)))
            .second) {
      builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      ++added;
    }
  }
  return builder.Build();
}

Graph GeneratePlantedPartition(int64_t num_vertices, int32_t num_communities,
                               double p_in, double p_out, uint64_t seed) {
  TDFS_CHECK(num_communities >= 1);
  TDFS_CHECK(num_vertices >= num_communities);
  TDFS_CHECK(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1);
  Xoshiro256ss rng(seed);
  GraphBuilder builder(num_vertices);
  const int64_t community_size = num_vertices / num_communities;
  auto community_of = [&](int64_t v) {
    return std::min<int64_t>(v / community_size, num_communities - 1);
  };
  // Geometric skipping makes generation O(E) instead of O(V^2).
  auto sample_pairs = [&](double p, auto&& accept) {
    if (p <= 0.0) {
      return;
    }
    const double log1mp = std::log(1.0 - std::min(p, 0.999999));
    int64_t total_pairs = num_vertices * (num_vertices - 1) / 2;
    int64_t idx = -1;
    while (true) {
      double r = rng.NextDouble();
      int64_t skip =
          p >= 0.999999
              ? 1
              : 1 + static_cast<int64_t>(std::log(1.0 - r) / log1mp);
      idx += skip;
      if (idx >= total_pairs) {
        break;
      }
      // Decode pair index -> (u, v), u < v, row-major over the upper
      // triangle. Row u starts at offset S(u) = u*n - u*(u+1)/2; invert
      // with the quadratic formula and fix up rounding.
      const double nd = static_cast<double>(num_vertices);
      int64_t u = static_cast<int64_t>(
          nd - 0.5 - std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 *
                               static_cast<double>(idx)));
      u = std::max<int64_t>(u - 2, 0);
      auto row_start = [num_vertices](int64_t r) {
        return r * num_vertices - r * (r + 1) / 2;
      };
      while (u + 1 < num_vertices && row_start(u + 1) <= idx) {
        ++u;
      }
      int64_t v = u + 1 + (idx - row_start(u));
      accept(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  };
  // Two independent passes: inter pairs kept at rate p_out, intra pairs at
  // rate p_in. Each pass enumerates candidate pairs with geometric skips and
  // filters by community, which is exact and O(E).
  sample_pairs(p_out, [&](VertexId u, VertexId v) {
    if (community_of(u) != community_of(v)) {
      builder.AddEdge(u, v);
    }
  });
  sample_pairs(p_in, [&](VertexId u, VertexId v) {
    if (community_of(u) == community_of(v)) {
      builder.AddEdge(u, v);
    }
  });
  return builder.Build();
}

}  // namespace tdfs
