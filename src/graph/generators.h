// Synthetic graph generators.
//
// The paper evaluates on 12 real graphs (SNAP / LAW / network-repository /
// LDBC). No network access is available in this environment, so the
// benchmark suite substitutes synthetic analogs whose *shape* parameters
// (average degree, degree skew, community structure) are matched to Table I
// of the paper. Four classic generators cover the needed shapes:
//
//  * Erdős–Rényi G(n, m): flat degree distribution (Amazon/DBLP-like).
//  * Barabási–Albert preferential attachment: power-law tail with a large
//    max degree (YouTube/Pokec/cit-Patents-like) — this is what creates the
//    straggler tasks the paper's timeout mechanism targets.
//  * R-MAT: skewed, self-similar (web-Google / sinaweibo-like).
//  * Planted partition: dense communities (LDBC datagen / Orkut-like).
//
// All generators are deterministic functions of their seed.

#ifndef TDFS_GRAPH_GENERATORS_H_
#define TDFS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace tdfs {

/// Erdős–Rényi G(n, m): m distinct uniform edges among n vertices.
Graph GenerateErdosRenyi(int64_t num_vertices, int64_t num_edges,
                         uint64_t seed);

/// Barabási–Albert: each new vertex attaches to `edges_per_vertex` existing
/// vertices chosen by preferential attachment (power-law degrees).
Graph GenerateBarabasiAlbert(int64_t num_vertices, int32_t edges_per_vertex,
                             uint64_t seed);

/// R-MAT with partition probabilities (a, b, c, d), a+b+c+d == 1.
/// num_vertices is rounded up to a power of two internally but isolated
/// padding vertices are kept (they never match anything with degree > 0).
Graph GenerateRmat(int64_t num_vertices, int64_t num_edges, double a,
                   double b, double c, uint64_t seed);

/// Planted partition: `num_communities` equal-size groups; intra-community
/// edge probability p_in, inter-community p_out.
Graph GeneratePlantedPartition(int64_t num_vertices, int32_t num_communities,
                               double p_in, double p_out, uint64_t seed);

/// Barabási–Albert base plus `num_hubs` celebrity vertices each connected
/// to `hub_degree` uniformly random vertices. Real social graphs
/// (YouTube, Pokec, sinaweibo in Table I) have max degrees thousands of
/// times the average; plain preferential attachment at laptop scale cannot
/// reach that ratio, and these hubs are what turns a handful of initial
/// edge tasks into the stragglers the paper's timeout mechanism exists
/// for.
Graph GenerateHubbedPowerLaw(int64_t num_vertices, int32_t edges_per_vertex,
                             int32_t num_hubs, int64_t hub_degree,
                             uint64_t seed);

}  // namespace tdfs

#endif  // TDFS_GRAPH_GENERATORS_H_
