#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/prng.h"

namespace tdfs {

void Graph::AssignUniformLabels(int32_t num_labels, uint64_t seed) {
  TDFS_CHECK(num_labels > 0);
  Xoshiro256ss rng(seed);
  labels_.resize(NumVertices());
  for (auto& l : labels_) {
    l = static_cast<Label>(rng.Below(static_cast<uint64_t>(num_labels)));
  }
  num_labels_ = num_labels;
}

void Graph::AssignZipfLabels(int32_t num_labels, double skew,
                             uint64_t seed) {
  TDFS_CHECK(num_labels > 0);
  TDFS_CHECK(skew >= 0.0);
  // Cumulative Zipf mass: cdf[k] = sum_{j<=k} (j+1)^-skew, then sample by
  // inverting a uniform draw against the (unnormalized) cumulative table.
  std::vector<double> cdf(static_cast<size_t>(num_labels));
  double total = 0.0;
  for (int32_t k = 0; k < num_labels; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf[static_cast<size_t>(k)] = total;
  }
  Xoshiro256ss rng(seed);
  labels_.resize(NumVertices());
  for (auto& l : labels_) {
    const double draw = rng.NextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), draw);
    l = static_cast<Label>(it == cdf.end() ? num_labels - 1
                                           : it - cdf.begin());
  }
  num_labels_ = num_labels;
}

VertexSpan Graph::ShardNeighbors(VertexId v) const {
  const int32_t r = shard_row_[v];
  if (r >= 0) {
    const size_t len = static_cast<size_t>(offsets_[r + 1] - offsets_[r]);
    if (shard_stats_ != nullptr) {
      shard_stats_->local_rows.fetch_add(1, std::memory_order_relaxed);
      shard_stats_->local_items.fetch_add(static_cast<int64_t>(len),
                                          std::memory_order_relaxed);
    }
    return VertexSpan(targets_.data() + offsets_[r], len);
  }
  if (r <= -2) {
    const int64_t h = -2 - static_cast<int64_t>(r);
    const size_t len =
        static_cast<size_t>(halo_offsets_[h + 1] - halo_offsets_[h]);
    if (shard_stats_ != nullptr) {
      shard_stats_->halo_rows.fetch_add(1, std::memory_order_relaxed);
      shard_stats_->halo_items.fetch_add(static_cast<int64_t>(len),
                                         std::memory_order_relaxed);
    }
    return VertexSpan(halo_targets_ + halo_offsets_[h], len);
  }
  const VertexSpan row = shard_remote_->FetchRow(shard_id_, v);
  if (shard_stats_ != nullptr) {
    shard_stats_->remote_rows.fetch_add(1, std::memory_order_relaxed);
    shard_stats_->remote_items.fetch_add(static_cast<int64_t>(row.size()),
                                         std::memory_order_relaxed);
  }
  return row;
}

void Graph::ClearLabels() {
  labels_.clear();
  num_labels_ = 0;
}

std::string Graph::Summary() const {
  std::ostringstream oss;
  oss << "|V|=" << NumVertices() << " |E|=" << NumEdges()
      << " avg_deg=" << AvgDegree() << " max_deg=" << MaxDegree();
  if (IsLabeled()) {
    oss << " labels=" << NumLabels();
  } else {
    oss << " unlabeled";
  }
  return oss.str();
}

GraphBuilder::GraphBuilder(int64_t num_vertices)
    : num_vertices_(num_vertices) {
  TDFS_CHECK(num_vertices >= 0);
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  TDFS_CHECK_MSG(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_,
                 "edge (" << u << "," << v << ") out of range [0,"
                          << num_vertices_ << ")");
  if (u == v) {
    return;  // drop self-loop
  }
  if (u > v) {
    std::swap(u, v);
  }
  edges_.emplace_back(u, v);
}

void GraphBuilder::SetLabel(VertexId v, Label label) {
  TDFS_CHECK(v >= 0 && v < num_vertices_);
  TDFS_CHECK(label >= 0);
  if (labels_.empty()) {
    labels_.assign(static_cast<size_t>(num_vertices_), 0);
  }
  labels_[v] = label;
  any_label_ = true;
}

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.offsets_.assign(static_cast<size_t>(num_vertices_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (int64_t i = 0; i < num_vertices_; ++i) {
    g.offsets_[i + 1] += g.offsets_[i];
    g.max_degree_ = std::max(g.max_degree_, g.offsets_[i + 1] - g.offsets_[i]);
  }
  g.targets_.resize(edges_.size() * 2);
  g.edge_sources_.resize(edges_.size() * 2);
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.targets_[cursor[u]] = v;
    g.edge_sources_[cursor[u]] = u;
    ++cursor[u];
    g.targets_[cursor[v]] = u;
    g.edge_sources_[cursor[v]] = v;
    ++cursor[v];
  }
  // Sorting edges_ by (u, v) already yields sorted adjacency for the u->v
  // direction, but the v->u direction needs a per-vertex sort.
  for (int64_t v = 0; v < num_vertices_; ++v) {
    std::sort(g.targets_.begin() + g.offsets_[v],
              g.targets_.begin() + g.offsets_[v + 1]);
  }
  if (any_label_) {
    g.labels_ = std::move(labels_);
    Label max_label = 0;
    for (Label l : g.labels_) {
      max_label = std::max(max_label, l);
    }
    g.num_labels_ = max_label + 1;
  }
  edges_.clear();
  labels_.clear();
  any_label_ = false;
  return g;
}

}  // namespace tdfs
