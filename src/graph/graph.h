// Compressed-sparse-row data graph.
//
// The data graph G is stored exactly as the paper stores it on the device:
// CSR with sorted adjacency lists (plus an optional per-vertex label array).
// Graphs are undirected and simple; each undirected edge appears in both
// endpoint's adjacency list. A flat per-directed-edge source array is kept
// so that engines can treat directed edges as initial tasks with O(1)
// random access (Section III: "we use edges ... to create more fine-grained
// initial tasks").

#ifndef TDFS_GRAPH_GRAPH_H_
#define TDFS_GRAPH_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/intersect.h"
#include "util/status.h"

namespace tdfs {

/// Vertex label. kNoLabel marks an unlabeled graph.
using Label = int32_t;
inline constexpr Label kNoLabel = -1;

/// Adjacency-fetch traffic of one shard view, split by where the row came
/// from (graph/partition.h). Counters are relaxed atomics: shard views are
/// read concurrently by many warps and the totals only feed metrics and the
/// interconnect cost model, never control flow.
struct ShardFetchStats {
  std::atomic<int64_t> local_rows{0};
  std::atomic<int64_t> local_items{0};
  std::atomic<int64_t> halo_rows{0};
  std::atomic<int64_t> halo_items{0};
  std::atomic<int64_t> remote_rows{0};
  std::atomic<int64_t> remote_items{0};

  void Reset() {
    local_rows.store(0, std::memory_order_relaxed);
    local_items.store(0, std::memory_order_relaxed);
    halo_rows.store(0, std::memory_order_relaxed);
    halo_items.store(0, std::memory_order_relaxed);
    remote_rows.store(0, std::memory_order_relaxed);
    remote_items.store(0, std::memory_order_relaxed);
  }
};

/// Resolver for adjacency rows a shard view does not hold locally
/// (implemented by GraphPartition: the row is served from the owner
/// shard's CSR). The returned span aliases the owner's storage and stays
/// valid for the partition's lifetime.
class ShardAdjacency {
 public:
  virtual ~ShardAdjacency() = default;

  /// Sorted neighbor list of global vertex `v`, fetched on behalf of
  /// shard `from_shard`.
  virtual VertexSpan FetchRow(int from_shard, VertexId v) const = 0;
};

/// Immutable CSR graph. Construct through GraphBuilder or the generators.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  int64_t NumVertices() const {
    return shard_row_ != nullptr
               ? shard_num_vertices_
               : static_cast<int64_t>(offsets_.size()) - 1;
  }

  /// Number of undirected edges (each stored twice internally).
  int64_t NumEdges() const { return static_cast<int64_t>(targets_.size()) / 2; }

  /// Number of directed edges == 2 * NumEdges().
  int64_t NumDirectedEdges() const {
    return static_cast<int64_t>(targets_.size());
  }

  int64_t Degree(VertexId v) const {
    if (shard_row_ != nullptr) {
      return shard_degree_[v];  // true global degree, shared per partition
    }
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbor list of v. On a shard view, v may resolve to an owned
  /// row, a halo-cached row, or a remote fetch from the owner shard — all
  /// return the complete global adjacency of v.
  VertexSpan Neighbors(VertexId v) const {
    if (shard_row_ != nullptr) {
      return ShardNeighbors(v);
    }
    return VertexSpan(targets_.data() + offsets_[v],
                      static_cast<size_t>(offsets_[v + 1] - offsets_[v]));
  }

  /// True iff the undirected edge {u, v} exists (binary search).
  bool HasEdge(VertexId u, VertexId v) const {
    return SortedContains(Neighbors(u), v);
  }

  bool IsLabeled() const { return !labels_.empty(); }

  /// Label of v, or kNoLabel for unlabeled graphs.
  Label VertexLabel(VertexId v) const {
    return labels_.empty() ? kNoLabel : labels_[v];
  }

  /// Number of distinct labels (0 for unlabeled graphs).
  int32_t NumLabels() const { return num_labels_; }

  int64_t MaxDegree() const { return max_degree_; }

  double AvgDegree() const {
    return NumVertices() == 0
               ? 0.0
               : static_cast<double>(NumDirectedEdges()) / NumVertices();
  }

  /// Source vertex of directed edge i (i in [0, NumDirectedEdges())).
  VertexId EdgeSource(int64_t i) const { return edge_sources_[i]; }

  /// Target vertex of directed edge i.
  VertexId EdgeTarget(int64_t i) const { return targets_[i]; }

  /// Index of the directed edge u -> v, or -1 when {u, v} is not an edge
  /// (binary search in u's sorted adjacency list). The dynamic-update
  /// layer uses this to turn delta endpoint pairs into the directed-edge
  /// initial tasks the engines consume.
  int64_t DirectedEdgeIndex(VertexId u, VertexId v) const {
    int64_t row = u;
    if (shard_row_ != nullptr) {
      // Only edges rooted at owned rows live in a shard view's directed
      // edge space.
      row = shard_row_[u];
      if (row < 0) {
        return -1;
      }
    }
    const VertexSpan nbrs = Neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    if (it == nbrs.end() || *it != v) {
      return -1;
    }
    return offsets_[row] + (it - nbrs.begin());
  }

  /// Replaces the labels with labels drawn uniformly from [0, num_labels)
  /// using the given seed (how the paper labels its big graphs).
  void AssignUniformLabels(int32_t num_labels, uint64_t seed);

  /// Replaces the labels with labels drawn from a Zipf distribution over
  /// [0, num_labels): label 0 is the most frequent, label k has mass
  /// proportional to 1/(k+1)^skew. skew = 0 degenerates to uniform;
  /// skew around 1-2 gives the label-class imbalance real datasets show,
  /// which is what makes order selection matter (the cost planner's
  /// target regime).
  void AssignZipfLabels(int32_t num_labels, double skew, uint64_t seed);

  /// Drops all labels, making the graph unlabeled.
  void ClearLabels();

  /// One-line human-readable summary (|V|, |E|, avg deg, max deg, labels).
  std::string Summary() const;

  // ---- shard views (graph/partition.h) ----
  // A shard view is a Graph whose CSR holds only the rows its shard owns
  // (targets and edge sources keep GLOBAL vertex ids, so NumDirectedEdges /
  // EdgeSource / EdgeTarget give the shard a disjoint slice of the global
  // directed-edge space). Vertex-indexed queries (Degree, VertexLabel,
  // Neighbors, HasEdge) still accept any global id: degrees come from a
  // partition-shared array, labels from a per-shard copy, and adjacency
  // resolves through owned rows, a halo cache of low-degree boundary
  // vertices, or a counted remote fetch from the owner shard.

  /// True when this Graph is a shard view bound by a GraphPartition.
  bool IsShardView() const { return shard_row_ != nullptr; }

  /// Shard id of this view (-1 for ordinary graphs).
  int ShardId() const { return shard_id_; }

  /// True when vertex v's adjacency is resident in this view (owned or
  /// halo-cached). Always true for ordinary graphs. Index builders use
  /// this to restrict themselves to resident rows.
  bool ShardLocalRow(VertexId v) const {
    return shard_row_ == nullptr || shard_row_[v] != kShardRemoteRow;
  }

  /// Bytes of the CSR arrays this view holds privately (offsets, targets,
  /// edge sources, labels). The capacity admission check compares this
  /// against per-worker graph budgets; for shard views the partition adds
  /// its halo and id-map arrays on top (GraphPartition::ResidentBytes).
  int64_t CsrBytes() const {
    return static_cast<int64_t>(offsets_.size() * sizeof(int64_t) +
                                targets_.size() * sizeof(VertexId) +
                                edge_sources_.size() * sizeof(VertexId) +
                                labels_.size() * sizeof(Label));
  }

 private:
  friend class GraphBuilder;
  friend class GraphPartition;

  /// shard_row_ value for vertices resident on another shard.
  static constexpr int32_t kShardRemoteRow = -1;

  /// Out-of-line shard-view adjacency resolution (graph.cc) — keeps the
  /// ordinary Neighbors() fast path to one pointer test.
  VertexSpan ShardNeighbors(VertexId v) const;

  std::vector<int64_t> offsets_;      // size NumVertices() + 1
  std::vector<VertexId> targets_;     // sorted per-vertex
  std::vector<VertexId> edge_sources_;  // source of each directed edge
  std::vector<Label> labels_;         // empty if unlabeled
  int32_t num_labels_ = 0;
  int64_t max_degree_ = 0;

  // ---- shard-view binding (null / zero for ordinary graphs). All
  // pointers are borrowed from the owning GraphPartition, which outlives
  // its views. Encoding of shard_row_[v]: r >= 0 — owned row r of this
  // shard's CSR; r <= -2 — halo row (-2 - r); kShardRemoteRow (-1) —
  // resident on another shard.
  const int32_t* shard_row_ = nullptr;
  const int64_t* shard_degree_ = nullptr;  // global degrees, size |V|
  int64_t shard_num_vertices_ = 0;         // global |V|
  int64_t shard_owned_rows_ = 0;
  int shard_id_ = -1;
  const int64_t* halo_offsets_ = nullptr;  // size halo_rows + 1
  const VertexId* halo_targets_ = nullptr;
  const ShardAdjacency* shard_remote_ = nullptr;
  ShardFetchStats* shard_stats_ = nullptr;
};

/// Accumulates undirected edges and produces a simple Graph (self-loops and
/// duplicate edges are dropped).
class GraphBuilder {
 public:
  /// num_vertices fixes the vertex-id universe [0, num_vertices).
  explicit GraphBuilder(int64_t num_vertices);

  /// Adds the undirected edge {u, v}. Out-of-range ids abort; self-loops
  /// are ignored; duplicates are deduplicated at Build time.
  void AddEdge(VertexId u, VertexId v);

  /// Sets the label of a vertex. Mixing labeled and unlabeled vertices is
  /// allowed while building; unset labels default to 0 if any label is set.
  void SetLabel(VertexId v, Label label);

  int64_t num_edges_added() const { return static_cast<int64_t>(edges_.size()); }

  /// Finalizes into a CSR graph. The builder is left empty.
  Graph Build();

 private:
  int64_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<Label> labels_;
  bool any_label_ = false;
};

}  // namespace tdfs

#endif  // TDFS_GRAPH_GRAPH_H_
