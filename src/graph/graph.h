// Compressed-sparse-row data graph.
//
// The data graph G is stored exactly as the paper stores it on the device:
// CSR with sorted adjacency lists (plus an optional per-vertex label array).
// Graphs are undirected and simple; each undirected edge appears in both
// endpoint's adjacency list. A flat per-directed-edge source array is kept
// so that engines can treat directed edges as initial tasks with O(1)
// random access (Section III: "we use edges ... to create more fine-grained
// initial tasks").

#ifndef TDFS_GRAPH_GRAPH_H_
#define TDFS_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/intersect.h"
#include "util/status.h"

namespace tdfs {

/// Vertex label. kNoLabel marks an unlabeled graph.
using Label = int32_t;
inline constexpr Label kNoLabel = -1;

/// Immutable CSR graph. Construct through GraphBuilder or the generators.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  int64_t NumVertices() const { return static_cast<int64_t>(offsets_.size()) - 1; }

  /// Number of undirected edges (each stored twice internally).
  int64_t NumEdges() const { return static_cast<int64_t>(targets_.size()) / 2; }

  /// Number of directed edges == 2 * NumEdges().
  int64_t NumDirectedEdges() const {
    return static_cast<int64_t>(targets_.size());
  }

  int64_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbor list of v.
  VertexSpan Neighbors(VertexId v) const {
    return VertexSpan(targets_.data() + offsets_[v],
                      static_cast<size_t>(offsets_[v + 1] - offsets_[v]));
  }

  /// True iff the undirected edge {u, v} exists (binary search).
  bool HasEdge(VertexId u, VertexId v) const {
    return SortedContains(Neighbors(u), v);
  }

  bool IsLabeled() const { return !labels_.empty(); }

  /// Label of v, or kNoLabel for unlabeled graphs.
  Label VertexLabel(VertexId v) const {
    return labels_.empty() ? kNoLabel : labels_[v];
  }

  /// Number of distinct labels (0 for unlabeled graphs).
  int32_t NumLabels() const { return num_labels_; }

  int64_t MaxDegree() const { return max_degree_; }

  double AvgDegree() const {
    return NumVertices() == 0
               ? 0.0
               : static_cast<double>(NumDirectedEdges()) / NumVertices();
  }

  /// Source vertex of directed edge i (i in [0, NumDirectedEdges())).
  VertexId EdgeSource(int64_t i) const { return edge_sources_[i]; }

  /// Target vertex of directed edge i.
  VertexId EdgeTarget(int64_t i) const { return targets_[i]; }

  /// Index of the directed edge u -> v, or -1 when {u, v} is not an edge
  /// (binary search in u's sorted adjacency list). The dynamic-update
  /// layer uses this to turn delta endpoint pairs into the directed-edge
  /// initial tasks the engines consume.
  int64_t DirectedEdgeIndex(VertexId u, VertexId v) const {
    const VertexSpan nbrs = Neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    if (it == nbrs.end() || *it != v) {
      return -1;
    }
    return offsets_[u] + (it - nbrs.begin());
  }

  /// Replaces the labels with labels drawn uniformly from [0, num_labels)
  /// using the given seed (how the paper labels its big graphs).
  void AssignUniformLabels(int32_t num_labels, uint64_t seed);

  /// Replaces the labels with labels drawn from a Zipf distribution over
  /// [0, num_labels): label 0 is the most frequent, label k has mass
  /// proportional to 1/(k+1)^skew. skew = 0 degenerates to uniform;
  /// skew around 1-2 gives the label-class imbalance real datasets show,
  /// which is what makes order selection matter (the cost planner's
  /// target regime).
  void AssignZipfLabels(int32_t num_labels, double skew, uint64_t seed);

  /// Drops all labels, making the graph unlabeled.
  void ClearLabels();

  /// One-line human-readable summary (|V|, |E|, avg deg, max deg, labels).
  std::string Summary() const;

 private:
  friend class GraphBuilder;

  std::vector<int64_t> offsets_;      // size NumVertices() + 1
  std::vector<VertexId> targets_;     // sorted per-vertex
  std::vector<VertexId> edge_sources_;  // source of each directed edge
  std::vector<Label> labels_;         // empty if unlabeled
  int32_t num_labels_ = 0;
  int64_t max_degree_ = 0;
};

/// Accumulates undirected edges and produces a simple Graph (self-loops and
/// duplicate edges are dropped).
class GraphBuilder {
 public:
  /// num_vertices fixes the vertex-id universe [0, num_vertices).
  explicit GraphBuilder(int64_t num_vertices);

  /// Adds the undirected edge {u, v}. Out-of-range ids abort; self-loops
  /// are ignored; duplicates are deduplicated at Build time.
  void AddEdge(VertexId u, VertexId v);

  /// Sets the label of a vertex. Mixing labeled and unlabeled vertices is
  /// allowed while building; unset labels default to 0 if any label is set.
  void SetLabel(VertexId v, Label label);

  int64_t num_edges_added() const { return static_cast<int64_t>(edges_.size()); }

  /// Finalizes into a CSR graph. The builder is left empty.
  Graph Build();

 private:
  int64_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<Label> labels_;
  bool any_label_ = false;
};

}  // namespace tdfs

#endif  // TDFS_GRAPH_GRAPH_H_
