#include "graph/hub_bitmap.h"

#include <algorithm>

#include "util/time_attr.h"

namespace tdfs {

namespace {

// Bytes one bitmap view costs (words + rank array).
int64_t ViewBytes(size_t words_per_view) {
  return static_cast<int64_t>(words_per_view) *
         (sizeof(uint64_t) + sizeof(uint32_t));
}

}  // namespace

HubBitmapIndex HubBitmapIndex::Build(const Graph& graph,
                                     const LabelIndex* index,
                                     int64_t min_degree) {
  HubBitmapIndex out;
  const int64_t num_vertices = graph.NumVertices();
  if (num_vertices == 0 || min_degree <= 0) {
    return out;
  }
  out.per_label_ = index != nullptr;
  out.buckets_per_vertex_ =
      index != nullptr ? index->num_buckets_per_vertex() : 1;
  out.words_per_view_ = (static_cast<size_t>(num_vertices) + 63) / 64;
  const int64_t view_bytes = ViewBytes(out.words_per_view_);
  const auto bucket_span = [&](VertexId v, int32_t bucket) {
    return index != nullptr
               ? index->NeighborsWithLabel(
                     v, out.buckets_per_vertex_ == 1 ? kNoLabel
                                                     : static_cast<Label>(
                                                           bucket))
               : graph.Neighbors(v);
  };

  // Pass 1: pick hub buckets under the storage budget (fixed vertex-id
  // order keeps runs deterministic).
  out.vertex_ref_.assign(static_cast<size_t>(num_vertices), -1);
  int64_t bytes = static_cast<int64_t>(out.vertex_ref_.size()) *
                  sizeof(int32_t);
  size_t num_hubs = 0;
  size_t num_views = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (!graph.ShardLocalRow(v)) {
      continue;  // shard views index resident rows only (no remote fetches)
    }
    int32_t qualifying = 0;
    for (int32_t b = 0; b < out.buckets_per_vertex_; ++b) {
      if (static_cast<int64_t>(bucket_span(v, b).size()) >= min_degree) {
        ++qualifying;
      }
    }
    if (qualifying == 0) {
      continue;
    }
    const int64_t added = qualifying * view_bytes +
                          out.buckets_per_vertex_ *
                              static_cast<int64_t>(sizeof(int32_t));
    if (bytes + added > kMaxBitmapBytes) {
      break;
    }
    bytes += added;
    out.vertex_ref_[v] = static_cast<int32_t>(num_hubs++);
    num_views += static_cast<size_t>(qualifying);
  }
  if (num_views == 0) {
    out.vertex_ref_.clear();
    return out;
  }

  // Pass 2: materialize words, ranks, and views. All storage is pre-sized
  // so the raw pointers in the views stay valid.
  out.words_.assign(num_views * out.words_per_view_, 0);
  out.ranks_.assign(num_views * out.words_per_view_, 0);
  out.bucket_slot_.assign(num_hubs * out.buckets_per_vertex_, -1);
  out.views_.reserve(num_views);
  for (VertexId v = 0; v < num_vertices; ++v) {
    const int32_t hub = out.vertex_ref_[v];
    if (hub < 0) {
      continue;
    }
    for (int32_t b = 0; b < out.buckets_per_vertex_; ++b) {
      const VertexSpan span = bucket_span(v, b);
      if (static_cast<int64_t>(span.size()) < min_degree) {
        continue;
      }
      const size_t slot = out.views_.size();
      out.bucket_slot_[static_cast<size_t>(hub) * out.buckets_per_vertex_ +
                       b] = static_cast<int32_t>(slot);
      uint64_t* words = out.words_.data() + slot * out.words_per_view_;
      uint32_t* ranks = out.ranks_.data() + slot * out.words_per_view_;
      for (VertexId u : span) {
        words[static_cast<size_t>(u) >> 6] |= uint64_t{1} << (u & 63);
      }
      uint32_t running = 0;
      for (size_t w = 0; w < out.words_per_view_; ++w) {
        ranks[w] = running;
        running += static_cast<uint32_t>(__builtin_popcountll(words[w]));
      }
      out.views_.push_back(
          HubBitmapView{words, ranks, static_cast<uint32_t>(span.size())});
    }
  }
  return out;
}

void BitmapMergeInto(VertexSpan probe, VertexSpan hub_list,
                     const HubBitmapView& bm, std::vector<VertexId>* out,
                     WorkCounter* work) {
  const size_t before = out->size();
  for (VertexId v : probe) {
    if (bm.Test(v)) {
      out->push_back(v);
    }
  }
  if (work != nullptr) {
    work->Add(MergeStepsWork(probe, hub_list, out->size() - before));
  }
}

size_t BitmapMergeCount(VertexSpan probe, VertexSpan hub_list,
                        const HubBitmapView& bm, WorkCounter* work) {
  size_t matches = 0;
  for (VertexId v : probe) {
    matches += bm.Test(v) ? 1 : 0;
  }
  if (work != nullptr) {
    work->Add(MergeStepsWork(probe, hub_list, matches));
  }
  return matches;
}

namespace {

// Shared gallop-arm traversal: Rank() gives the exact index the scalar
// gallop would land on, so the charge sequence (GallopProbeWork) and the
// early break replicate GallopVisit bit for bit.
template <typename OnMatch>
void BitmapGallopVisit(VertexSpan probe, const HubBitmapView& bm,
                       size_t hub_size, WorkCounter* work,
                       OnMatch&& on_match) {
  size_t pos = 0;
  uint64_t w = 0;
  for (VertexId v : probe) {
    const size_t rank = bm.Rank(v);
    const size_t r = rank > pos ? rank : pos;
    w += GallopProbeWork(pos, r, hub_size);
    if (r == hub_size) {
      break;
    }
    if (bm.Test(v)) {
      on_match(v);
      pos = r + 1;
    } else {
      pos = r;
    }
  }
  if (work != nullptr) {
    work->Add(w);
  }
}

}  // namespace

void BitmapGallopInto(VertexSpan probe, VertexSpan hub_list,
                      const HubBitmapView& bm, std::vector<VertexId>* out,
                      WorkCounter* work) {
  BitmapGallopVisit(probe, bm, hub_list.size(), work,
                    [out](VertexId v) { out->push_back(v); });
}

size_t BitmapGallopCount(VertexSpan probe, VertexSpan hub_list,
                         const HubBitmapView& bm, WorkCounter* work) {
  size_t matches = 0;
  BitmapGallopVisit(probe, bm, hub_list.size(), work,
                    [&matches](VertexId) { ++matches; });
  return matches;
}

void IntersectDispatch::Auto(VertexSpan a, VertexSpan b, VertexId b_owner,
                             Label b_label, std::vector<VertexId>* out,
                             WorkCounter* work) const {
  const bool simd = kernels_->level != SimdLevel::kScalar;
  if (a.size() <= b.size()) {
    if (const HubBitmapView* bm = Bitmap(b_owner, b_label); bm != nullptr) {
      if (UseGallopKernel(a.size(), b.size())) {
        TimedIntersectArm(work, IntersectArm::kBitmapGallop,
                          [&] { BitmapGallopInto(a, b, *bm, out, work); });
      } else {
        TimedIntersectArm(work, IntersectArm::kBitmapMerge,
                          [&] { BitmapMergeInto(a, b, *bm, out, work); });
      }
      return;
    }
  } else {
    std::swap(a, b);
  }
  if (UseGallopKernel(a.size(), b.size())) {
    TimedIntersectArm(
        work, simd ? IntersectArm::kGallopSimd : IntersectArm::kGallopScalar,
        [&] { kernels_->gallop(a, b, out, work); });
  } else {
    TimedIntersectArm(
        work, simd ? IntersectArm::kMergeSimd : IntersectArm::kMergeScalar,
        [&] { kernels_->merge(a, b, out, work); });
  }
}

size_t IntersectDispatch::Count(VertexSpan a, VertexSpan b, VertexId b_owner,
                                Label b_label, WorkCounter* work) const {
  const bool simd = kernels_->level != SimdLevel::kScalar;
  if (a.size() <= b.size()) {
    if (const HubBitmapView* bm = Bitmap(b_owner, b_label); bm != nullptr) {
      return UseGallopKernel(a.size(), b.size())
                 ? TimedIntersectArm(
                       work, IntersectArm::kBitmapGallop,
                       [&] { return BitmapGallopCount(a, b, *bm, work); })
                 : TimedIntersectArm(
                       work, IntersectArm::kBitmapMerge,
                       [&] { return BitmapMergeCount(a, b, *bm, work); });
    }
  } else {
    std::swap(a, b);
  }
  if (UseGallopKernel(a.size(), b.size())) {
    return TimedIntersectArm(
        work, simd ? IntersectArm::kGallopSimd : IntersectArm::kGallopScalar,
        [&] { return kernels_->gallop_count(a, b, work); });
  }
  return TimedIntersectArm(
      work, simd ? IntersectArm::kMergeSimd : IntersectArm::kMergeScalar,
      [&] { return kernels_->merge_count(a, b, work); });
}

}  // namespace tdfs
