// Bitmap adjacency index for hub vertices + per-run intersection dispatch.
//
// Skewed data graphs concentrate a large share of intersection work on a
// few very-high-degree vertices (the same skew that motivates the paper's
// in-place candidate reuse). For a hub h, list ∩ N(h) by merge or gallop
// costs Ω(|list| log |N(h)|); with a bitmap over the vertex universe it is
// |list| O(1) word tests. HubBitmapIndex materializes one bitmap per
// adjacency list whose length is >= a configurable threshold — per
// (vertex, label) bucket when a LabelIndex is in play, because the engine
// then intersects label-filtered spans, not full rows (using a full-row
// bitmap there would over-match; see the EGSM regression test).
//
// Each bitmap carries per-word prefix popcounts so Rank(v) — the exact
// lower-bound index of v in the underlying sorted list — is O(1). That is
// what keeps WorkCounter semantics backend-invariant: the bitmap arm
// charges exactly what the scalar merge/gallop kernel would have charged
// (via MergeStepsWork / GallopProbeWork), never its own word-test count.

#ifndef TDFS_GRAPH_HUB_BITMAP_H_
#define TDFS_GRAPH_HUB_BITMAP_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/label_index.h"
#include "util/intersect.h"

namespace tdfs {

/// One hub adjacency list as a bitmap with O(1) membership and rank.
struct HubBitmapView {
  const uint64_t* words;
  const uint32_t* ranks;  // prefix popcount of words[0..w)
  uint32_t list_size;     // |underlying adjacency list|

  bool Test(VertexId v) const {
    return (words[static_cast<size_t>(v) >> 6] >> (v & 63)) & 1;
  }

  /// Number of list elements < v == lower-bound index of v in the list.
  size_t Rank(VertexId v) const {
    const size_t w = static_cast<size_t>(v) >> 6;
    const uint64_t below = words[w] & ((uint64_t{1} << (v & 63)) - 1);
    return ranks[w] + static_cast<size_t>(__builtin_popcountll(below));
  }
};

/// Per-graph bitmap index over hub adjacency lists (degree >= min_degree).
/// With a LabelIndex, one bitmap per qualifying (vertex, label bucket) —
/// keyed exactly like LabelIndex::NeighborsWithLabel; without, one per
/// qualifying vertex over the full CSR row.
class HubBitmapIndex {
 public:
  HubBitmapIndex() = default;

  /// Total bitmap storage cap; vertices past the budget simply stay on the
  /// list kernels.
  static constexpr int64_t kMaxBitmapBytes = int64_t{256} << 20;

  static HubBitmapIndex Build(const Graph& graph, const LabelIndex* index,
                              int64_t min_degree);

  /// Bitmap of (owner, label)'s adjacency bucket, or nullptr when owner is
  /// not a hub / the bucket is below threshold / the index is empty. Pass
  /// kNoLabel when the list at hand is a full CSR row.
  const HubBitmapView* Find(VertexId owner, Label label) const {
    if (views_.empty() || owner < 0 ||
        static_cast<size_t>(owner) >= vertex_ref_.size()) {
      return nullptr;
    }
    const int32_t hub = vertex_ref_[owner];
    if (hub < 0) {
      return nullptr;
    }
    const int32_t bucket = label == kNoLabel ? 0 : label;
    if (bucket < 0 || bucket >= buckets_per_vertex_ ||
        (label != kNoLabel && !per_label_)) {
      // Full-row bitmaps must not answer label-filtered lookups (and vice
      // versa a per-label build keys label L at bucket L, kNoLabel at 0).
      return nullptr;
    }
    const int32_t slot =
        bucket_slot_[static_cast<size_t>(hub) * buckets_per_vertex_ + bucket];
    return slot < 0 ? nullptr : &views_[slot];
  }

  bool empty() const { return views_.empty(); }
  size_t num_bitmaps() const { return views_.size(); }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(words_.size()) * sizeof(uint64_t) +
           static_cast<int64_t>(ranks_.size()) * sizeof(uint32_t) +
           static_cast<int64_t>(vertex_ref_.size()) * sizeof(int32_t) +
           static_cast<int64_t>(bucket_slot_.size()) * sizeof(int32_t);
  }

 private:
  int32_t buckets_per_vertex_ = 1;
  bool per_label_ = false;  // true when built over LabelIndex buckets
  size_t words_per_view_ = 0;
  std::vector<int32_t> vertex_ref_;   // vertex -> hub ordinal, or -1
  std::vector<int32_t> bucket_slot_;  // hub * buckets_per_vertex + bucket
  std::vector<uint64_t> words_;
  std::vector<uint32_t> ranks_;
  std::vector<HubBitmapView> views_;
};

// ---------------------------------------------------------------------------
// Bitmap intersection arms. `probe` is the side being iterated; `hub_list`
// is the sorted list the bitmap indexes (only its size feeds the work
// model). Charges are scalar-kernel-equivalent.
// ---------------------------------------------------------------------------

void BitmapMergeInto(VertexSpan probe, VertexSpan hub_list,
                     const HubBitmapView& bm, std::vector<VertexId>* out,
                     WorkCounter* work);
size_t BitmapMergeCount(VertexSpan probe, VertexSpan hub_list,
                        const HubBitmapView& bm, WorkCounter* work);
void BitmapGallopInto(VertexSpan probe, VertexSpan hub_list,
                      const HubBitmapView& bm, std::vector<VertexId>* out,
                      WorkCounter* work);
size_t BitmapGallopCount(VertexSpan probe, VertexSpan hub_list,
                         const HubBitmapView& bm, WorkCounter* work);

/// A run's intersection backend: a kernel table (scalar or SIMD, resolved
/// from EngineConfig::intersect once per run) plus the optional hub bitmap
/// index. Cheap to copy; engines keep one per run and thread it through
/// candidate computation.
class IntersectDispatch {
 public:
  /// Scalar kernels, no bitmaps — the reference backend.
  IntersectDispatch()
      : kernels_(&KernelsForLevel(SimdLevel::kScalar)), bitmaps_(nullptr) {}

  IntersectDispatch(IntersectMode mode, const HubBitmapIndex* bitmaps)
      : kernels_(&KernelsForMode(mode)),
        bitmaps_(UsesHubBitmaps(mode) && bitmaps != nullptr &&
                         !bitmaps->empty()
                     ? bitmaps
                     : nullptr) {}

  SimdLevel simd_level() const { return kernels_->level; }
  bool bitmaps_enabled() const { return bitmaps_ != nullptr; }
  const IntersectKernels& kernels() const { return *kernels_; }

  const HubBitmapView* Bitmap(VertexId owner, Label label) const {
    return bitmaps_ == nullptr ? nullptr : bitmaps_->Find(owner, label);
  }

  /// A ∩ B appended to `out`, where B is the adjacency list owned by
  /// (b_owner, b_label) — pass kNoLabel when B is a full CSR row, or
  /// owner -1 when B is not an adjacency list at all. Kernel choice
  /// matches IntersectAuto; the bitmap arm kicks in when B is the larger
  /// side and has a bitmap. Work charges are identical in all cases.
  void Auto(VertexSpan a, VertexSpan b, VertexId b_owner, Label b_label,
            std::vector<VertexId>* out, WorkCounter* work) const;

  /// Count-only variant of Auto.
  size_t Count(VertexSpan a, VertexSpan b, VertexId b_owner, Label b_label,
               WorkCounter* work) const;

 private:
  const IntersectKernels* kernels_;
  const HubBitmapIndex* bitmaps_;
};

}  // namespace tdfs

#endif  // TDFS_GRAPH_HUB_BITMAP_H_
