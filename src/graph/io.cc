#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/failpoint.h"

namespace tdfs {

namespace {

constexpr uint64_t kBinaryMagic = 0x5444465347524121ULL;  // "TDFSGRA!"

}  // namespace

Result<Graph> LoadEdgeListText(const std::string& path) {
  if (TDFS_INJECT_FAILURE("graph_io")) {
    return Status::IOError("injected IO failure reading " + path);
  }
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::vector<std::pair<int64_t, int64_t>> raw_edges;
  std::unordered_map<int64_t, VertexId> remap;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      continue;
    }
    std::istringstream iss(line);
    int64_t u = 0;
    int64_t v = 0;
    if (!(iss >> u >> v)) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": malformed edge line '" << line
          << "'";
      return Status::Corruption(msg.str());
    }
    if (u < 0 || v < 0) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": negative vertex id";
      return Status::Corruption(msg.str());
    }
    raw_edges.emplace_back(u, v);
  }
  // Compact ids in first-seen order of sorted originals so the result is
  // independent of edge order in the file.
  std::vector<int64_t> ids;
  ids.reserve(raw_edges.size() * 2);
  for (const auto& [u, v] : raw_edges) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  remap.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    remap[ids[i]] = static_cast<VertexId>(i);
  }
  GraphBuilder builder(static_cast<int64_t>(ids.size()));
  for (const auto& [u, v] : raw_edges) {
    builder.AddEdge(remap[u], remap[v]);
  }
  return builder.Build();
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << "# tdfs edge list: " << graph.Summary() << "\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId w : graph.Neighbors(v)) {
      if (v < w) {
        out << v << " " << w << "\n";
      }
    }
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  auto write_u64 = [&out](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u64(kBinaryMagic);
  const int64_t n = graph.NumVertices();
  write_u64(static_cast<uint64_t>(n));
  write_u64(static_cast<uint64_t>(graph.NumDirectedEdges()));
  write_u64(graph.IsLabeled() ? static_cast<uint64_t>(graph.NumLabels()) : 0);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t deg = static_cast<uint64_t>(graph.Degree(v));
    write_u64(deg);
    VertexSpan nbrs = graph.Neighbors(v);
    out.write(reinterpret_cast<const char*>(nbrs.data()),
              static_cast<std::streamsize>(nbrs.size() * sizeof(VertexId)));
  }
  if (graph.IsLabeled()) {
    for (VertexId v = 0; v < n; ++v) {
      Label l = graph.VertexLabel(v);
      out.write(reinterpret_cast<const char*>(&l), sizeof(l));
    }
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<Graph> LoadBinary(const std::string& path) {
  if (TDFS_INJECT_FAILURE("graph_io")) {
    return Status::IOError("injected IO failure reading " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  auto read_u64 = [&in]() {
    uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (read_u64() != kBinaryMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  const int64_t n = static_cast<int64_t>(read_u64());
  const int64_t directed = static_cast<int64_t>(read_u64());
  const int32_t num_labels = static_cast<int32_t>(read_u64());
  if (!in || n < 0 || directed < 0) {
    return Status::Corruption(path + ": bad header");
  }
  GraphBuilder builder(n);
  std::vector<VertexId> nbrs;
  int64_t seen = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint64_t deg = read_u64();
    if (!in) {
      return Status::Corruption(path + ": truncated degree section");
    }
    nbrs.resize(deg);
    in.read(reinterpret_cast<char*>(nbrs.data()),
            static_cast<std::streamsize>(deg * sizeof(VertexId)));
    if (!in) {
      return Status::Corruption(path + ": truncated adjacency section");
    }
    seen += static_cast<int64_t>(deg);
    for (VertexId w : nbrs) {
      if (w < 0 || w >= n) {
        return Status::Corruption(path + ": neighbor id out of range");
      }
      if (v < w) {
        builder.AddEdge(v, w);
      }
    }
  }
  if (seen != directed) {
    return Status::Corruption(path + ": edge count mismatch");
  }
  if (num_labels > 0) {
    std::vector<Label> labels(static_cast<size_t>(n));
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(n * sizeof(Label)));
    if (!in) {
      return Status::Corruption(path + ": truncated label section");
    }
    for (VertexId v = 0; v < n; ++v) {
      if (labels[v] < 0 || labels[v] >= num_labels) {
        return Status::Corruption(path + ": label out of range");
      }
      builder.SetLabel(v, labels[v]);
    }
  }
  return builder.Build();
}

}  // namespace tdfs
