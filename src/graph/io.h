// Loading and saving graphs.
//
// Two formats are supported:
//  * Text edge lists ("u v" per line, '#' or '%' comment lines, the SNAP
//    convention) with an optional label file ("v label" per line).
//  * A compact binary CSR snapshot for fast reload of generated datasets.

#ifndef TDFS_GRAPH_IO_H_
#define TDFS_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace tdfs {

/// Parses a SNAP-style text edge list. Vertex ids may be sparse; they are
/// compacted to [0, n) preserving relative order.
Result<Graph> LoadEdgeListText(const std::string& path);

/// Writes "u v" lines (one per undirected edge, u < v).
Status SaveEdgeListText(const Graph& graph, const std::string& path);

/// Binary snapshot (magic, counts, offsets, targets, labels).
Status SaveBinary(const Graph& graph, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

}  // namespace tdfs

#endif  // TDFS_GRAPH_IO_H_
