#include "graph/label_index.h"

#include <algorithm>

namespace tdfs {

LabelIndex::LabelIndex(const Graph& graph)
    : buckets_per_vertex_(graph.IsLabeled() ? graph.NumLabels() : 1) {
  const int64_t n = graph.NumVertices();
  vertex_offsets_.resize(n + 1);
  for (int64_t v = 0; v <= n; ++v) {
    vertex_offsets_[v] = v * (buckets_per_vertex_ + 1);
  }
  bucket_offsets_.assign(n * (buckets_per_vertex_ + 1) + 1, 0);
  neighbors_.reserve(graph.NumDirectedEdges());
  int64_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    const int64_t base = vertex_offsets_[v];
    VertexSpan nbrs = graph.Neighbors(v);
    for (int32_t bucket = 0; bucket < buckets_per_vertex_; ++bucket) {
      bucket_offsets_[base + bucket] = cursor;
      for (VertexId w : nbrs) {
        const Label wl = graph.IsLabeled() ? graph.VertexLabel(w) : 0;
        if (wl == bucket) {
          neighbors_.push_back(w);
          ++cursor;
        }
      }
    }
    bucket_offsets_[base + buckets_per_vertex_] = cursor;
  }
  // Adjacency lists are sorted, so each bucket (a stable filter of a sorted
  // list) is sorted as well.
}

}  // namespace tdfs
