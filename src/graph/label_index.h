// Label-partitioned adjacency index (the EGSM Cuckoo-trie stand-in).
//
// EGSM builds a three-level index (cuc/off/nbr) over candidates so that,
// given a vertex and a required label, it can fetch only the neighbors
// carrying that label — at the price of one extra indirection per access
// versus plain CSR (Section II and Fig. 3 of the EGSM paper, as discussed
// in Section IV-B/IV-F of this paper). This class reproduces that exact
// trade: per-vertex per-label buckets (sorted by id within a bucket) behind
// a two-array indirection. On unlabeled graphs it degenerates to CSR plus
// the indirection cost, which is the paper's explanation for EGSM losing
// whenever pruning power cannot pay for the extra access.

#ifndef TDFS_GRAPH_LABEL_INDEX_H_
#define TDFS_GRAPH_LABEL_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tdfs {

class LabelIndex {
 public:
  /// Builds the index. For unlabeled graphs a single bucket per vertex is
  /// created.
  explicit LabelIndex(const Graph& graph);

  /// Neighbors of v whose label equals `label`, sorted by id. For
  /// kNoLabel, returns all neighbors (only valid on unlabeled graphs,
  /// where bucket 0 holds the full list). Labels outside the graph's
  /// bucket range — sparse label ids, or a query label absent from the
  /// data graph (candidate-filtered subgraphs routinely shrink the label
  /// universe) — have no neighbors by definition and return an empty span
  /// instead of indexing bucket_offsets_ out of bounds.
  VertexSpan NeighborsWithLabel(VertexId v, Label label) const {
    const int32_t bucket = label == kNoLabel ? 0 : label;
    if (bucket < 0 || bucket >= buckets_per_vertex_) {
      return VertexSpan();
    }
    const int64_t base = vertex_offsets_[v];
    const int64_t lo = bucket_offsets_[base + bucket];
    const int64_t hi = bucket_offsets_[base + bucket + 1];
    return VertexSpan(neighbors_.data() + lo, static_cast<size_t>(hi - lo));
  }

  int32_t num_buckets_per_vertex() const { return buckets_per_vertex_; }

  /// Device-memory footprint of the index (the quantity whose growth makes
  /// EGSM run out of memory on big low-selectivity graphs, Table IV).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(vertex_offsets_.size()) * sizeof(int64_t) +
           static_cast<int64_t>(bucket_offsets_.size()) * sizeof(int64_t) +
           static_cast<int64_t>(neighbors_.size()) * sizeof(VertexId);
  }

 private:
  int32_t buckets_per_vertex_;
  std::vector<int64_t> vertex_offsets_;  // v -> index into bucket_offsets_
  std::vector<int64_t> bucket_offsets_;  // (v, label) -> neighbor range
  std::vector<VertexId> neighbors_;      // bucketed, sorted within bucket
};

}  // namespace tdfs

#endif  // TDFS_GRAPH_LABEL_INDEX_H_
