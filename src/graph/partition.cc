#include "graph/partition.h"

#include <algorithm>
#include <numeric>

#include "util/prng.h"

namespace tdfs {

namespace {

// Owner assignment. Hash: uniform pseudo-random spread, oblivious to
// degrees. Greedy: descending-degree first-fit onto the lightest shard
// (load = sum of owned degrees == owned directed edges), which keeps the
// directed-edge space near-balanced even when a few hubs dominate.
std::vector<int32_t> AssignOwners(const Graph& g, const PartitionSpec& spec) {
  const int64_t n = g.NumVertices();
  const int s_count = spec.num_shards;
  std::vector<int32_t> owner(static_cast<size_t>(n));
  if (spec.kind == ShardingKind::kHash) {
    for (int64_t v = 0; v < n; ++v) {
      SplitMix64 h(static_cast<uint64_t>(v));
      owner[static_cast<size_t>(v)] =
          static_cast<int32_t>(h() % static_cast<uint64_t>(s_count));
    }
    return owner;
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&g](int64_t a, int64_t b) {
    const int64_t da = g.Degree(static_cast<VertexId>(a));
    const int64_t db = g.Degree(static_cast<VertexId>(b));
    return da != db ? da > db : a < b;
  });
  std::vector<int64_t> load(static_cast<size_t>(s_count), 0);
  for (const int64_t v : order) {
    int32_t best = 0;
    for (int32_t s = 1; s < s_count; ++s) {
      if (load[static_cast<size_t>(s)] < load[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    owner[static_cast<size_t>(v)] = best;
    load[static_cast<size_t>(best)] += g.Degree(static_cast<VertexId>(v));
  }
  return owner;
}

}  // namespace

std::unique_ptr<GraphPartition> GraphPartition::Build(
    const Graph& graph, const PartitionSpec& spec) {
  TDFS_CHECK(spec.num_shards >= 1);
  TDFS_CHECK(spec.kind != ShardingKind::kOff);
  TDFS_CHECK_MSG(!graph.IsShardView(), "cannot partition a shard view");

  auto part = std::unique_ptr<GraphPartition>(new GraphPartition());
  part->spec_ = spec;
  part->total_directed_edges_ = graph.NumDirectedEdges();
  part->owner_ = AssignOwners(graph, spec);

  const int64_t n = graph.NumVertices();
  part->degree_.resize(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    part->degree_[static_cast<size_t>(v)] =
        graph.Degree(static_cast<VertexId>(v));
  }

  part->shards_.reserve(static_cast<size_t>(spec.num_shards));
  for (int s = 0; s < spec.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->stats = std::make_unique<ShardFetchStats>();
    shard->row_of.assign(static_cast<size_t>(n), Graph::kShardRemoteRow);

    // Owned rows, ascending global id: the shard's local directed-edge
    // space is the concatenation of its owned adjacency rows.
    for (int64_t v = 0; v < n; ++v) {
      if (part->owner_[static_cast<size_t>(v)] == s) {
        shard->row_of[static_cast<size_t>(v)] =
            static_cast<int32_t>(shard->row_vertex.size());
        shard->row_vertex.push_back(static_cast<VertexId>(v));
      }
    }

    Graph& view = shard->view;
    view.offsets_.assign(shard->row_vertex.size() + 1, 0);
    int64_t local_edges = 0;
    for (size_t r = 0; r < shard->row_vertex.size(); ++r) {
      local_edges += graph.Degree(shard->row_vertex[r]);
      view.offsets_[r + 1] = local_edges;
    }
    view.targets_.resize(static_cast<size_t>(local_edges));
    view.edge_sources_.resize(static_cast<size_t>(local_edges));
    for (size_t r = 0; r < shard->row_vertex.size(); ++r) {
      const VertexId v = shard->row_vertex[r];
      const VertexSpan nbrs = graph.Neighbors(v);
      std::copy(nbrs.begin(), nbrs.end(),
                view.targets_.begin() + view.offsets_[r]);
      std::fill(view.edge_sources_.begin() + view.offsets_[r],
                view.edge_sources_.begin() + view.offsets_[r + 1], v);
    }

    // Halo: boundary vertices (non-owned neighbors of owned rows) whose
    // global degree fits the cap get their full adjacency replicated.
    std::vector<char> seen(static_cast<size_t>(n), 0);
    for (const VertexId v : shard->row_vertex) {
      for (const VertexId u : graph.Neighbors(v)) {
        if (part->owner_[static_cast<size_t>(u)] != s && !seen[u] &&
            graph.Degree(u) <= spec.halo_max_degree) {
          seen[u] = 1;
          shard->halo_vertex.push_back(u);
        }
      }
    }
    std::sort(shard->halo_vertex.begin(), shard->halo_vertex.end());
    shard->halo_offsets.assign(shard->halo_vertex.size() + 1, 0);
    int64_t halo_edges = 0;
    for (size_t h = 0; h < shard->halo_vertex.size(); ++h) {
      halo_edges += graph.Degree(shard->halo_vertex[h]);
      shard->halo_offsets[h + 1] = halo_edges;
    }
    shard->halo_targets.resize(static_cast<size_t>(halo_edges));
    for (size_t h = 0; h < shard->halo_vertex.size(); ++h) {
      const VertexId u = shard->halo_vertex[h];
      shard->row_of[static_cast<size_t>(u)] =
          static_cast<int32_t>(-2 - static_cast<int64_t>(h));
      const VertexSpan nbrs = graph.Neighbors(u);
      std::copy(nbrs.begin(), nbrs.end(),
                shard->halo_targets.begin() + shard->halo_offsets[h]);
    }

    // Labels: per-shard private copy (global indexing). num_labels and
    // max_degree stay global so plan compilation and stack sizing see the
    // same graph properties every shard.
    if (graph.IsLabeled()) {
      view.labels_.assign(static_cast<size_t>(n), kNoLabel);
      for (int64_t v = 0; v < n; ++v) {
        view.labels_[static_cast<size_t>(v)] =
            graph.VertexLabel(static_cast<VertexId>(v));
      }
    }
    view.num_labels_ = graph.NumLabels();
    view.max_degree_ = graph.MaxDegree();

    shard->resident_bytes =
        view.CsrBytes() +
        static_cast<int64_t>(
            shard->halo_offsets.size() * sizeof(int64_t) +
            shard->halo_targets.size() * sizeof(VertexId) +
            shard->row_of.size() * sizeof(int32_t) +
            (shard->row_vertex.size() + shard->halo_vertex.size()) *
                sizeof(VertexId));

    part->shards_.push_back(std::move(shard));
  }

  // Bind the views last: shard storage is pinned behind unique_ptrs, so
  // the raw pointers stay valid for the partition's lifetime.
  for (int s = 0; s < spec.num_shards; ++s) {
    Shard& shard = *part->shards_[static_cast<size_t>(s)];
    Graph& view = shard.view;
    view.shard_row_ = shard.row_of.data();
    view.shard_degree_ = part->degree_.data();
    view.shard_num_vertices_ = n;
    view.shard_owned_rows_ = static_cast<int64_t>(shard.row_vertex.size());
    view.shard_id_ = s;
    view.halo_offsets_ = shard.halo_offsets.data();
    view.halo_targets_ = shard.halo_targets.data();
    view.shard_remote_ = part.get();
    view.shard_stats_ = shard.stats.get();
  }
  return part;
}

void GraphPartition::ResetStats() {
  for (auto& shard : shards_) {
    shard->stats->Reset();
  }
}

VertexSpan GraphPartition::FetchRow(int /*from_shard*/, VertexId v) const {
  const Shard& owner_shard = *shards_[static_cast<size_t>(owner_[v])];
  const int32_t r = owner_shard.row_of[v];
  TDFS_CHECK(r >= 0);
  const Graph& view = owner_shard.view;
  return VertexSpan(
      view.targets_.data() + view.offsets_[r],
      static_cast<size_t>(view.offsets_[r + 1] - view.offsets_[r]));
}

}  // namespace tdfs
