// Edge-cut graph partitioner for shard-parallel execution (src/shard/).
//
// A GraphPartition splits one data graph into `num_shards` shard views.
// Every vertex gets exactly one owner shard; a shard's view is a real
// `Graph` whose CSR holds the owned rows only, so the engines run on it
// unmodified and each shard enumerates a disjoint slice of the global
// directed-edge space (directed edge u->v is owned by owner(u)). Boundary
// vertices — non-owned vertices adjacent to owned ones — are halo-cached
// (full adjacency replicated into the view) when their global degree is at
// most `halo_max_degree`, so the common low-degree cross-shard lookup
// never leaves the shard; anything bigger resolves through FetchRow on the
// owner's CSR and is metered as remote traffic.
//
// The partition owns all shard storage and implements ShardAdjacency for
// its own views; it must outlive every run on them.

#ifndef TDFS_GRAPH_PARTITION_H_
#define TDFS_GRAPH_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/sharding_kind.h"

namespace tdfs {

struct PartitionSpec {
  /// kHash or kGreedy (kOff never reaches the partitioner).
  ShardingKind kind = ShardingKind::kHash;

  int num_shards = 1;

  /// Boundary vertices with global degree <= this are halo-cached in every
  /// shard that borders them; larger rows are fetched remotely. 0 disables
  /// the halo entirely.
  int64_t halo_max_degree = 256;
};

class GraphPartition : public ShardAdjacency {
 public:
  /// Partitions `graph` per `spec`. The graph is only read during Build;
  /// the partition holds copies of everything its views need.
  static std::unique_ptr<GraphPartition> Build(const Graph& graph,
                                               const PartitionSpec& spec);

  GraphPartition(const GraphPartition&) = delete;
  GraphPartition& operator=(const GraphPartition&) = delete;

  const PartitionSpec& spec() const { return spec_; }
  int num_shards() const { return spec_.num_shards; }
  int64_t TotalVertices() const {
    return static_cast<int64_t>(owner_.size());
  }
  int64_t TotalDirectedEdges() const { return total_directed_edges_; }

  /// The shard view to run an engine on. Valid for the partition's
  /// lifetime; never moved after Build.
  const Graph& ShardView(int s) const { return shards_[s]->view; }

  int Owner(VertexId v) const { return owner_[v]; }

  /// Owned-CSR row of v in shard s, or -1 when s does not own v.
  int64_t LocalRow(int s, VertexId v) const {
    const int32_t r = shards_[s]->row_of[v];
    return r >= 0 ? r : -1;
  }

  /// Global vertex id of owned row `row` in shard s.
  VertexId GlobalRowVertex(int s, int64_t row) const {
    return shards_[s]->row_vertex[row];
  }

  int64_t OwnedRows(int s) const {
    return static_cast<int64_t>(shards_[s]->row_vertex.size());
  }
  int64_t HaloRows(int s) const {
    return static_cast<int64_t>(shards_[s]->halo_vertex.size());
  }
  int64_t OwnedDirectedEdges(int s) const {
    return shards_[s]->view.NumDirectedEdges();
  }

  /// Bytes shard s holds privately: its view CSR (owned rows + labels),
  /// the halo cache, and its id maps. Partition-shared arrays (owner,
  /// global degrees) are excluded — they are O(|V|) ints shared by all
  /// shards of the process.
  int64_t ResidentBytes(int s) const { return shards_[s]->resident_bytes; }

  ShardFetchStats& Stats(int s) { return *shards_[s]->stats; }
  const ShardFetchStats& Stats(int s) const { return *shards_[s]->stats; }
  void ResetStats();

  /// ShardAdjacency: serve v's row from its owner's CSR. The owner always
  /// holds its owned rows, so this never recurses.
  VertexSpan FetchRow(int from_shard, VertexId v) const override;

 private:
  struct Shard {
    Graph view;
    // Per-vertex row map, size |V| global. Encoding matches
    // Graph::shard_row_: r >= 0 owned row, r <= -2 halo row (-2 - r),
    // -1 remote.
    std::vector<int32_t> row_of;
    std::vector<VertexId> row_vertex;   // owned row -> global id
    std::vector<VertexId> halo_vertex;  // halo row -> global id
    std::vector<int64_t> halo_offsets;  // size halo rows + 1
    std::vector<VertexId> halo_targets;
    int64_t resident_bytes = 0;
    std::unique_ptr<ShardFetchStats> stats;
  };

  GraphPartition() = default;

  PartitionSpec spec_;
  std::vector<int32_t> owner_;   // size |V|
  std::vector<int64_t> degree_;  // global degrees, shared by all views
  int64_t total_directed_edges_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tdfs

#endif  // TDFS_GRAPH_PARTITION_H_
