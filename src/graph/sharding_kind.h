// Sharding selection knob, shared by EngineConfig and PartitionSpec.
//
// Kept in its own tiny header so core/config.h can name the enum without
// pulling in the full partitioner (graph/partition.h).

#ifndef TDFS_GRAPH_SHARDING_KIND_H_
#define TDFS_GRAPH_SHARDING_KIND_H_

#include <string_view>

namespace tdfs {

/// How the data graph is partitioned across workers.
///
///  * kOff    — the classic shared-CSR multi-device path: every device
///    reads the whole graph, initial edges round-robin across devices.
///  * kHash   — edge-cut by vertex-id hash. Cheap, degree-oblivious
///    baseline; balance follows from the hash being uniform.
///  * kGreedy — edge-cut by degree-balanced greedy placement: vertices in
///    descending degree order go to the currently lightest shard (load =
///    sum of owned degrees), so each shard owns a near-equal slice of the
///    directed-edge space even on power-law graphs.
enum class ShardingKind : int {
  kOff = 0,
  kHash = 1,
  kGreedy = 2,
};

inline const char* ShardingKindName(ShardingKind kind) {
  switch (kind) {
    case ShardingKind::kOff:
      return "off";
    case ShardingKind::kHash:
      return "hash";
    case ShardingKind::kGreedy:
      return "greedy";
  }
  return "unknown";
}

/// Parses "off" / "hash" / "greedy". Returns false (leaving *out
/// untouched) on anything else.
inline bool ParseShardingKind(std::string_view text, ShardingKind* out) {
  if (text == "off") {
    *out = ShardingKind::kOff;
    return true;
  }
  if (text == "hash") {
    *out = ShardingKind::kHash;
    return true;
  }
  if (text == "greedy") {
    *out = ShardingKind::kGreedy;
    return true;
  }
  return false;
}

}  // namespace tdfs

#endif  // TDFS_GRAPH_SHARDING_KIND_H_
