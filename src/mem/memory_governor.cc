#include "mem/memory_governor.h"

#include <algorithm>
#include <chrono>

#include "util/status.h"

namespace tdfs {

const char* MemPressureName(MemPressure p) {
  switch (p) {
    case MemPressure::kOk:
      return "ok";
    case MemPressure::kSoft:
      return "soft";
    case MemPressure::kHard:
      return "hard";
  }
  return "unknown";
}

MemoryGovernor::MemoryGovernor() : MemoryGovernor(Options{}) {}

MemoryGovernor::MemoryGovernor(const Options& options)
    : soft_fraction_(options.soft_fraction),
      hard_fraction_(options.hard_fraction),
      budget_bytes_(options.budget_bytes),
      max_spill_bytes_(options.max_spill_bytes) {
  TDFS_CHECK(options.budget_bytes >= 0);
  TDFS_CHECK(options.max_spill_bytes >= 0);
  TDFS_CHECK_MSG(options.soft_fraction > 0.0 &&
                     options.soft_fraction <= options.hard_fraction,
                 "pressure fractions must satisfy 0 < soft <= hard");
}

MemoryGovernor* MemoryGovernor::Global() {
  static MemoryGovernor* instance = new MemoryGovernor();
  return instance;
}

void MemoryGovernor::SetBudgetBytes(int64_t bytes) {
  budget_bytes_.store(bytes < 0 ? 0 : bytes, std::memory_order_relaxed);
  WakeWaiters();
}

void MemoryGovernor::SetMaxSpillBytes(int64_t bytes) {
  max_spill_bytes_.store(bytes < 0 ? 0 : bytes, std::memory_order_relaxed);
}

void MemoryGovernor::RegisterCommitted(int64_t bytes) {
  const int64_t now =
      committed_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  obs::Set(obs_committed_bytes_.load(std::memory_order_relaxed), now);
  WakeWaiters();
}

void MemoryGovernor::UnregisterCommitted(int64_t bytes) {
  const int64_t now =
      committed_bytes_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  obs::Set(obs_committed_bytes_.load(std::memory_order_relaxed), now);
}

void MemoryGovernor::NoteInUse(int64_t delta) {
  const int64_t now =
      in_use_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  obs::Set(obs_in_use_bytes_.load(std::memory_order_relaxed), now);
  if (delta < 0) {
    // Memory freed: a waiter may now fit. Cheap when nobody waits (the
    // notify on an uncontended cv is a couple of atomic ops).
    wait_cv_.notify_all();
  }
  SamplePressure();
}

bool MemoryGovernor::TryGrantSpill(int64_t bytes) {
  const int64_t ceiling = max_spill_bytes_.load(std::memory_order_relaxed);
  int64_t current = spilled_bytes_.load(std::memory_order_relaxed);
  while (true) {
    if (current + bytes > ceiling) {
      spill_denials_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs_spill_denials_.load(std::memory_order_relaxed));
      return false;
    }
    if (spilled_bytes_.compare_exchange_weak(current, current + bytes,
                                             std::memory_order_relaxed)) {
      spill_grants_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs_spill_grants_.load(std::memory_order_relaxed));
      return true;
    }
  }
}

void MemoryGovernor::ReleaseSpill(int64_t bytes) {
  spilled_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t MemoryGovernor::Denominator() const {
  // No explicit budget => inert: pressure never engages and reservations
  // always fit, so default runs behave exactly as if no governor existed.
  // (Committed/in-use are still tracked for Snapshot introspection.)
  return budget_bytes_.load(std::memory_order_relaxed);
}

MemPressure MemoryGovernor::Pressure() const {
  const int64_t denom = Denominator();
  if (denom <= 0) {
    return MemPressure::kOk;  // inert: nothing registered, no budget
  }
  const int64_t load = in_use_bytes_.load(std::memory_order_relaxed) +
                       reserved_bytes_.load(std::memory_order_relaxed);
  const double occupancy = static_cast<double>(load) / denom;
  if (occupancy >= hard_fraction_) {
    return MemPressure::kHard;
  }
  if (occupancy >= soft_fraction_) {
    return MemPressure::kSoft;
  }
  return MemPressure::kOk;
}

int64_t MemoryGovernor::DeratedBudget(int64_t budget_bytes) const {
  switch (Pressure()) {
    case MemPressure::kOk:
      return budget_bytes;
    case MemPressure::kSoft:
      return budget_bytes / 2;
    case MemPressure::kHard:
      return budget_bytes / 4;
  }
  return budget_bytes;
}

void MemoryGovernor::SamplePressure() {
  const MemPressure now = Pressure();
  const int prev = last_pressure_.exchange(static_cast<int>(now),
                                           std::memory_order_relaxed);
  if (prev == static_cast<int>(now)) {
    return;
  }
  // Any level change (kOk↔kSoft↔kHard, either direction) counts as one
  // transition; the soft/hard counters below additionally attribute
  // entries into each elevated level.
  obs::Add(obs_pressure_transitions_.load(std::memory_order_relaxed));
  if (now == MemPressure::kSoft) {
    obs::Add(obs_pressure_soft_.load(std::memory_order_relaxed));
  } else if (now == MemPressure::kHard) {
    obs::Add(obs_pressure_hard_.load(std::memory_order_relaxed));
  }
}

bool MemoryGovernor::FitsLocked(int64_t bytes) const {
  const int64_t denom = Denominator();
  if (denom <= 0) {
    return true;  // inert governor admits everything
  }
  const int64_t load = in_use_bytes_.load(std::memory_order_relaxed) +
                       reserved_bytes_.load(std::memory_order_relaxed);
  return load + bytes <= denom;
}

MemoryGovernor::Reservation MemoryGovernor::TryReserve(int64_t bytes) {
  if (bytes <= 0) {
    return Reservation(this, 0);
  }
  std::lock_guard<std::mutex> lock(wait_mu_);
  if (!FitsLocked(bytes)) {
    return Reservation();
  }
  reserved_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  SamplePressure();
  return Reservation(this, bytes);
}

MemoryGovernor::Reservation MemoryGovernor::ReserveBytes(
    int64_t bytes, double timeout_ms, obs::SpanContext sctx) {
  if (bytes <= 0) {
    return Reservation(this, 0);
  }
  obs::SpanLedger::Span span = sctx.Begin("mem_reserve", bytes);
  std::unique_lock<std::mutex> lock(wait_mu_);
  if (FitsLocked(bytes)) {
    reserved_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    SamplePressure();
    return Reservation(this, bytes);
  }
  if (timeout_ms <= 0.0) {
    return Reservation();
  }
  reserve_waits_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_reserve_waits_.load(std::memory_order_relaxed));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  // Re-check on every wakeup AND on a short poll: in-use releases are
  // relaxed-atomic and only best-effort notify, so the poll bounds the
  // window in which a free slips past a sleeping waiter.
  while (!FitsLocked(bytes)) {
    if (wait_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !FitsLocked(bytes)) {
      reserve_timeouts_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs_reserve_timeouts_.load(std::memory_order_relaxed));
      return Reservation();
    }
  }
  reserved_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  SamplePressure();
  return Reservation(this, bytes);
}

MemoryGovernor::Reservation& MemoryGovernor::Reservation::operator=(
    Reservation&& other) noexcept {
  if (this != &other) {
    Release();
    governor_ = other.governor_;
    bytes_ = other.bytes_;
    other.governor_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void MemoryGovernor::Reservation::Release() {
  if (governor_ == nullptr) {
    return;
  }
  if (bytes_ > 0) {
    governor_->reserved_bytes_.fetch_sub(bytes_, std::memory_order_relaxed);
    governor_->SamplePressure();
    governor_->WakeWaiters();
  }
  governor_ = nullptr;
  bytes_ = 0;
}

void MemoryGovernor::WakeWaiters() { wait_cv_.notify_all(); }

MemoryGovernor::Snapshot MemoryGovernor::GetSnapshot() const {
  Snapshot s;
  s.budget_bytes = budget_bytes();
  s.committed_bytes = committed_bytes();
  s.in_use_bytes = in_use_bytes();
  s.reserved_bytes = reserved_bytes();
  s.spilled_bytes = spilled_bytes();
  s.spill_grants = spill_grants_.load(std::memory_order_relaxed);
  s.spill_denials = spill_denials_.load(std::memory_order_relaxed);
  s.reserve_waits = reserve_waits_.load(std::memory_order_relaxed);
  s.reserve_timeouts = reserve_timeouts_.load(std::memory_order_relaxed);
  s.pressure = Pressure();
  return s;
}

void MemoryGovernor::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    obs_committed_bytes_.store(nullptr, std::memory_order_relaxed);
    obs_in_use_bytes_.store(nullptr, std::memory_order_relaxed);
    obs_pressure_transitions_.store(nullptr, std::memory_order_relaxed);
    obs_spill_grants_.store(nullptr, std::memory_order_relaxed);
    obs_spill_denials_.store(nullptr, std::memory_order_relaxed);
    obs_reserve_waits_.store(nullptr, std::memory_order_relaxed);
    obs_reserve_timeouts_.store(nullptr, std::memory_order_relaxed);
    obs_pressure_soft_.store(nullptr, std::memory_order_relaxed);
    obs_pressure_hard_.store(nullptr, std::memory_order_relaxed);
    return;
  }
  // Gauges seed with the current levels so a scrape between attach and
  // the next byte movement is already truthful.
  obs::Gauge* committed = metrics->GetGauge("mem.committed_bytes");
  committed->Set(committed_bytes());
  obs_committed_bytes_.store(committed, std::memory_order_relaxed);
  obs::Gauge* in_use = metrics->GetGauge("mem.in_use_bytes");
  in_use->Set(in_use_bytes());
  obs_in_use_bytes_.store(in_use, std::memory_order_relaxed);
  obs_pressure_transitions_.store(
      metrics->GetCounter("mem.pressure_transitions"),
      std::memory_order_relaxed);
  obs_spill_grants_.store(metrics->GetCounter("governor.spill_grants"),
                          std::memory_order_relaxed);
  obs_spill_denials_.store(metrics->GetCounter("governor.spill_denials"),
                           std::memory_order_relaxed);
  obs_reserve_waits_.store(metrics->GetCounter("governor.reserve_waits"),
                           std::memory_order_relaxed);
  obs_reserve_timeouts_.store(
      metrics->GetCounter("governor.reserve_timeouts"),
      std::memory_order_relaxed);
  obs_pressure_soft_.store(
      metrics->GetCounter("governor.pressure_soft_transitions"),
      std::memory_order_relaxed);
  obs_pressure_hard_.store(
      metrics->GetCounter("governor.pressure_hard_transitions"),
      std::memory_order_relaxed);
}

}  // namespace tdfs
