// System-wide memory budget authority.
//
// Every PageAllocator (and therefore every EngineArena slot) registers its
// committed arena bytes with a MemoryGovernor; page alloc/free traffic is
// mirrored as in-use deltas. From those two numbers plus outstanding
// admission reservations the governor derives a pressure level:
//
//   kOk    occupancy <  soft_fraction  — admit freely
//   kSoft  occupancy >= soft_fraction  — admit, but make new jobs wait
//   kHard  occupancy >= hard_fraction  — spill tier active / shed load
//
// where occupancy = (in_use + reserved) / budget. Without an explicit
// budget the governor is INERT: pressure reports kOk, every reservation is
// granted, and only the spill byte ceiling applies — so standalone runs
// behave exactly as if no governor existed (committed/in-use are still
// tracked for introspection).
//
// Two cooperating protocols sit on top:
//
//  * Reservations (admission control). MatchService estimates a job's page
//    demand, converts it to bytes, and calls ReserveBytes with a deadline.
//    Reservations are granted when in_use + reserved + request fits under
//    the denominator; otherwise the caller joins a waiters queue and is
//    woken as memory frees, up to the deadline (deadline-expired waiters
//    fail with a timeout instead of blocking forever). Release via the
//    RAII Reservation handle.
//
//  * Spill grants (out-of-core tier). When an arena's free list is dry,
//    the allocator asks TryGrantSpill(bytes) for a host-backed overflow
//    page. Grants are bounded by max_spill_bytes so a runaway query cannot
//    OOM the host; denials surface as alloc misses (and ultimately
//    kResourceExhausted) exactly like a dry pool without spill.
//
// All counters are relaxed atomics on the hot path; the waiters queue uses
// a mutex + condition_variable and is only touched by admission control.

#ifndef TDFS_MEM_MEMORY_GOVERNOR_H_
#define TDFS_MEM_MEMORY_GOVERNOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "obs/metrics.h"
#include "obs/span.h"

namespace tdfs {

/// Memory pressure level (ok -> soft -> hard).
enum class MemPressure { kOk, kSoft, kHard };

const char* MemPressureName(MemPressure p);

class MemoryGovernor {
 public:
  struct Options {
    /// Explicit byte budget; 0 leaves the governor inert (kOk, admit-all).
    int64_t budget_bytes = 0;

    /// Occupancy fractions at which pressure escalates.
    double soft_fraction = 0.75;
    double hard_fraction = 0.95;

    /// Ceiling on host-backed spill bytes outstanding at once.
    int64_t max_spill_bytes = int64_t{1} << 30;  // 1 GiB
  };

  MemoryGovernor();  // default Options
  explicit MemoryGovernor(const Options& options);

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Process-wide default instance (what CLI --mem-budget configures).
  static MemoryGovernor* Global();

  /// `governor`, or the process-global instance when null — how engines
  /// resolve EngineConfig::governor.
  static MemoryGovernor* Resolve(MemoryGovernor* governor) {
    return governor != nullptr ? governor : Global();
  }

  /// Adjusts the explicit budget at runtime (0 = track committed).
  void SetBudgetBytes(int64_t bytes);
  int64_t budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }
  void SetMaxSpillBytes(int64_t bytes);
  int64_t max_spill_bytes() const {
    return max_spill_bytes_.load(std::memory_order_relaxed);
  }

  // ---- allocator registration ----

  /// Called by PageAllocator construction/destruction with the arena size.
  void RegisterCommitted(int64_t bytes);
  void UnregisterCommitted(int64_t bytes);

  /// Mirrors page alloc (+page_bytes) / free (-page_bytes). Relaxed; hot.
  void NoteInUse(int64_t delta);

  // ---- spill grants ----

  /// Accounts one would-be spill extent. False when the spill ceiling is
  /// reached (the caller must then fail the allocation).
  bool TryGrantSpill(int64_t bytes);
  void ReleaseSpill(int64_t bytes);

  // ---- pressure ----

  MemPressure Pressure() const;

  /// Derates a byte budget by the current pressure (ok: unchanged, soft:
  /// half, hard: quarter) — how the BFS engines shrink level
  /// materialization under pressure while staying exact (tighter budgets
  /// only mean more, smaller batches or an earlier DFS switch).
  int64_t DeratedBudget(int64_t budget_bytes) const;

  // ---- reservations (admission control) ----

  /// RAII reservation handle; releases on destruction. Empty handles are
  /// inert (and what a failed reserve returns).
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& other) noexcept { *this = std::move(other); }
    Reservation& operator=(Reservation&& other) noexcept;
    ~Reservation() { Release(); }

    explicit operator bool() const { return governor_ != nullptr; }
    int64_t bytes() const { return bytes_; }

    void Release();

   private:
    friend class MemoryGovernor;
    Reservation(MemoryGovernor* governor, int64_t bytes)
        : governor_(governor), bytes_(bytes) {}
    MemoryGovernor* governor_ = nullptr;
    int64_t bytes_ = 0;
  };

  /// Non-blocking: grants iff in_use + reserved + bytes fits under the
  /// denominator right now. bytes <= 0 grants an empty reservation.
  Reservation TryReserve(int64_t bytes);

  /// Blocking: waits (deadline-aware) for room instead of rejecting.
  /// timeout_ms <= 0 degenerates to TryReserve. Returns an empty handle on
  /// timeout. Waiters are woken whenever memory is released. `sctx` (when
  /// enabled) receives a "mem_reserve" span (arg = bytes) covering the
  /// whole grant-or-wait, so admission stalls land on the job's timeline.
  Reservation ReserveBytes(int64_t bytes, double timeout_ms,
                           obs::SpanContext sctx = {});

  // ---- introspection ----

  struct Snapshot {
    int64_t budget_bytes = 0;
    int64_t committed_bytes = 0;
    int64_t in_use_bytes = 0;
    int64_t reserved_bytes = 0;
    int64_t spilled_bytes = 0;
    int64_t spill_grants = 0;
    int64_t spill_denials = 0;
    int64_t reserve_waits = 0;
    int64_t reserve_timeouts = 0;
    MemPressure pressure = MemPressure::kOk;
  };
  Snapshot GetSnapshot() const;

  int64_t committed_bytes() const {
    return committed_bytes_.load(std::memory_order_relaxed);
  }
  int64_t in_use_bytes() const {
    return in_use_bytes_.load(std::memory_order_relaxed);
  }
  int64_t reserved_bytes() const {
    return reserved_bytes_.load(std::memory_order_relaxed);
  }
  int64_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }

  /// Mirrors governor activity into `metrics` as governor.* counters
  /// (spill_grants, spill_denials, reserve_waits, reserve_timeouts) plus a
  /// governor.pressure histogram sampled on every transition check that
  /// changes level. Null detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  /// Denominator for occupancy: the explicit budget (0 = inert).
  int64_t Denominator() const;
  bool FitsLocked(int64_t bytes) const;
  void WakeWaiters();
  void SamplePressure();

  const double soft_fraction_;
  const double hard_fraction_;

  std::atomic<int64_t> budget_bytes_;
  std::atomic<int64_t> max_spill_bytes_;
  std::atomic<int64_t> committed_bytes_{0};
  std::atomic<int64_t> in_use_bytes_{0};
  std::atomic<int64_t> reserved_bytes_{0};
  std::atomic<int64_t> spilled_bytes_{0};

  std::atomic<int64_t> spill_grants_{0};
  std::atomic<int64_t> spill_denials_{0};
  std::atomic<int64_t> reserve_waits_{0};
  std::atomic<int64_t> reserve_timeouts_{0};
  std::atomic<int> last_pressure_{0};  // MemPressure as int, for sampling

  /// Guards the waiters queue only; all accounting is atomic.
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;

  std::atomic<obs::Gauge*> obs_committed_bytes_{nullptr};
  std::atomic<obs::Gauge*> obs_in_use_bytes_{nullptr};
  std::atomic<obs::Counter*> obs_pressure_transitions_{nullptr};
  std::atomic<obs::Counter*> obs_spill_grants_{nullptr};
  std::atomic<obs::Counter*> obs_spill_denials_{nullptr};
  std::atomic<obs::Counter*> obs_reserve_waits_{nullptr};
  std::atomic<obs::Counter*> obs_reserve_timeouts_{nullptr};
  std::atomic<obs::Counter*> obs_pressure_soft_{nullptr};
  std::atomic<obs::Counter*> obs_pressure_hard_{nullptr};
};

}  // namespace tdfs

#endif  // TDFS_MEM_MEMORY_GOVERNOR_H_
