#include "mem/page_allocator.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/failpoint.h"

namespace tdfs {

PageAllocator::PageAllocator(int32_t num_pages, int64_t page_bytes,
                             const SpillOptions& spill)
    : num_pages_(num_pages), page_ints_(page_bytes / 4) {
  TDFS_CHECK(num_pages >= 1);
  TDFS_CHECK_MSG(page_bytes >= 4 && page_bytes % 4 == 0,
                 "page_bytes must be a positive multiple of 4");
  arena_.resize(static_cast<int64_t>(num_pages) * page_ints_);
  next_ = std::vector<std::atomic<PageId>>(num_pages);
  allocated_ = std::vector<std::atomic<uint8_t>>(num_pages);
  for (PageId p = 0; p < num_pages; ++p) {
    next_[p].store(p + 1 < num_pages ? p + 1 : kNullPage,
                   std::memory_order_relaxed);
    allocated_[p].store(0, std::memory_order_relaxed);
  }
  head_.store(PackHead(0, 0), std::memory_order_relaxed);

  spill_enabled_ = spill.enabled;
  governor_ =
      spill.governor != nullptr ? spill.governor : MemoryGovernor::Global();
  if (spill_enabled_) {
    spill_capacity_ = spill.max_spill_pages > 0
                          ? spill.max_spill_pages
                          : std::min<int64_t>(
                                int64_t{num_pages} * 32,
                                std::numeric_limits<int32_t>::max() -
                                    int64_t{num_pages});
    spill_slots_ =
        std::make_unique<std::atomic<int32_t*>[]>(spill_capacity_);
    for (int32_t i = 0; i < spill_capacity_; ++i) {
      spill_slots_[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  governor_->RegisterCommitted(static_cast<int64_t>(num_pages_) *
                               this->page_bytes());
}

PageAllocator::~PageAllocator() {
  // Defensively release any spill extents still live (a leaked stack);
  // arena storage dies with the vector either way.
  for (int32_t i = 0; i < spill_capacity_; ++i) {
    int32_t* storage = spill_slots_[i].exchange(nullptr,
                                                std::memory_order_relaxed);
    if (storage != nullptr) {
      delete[] storage;
      governor_->ReleaseSpill(page_bytes());
    }
  }
  governor_->UnregisterCommitted(static_cast<int64_t>(num_pages_) *
                                 page_bytes());
}

PageId PageAllocator::PopFreeList() {
  uint64_t head = head_.load(std::memory_order_acquire);
  while (true) {
    PageId top = HeadTop(head);
    if (top == kNullPage) {
      return kNullPage;
    }
    PageId next = next_[top].load(std::memory_order_relaxed);
    uint64_t desired = PackHead(next, HeadTag(head) + 1);
    if (head_.compare_exchange_weak(head, desired,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      allocated_[top].store(1, std::memory_order_relaxed);
      return top;
    }
  }
}

void PageAllocator::PushFreeList(PageId page) {
  uint64_t head = head_.load(std::memory_order_acquire);
  while (true) {
    next_[page].store(HeadTop(head), std::memory_order_relaxed);
    uint64_t desired = PackHead(page, HeadTag(head) + 1);
    if (head_.compare_exchange_weak(head, desired,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      return;
    }
  }
}

PageId PageAllocator::AllocPage() {
  PageId page = kNullPage;
  if (!TDFS_INJECT_FAILURE("page_alloc")) {
    page = PopFreeList();
  }
  if (page == kNullPage && spill_enabled_) {
    page = AllocSpillPage();
  }
  if (page == kNullPage) {
    alloc_misses_.fetch_add(1, std::memory_order_relaxed);
    return kNullPage;
  }
  int32_t in_use = in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
  int32_t peak = peak_in_use_.load(std::memory_order_relaxed);
  while (in_use > peak &&
         !peak_in_use_.compare_exchange_weak(
             peak, in_use, std::memory_order_relaxed)) {
  }
  const int64_t alloc_index =
      total_allocs_.fetch_add(1, std::memory_order_relaxed);
  if (!IsSpillPage(page)) {
    governor_->NoteInUse(page_bytes());
  }
  // Sampled: occupancy is a distribution over time, and the histogram is
  // shared across warps (see kObsSampleEvery).
  if (obs_occupancy_ != nullptr &&
      (alloc_index & (kObsSampleEvery - 1)) == 0) {
    obs_occupancy_->Observe(in_use);
  }
  return page;
}

PageId PageAllocator::AllocSpillPage() {
  if (TDFS_INJECT_FAILURE("page_spill")) {
    return kNullPage;  // injected host-tier exhaustion
  }
  std::lock_guard<std::mutex> lock(spill_mu_);
  int32_t slot;
  if (!spill_free_.empty()) {
    slot = spill_free_.back();
    spill_free_.pop_back();
  } else if (spill_next_ < spill_capacity_) {
    slot = spill_next_++;
  } else {
    return kNullPage;  // spill tier at max_spill_pages
  }
  if (!governor_->TryGrantSpill(page_bytes())) {
    spill_free_.push_back(slot);
    return kNullPage;  // host byte ceiling reached
  }
  int32_t* storage = new int32_t[page_ints_];
  spill_slots_[slot].store(storage, std::memory_order_release);
  const int32_t live = spill_in_use_.fetch_add(1,
                                               std::memory_order_relaxed) + 1;
  int32_t peak = spill_peak_.load(std::memory_order_relaxed);
  while (live > peak &&
         !spill_peak_.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
  spill_allocs_.fetch_add(1, std::memory_order_relaxed);
  return num_pages_ + slot;
}

void PageAllocator::ReleaseSpillSlot(PageId page) {
  const int32_t slot = page - num_pages_;
  std::lock_guard<std::mutex> lock(spill_mu_);
  int32_t* storage =
      spill_slots_[slot].exchange(nullptr, std::memory_order_acq_rel);
  TDFS_CHECK_MSG(storage != nullptr,
                 "FreePage(" << page << ") spill double free");
  delete[] storage;
  spill_free_.push_back(slot);
  spill_in_use_.fetch_sub(1, std::memory_order_relaxed);
  governor_->ReleaseSpill(page_bytes());
}

void PageAllocator::FreePage(PageId page) {
  if (IsSpillPage(page)) {
    TDFS_CHECK_MSG(page < num_pages_ + spill_capacity_,
                   "FreePage(" << page << ") out of range");
    ReleaseSpillSlot(page);
    in_use_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  TDFS_CHECK_MSG(page >= 0, "FreePage(" << page << ") out of range");
  TDFS_CHECK_MSG(
      allocated_[page].exchange(0, std::memory_order_relaxed) == 1,
      "FreePage(" << page << ") double free");
  PushFreeList(page);
  in_use_.fetch_sub(1, std::memory_order_relaxed);
  governor_->NoteInUse(-page_bytes());
}

PageId PageAllocator::TryPromote(PageId page) {
  TDFS_CHECK_MSG(IsSpillPage(page) && page < num_pages_ + spill_capacity_,
                 "TryPromote(" << page << ") is not a spill page");
  if (TDFS_INJECT_FAILURE("spill_promote")) {
    return kNullPage;
  }
  const PageId arena_page = PopFreeList();
  if (arena_page == kNullPage) {
    return kNullPage;  // arena still full; keep the spill page
  }
  const int32_t* src =
      spill_slots_[page - num_pages_].load(std::memory_order_acquire);
  TDFS_CHECK_MSG(src != nullptr,
                 "TryPromote(" << page << ") of a free spill page");
  std::memcpy(PageData(arena_page), src,
              static_cast<size_t>(page_ints_) * sizeof(int32_t));
  ReleaseSpillSlot(page);
  // Net pages-in-use is unchanged (arena +1, spill -1), so in_use_ /
  // peak_in_use_ / total_allocs_ stay put; only the tier accounting moves.
  governor_->NoteInUse(page_bytes());
  spill_promotions_.fetch_add(1, std::memory_order_relaxed);
  return arena_page;
}

void PageAllocator::ResetStats() {
  peak_in_use_.store(in_use_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  total_allocs_.store(0, std::memory_order_relaxed);
  alloc_misses_.store(0, std::memory_order_relaxed);
  spill_peak_.store(spill_in_use_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  spill_allocs_.store(0, std::memory_order_relaxed);
  spill_promotions_.store(0, std::memory_order_relaxed);
}

}  // namespace tdfs
