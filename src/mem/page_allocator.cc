#include "mem/page_allocator.h"

#include "util/failpoint.h"

namespace tdfs {

PageAllocator::PageAllocator(int32_t num_pages, int64_t page_bytes)
    : num_pages_(num_pages), page_ints_(page_bytes / 4) {
  TDFS_CHECK(num_pages >= 1);
  TDFS_CHECK_MSG(page_bytes >= 4 && page_bytes % 4 == 0,
                 "page_bytes must be a positive multiple of 4");
  arena_.resize(static_cast<int64_t>(num_pages) * page_ints_);
  next_ = std::vector<std::atomic<PageId>>(num_pages);
  allocated_ = std::vector<std::atomic<uint8_t>>(num_pages);
  for (PageId p = 0; p < num_pages; ++p) {
    next_[p].store(p + 1 < num_pages ? p + 1 : kNullPage,
                   std::memory_order_relaxed);
    allocated_[p].store(0, std::memory_order_relaxed);
  }
  head_.store(PackHead(0, 0), std::memory_order_relaxed);
}

PageId PageAllocator::AllocPage() {
  if (TDFS_INJECT_FAILURE("page_alloc")) {
    return kNullPage;  // injected pool exhaustion
  }
  uint64_t head = head_.load(std::memory_order_acquire);
  while (true) {
    PageId top = HeadTop(head);
    if (top == kNullPage) {
      return kNullPage;
    }
    PageId next = next_[top].load(std::memory_order_relaxed);
    uint64_t desired = PackHead(next, HeadTag(head) + 1);
    if (head_.compare_exchange_weak(head, desired,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      int32_t in_use = in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
      int32_t peak = peak_in_use_.load(std::memory_order_relaxed);
      while (in_use > peak &&
             !peak_in_use_.compare_exchange_weak(
                 peak, in_use, std::memory_order_relaxed)) {
      }
      total_allocs_.fetch_add(1, std::memory_order_relaxed);
      allocated_[top].store(1, std::memory_order_relaxed);
      obs::Observe(obs_occupancy_, in_use);
      return top;
    }
  }
}

void PageAllocator::FreePage(PageId page) {
  TDFS_CHECK_MSG(page >= 0 && page < num_pages_,
                 "FreePage(" << page << ") out of range");
  TDFS_CHECK_MSG(
      allocated_[page].exchange(0, std::memory_order_relaxed) == 1,
      "FreePage(" << page << ") double free");
  uint64_t head = head_.load(std::memory_order_acquire);
  while (true) {
    next_[page].store(HeadTop(head), std::memory_order_relaxed);
    uint64_t desired = PackHead(page, HeadTag(head) + 1);
    if (head_.compare_exchange_weak(head, desired,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      in_use_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void PageAllocator::ResetStats() {
  peak_in_use_.store(in_use_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  total_allocs_.store(0, std::memory_order_relaxed);
}

}  // namespace tdfs
