// Lock-free page allocator (the Ouroboros [48] stand-in).
//
// A large arena is preallocated up front and cut into fixed-size pages
// (8 KiB by default, matching the paper). Warps request and release pages
// concurrently; the free list is a Treiber stack over page indices with an
// ABA tag packed into the head word. Allocation never touches the system
// allocator after construction — the property that makes dynamic stack
// growth affordable on a GPU.
//
// Spill-to-host tier (optional). When constructed with SpillOptions
// {enabled}, a dry free list no longer means failure: AllocPage falls back
// to host-backed overflow extents living behind the SAME PageId space
// (spill ids start at num_pages()), and PageData routes transparently, so
// warp stacks keep growing past the device arena at degraded-but-exact
// speed. Every spill extent is accounted with the MemoryGovernor (host
// byte ceiling) and bounded by max_spill_pages. TryPromote moves a spill
// page's contents back into the arena once device pages free up — the
// eager promotion the engines run between tasks as pressure drops. The
// spill path takes a mutex; it is the slow lane by design, entered only
// when the lock-free arena is exhausted.

#ifndef TDFS_MEM_PAGE_ALLOCATOR_H_
#define TDFS_MEM_PAGE_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mem/memory_governor.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace tdfs {

/// Index of a page within the arena. kNullPage marks "no page".
using PageId = int32_t;
inline constexpr PageId kNullPage = -1;

/// Spill-tier configuration for PageAllocator.
struct SpillOptions {
  /// Enables host-backed overflow pages when the arena free list is dry.
  bool enabled = false;

  /// Hard cap on concurrently live spill pages; 0 picks a default of
  /// 32x num_pages (enough for an arena 10x+ undersized). The governor's
  /// byte ceiling applies on top.
  int32_t max_spill_pages = 0;

  /// Budget authority accounting the spill bytes. Null uses
  /// MemoryGovernor::Global().
  MemoryGovernor* governor = nullptr;
};

class PageAllocator {
 public:
  /// Default page size from the paper: 8 KiB == 2048 vertex ids.
  static constexpr int64_t kDefaultPageBytes = 8192;

  /// Preallocates `num_pages` pages of `page_bytes` each (page_bytes must
  /// be a positive multiple of 4). The arena bytes are registered with the
  /// spill governor (Global() by default) for pressure accounting.
  PageAllocator(int32_t num_pages, int64_t page_bytes = kDefaultPageBytes,
                const SpillOptions& spill = SpillOptions{});
  ~PageAllocator();

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Pops a page off the free list; when the list is dry and spill is
  /// enabled, falls back to a host-backed spill page (id >= num_pages()).
  /// Returns kNullPage only when both tiers fail (or the "page_alloc" /
  /// "page_spill" failpoints fire) — counted in AllocMisses(). Thread-safe;
  /// lock-free on the arena path, mutex-guarded on the spill path.
  PageId AllocPage();

  /// Pushes a page back (either tier). Aborts on out-of-range ids and on
  /// double-frees — both corrupt the free list silently otherwise (a
  /// double-freed page gets handed to two warps at once).
  void FreePage(PageId page);

  /// Copies spill page `page` into a freshly popped arena page, frees the
  /// spill extent, and returns the arena id — or kNullPage when the arena
  /// is still full (or the "spill_promote" failpoint fires), leaving the
  /// spill page untouched. Net PagesInUse is unchanged on success.
  PageId TryPromote(PageId page);

  /// Raw storage of a page (page_ints() int32 slots). Spill ids route to
  /// their host extent.
  int32_t* PageData(PageId page) {
    if (page < num_pages_) {
      return arena_.data() + static_cast<int64_t>(page) * page_ints_;
    }
    return spill_slots_[page - num_pages_].load(std::memory_order_acquire);
  }
  const int32_t* PageData(PageId page) const {
    if (page < num_pages_) {
      return arena_.data() + static_cast<int64_t>(page) * page_ints_;
    }
    return spill_slots_[page - num_pages_].load(std::memory_order_acquire);
  }

  int32_t num_pages() const { return num_pages_; }
  int64_t page_bytes() const { return page_ints_ * 4; }
  /// int32 slots per page.
  int64_t page_ints() const { return page_ints_; }

  /// True iff `page` currently lives in the spill tier.
  bool IsSpillPage(PageId page) const { return page >= num_pages_; }

  bool spill_enabled() const { return spill_enabled_; }
  int32_t max_spill_pages() const { return spill_capacity_; }

  /// Pages currently allocated across BOTH tiers (so pages_peak measures
  /// true demand, not arena size).
  int32_t PagesInUse() const {
    return in_use_.load(std::memory_order_relaxed);
  }

  /// High-water mark of PagesInUse() since construction or ResetStats().
  int32_t PeakPagesInUse() const {
    return peak_in_use_.load(std::memory_order_relaxed);
  }

  /// Total successful allocations since construction or ResetStats().
  int64_t TotalAllocs() const {
    return total_allocs_.load(std::memory_order_relaxed);
  }

  /// AllocPage calls that returned kNullPage (both tiers dry, spill
  /// disabled, or failpoint-injected) since construction or ResetStats().
  int64_t AllocMisses() const {
    return alloc_misses_.load(std::memory_order_relaxed);
  }

  /// Spill pages live right now / high-water mark / total spill
  /// allocations / promotions back into the arena.
  int32_t SpillPagesInUse() const {
    return spill_in_use_.load(std::memory_order_relaxed);
  }
  int32_t SpillPagesPeak() const {
    return spill_peak_.load(std::memory_order_relaxed);
  }
  int64_t TotalSpillAllocs() const {
    return spill_allocs_.load(std::memory_order_relaxed);
  }
  int64_t SpillPromotions() const {
    return spill_promotions_.load(std::memory_order_relaxed);
  }

  void ResetStats();

  /// NUMA placement hint for this arena (shard runner: shard s gets
  /// numa_nodes[s % size]). Advisory and observational only — the arena is
  /// one malloc'd block, and actual page placement follows the OS
  /// first-touch policy of the worker thread that runs on it. -1 = none.
  void SetNumaNode(int node) { numa_node_ = node; }
  int numa_node() const { return numa_node_; }

  /// Samples pool occupancy (pages in use) into `occupancy` on 1 in
  /// kObsSampleEvery successful allocations. Null (the default) disables
  /// sampling.
  void AttachObs(obs::Histogram* occupancy) { obs_occupancy_ = occupancy; }

  /// Occupancy sampling period (power of two): the histogram is shared by
  /// every allocating warp, so per-alloc observation would ping-pong its
  /// cache lines across cores.
  static constexpr int64_t kObsSampleEvery = 64;

 private:
  // Head word layout: low 32 bits = top page index (or 0xffffffff for
  // empty), high 32 bits = ABA tag.
  static uint64_t PackHead(PageId top, uint32_t tag) {
    return (static_cast<uint64_t>(tag) << 32) |
           static_cast<uint32_t>(top);
  }
  static PageId HeadTop(uint64_t head) {
    return static_cast<PageId>(static_cast<int32_t>(head & 0xffffffffu));
  }
  static uint32_t HeadTag(uint64_t head) {
    return static_cast<uint32_t>(head >> 32);
  }

  /// Pops an arena page off the free list without touching the in-use
  /// stats (shared by AllocPage and TryPromote). kNullPage when dry.
  PageId PopFreeList();

  /// Pushes an arena page; stats are the caller's business.
  void PushFreeList(PageId page);

  /// Allocates a spill extent (governor-accounted). kNullPage on denial.
  PageId AllocSpillPage();

  /// Releases spill extent storage + accounting; the id becomes reusable.
  void ReleaseSpillSlot(PageId page);

  MemoryGovernor* governor() const { return governor_; }

  int32_t num_pages_;
  int64_t page_ints_;
  std::vector<int32_t> arena_;
  std::vector<std::atomic<PageId>> next_;  // free-list links
  // 1 iff the page is currently allocated. Maintained so FreePage can
  // reject double-frees; ordered by the free-list CAS (cleared before a
  // page is pushed, set after it is popped).
  std::vector<std::atomic<uint8_t>> allocated_;
  std::atomic<uint64_t> head_;
  std::atomic<int32_t> in_use_{0};
  std::atomic<int32_t> peak_in_use_{0};
  std::atomic<int64_t> total_allocs_{0};
  std::atomic<int64_t> alloc_misses_{0};
  obs::Histogram* obs_occupancy_ = nullptr;
  int numa_node_ = -1;

  // ---- spill tier ----
  bool spill_enabled_ = false;
  int32_t spill_capacity_ = 0;
  MemoryGovernor* governor_ = nullptr;
  // Slot i backs PageId num_pages_ + i; null when the slot is free. The
  // pointer array is sized once at construction so PageData can read it
  // without the spill mutex.
  std::unique_ptr<std::atomic<int32_t*>[]> spill_slots_;
  std::mutex spill_mu_;
  std::vector<PageId> spill_free_;  // reusable slot indices; guarded
  int32_t spill_next_ = 0;          // first never-used slot; guarded
  std::atomic<int32_t> spill_in_use_{0};
  std::atomic<int32_t> spill_peak_{0};
  std::atomic<int64_t> spill_allocs_{0};
  std::atomic<int64_t> spill_promotions_{0};
};

}  // namespace tdfs

#endif  // TDFS_MEM_PAGE_ALLOCATOR_H_
