// Lock-free page allocator (the Ouroboros [48] stand-in).
//
// A large arena is preallocated up front and cut into fixed-size pages
// (8 KiB by default, matching the paper). Warps request and release pages
// concurrently; the free list is a Treiber stack over page indices with an
// ABA tag packed into the head word. Allocation never touches the system
// allocator after construction — the property that makes dynamic stack
// growth affordable on a GPU.

#ifndef TDFS_MEM_PAGE_ALLOCATOR_H_
#define TDFS_MEM_PAGE_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace tdfs {

/// Index of a page within the arena. kNullPage marks "no page".
using PageId = int32_t;
inline constexpr PageId kNullPage = -1;

class PageAllocator {
 public:
  /// Default page size from the paper: 8 KiB == 2048 vertex ids.
  static constexpr int64_t kDefaultPageBytes = 8192;

  /// Preallocates `num_pages` pages of `page_bytes` each (page_bytes must
  /// be a positive multiple of 4).
  PageAllocator(int32_t num_pages, int64_t page_bytes = kDefaultPageBytes);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Pops a page off the free list. Returns kNullPage when exhausted (or
  /// when the "page_alloc" failpoint fires). Thread-safe, lock-free.
  PageId AllocPage();

  /// Pushes a page back. Thread-safe, lock-free. Aborts on out-of-range
  /// ids and on double-frees — both corrupt the free list silently
  /// otherwise (a double-freed page gets handed to two warps at once).
  void FreePage(PageId page);

  /// Raw storage of a page (page_ints() int32 slots).
  int32_t* PageData(PageId page) {
    return arena_.data() + static_cast<int64_t>(page) * page_ints_;
  }
  const int32_t* PageData(PageId page) const {
    return arena_.data() + static_cast<int64_t>(page) * page_ints_;
  }

  int32_t num_pages() const { return num_pages_; }
  int64_t page_bytes() const { return page_ints_ * 4; }
  /// int32 slots per page.
  int64_t page_ints() const { return page_ints_; }

  /// Pages currently allocated.
  int32_t PagesInUse() const {
    return in_use_.load(std::memory_order_relaxed);
  }

  /// High-water mark of PagesInUse() since construction or ResetStats().
  int32_t PeakPagesInUse() const {
    return peak_in_use_.load(std::memory_order_relaxed);
  }

  /// Total successful allocations since construction or ResetStats().
  int64_t TotalAllocs() const {
    return total_allocs_.load(std::memory_order_relaxed);
  }

  void ResetStats();

  /// Samples pool occupancy (pages in use) into `occupancy` on every
  /// successful allocation. Null (the default) disables sampling.
  void AttachObs(obs::Histogram* occupancy) { obs_occupancy_ = occupancy; }

 private:
  // Head word layout: low 32 bits = top page index (or 0xffffffff for
  // empty), high 32 bits = ABA tag.
  static uint64_t PackHead(PageId top, uint32_t tag) {
    return (static_cast<uint64_t>(tag) << 32) |
           static_cast<uint32_t>(top);
  }
  static PageId HeadTop(uint64_t head) {
    return static_cast<PageId>(static_cast<int32_t>(head & 0xffffffffu));
  }
  static uint32_t HeadTag(uint64_t head) {
    return static_cast<uint32_t>(head >> 32);
  }

  int32_t num_pages_;
  int64_t page_ints_;
  std::vector<int32_t> arena_;
  std::vector<std::atomic<PageId>> next_;  // free-list links
  // 1 iff the page is currently allocated. Maintained so FreePage can
  // reject double-frees; ordered by the free-list CAS (cleared before a
  // page is pushed, set after it is popped).
  std::vector<std::atomic<uint8_t>> allocated_;
  std::atomic<uint64_t> head_;
  std::atomic<int32_t> in_use_{0};
  std::atomic<int32_t> peak_in_use_{0};
  std::atomic<int64_t> total_allocs_{0};
  obs::Histogram* obs_occupancy_ = nullptr;
};

}  // namespace tdfs

#endif  // TDFS_MEM_PAGE_ALLOCATOR_H_
