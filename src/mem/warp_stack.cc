#include "mem/warp_stack.h"

#include <algorithm>

namespace tdfs {

PagedWarpStack::PagedWarpStack(PageAllocator* allocator, int num_levels,
                               int32_t page_table_capacity)
    : allocator_(allocator),
      num_levels_(num_levels),
      page_table_capacity_(page_table_capacity) {
  TDFS_CHECK(allocator != nullptr);
  TDFS_CHECK(num_levels >= 1);
  TDFS_CHECK(page_table_capacity >= 1);
  const uint64_t page_ints = static_cast<uint64_t>(allocator->page_ints());
  TDFS_CHECK_MSG(std::has_single_bit(page_ints),
                 "page size must be a power of two for paged stacks");
  page_shift_ = std::countr_zero(page_ints);
  page_mask_ = static_cast<int64_t>(page_ints) - 1;
  tables_.assign(static_cast<size_t>(num_levels) * page_table_capacity,
                 kNullPage);
}

PagedWarpStack::~PagedWarpStack() { ReleaseAll(); }

int64_t PagedWarpStack::MaybeShrinkLevel(int level, int64_t used_elements) {
  const int64_t held = PagesInLevel(level);
  if (held < 4) {
    return 0;
  }
  const int64_t used_pages =
      (used_elements + (int64_t{1} << page_shift_) - 1) >> page_shift_;
  if (used_pages > held / 4) {
    return 0;
  }
  // Free the tail half, never touching pages that still hold data.
  const int64_t keep = std::max(used_pages, held - held / 2);
  int64_t freed = 0;
  for (int32_t i = page_table_capacity_ - 1;
       i >= 0 && held - freed > keep; --i) {
    PageId& entry = tables_[level * page_table_capacity_ + i];
    if (entry != kNullPage && i >= keep) {
      spill_pages_held_ -= allocator_->IsSpillPage(entry);
      allocator_->FreePage(entry);
      entry = kNullPage;
      --pages_held_;
      ++freed;
    }
  }
  if (freed > 0 && tracer_ != nullptr) {
    tracer_->Event(obs::TraceEvent::kPageRelease, freed);
  }
  return freed;
}

int64_t PagedWarpStack::ReleaseLevel(int level) {
  int64_t freed = 0;
  for (int32_t i = 0; i < page_table_capacity_; ++i) {
    PageId& entry = tables_[level * page_table_capacity_ + i];
    if (entry != kNullPage) {
      spill_pages_held_ -= allocator_->IsSpillPage(entry);
      allocator_->FreePage(entry);
      entry = kNullPage;
      --pages_held_;
      ++freed;
    }
  }
  if (freed > 0 && tracer_ != nullptr) {
    tracer_->Event(obs::TraceEvent::kPageRelease, freed);
  }
  return freed;
}

void PagedWarpStack::ReleaseAll() {
  int64_t freed = 0;
  for (PageId& entry : tables_) {
    if (entry != kNullPage) {
      allocator_->FreePage(entry);
      entry = kNullPage;
      ++freed;
    }
  }
  pages_held_ = 0;
  spill_pages_held_ = 0;
  if (freed > 0 && tracer_ != nullptr) {
    tracer_->Event(obs::TraceEvent::kPageRelease, freed);
  }
}

int64_t PagedWarpStack::PromoteSpilled() {
  if (spill_pages_held_ == 0) {
    return 0;
  }
  int64_t promoted = 0;
  for (PageId& entry : tables_) {
    if (entry == kNullPage || !allocator_->IsSpillPage(entry)) {
      continue;
    }
    const PageId arena_page = allocator_->TryPromote(entry);
    if (arena_page == kNullPage) {
      break;  // arena still full; try again after the next release
    }
    entry = arena_page;
    --spill_pages_held_;
    ++promoted;
    if (tracer_ != nullptr) {
      tracer_->Event(obs::TraceEvent::kSpillPromote, promoted);
    }
    if (spill_pages_held_ == 0) {
      break;
    }
  }
  return promoted;
}

ArrayWarpStack::ArrayWarpStack(int num_levels, int64_t level_capacity)
    : level_capacity_(level_capacity) {
  TDFS_CHECK(num_levels >= 1);
  TDFS_CHECK(level_capacity >= 1);
  data_.resize(static_cast<int64_t>(num_levels) * level_capacity);
}

}  // namespace tdfs
