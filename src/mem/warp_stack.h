// Per-warp backtracking stacks.
//
// Each warp owns a stack with one candidate array per query position
// (Fig. 3). Two interchangeable backends implement the paper's comparison:
//
//  * PagedWarpStack — each level is a page table over pages requested on
//    demand from the PageAllocator (Fig. 6 / Alg. 5). Bounded only by the
//    page pool; memory proportional to what is actually used.
//  * ArrayWarpStack — each level is a fixed-capacity array (d_max for
//    guaranteed correctness, or STMatch's hardcoded 4096, which the paper
//    shows silently truncates candidates and yields wrong counts on skewed
//    graphs). Overflow is recorded in a sticky flag either way.
//
// The engines are templated over the backend, so the hot loop compiles to
// direct array access for ArrayWarpStack and to a page-table indirection
// for PagedWarpStack — mirroring the coalesced-vs-paged access cost the
// paper measures in Tables VI/VIII.

#ifndef TDFS_MEM_WARP_STACK_H_
#define TDFS_MEM_WARP_STACK_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "mem/page_allocator.h"
#include "obs/trace.h"
#include "util/intersect.h"
#include "util/status.h"

namespace tdfs {

/// Outcome of a single stack write. Distinguishes the retriable failure
/// (the shared pool is dry *right now* — another warp may release pages)
/// from the structural one (the position is beyond what the level's page
/// table can ever address), so the engine's pressure-handling can retry
/// the former and escalate the latter.
enum class StackWrite {
  kOk,
  kPoolExhausted,   // AllocPage returned kNullPage; retriable
  kCapacityExceeded,  // beyond the page-table span / array capacity
};

/// Paged backend. Not thread-safe: a stack belongs to exactly one warp
/// (page *allocation* underneath is lock-free and shared).
class PagedWarpStack {
 public:
  /// Page-table capacity default from the paper: 40 addresses per level
  /// (40 x 8 KiB = 320 KiB = 81,920 vertex ids per level).
  static constexpr int32_t kDefaultPageTableCapacity = 40;

  PagedWarpStack(PageAllocator* allocator, int num_levels,
                 int32_t page_table_capacity = kDefaultPageTableCapacity);
  ~PagedWarpStack();

  PagedWarpStack(const PagedWarpStack&) = delete;
  PagedWarpStack& operator=(const PagedWarpStack&) = delete;

  /// Move transfers page ownership; the source ends up empty.
  PagedWarpStack(PagedWarpStack&& other) noexcept
      : allocator_(other.allocator_),
        num_levels_(other.num_levels_),
        page_table_capacity_(other.page_table_capacity_),
        page_shift_(other.page_shift_),
        page_mask_(other.page_mask_),
        tables_(std::move(other.tables_)),
        pages_held_(other.pages_held_),
        spill_pages_held_(other.spill_pages_held_),
        overflowed_(other.overflowed_),
        tracer_(other.tracer_) {
    other.tables_.clear();
    other.pages_held_ = 0;
    other.spill_pages_held_ = 0;
    other.tracer_ = nullptr;
  }

  /// Routes page acquire/release events to the owning warp's tracer (arg =
  /// level). Null (the default) disables tracing. Not owned; must outlive
  /// the stack's page traffic.
  void SetTracer(obs::WarpTracer* tracer) { tracer_ = tracer; }

  /// Writes stack[level][pos], requesting a page on first touch (the
  /// leader-elected page request of Alg. 5; one thread per warp here, so
  /// the leader is implicit). Unlike Set, a failure is NOT sticky — the
  /// engine's pressure path retries pool-exhausted writes after releasing
  /// pages and backing off.
  StackWrite TrySet(int level, int64_t pos, VertexId v) {
    const int64_t page_index = pos >> page_shift_;
    const int64_t offset = pos & page_mask_;
    if (page_index >= page_table_capacity_) {
      return StackWrite::kCapacityExceeded;
    }
    PageId& entry = tables_[level * page_table_capacity_ + page_index];
    if (entry == kNullPage) {
      entry = allocator_->AllocPage();
      if (entry == kNullPage) {
        return StackWrite::kPoolExhausted;
      }
      ++pages_held_;
      if (allocator_->IsSpillPage(entry)) {
        ++spill_pages_held_;
        if (tracer_ != nullptr) {
          tracer_->Event(obs::TraceEvent::kPageSpill, level);
        }
      } else if (tracer_ != nullptr) {
        tracer_->Event(obs::TraceEvent::kPageAcquire, level);
      }
    }
    allocator_->PageData(entry)[offset] = v;
    return StackWrite::kOk;
  }

  /// TrySet with the sticky overflow flag on failure.
  bool Set(int level, int64_t pos, VertexId v) {
    if (TrySet(level, pos, v) != StackWrite::kOk) {
      overflowed_ = true;
      return false;
    }
    return true;
  }

  /// Reads stack[level][pos]; the position must have been written.
  VertexId Get(int level, int64_t pos) const {
    const int64_t page_index = pos >> page_shift_;
    const int64_t offset = pos & page_mask_;
    const PageId entry = tables_[level * page_table_capacity_ + page_index];
    TDFS_CHECK_MSG(entry != kNullPage, "read of unallocated stack page");
    return allocator_->PageData(entry)[offset];
  }

  /// Maximum elements a level can hold (page-table span).
  int64_t LevelCapacity() const {
    return static_cast<int64_t>(page_table_capacity_)
           << page_shift_;
  }

  /// Sticky: some Set() failed (pool exhausted or span exceeded).
  bool overflowed() const { return overflowed_; }

  /// Pages currently held across all levels (held pages are reused across
  /// tasks and only returned by ReleaseAll, as in the paper).
  int64_t PagesHeld() const { return pages_held_; }

  /// Held pages currently living in the allocator's host spill tier.
  int64_t SpillPagesHeld() const { return spill_pages_held_; }

  /// Migrates held spill pages back into arena pages (allocator
  /// TryPromote) while device pages are available — the eager promotion
  /// run between tasks as pressure drops. Contents are preserved; page
  /// ids in the tables are rewritten in place. Returns pages promoted.
  int64_t PromoteSpilled();

  /// Bytes attributable to this stack: held pages plus the page tables.
  int64_t MemoryBytes() const {
    return pages_held_ * allocator_->page_bytes() +
           static_cast<int64_t>(tables_.size()) * sizeof(PageId);
  }

  /// Returns every held page to the allocator.
  void ReleaseAll();

  /// The paper's optional release heuristic ("if it uses no more than n/4
  /// pages, then we can free the last n/2 pages"): given that the level
  /// currently stores `used_elements`, frees the tail half of its pages
  /// when at most a quarter are in use. Returns pages freed.
  int64_t MaybeShrinkLevel(int level, int64_t used_elements);

  /// Returns every page of one level to the pool (used under memory
  /// pressure for levels whose stored candidates are dead — deeper than
  /// the warp's current position, so the next descent re-extends them
  /// anyway). Returns pages freed.
  int64_t ReleaseLevel(int level);

  /// Pages currently mapped in one level.
  int64_t PagesInLevel(int level) const {
    int64_t count = 0;
    for (int32_t i = 0; i < page_table_capacity_; ++i) {
      count += tables_[level * page_table_capacity_ + i] != kNullPage;
    }
    return count;
  }

 private:
  PageAllocator* allocator_;
  int num_levels_;
  int32_t page_table_capacity_;
  int page_shift_;
  int64_t page_mask_;
  std::vector<PageId> tables_;  // num_levels x page_table_capacity
  int64_t pages_held_ = 0;
  int64_t spill_pages_held_ = 0;
  bool overflowed_ = false;
  obs::WarpTracer* tracer_ = nullptr;
};

/// Fixed-capacity array backend.
class ArrayWarpStack {
 public:
  ArrayWarpStack(int num_levels, int64_t level_capacity);

  ArrayWarpStack(const ArrayWarpStack&) = delete;
  ArrayWarpStack& operator=(const ArrayWarpStack&) = delete;
  ArrayWarpStack(ArrayWarpStack&&) noexcept = default;

  /// Writes stack[level][pos]; never pool-limited, so the only failure is
  /// kCapacityExceeded (which retrying cannot fix).
  StackWrite TrySet(int level, int64_t pos, VertexId v) {
    if (pos >= level_capacity_) {
      return StackWrite::kCapacityExceeded;
    }
    data_[level * level_capacity_ + pos] = v;
    return StackWrite::kOk;
  }

  /// TrySet with the sticky overflow flag on failure.
  bool Set(int level, int64_t pos, VertexId v) {
    if (TrySet(level, pos, v) != StackWrite::kOk) {
      overflowed_ = true;
      return false;
    }
    return true;
  }

  VertexId Get(int level, int64_t pos) const {
    return data_[level * level_capacity_ + pos];
  }

  int64_t LevelCapacity() const { return level_capacity_; }

  bool overflowed() const { return overflowed_; }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(data_.size()) * sizeof(VertexId);
  }

 private:
  int64_t level_capacity_;
  std::vector<VertexId> data_;
  bool overflowed_ = false;
};

}  // namespace tdfs

#endif  // TDFS_MEM_WARP_STACK_H_
