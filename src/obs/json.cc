#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tdfs::obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::Indent() {
  if (indent_ <= 0) {
    return;
  }
  os_ << '\n';
  for (size_t i = 0; i < has_element_.size() * indent_; ++i) {
    os_ << ' ';
  }
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key on the same line
  }
  if (has_element_.empty()) {
    return;  // document root
  }
  if (has_element_.back()) {
    os_ << ',';
  }
  has_element_.back() = true;
  Indent();
}

void JsonWriter::BeginObject() {
  Separate();
  has_element_.push_back(false);
  os_ << '{';
}

void JsonWriter::EndObject() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) {
    Indent();
  }
  os_ << '}';
}

void JsonWriter::BeginArray() {
  Separate();
  has_element_.push_back(false);
  os_ << '[';
}

void JsonWriter::EndArray() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) {
    Indent();
  }
  os_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  os_ << Escape(key) << (indent_ > 0 ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view v) {
  Separate();
  os_ << Escape(v);
}

void JsonWriter::Value(int64_t v) {
  Separate();
  os_ << v;
}

void JsonWriter::Value(uint64_t v) {
  Separate();
  os_ << v;
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    os_ << "null";
    return;
  }
  // Shortest round-trippable form; %.17g always round-trips IEEE doubles
  // but emits noise ("0.10000000000000001"); try increasing precision.
  char buf[32];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) {
      break;
    }
  }
  os_ << buf;
}

void JsonWriter::Value(bool v) {
  Separate();
  os_ << (v ? "true" : "false");
}

void JsonWriter::Null() {
  Separate();
  os_ << "null";
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

// ---------------------------------------------------------------------------
// JsonValue parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    TDFS_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (c == 't' || c == 'f') {
      return ParseKeyword(out);
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        return Error("invalid keyword");
      }
      pos_ += 4;
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseKeyword(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out->bool_ = true;
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      out->bool_ = false;
      return Status::OK();
    }
    return Error("invalid keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(lexeme.c_str(), &end);
    if (end != lexeme.c_str() + lexeme.size()) {
      return Error("malformed number '" + lexeme + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    out->string_ = lexeme;  // exact integer reads go through the lexeme
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // The exporters only escape control characters; decode the
          // ASCII range and pass anything else through as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      TDFS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue value;
      TDFS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return Status::OK();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}'");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      TDFS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) {
        return Status::OK();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']'");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

int64_t JsonValue::Int() const {
  if (kind_ != Kind::kNumber) {
    return 0;
  }
  return std::strtoll(string_.c_str(), nullptr, 10);
}

uint64_t JsonValue::Uint() const {
  if (kind_ != Kind::kNumber) {
    return 0;
  }
  return std::strtoull(string_.c_str(), nullptr, 10);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

}  // namespace tdfs::obs
