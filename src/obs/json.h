// Minimal JSON writer and parser for the observability subsystem.
//
// The writer is a streaming emitter with automatic comma/indent handling,
// used by RunResult::ToJson, the Chrome-trace exporter, and the bench
// results recorder. The parser is a strict recursive-descent reader used
// by the schema tests and tools/validate_trace — it exists so machine-
// readable exports can be validated without external dependencies. Both
// cover exactly the JSON subset the exporters produce (objects, arrays,
// strings with escapes, finite numbers, booleans, null).

#ifndef TDFS_OBS_JSON_H_
#define TDFS_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tdfs::obs {

/// Streaming JSON emitter. Call sequence is validated only by the
/// resulting document; the writer handles commas, quoting, escaping, and
/// (optional) pretty-print indentation.
class JsonWriter {
 public:
  /// `indent` = spaces per nesting level; 0 emits compact one-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; the next value call supplies its value.
  void Key(std::string_view key);

  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(int64_t v);
  void Value(uint64_t v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  /// Non-finite doubles are emitted as null (JSON has no inf/nan).
  void Value(double v);
  void Value(bool v);
  void Null();

  // One-call key/value helpers.
  template <typename T>
  void KeyValue(std::string_view key, T v) {
    Key(key);
    Value(v);
  }

  /// Escapes `raw` into a double-quoted JSON string literal.
  static std::string Escape(std::string_view raw);

 private:
  void Separate();  // comma/newline/indent before a new element
  void Indent();

  std::ostream& os_;
  int indent_;
  // Per-level state: whether the container already holds an element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Parsed JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Strict parse of a complete document (trailing junk is an error).
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  /// Exact integer read from the original lexeme (doubles lose precision
  /// past 2^53; counters are uint64).
  int64_t Int() const;
  uint64_t Uint() const;
  const std::string& str() const { return string_; }

  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  // string value, or number lexeme for kNumber
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace tdfs::obs

#endif  // TDFS_OBS_JSON_H_
