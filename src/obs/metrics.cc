#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace tdfs::obs {

int64_t Histogram::ApproxPercentile(double p) const {
  const int64_t n = Count();
  if (n == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation, 1-based.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(p * static_cast<double>(n) + 0.5));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += BucketCount(i);
    if (seen >= rank) {
      return BucketLowerBound(i);
    }
  }
  return Max();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, counter] : counters_) {
    if (existing == name) {
      return &counter;
    }
  }
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return &counters_.back().second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, gauge] : gauges_) {
    if (existing == name) {
      return &gauge;
    }
  }
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return &gauges_.back().second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, histogram] : histograms_) {
    if (existing == name) {
      return &histogram;
    }
  }
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return &histograms_.back().second;
}

bool MetricsRegistry::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

MetricsRegistry::Snapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter.Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge.Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram.Count();
    h.sum = histogram.Sum();
    h.max = histogram.Max();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      h.buckets[i] = histogram.BucketCount(i);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, counter] : counters_) {
    w->KeyValue(name, counter.Value());
  }
  w->EndObject();
  if (!gauges_.empty()) {
    w->Key("gauges");
    w->BeginObject();
    for (const auto& [name, gauge] : gauges_) {
      w->KeyValue(name, gauge.Value());
    }
    w->EndObject();
  }
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w->Key(name);
    w->BeginObject();
    w->KeyValue("count", histogram.Count());
    w->KeyValue("sum", histogram.Sum());
    w->KeyValue("mean", histogram.Mean());
    w->KeyValue("max", histogram.Max());
    w->KeyValue("p50", histogram.ApproxPercentile(0.5));
    w->KeyValue("p99", histogram.ApproxPercentile(0.99));
    w->Key("buckets");
    w->BeginArray();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const int64_t count = histogram.BucketCount(i);
      if (count == 0) {
        continue;
      }
      w->BeginArray();
      w->Value(Histogram::BucketLowerBound(i));
      w->Value(count);
      w->EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

}  // namespace tdfs::obs
