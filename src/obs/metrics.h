// Named counters and log-scaled histograms for engine instrumentation.
//
// A MetricsRegistry is owned by a TraceSession (obs/trace.h). Engines
// resolve handles once per run (GetCounter/GetHistogram take a mutex) and
// then record through the handles from any warp thread (relaxed atomics).
// When observability is off the engines hold null handles and the inline
// Observe/Add helpers compile down to a pointer test — the near-zero-cost
// contract that lets instrumentation live permanently in the hot paths.

#ifndef TDFS_OBS_METRICS_H_
#define TDFS_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tdfs::obs {

class JsonWriter;

/// Monotone counter. Thread-safe; relaxed.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative values. Bucket i counts values
/// whose bit width is i (bucket 0: value 0; bucket i: [2^(i-1), 2^i - 1]),
/// so the full int64 range fits in 64 buckets with ~2x resolution — enough
/// to see the shape of task durations or intersection sizes without
/// per-value storage. Thread-safe; relaxed.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index of a value (negatives clamp to bucket 0).
  static int BucketIndex(int64_t v) {
    if (v <= 0) {
      return 0;
    }
    return std::bit_width(static_cast<uint64_t>(v));
  }

  /// Smallest value belonging to bucket i.
  static int64_t BucketLowerBound(int i) {
    return i <= 0 ? 0 : int64_t{1} << (i - 1);
  }

  void Observe(int64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v < 0 ? 0 : v, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  double Mean() const {
    const int64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / n;
  }

  /// Approximate percentile (p in [0, 1]): the lower bound of the bucket
  /// holding the p-th observation. Exact only to bucket resolution.
  int64_t ApproxPercentile(double p) const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Registry of named metrics. Names are stable for the registry lifetime;
/// repeated Get* calls return the same handle. Registration locks; the
/// returned handles never do.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  bool Empty() const;

  /// {"counters": {name: value}, "histograms": {name: {count, sum, mean,
  /// max, p50, p99, buckets: [[lower_bound, count], ...]}}}. Zero-count
  /// buckets are omitted from the bucket list.
  void WriteJson(JsonWriter* w) const;

 private:
  mutable std::mutex mu_;
  // deque: stable addresses across registration.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

/// Null-tolerant recording helpers (the disabled path is a pointer test).
inline void Add(Counter* c, int64_t n = 1) {
  if (c != nullptr) {
    c->Add(n);
  }
}
inline void Observe(Histogram* h, int64_t v) {
  if (h != nullptr) {
    h->Observe(v);
  }
}

}  // namespace tdfs::obs

#endif  // TDFS_OBS_METRICS_H_
