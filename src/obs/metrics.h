// Named counters and log-scaled histograms for engine instrumentation.
//
// A MetricsRegistry is owned by a TraceSession (obs/trace.h). Engines
// resolve handles once per run (GetCounter/GetHistogram take a mutex) and
// then record through the handles from any warp thread (relaxed atomics).
// When observability is off the engines hold null handles and the inline
// Observe/Add helpers compile down to a pointer test — the near-zero-cost
// contract that lets instrumentation live permanently in the hot paths.

#ifndef TDFS_OBS_METRICS_H_
#define TDFS_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tdfs::obs {

class JsonWriter;

/// Monotone counter. Thread-safe; relaxed.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level (bytes committed, jobs in flight, ...). Unlike a
/// Counter it may move both ways; scrapes read the instantaneous value.
/// Thread-safe; relaxed.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative values. Bucket i counts values
/// whose bit width is i (bucket 0: value 0; bucket i: [2^(i-1), 2^i - 1]),
/// so the full int64 range fits in 64 buckets with ~2x resolution — enough
/// to see the shape of task durations or intersection sizes without
/// per-value storage. Thread-safe; relaxed.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index of a value (negatives clamp to bucket 0).
  static int BucketIndex(int64_t v) {
    if (v <= 0) {
      return 0;
    }
    return std::bit_width(static_cast<uint64_t>(v));
  }

  /// Smallest value belonging to bucket i.
  static int64_t BucketLowerBound(int i) {
    return i <= 0 ? 0 : int64_t{1} << (i - 1);
  }

  void Observe(int64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v < 0 ? 0 : v, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  /// Folds a locally-accumulated batch in (LocalHistogram::FlushTo): one
  /// round of fetch_adds per flush instead of per observation.
  void Merge(const int64_t buckets[kNumBuckets], int64_t count, int64_t sum,
             int64_t max) {
    for (int i = 0; i < kNumBuckets; ++i) {
      if (buckets[i] != 0) {
        buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (max > seen && !max_.compare_exchange_weak(
                             seen, max, std::memory_order_relaxed)) {
    }
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  double Mean() const {
    const int64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / n;
  }

  /// Approximate percentile (p in [0, 1]): the lower bound of the bucket
  /// holding the p-th observation. Exact only to bucket resolution.
  int64_t ApproxPercentile(double p) const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// One-writer accumulator mirroring Histogram, for hot paths that cannot
/// afford contended atomics: a warp observing per-extension values makes
/// the shared histogram's cache lines ping-pong across every warp thread
/// (measured at tens of percent of engine wall time). Record locally —
/// plain increments — then FlushTo the shared histogram once at teardown.
class LocalHistogram {
 public:
  void Observe(int64_t v) {
    ++buckets_[Histogram::BucketIndex(v)];
    ++count_;
    sum_ += v < 0 ? 0 : v;
    if (v > max_) {
      max_ = v;
    }
  }

  int64_t Count() const { return count_; }

  /// Merges into `h` (null ok) and resets this accumulator.
  void FlushTo(Histogram* h) {
    if (h != nullptr && count_ != 0) {
      h->Merge(buckets_, count_, sum_, max_);
    }
    *this = LocalHistogram{};
  }

 private:
  int64_t buckets_[Histogram::kNumBuckets] = {};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

/// LocalHistogram's counter sibling.
class LocalCounter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t Value() const { return value_; }

  /// Adds into `c` (null ok) and resets.
  void FlushTo(Counter* c) {
    if (c != nullptr && value_ != 0) {
      c->Add(value_);
    }
    value_ = 0;
  }

 private:
  int64_t value_ = 0;
};

/// Registry of named metrics. Names are stable for the registry lifetime;
/// repeated Get* calls return the same handle. Registration locks; the
/// returned handles never do.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  bool Empty() const;

  /// {"counters": {name: value}, "gauges": {name: value},
  /// "histograms": {name: {count, sum, mean, max, p50, p99,
  /// buckets: [[lower_bound, count], ...]}}}. Zero-count buckets are
  /// omitted from the bucket list. The "gauges" key is omitted while no
  /// gauge is registered, keeping pre-gauge trace goldens stable.
  void WriteJson(JsonWriter* w) const;

  /// Consistent point-in-time copy for exporters (obs/prometheus.h) that
  /// must not hold the registry lock while formatting or serving.
  struct HistogramSnapshot {
    std::string name;
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    int64_t buckets[Histogram::kNumBuckets] = {};
  };
  struct Snapshot {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  Snapshot GetSnapshot() const;

 private:
  mutable std::mutex mu_;
  // deque: stable addresses across registration.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

/// Null-tolerant recording helpers (the disabled path is a pointer test).
inline void Add(Counter* c, int64_t n = 1) {
  if (c != nullptr) {
    c->Add(n);
  }
}
inline void Observe(Histogram* h, int64_t v) {
  if (h != nullptr) {
    h->Observe(v);
  }
}
inline void Set(Gauge* g, int64_t v) {
  if (g != nullptr) {
    g->Set(v);
  }
}

}  // namespace tdfs::obs

#endif  // TDFS_OBS_METRICS_H_
