#include "obs/prometheus.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

namespace tdfs::obs {

std::string PrometheusMetricName(std::string_view raw) {
  std::string out = "tdfs_";
  out.reserve(raw.size() + out.size());
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

// One sample line: metric{name="raw",extra} value.
void WriteSample(std::ostream& os, const std::string& metric,
                 const std::string& raw, const std::string& extra_label,
                 int64_t value) {
  os << metric << "{name=\"" << PrometheusEscapeLabel(raw) << "\"";
  if (!extra_label.empty()) {
    os << "," << extra_label;
  }
  os << "} " << value << "\n";
}

template <typename Series>
void SortByMetricName(std::vector<Series>* series) {
  std::sort(series->begin(), series->end(),
            [](const Series& a, const Series& b) {
              if (a.metric != b.metric) {
                return a.metric < b.metric;
              }
              return a.raw < b.raw;
            });
}

struct ScalarSeries {
  std::string metric;
  std::string raw;
  int64_t value = 0;
};

void RenderScalars(std::ostream& os,
                   const std::vector<std::pair<std::string, int64_t>>& in,
                   const char* type) {
  std::vector<ScalarSeries> series;
  series.reserve(in.size());
  for (const auto& [raw, value] : in) {
    series.push_back({PrometheusMetricName(raw), raw, value});
  }
  SortByMetricName(&series);
  const std::string* last_family = nullptr;
  for (const ScalarSeries& s : series) {
    if (last_family == nullptr || *last_family != s.metric) {
      os << "# TYPE " << s.metric << " " << type << "\n";
      last_family = &s.metric;
    }
    WriteSample(os, s.metric, s.raw, "", s.value);
  }
}

}  // namespace

std::string RenderPrometheusText(
    const MetricsRegistry::Snapshot& snapshot) {
  std::ostringstream os;
  RenderScalars(os, snapshot.counters, "counter");
  RenderScalars(os, snapshot.gauges, "gauge");

  struct HistSeries {
    std::string metric;
    std::string raw;
    const MetricsRegistry::HistogramSnapshot* snap = nullptr;
  };
  std::vector<HistSeries> hists;
  hists.reserve(snapshot.histograms.size());
  for (const MetricsRegistry::HistogramSnapshot& h : snapshot.histograms) {
    hists.push_back({PrometheusMetricName(h.name), h.name, &h});
  }
  SortByMetricName(&hists);
  const std::string* last_family = nullptr;
  for (const HistSeries& s : hists) {
    if (last_family == nullptr || *last_family != s.metric) {
      os << "# TYPE " << s.metric << " histogram\n";
      last_family = &s.metric;
    }
    const auto& h = *s.snap;
    int highest = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] != 0) {
        highest = i;
      }
    }
    // Cumulative buckets. The log2 bucket i holds values of bit width i,
    // so its inclusive upper bound is 2^i - 1; bucket 0 holds only 0.
    int64_t cumulative = 0;
    for (int i = 0; i <= highest; ++i) {
      cumulative += h.buckets[i];
      const uint64_t upper =
          i == 0 ? 0 : (i >= 63 ? ~uint64_t{0} >> 1 : (uint64_t{1} << i) - 1);
      WriteSample(os, s.metric + "_bucket", s.raw,
                  "le=\"" + std::to_string(upper) + "\"", cumulative);
    }
    WriteSample(os, s.metric + "_bucket", s.raw, "le=\"+Inf\"", h.count);
    WriteSample(os, s.metric + "_sum", s.raw, "", h.sum);
    WriteSample(os, s.metric + "_count", s.raw, "", h.count);
  }
  return os.str();
}

std::string RenderPrometheusText(const MetricsRegistry& registry) {
  return RenderPrometheusText(registry.GetSnapshot());
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start(const MetricsRegistry* registry, int port) {
  if (registry == nullptr) {
    return Status::InvalidArgument("metrics server needs a registry");
  }
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("metrics server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("bind port " + std::to_string(port) + ": " +
                           std::strerror(err));
  }
  if (::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(err));
  }
  registry_ = registry;
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // Shutting the listening socket down unblocks the accept() in
  // ServeLoop; the loop then observes stopping_ and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
  registry_ = nullptr;
  running_.store(false, std::memory_order_release);
}

void MetricsHttpServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      break;  // listening socket is gone; nothing sane to do
    }
    // Bound the read so a stalled client cannot wedge the accept loop.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string request;
    char buf[2048];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 16384) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      request.append(buf, static_cast<size_t>(n));
    }

    // Request line: METHOD SP PATH SP VERSION.
    std::string method;
    std::string path;
    {
      const size_t sp1 = request.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : request.find(' ', sp1 + 1);
      if (sp1 != std::string::npos && sp2 != std::string::npos) {
        method = request.substr(0, sp1);
        path = request.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }
    const size_t query = path.find('?');
    if (query != std::string::npos) {
      path.resize(query);
    }

    std::string body;
    std::string status_line;
    std::string content_type = "text/plain; charset=utf-8";
    if (method == "GET" && (path == "/" || path == "/metrics")) {
      status_line = "HTTP/1.1 200 OK";
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = RenderPrometheusText(*registry_);
    } else {
      status_line = "HTTP/1.1 404 Not Found";
      body = "not found\n";
    }
    std::string response = status_line + "\r\nContent-Type: " +
                           content_type +
                           "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n = ::send(conn, response.data() + sent,
                               response.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        break;
      }
      sent += static_cast<size_t>(n);
    }
    ::close(conn);
  }
}

}  // namespace tdfs::obs
