// Prometheus text-format export for MetricsRegistry.
//
// RenderPrometheusText turns a registry snapshot into exposition format
// 0.0.4 (the classic text format every Prometheus server scrapes):
// counters and gauges as single samples, log2 histograms as cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count`. tdfs metric names use
// dots ("dfs.work_units"); the exporter sanitizes them into the metric
// name (tdfs_dfs_work_units) and keeps the exact original as a
// `name="..."` label so dashboards can match on the canonical spelling.
//
// MetricsHttpServer is the matching scrape endpoint: a deliberately tiny
// blocking HTTP/1.1 server (POSIX sockets, one accept thread, one
// request per connection) with zero dependencies. It serves GET / and
// GET /metrics; anything else is 404. Scrapes read a lock-free snapshot
// (MetricsRegistry::GetSnapshot), so a scrape never stalls recording
// threads beyond the registry's registration mutex.

#ifndef TDFS_OBS_PROMETHEUS_H_
#define TDFS_OBS_PROMETHEUS_H_

#include <atomic>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace tdfs::obs {

/// Prometheus metric name derived from a tdfs metric name: characters
/// outside [a-zA-Z0-9_] become '_', and the result is prefixed "tdfs_".
std::string PrometheusMetricName(std::string_view raw);

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline are escaped.
std::string PrometheusEscapeLabel(std::string_view raw);

/// Renders the full exposition-format page for a snapshot. Families are
/// sorted by metric name, each preceded by its `# TYPE` line; histogram
/// buckets are cumulative with `le` = the log2 bucket's inclusive upper
/// bound (0, 1, 3, 7, ..., +Inf).
std::string RenderPrometheusText(const MetricsRegistry::Snapshot& snapshot);

/// Convenience overload: snapshot + render.
std::string RenderPrometheusText(const MetricsRegistry& registry);

/// Minimal blocking scrape endpoint over one registry. Start binds and
/// spawns the accept thread; Stop (or destruction) shuts it down. Not
/// copyable or movable.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;
  ~MetricsHttpServer();

  /// Binds 0.0.0.0:`port` (0 = ephemeral; see port()) and starts
  /// serving. The registry must outlive the server.
  Status Start(const MetricsRegistry* registry, int port);

  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (resolves port 0 requests); 0 when not running.
  int port() const { return port_; }

 private:
  void ServeLoop();

  const MetricsRegistry* registry_ = nullptr;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace tdfs::obs

#endif  // TDFS_OBS_PROMETHEUS_H_
