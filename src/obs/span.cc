#include "obs/span.h"

#include <algorithm>
#include <utility>

#include "util/timer.h"

namespace tdfs::obs {

SpanLedger::SpanLedger(Options options) : options_(options) {
  options_.capacity = std::max<int64_t>(options_.capacity, 1);
  epoch_ns_.store(Timer::Now(), std::memory_order_relaxed);
}

void SpanLedger::Span::End() {
  if (ledger_ != nullptr) {
    ledger_->EndSpan(id_);
    ledger_ = nullptr;
    id_ = 0;
  }
}

void SpanLedger::Span::SetArg(int64_t arg) {
  if (ledger_ != nullptr) {
    ledger_->SetSpanArg(id_, arg);
  }
}

SpanLedger::Span SpanLedger::Begin(std::string name, int64_t track,
                                   uint64_t parent, int64_t arg) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Record record;
  record.id = id;
  record.parent = parent;
  record.track = track;
  record.start_ns = now;
  record.arg = arg;
  record.name = std::move(name);
  records_.push_back(std::move(record));
  while (static_cast<int64_t>(records_.size()) > options_.capacity) {
    records_.pop_front();
    ++dropped_;
  }
  return Span(this, id, track);
}

void SpanLedger::EndSpan(uint64_t id) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  // Open spans are recent: search newest-first. A span whose record was
  // dropped under capacity pressure ends as a no-op.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->id == id) {
      if (it->end_ns < 0) {
        it->end_ns = std::max(now, it->start_ns);
      }
      return;
    }
  }
}

void SpanLedger::SetSpanArg(uint64_t id, int64_t arg) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->id == id) {
      it->arg = arg;
      return;
    }
  }
}

int64_t SpanLedger::NewTrackId(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_.push_back(std::move(name));
  return static_cast<int64_t>(track_names_.size()) - 1;
}

void SpanLedger::NameTrack(int64_t track, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (track >= 0 && track < static_cast<int64_t>(track_names_.size())) {
    track_names_[static_cast<size_t>(track)] = std::move(name);
  }
}

std::string SpanLedger::TrackName(int64_t track) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (track >= 0 && track < static_cast<int64_t>(track_names_.size()) &&
      !track_names_[static_cast<size_t>(track)].empty()) {
    return track_names_[static_cast<size_t>(track)];
  }
  return "svc" + std::to_string(track);
}

int64_t SpanLedger::NumTracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(track_names_.size());
}

void SpanLedger::SetEpochNs(int64_t epoch_ns) {
  epoch_ns_.store(epoch_ns, std::memory_order_relaxed);
}

int64_t SpanLedger::NowNs() const {
  return Timer::Now() - epoch_ns_.load(std::memory_order_relaxed);
}

int64_t SpanLedger::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(records_.size());
}

int64_t SpanLedger::Dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<SpanLedger::Record> SpanLedger::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Record>(records_.begin(), records_.end());
}

}  // namespace tdfs::obs
