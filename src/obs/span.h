// Nested wall-clock spans for the service-side job lifecycle.
//
// Warp rings (obs/trace.h) answer "what did warp 3 do at work-unit 10k";
// they cannot answer "where did this job's 40 ms go" because a job crosses
// subsystems that have no warp: admission, plan-cache compile, governor
// reservation waits, arena leasing, result merge. A SpanLedger records
// those stages as begin/end spans with explicit parent ids, so the whole
// submit → admission → mem-reserve → plan → lease → engine-run → merge →
// finalize chain reconstructs as one tree per job and lands on the same
// Chrome-trace timeline as the warp events (TraceSession owns a ledger
// and merges it into WriteChromeTrace as balanced B/E events).
//
// Recording is cold-path by design — a handful of spans per job, never
// per task or per intersection — so every operation takes one mutex. The
// RAII Span handle ends its record on destruction; ends are matched by
// span id, so out-of-order ends (device slices finishing while the merge
// span is open) are fine. Tracks are timeline rows: one for the service
// control plane per job, one per device slice, so concurrent slices never
// interleave on one row and per-track timestamps stay monotone.
//
// Zero-cost-off: a null SpanLedger (or null SpanContext) makes Begin a
// pointer test returning an inert handle.

#ifndef TDFS_OBS_SPAN_H_
#define TDFS_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tdfs::obs {

class SpanLedger {
 public:
  struct Record {
    uint64_t id = 0;
    uint64_t parent = 0;  // 0 = root
    int64_t track = 0;
    int64_t start_ns = 0;  // since ledger epoch
    int64_t end_ns = -1;   // -1 while the span is open
    int64_t arg = 0;
    std::string name;
  };

  struct Options {
    /// Completed + open records retained; older records are dropped
    /// (FIFO) beyond it, with a drop counter keeping exports honest.
    /// (Explicit constructor: gcc rejects a default member initializer
    /// used as a nested-class default argument.)
    int64_t capacity;
    Options() : capacity(int64_t{1} << 16) {}
  };

  explicit SpanLedger(Options options = Options());

  SpanLedger(const SpanLedger&) = delete;
  SpanLedger& operator=(const SpanLedger&) = delete;

  /// Move-only RAII handle; ends the span on destruction (idempotent).
  /// A default-constructed Span is inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        End();
        ledger_ = other.ledger_;
        id_ = other.id_;
        track_ = other.track_;
        other.ledger_ = nullptr;
        other.id_ = 0;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    bool active() const { return ledger_ != nullptr; }
    /// Span id for parenting children; 0 when inert.
    uint64_t id() const { return id_; }
    int64_t track() const { return track_; }

    /// Stamps the end timestamp. Idempotent; the handle goes inert.
    void End();
    /// Updates the span's payload (bytes reserved, match count, ...).
    void SetArg(int64_t arg);

   private:
    friend class SpanLedger;
    Span(SpanLedger* ledger, uint64_t id, int64_t track)
        : ledger_(ledger), id_(id), track_(track) {}

    SpanLedger* ledger_ = nullptr;
    uint64_t id_ = 0;
    int64_t track_ = 0;
  };

  /// Opens a span on `track` under `parent` (0 = root). Thread-safe.
  Span Begin(std::string name, int64_t track, uint64_t parent = 0,
             int64_t arg = 0);

  /// Allocates a new timeline row. Rows serialize spans: begin/end pairs
  /// on one row must come from one logical sequence (the export emits
  /// them as a balanced B/E stream per row).
  int64_t NewTrackId(std::string name = "");
  void NameTrack(int64_t track, std::string name);
  std::string TrackName(int64_t track) const;
  int64_t NumTracks() const;

  /// Re-anchors the clock so span timestamps share another component's
  /// epoch (TraceSession aligns the ledger to its own wall epoch).
  void SetEpochNs(int64_t epoch_ns);
  /// Nanoseconds since the ledger epoch.
  int64_t NowNs() const;

  int64_t Size() const;
  int64_t Dropped() const;
  /// Snapshot of retained records, oldest first. Open spans have
  /// end_ns == -1.
  std::vector<Record> Records() const;

 private:
  void EndSpan(uint64_t id);
  void SetSpanArg(uint64_t id, int64_t arg);

  Options options_;
  std::atomic<int64_t> epoch_ns_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<Record> records_;
  int64_t dropped_ = 0;
  std::vector<std::string> track_names_;
};

/// Where a subsystem call should hang its spans: which ledger, which
/// timeline row, which parent span. Passed by value down call chains
/// (PlanCache::GetWithDemand, MemoryGovernor::ReserveBytes,
/// EngineArena::Acquire take one as a defaulted trailing parameter); a
/// default-constructed context is inert and costs a pointer test.
struct SpanContext {
  SpanLedger* ledger = nullptr;
  int64_t track = 0;
  uint64_t parent = 0;

  bool enabled() const { return ledger != nullptr; }

  SpanLedger::Span Begin(std::string name, int64_t arg = 0) const {
    if (ledger == nullptr) {
      return {};
    }
    return ledger->Begin(std::move(name), track, parent, arg);
  }

  /// The same context reparented under `span` (for nesting deeper calls).
  SpanContext Under(const SpanLedger::Span& span) const {
    return SpanContext{ledger, track, span.id() == 0 ? parent : span.id()};
  }
};

}  // namespace tdfs::obs

#endif  // TDFS_OBS_SPAN_H_
