#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "obs/json.h"
#include "util/timer.h"

namespace tdfs::obs {

const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kAdopt:
      return "adopt";
    case TraceEvent::kTimeoutSplit:
      return "split";
    case TraceEvent::kEnqueue:
      return "enqueue";
    case TraceEvent::kDequeue:
      return "dequeue";
    case TraceEvent::kPageAcquire:
      return "page_acquire";
    case TraceEvent::kPageRelease:
      return "page_release";
    case TraceEvent::kReuseHit:
      return "reuse_hit";
    case TraceEvent::kSteal:
      return "steal";
    case TraceEvent::kDeadlineFire:
      return "deadline_fire";
    case TraceEvent::kKernelLaunch:
      return "kernel_launch";
    case TraceEvent::kBfsBatch:
      return "bfs_batch";
    case TraceEvent::kDeltaBatch:
      return "delta_batch";
    case TraceEvent::kPageSpill:
      return "page_spill";
    case TraceEvent::kSpillPromote:
      return "spill_promote";
    case TraceEvent::kMemPressure:
      return "mem_pressure";
  }
  return "unknown";
}

TraceRing::TraceRing(int64_t capacity)
    : capacity_(std::max<int64_t>(capacity, 1)) {}

void TraceRing::Grow() {
  const int64_t current = static_cast<int64_t>(records_.size());
  records_.resize(static_cast<size_t>(
      std::min(capacity_, std::max<int64_t>(current * 2, 512))));
}

int64_t TraceRing::Size() const { return std::min(pushed_, capacity_); }

int64_t TraceRing::Dropped() const {
  return pushed_ > capacity_ ? pushed_ - capacity_ : 0;
}

const TraceRecord& TraceRing::At(int64_t i) const {
  const int64_t start = pushed_ > capacity_ ? next_ : 0;
  return records_[static_cast<size_t>((start + i) % capacity_)];
}

TraceSession::TraceSession(TraceOptions options)
    : options_(options), epoch_ns_(Timer::Now()) {
  spans_.SetEpochNs(epoch_ns_);
}

TraceRing* TraceSession::NewTrack(int device_id, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.push_back(Track{device_id, std::move(name),
                          std::make_unique<TraceRing>(
                              options_.ring_capacity)});
  return tracks_.back().ring.get();
}

void TraceSession::RecordGlobal(int device_id, TraceEvent type,
                                int64_t arg) {
  // Global tracks are multi-producer, so — unlike warp rings — the push
  // itself happens under the session lock. Launches are rare; this is
  // never on a warp's DFS path.
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<size_t>(device_id) >= global_rings_.size()) {
    tracks_.push_back(
        Track{static_cast<int>(global_rings_.size()), "kernel",
              std::make_unique<TraceRing>(options_.ring_capacity)});
    global_rings_.push_back(tracks_.back().ring.get());
  }
  global_rings_[static_cast<size_t>(device_id)]->Push(
      Timer::Now() - epoch_ns_, type, arg);
}

int64_t TraceSession::NumTracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(tracks_.size());
}

int64_t TraceSession::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalDroppedLocked();
}

int64_t TraceSession::TotalDroppedLocked() const {
  int64_t dropped = 0;
  for (const Track& track : tracks_) {
    dropped += track.ring->Dropped();
  }
  return dropped;
}

void TraceSession::WriteChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os, /*indent=*/0);
  w.BeginObject();
  w.KeyValue("displayTimeUnit", "ms");
  w.Key("otherData");
  w.BeginObject();
  w.KeyValue("tool", "tdfs");
  w.KeyValue("clock",
             "warp tracks: virtual work units; kernel tracks: wall ns");
  w.KeyValue("dropped_records", TotalDroppedLocked());
  w.KeyValue("dropped_spans", spans_.Dropped());
  w.EndObject();
  w.Key("traceEvents");
  w.BeginArray();
  int tid = 0;
  std::vector<int> seen_devices;
  for (const Track& track : tracks_) {
    // Metadata: name the process (device) once and every thread (track).
    if (std::find(seen_devices.begin(), seen_devices.end(),
                  track.device_id) == seen_devices.end()) {
      seen_devices.push_back(track.device_id);
      w.BeginObject();
      w.KeyValue("name", "process_name");
      w.KeyValue("ph", "M");
      w.KeyValue("pid", track.device_id);
      w.Key("args");
      w.BeginObject();
      w.KeyValue("name",
                 "device" + std::to_string(track.device_id));
      w.EndObject();
      w.EndObject();
    }
    w.BeginObject();
    w.KeyValue("name", "thread_name");
    w.KeyValue("ph", "M");
    w.KeyValue("pid", track.device_id);
    w.KeyValue("tid", tid);
    w.Key("args");
    w.BeginObject();
    w.KeyValue("name", track.name);
    w.EndObject();
    w.EndObject();
    const TraceRing& ring = *track.ring;
    for (int64_t i = 0; i < ring.Size(); ++i) {
      const TraceRecord& record = ring.At(i);
      w.BeginObject();
      w.KeyValue("name", TraceEventName(record.type));
      w.KeyValue("ph", "i");
      w.KeyValue("s", "t");
      w.KeyValue("pid", track.device_id);
      w.KeyValue("tid", tid);
      w.KeyValue("ts", record.ts);
      w.Key("args");
      w.BeginObject();
      w.KeyValue("arg", record.arg);
      w.EndObject();
      w.EndObject();
    }
    ++tid;
  }
  // Service spans: one extra process whose rows are ledger tracks, each
  // emitted as a balanced, monotone B/E stream. Spans still open at
  // export time extend to the newest timestamp seen.
  const std::vector<SpanLedger::Record> spans = spans_.Records();
  if (!spans.empty()) {
    w.BeginObject();
    w.KeyValue("name", "process_name");
    w.KeyValue("ph", "M");
    w.KeyValue("pid", kSpanExportPid);
    w.Key("args");
    w.BeginObject();
    w.KeyValue("name", "service");
    w.EndObject();
    w.EndObject();

    int64_t export_now = 0;
    for (const SpanLedger::Record& record : spans) {
      export_now = std::max(export_now,
                            std::max(record.start_ns, record.end_ns));
    }
    const auto effective_end = [export_now](const SpanLedger::Record& r) {
      return r.end_ns < r.start_ns ? std::max(export_now, r.start_ns)
                                   : r.end_ns;
    };

    std::map<int64_t, std::vector<const SpanLedger::Record*>> by_track;
    for (const SpanLedger::Record& record : spans) {
      by_track[record.track].push_back(&record);
    }
    for (auto& [track, records] : by_track) {
      w.BeginObject();
      w.KeyValue("name", "thread_name");
      w.KeyValue("ph", "M");
      w.KeyValue("pid", kSpanExportPid);
      w.KeyValue("tid", track);
      w.Key("args");
      w.BeginObject();
      w.KeyValue("name", spans_.TrackName(track));
      w.EndObject();
      w.EndObject();

      std::sort(records.begin(), records.end(),
                [&](const SpanLedger::Record* a,
                    const SpanLedger::Record* b) {
                  if (a->start_ns != b->start_ns) {
                    return a->start_ns < b->start_ns;
                  }
                  const int64_t ea = effective_end(*a);
                  const int64_t eb = effective_end(*b);
                  if (ea != eb) {
                    return ea > eb;  // enclosing span first
                  }
                  return a->id < b->id;
                });

      int64_t last_ts = 0;
      const auto emit_end = [&](const SpanLedger::Record* r,
                                int64_t end_ns) {
        last_ts = std::max(last_ts, end_ns);
        w.BeginObject();
        w.KeyValue("name", r->name);
        w.KeyValue("ph", "E");
        w.KeyValue("pid", kSpanExportPid);
        w.KeyValue("tid", r->track);
        w.KeyValue("ts", last_ts);
        w.EndObject();
      };

      // Stack of open spans; pop (emit E) before any later span that
      // starts at or after the top's end, so B/E pairs nest properly.
      std::vector<std::pair<const SpanLedger::Record*, int64_t>> open;
      for (const SpanLedger::Record* r : records) {
        while (!open.empty() && open.back().second <= r->start_ns) {
          emit_end(open.back().first, open.back().second);
          open.pop_back();
        }
        last_ts = std::max(last_ts, r->start_ns);
        w.BeginObject();
        w.KeyValue("name", r->name);
        w.KeyValue("ph", "B");
        w.KeyValue("pid", kSpanExportPid);
        w.KeyValue("tid", r->track);
        w.KeyValue("ts", last_ts);
        w.Key("args");
        w.BeginObject();
        w.KeyValue("id", static_cast<int64_t>(r->id));
        w.KeyValue("parent", static_cast<int64_t>(r->parent));
        w.KeyValue("arg", r->arg);
        w.EndObject();
        w.EndObject();
        open.emplace_back(r, effective_end(*r));
      }
      while (!open.empty()) {
        emit_end(open.back().first, open.back().second);
        open.pop_back();
      }
    }
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

Status TraceSession::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open trace output '" + path + "'");
  }
  WriteChromeTrace(out);
  out.flush();
  if (!out) {
    return Status::IOError("short write to trace output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace tdfs::obs
