// Per-warp event tracing with Chrome-trace/Perfetto export.
//
// A TraceSession owns one TraceRing per registered track (one track per
// warp per device, plus cold global tracks for kernel launches) and a
// MetricsRegistry. Warps record task-lifecycle events — adopt, timeout
// split, enqueue/dequeue, page acquire/release, reuse hit, steal, deadline
// fire — through a WarpTracer handle whose disabled form is a null-pointer
// test. Timestamps come from the warp's virtual clock (cumulative work
// units), which is monotone per warp, so every track's timeline is
// monotone by construction; cold global events use wall nanoseconds since
// session creation instead.
//
// Rings are single-producer (each ring belongs to exactly one warp) and
// fixed-capacity: when full, the oldest records are overwritten and a drop
// counter keeps the export honest. The merged timeline is emitted post-run
// in Chrome trace-event JSON ("traceEvents"), loadable by Perfetto and
// chrome://tracing: pid = device, tid = track.

#ifndef TDFS_OBS_TRACE_H_
#define TDFS_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/intersect.h"
#include "util/status.h"

namespace tdfs::obs {

/// Task-lifecycle event taxonomy (docs/ARCHITECTURE.md "Observability").
enum class TraceEvent : uint8_t {
  kAdopt,         // warp starts a unit of work (chunk / queue task / slice)
  kTimeoutSplit,  // tau fired: subtree decomposed into Q_task
  kEnqueue,       // one task pushed to Q_task
  kDequeue,       // one task popped from Q_task
  kPageAcquire,   // paged stack mapped a fresh page
  kPageRelease,   // paged stack returned page(s) to the pool
  kReuseHit,      // extension served from a stored level (Fig. 7 reuse)
  kSteal,         // half-steal: thief installed a stolen slice
  kDeadlineFire,  // this warp observed the run deadline passing
  kKernelLaunch,  // vgpu kernel launch (global track)
  kBfsBatch,      // BFS/hybrid engine finished one batched extension
  kDeltaBatch,    // dyn layer applied a graph-update batch (global track)
  kPageSpill,     // paged stack mapped a host spill page (arena was dry)
  kSpillPromote,  // spill page migrated back into the device arena
  kMemPressure,   // governor pressure observed (arg = MemPressure level)
};

/// Stable lowercase event name used in exports ("split", "enqueue", ...).
const char* TraceEventName(TraceEvent e);

struct TraceRecord {
  int64_t ts = 0;   // virtual-clock work units (or wall ns, global tracks)
  int64_t arg = 0;  // event payload: level, task count, page count, ...
  TraceEvent type = TraceEvent::kAdopt;
};

/// Fixed-capacity single-producer ring. The producing warp pushes without
/// synchronization; readers must only look after the producing thread has
/// been joined (the post-run export path).
class TraceRing {
 public:
  explicit TraceRing(int64_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Push(int64_t ts, TraceEvent type, int64_t arg) {
    // Storage grows on demand (doubling up to capacity): a full-capacity
    // ring is ~768 KB that would otherwise be allocated AND zeroed per
    // track per run, even for jobs that record a handful of events.
    if (next_ == static_cast<int64_t>(records_.size())) {
      Grow();
    }
    // Branch-wrap instead of modulo: capacity is runtime-sized, so `%`
    // is an integer division on the warp's per-event path.
    records_[static_cast<size_t>(next_)] = {ts, arg, type};
    if (++next_ == capacity_) {
      next_ = 0;
    }
    ++pushed_;
  }

  /// Records currently retained (min(pushed, capacity)).
  int64_t Size() const;
  /// Records overwritten because the ring was full.
  int64_t Dropped() const;
  /// i-th retained record, oldest first (0 <= i < Size()).
  const TraceRecord& At(int64_t i) const;

 private:
  // Cold path: extends records_ toward capacity_ (called when the write
  // cursor reaches the end of the allocated prefix, O(log capacity) times
  // per ring lifetime).
  void Grow();

  int64_t capacity_;
  int64_t next_ = 0;    // write cursor (== pushed_ % capacity_)
  int64_t pushed_ = 0;  // lifetime total, for Size/Dropped
  std::vector<TraceRecord> records_;  // grows on demand up to capacity_
};

struct TraceOptions {
  /// Records retained per track; older records are overwritten beyond it.
  int64_t ring_capacity = int64_t{1} << 15;
};

class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Registers a track (timeline row) owned by one producer; thread-safe,
  /// cold. Returns the ring the producer pushes into. `device_id` becomes
  /// the Chrome-trace pid, `name` the thread name ("warp3", "child7-w0").
  TraceRing* NewTrack(int device_id, std::string name);

  /// Cold-path event on the per-device "kernel" track, timestamped with
  /// wall nanoseconds since session creation. Safe from any thread.
  void RecordGlobal(int device_id, TraceEvent type, int64_t arg);

  MetricsRegistry* metrics() { return &metrics_; }
  const MetricsRegistry* metrics() const { return &metrics_; }

  /// Service-side span ledger, clock-aligned with the session's wall
  /// epoch so spans and RecordGlobal events share one timeline. Spans are
  /// merged into WriteChromeTrace as balanced B/E events under a
  /// dedicated "service" process.
  SpanLedger* spans() { return &spans_; }
  const SpanLedger* spans() const { return &spans_; }

  int64_t NumTracks() const;
  /// Sum of Dropped() over all tracks.
  int64_t TotalDropped() const;

  /// Merged Chrome trace-event JSON. Call only when producers are done.
  void WriteChromeTrace(std::ostream& os) const;
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  struct Track {
    int device_id;
    std::string name;
    std::unique_ptr<TraceRing> ring;
  };

  int64_t TotalDroppedLocked() const;  // requires mu_

  TraceOptions options_;
  int64_t epoch_ns_;
  mutable std::mutex mu_;
  std::deque<Track> tracks_;
  std::vector<TraceRing*> global_rings_;  // per device, guarded by mu_
  MetricsRegistry metrics_;
  SpanLedger spans_;
};

/// Chrome-trace pid under which span tracks are emitted ("service"
/// process). Large so it never collides with a device id.
inline constexpr int kSpanExportPid = 1000000;

/// Per-warp recording handle. Default-constructed (or constructed with a
/// null session) it is disabled and every Event() is a pointer test. The
/// clock is the warp's own WorkCounter: cumulative work units, monotone
/// for the warp's lifetime.
class WarpTracer {
 public:
  WarpTracer() = default;
  WarpTracer(TraceSession* session, int device_id, std::string name,
             const WorkCounter* clock)
      : clock_(clock),
        ring_(session == nullptr
                  ? nullptr
                  : session->NewTrack(device_id, std::move(name))) {}

  bool enabled() const { return ring_ != nullptr; }

  void Event(TraceEvent type, int64_t arg = 0) {
    if (ring_ != nullptr) {
      ring_->Push(static_cast<int64_t>(clock_->units), type, arg);
    }
  }

 private:
  const WorkCounter* clock_ = nullptr;
  TraceRing* ring_ = nullptr;
};

}  // namespace tdfs::obs

#endif  // TDFS_OBS_TRACE_H_
