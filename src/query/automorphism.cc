#include "query/automorphism.h"

#include <algorithm>
#include <numeric>

namespace tdfs {

std::vector<QueryPermutation> ComputeAutomorphisms(const QueryGraph& query) {
  const int k = query.NumVertices();
  std::vector<int> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<QueryPermutation> result;
  do {
    bool ok = true;
    for (int u = 0; u < k && ok; ++u) {
      if (query.VertexLabel(u) != query.VertexLabel(perm[u])) {
        ok = false;
        break;
      }
      for (int v = u + 1; v < k; ++v) {
        if (query.HasEdge(u, v) != query.HasEdge(perm[u], perm[v])) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      QueryPermutation p{};
      for (int u = 0; u < k; ++u) {
        p[u] = static_cast<int8_t>(perm[u]);
      }
      result.push_back(p);
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return result;
}

std::vector<SymmetryRestriction> ComputeSymmetryRestrictions(
    const QueryGraph& query) {
  const int k = query.NumVertices();
  std::vector<QueryPermutation> group = ComputeAutomorphisms(query);
  std::vector<SymmetryRestriction> restrictions;
  while (group.size() > 1) {
    // Smallest vertex moved by some remaining automorphism.
    int pivot = -1;
    for (int u = 0; u < k && pivot < 0; ++u) {
      for (const auto& p : group) {
        if (p[u] != u) {
          pivot = u;
          break;
        }
      }
    }
    TDFS_CHECK(pivot >= 0);
    // Restrict the pivot to be the minimum of its orbit...
    bool in_orbit[QueryGraph::kMaxQueryVertices] = {};
    for (const auto& p : group) {
      in_orbit[p[pivot]] = true;
    }
    for (int w = 0; w < k; ++w) {
      if (w != pivot && in_orbit[w]) {
        restrictions.push_back(SymmetryRestriction{pivot, w});
      }
    }
    // ...then recurse on the stabilizer of the pivot.
    std::vector<QueryPermutation> stabilizer;
    for (const auto& p : group) {
      if (p[pivot] == pivot) {
        stabilizer.push_back(p);
      }
    }
    group = std::move(stabilizer);
  }
  return restrictions;
}

size_t AutomorphismCount(const QueryGraph& query) {
  return ComputeAutomorphisms(query).size();
}

}  // namespace tdfs
