// Automorphism groups and symmetry-breaking restrictions.
//
// A symmetric query graph matches each data subgraph |Aut(G_Q)| times. The
// paper (following GraphPi/GraphZero, and using BLISS on the GPU side)
// breaks this symmetry with id(u) < id(w) restrictions between query
// vertices. This module computes the exact automorphism group by exhaustive
// permutation search (query graphs are tiny) and derives restrictions via a
// stabilizer chain: each equivalence class of matches has exactly one
// representative satisfying all restrictions.

#ifndef TDFS_QUERY_AUTOMORPHISM_H_
#define TDFS_QUERY_AUTOMORPHISM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "query/query_graph.h"

namespace tdfs {

/// A permutation of query vertices, perm[u] = image of u.
using QueryPermutation = std::array<int8_t, QueryGraph::kMaxQueryVertices>;

/// All label- and adjacency-preserving permutations of the query graph.
/// Always contains at least the identity.
std::vector<QueryPermutation> ComputeAutomorphisms(const QueryGraph& query);

/// An ordering restriction between two query vertices:
/// id(match of `smaller`) < id(match of `larger`).
struct SymmetryRestriction {
  int smaller;
  int larger;

  bool operator==(const SymmetryRestriction&) const = default;
};

/// Derives a sound and complete set of restrictions from the automorphism
/// group: among the |Aut| automorphic images of any match, exactly one
/// satisfies every restriction (proof: stabilizer-chain argument; see
/// tests/query/automorphism_test.cc property checks).
std::vector<SymmetryRestriction> ComputeSymmetryRestrictions(
    const QueryGraph& query);

/// Convenience: |Aut(query)|.
size_t AutomorphismCount(const QueryGraph& query);

}  // namespace tdfs

#endif  // TDFS_QUERY_AUTOMORPHISM_H_
