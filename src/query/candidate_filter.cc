#include "query/candidate_filter.h"

#include <cassert>
#include <cstring>

#include "util/logging.h"

namespace tdfs {
namespace {

/// Bounded refinement: real workloads converge in 2-3 rounds; capping keeps
/// the build linear-ish instead of worst-case O(rounds * m * k^2).
constexpr int kMaxRefineRounds = 3;

class BitMatrix {
 public:
  BitMatrix(int rows, int64_t cols)
      : words_per_row_((static_cast<size_t>(cols) + 63) / 64),
        bits_(static_cast<size_t>(rows) * words_per_row_, 0) {}

  void Set(int row, int64_t col) {
    bits_[Row(row) + (col >> 6)] |= uint64_t{1} << (col & 63);
  }
  void Clear(int row, int64_t col) {
    bits_[Row(row) + (col >> 6)] &= ~(uint64_t{1} << (col & 63));
  }
  bool Test(int row, int64_t col) const {
    return (bits_[Row(row) + (col >> 6)] >> (col & 63)) & 1u;
  }

  size_t words_per_row() const { return words_per_row_; }
  const std::vector<uint64_t>& bits() const { return bits_; }

 private:
  size_t Row(int row) const {
    return static_cast<size_t>(row) * words_per_row_;
  }

  size_t words_per_row_;
  std::vector<uint64_t> bits_;
};

}  // namespace

int64_t FilteredGraph::MemoryBytes() const {
  int64_t bytes = 0;
  bytes += static_cast<int64_t>(graph_.NumVertices() + 1) * sizeof(int64_t);
  // targets + edge_sources, each one entry per directed edge.
  bytes += graph_.NumDirectedEdges() * 2 * static_cast<int64_t>(sizeof(VertexId));
  if (graph_.IsLabeled()) {
    bytes += graph_.NumVertices() * static_cast<int64_t>(sizeof(Label));
  }
  bytes += static_cast<int64_t>(to_original_.size()) * sizeof(VertexId);
  bytes += static_cast<int64_t>(to_filtered_.size()) * sizeof(VertexId);
  for (const auto& c : candidates_) {
    bytes += static_cast<int64_t>(c.size()) * sizeof(VertexId);
  }
  bytes += static_cast<int64_t>(bits_.size()) * sizeof(uint64_t);
  return bytes;
}

FilteredGraph BuildFilteredGraph(const Graph& graph, const QueryGraph& query,
                                 PrefilterKind kind) {
  assert(kind != PrefilterKind::kOff);
  const int64_t n = graph.NumVertices();
  const int k = query.NumVertices();

  FilteredGraph out;
  out.kind_ = kind;
  out.num_query_vertices_ = k;
  out.stats_.original_vertices = n;
  out.stats_.original_edges = graph.NumEdges();

  // --- 1. LDF seeding over original ids ------------------------------------
  BitMatrix cand(k, n);
  std::vector<int64_t> sizes(k, 0);
  for (int u = 0; u < k; ++u) {
    const Label want = query.VertexLabel(u);
    const int64_t min_deg = query.Degree(u);
    for (VertexId v = 0; v < n; ++v) {
      if (want != kNoLabel && graph.VertexLabel(v) != want) {
        continue;
      }
      if (graph.Degree(v) < min_deg) {
        continue;
      }
      cand.Set(u, v);
      ++sizes[u];
    }
    out.stats_.seeded_candidates += sizes[u];
  }

  // --- 2. Neighborhood-safety refinement (graph simulation) ----------------
  if (kind == PrefilterKind::kNeighborhood) {
    for (int round = 0; round < kMaxRefineRounds; ++round) {
      bool changed = false;
      for (int u = 0; u < k; ++u) {
        const uint32_t nbr_mask = query.NeighborMask(u);
        if (nbr_mask == 0) {
          continue;
        }
        for (VertexId v = 0; v < n; ++v) {
          if (!cand.Test(u, v)) {
            continue;
          }
          bool keep = true;
          for (int uprime = 0; uprime < k && keep; ++uprime) {
            if (!((nbr_mask >> uprime) & 1u)) {
              continue;
            }
            bool witness = false;
            for (const VertexId w : graph.Neighbors(v)) {
              if (cand.Test(uprime, w)) {
                witness = true;
                break;
              }
            }
            keep = witness;
          }
          if (!keep) {
            cand.Clear(u, v);
            --sizes[u];
            changed = true;
          }
        }
      }
      out.stats_.refine_rounds = round + 1;
      if (!changed) {
        break;
      }
    }
  }
  for (int u = 0; u < k; ++u) {
    out.stats_.refined_candidates += sizes[u];
  }

  // --- 3. Kept vertices = union of candidate sets; monotone remap ----------
  // Monotonicity (original id order == filtered id order) keeps the plan's
  // id(u) < id(w) symmetry restrictions valid on the filtered graph.
  out.to_filtered_.assign(static_cast<size_t>(n), VertexId{-1});
  std::vector<uint16_t> masks(static_cast<size_t>(n), 0);
  for (VertexId v = 0; v < n; ++v) {
    uint16_t mask = 0;
    for (int u = 0; u < k; ++u) {
      if (cand.Test(u, v)) {
        mask |= static_cast<uint16_t>(1u << u);
      }
    }
    masks[v] = mask;
    if (mask != 0) {
      out.to_filtered_[v] = static_cast<VertexId>(out.to_original_.size());
      out.to_original_.push_back(v);
    }
  }
  const int64_t kept = static_cast<int64_t>(out.to_original_.size());
  out.stats_.kept_vertices = kept;

  // --- 4. Candidate-induced edge set ---------------------------------------
  // Keep {v, w} iff some query edge {u, u'} has v ∈ C(u), w ∈ C(u') in
  // either orientation — exactly the edges an embedding can still use.
  GraphBuilder builder(kept);
  for (VertexId v = 0; v < n; ++v) {
    const uint16_t mask_v = masks[v];
    if (mask_v == 0) {
      continue;
    }
    for (const VertexId w : graph.Neighbors(v)) {
      if (w <= v || masks[w] == 0) {
        continue;
      }
      bool carries = false;
      uint32_t rest = mask_v;
      while (rest != 0 && !carries) {
        const int u = __builtin_ctz(rest);
        rest &= rest - 1;
        carries = (query.NeighborMask(u) & masks[w]) != 0;
      }
      if (carries) {
        builder.AddEdge(out.to_filtered_[v], out.to_filtered_[w]);
      }
    }
  }
  if (graph.IsLabeled()) {
    for (int64_t i = 0; i < kept; ++i) {
      builder.SetLabel(static_cast<VertexId>(i),
                       graph.VertexLabel(out.to_original_[i]));
    }
  }
  out.graph_ = builder.Build();
  out.stats_.kept_edges = out.graph_.NumEdges();

  // --- 5. Candidate lists + membership bitsets in filtered ids -------------
  out.candidates_.resize(static_cast<size_t>(k));
  out.candidate_counts_.assign(static_cast<size_t>(k), 0);
  out.words_per_vertex_ = (static_cast<size_t>(kept) + 63) / 64;
  out.bits_.assign(static_cast<size_t>(k) * out.words_per_vertex_, 0);
  for (int u = 0; u < k; ++u) {
    auto& list = out.candidates_[u];
    list.reserve(static_cast<size_t>(sizes[u]));
    for (int64_t i = 0; i < kept; ++i) {
      if (masks[out.to_original_[i]] & (1u << u)) {
        list.push_back(static_cast<VertexId>(i));  // ascending: remap is
                                                   // monotone, so sorted.
        out.bits_[static_cast<size_t>(u) * out.words_per_vertex_ + (i >> 6)] |=
            uint64_t{1} << (i & 63);
      }
    }
    out.candidate_counts_[u] = static_cast<int64_t>(list.size());
  }

  TDFS_LOG(Debug) << "prefilter(" << PrefilterKindName(kind) << "): kept "
                  << kept << "/" << n << " vertices, "
                  << out.stats_.kept_edges << "/" << out.stats_.original_edges
                  << " edges after " << out.stats_.refine_rounds << " rounds";
  return out;
}

}  // namespace tdfs
