// Candidate-induced prefiltering (EGSM-style candidate index, see PAPERS.md).
//
// Before matching, a per-query-vertex candidate set C(u) is computed from
// the data graph:
//
//   1. LDF seeding: v ∈ C(u) iff label(v) matches label(u) (always true for
//      unlabeled queries) and Degree(v) >= deg_Q(u).
//   2. (kNeighborhood only) iterated neighborhood-safety refinement, the
//      graph-simulation pruneNode idiom: drop v from C(u) when some query
//      neighbor u' of u has no candidate in C(u') adjacent to v. Repeats to
//      a fixpoint (bounded rounds).
//
// The kept vertices (∪_u C(u)) and the edges that can still carry some
// query edge are then materialized as a *candidate-induced CSR* with
// monotonically remapped vertex ids, so every engine intersection runs over
// pre-filtered spans and id-order symmetry restrictions stay valid. An edge
// {v, w} survives iff some query edge {u, u'} has v ∈ C(u) and w ∈ C(u')
// (in either orientation); every embedding edge satisfies this, so
// embeddings are preserved bidirectionally and match counts are
// bit-identical to the unfiltered run.
//
// Soundness boundary: the induced CSR only *removes* vertices and edges
// that provably carry no embedding, so positive checks (adjacency
// intersection, degree >= deg_Q) stay sound. Vertex-induced matching
// (PlanOptions::induced) additionally needs *negative* adjacency checks
// (non-neighbors must stay non-adjacent), which dropped edges would
// falsify — callers must not combine prefiltering with induced mode
// (core/matcher.cc gates this).

#ifndef TDFS_QUERY_CANDIDATE_FILTER_H_
#define TDFS_QUERY_CANDIDATE_FILTER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "query/prefilter_kind.h"
#include "query/query_graph.h"

namespace tdfs {

class QueryGraph;

/// A candidate-induced view of a data graph for one query. Move-only (owns
/// a CSR rebuild). All VertexIds exposed by graph(), Candidates() and
/// IsCandidate() live in the *filtered* (remapped) id space unless the name
/// says otherwise.
class FilteredGraph {
 public:
  struct BuildStats {
    int64_t original_vertices = 0;
    int64_t original_edges = 0;  // undirected
    int64_t kept_vertices = 0;
    int64_t kept_edges = 0;  // undirected
    /// Sum over u of |C(u)| after LDF seeding / after refinement.
    int64_t seeded_candidates = 0;
    int64_t refined_candidates = 0;
    /// Refinement rounds actually run (0 for kLDF).
    int refine_rounds = 0;

    /// Fraction of original vertices pruned, in [0, 1].
    double VertexPruneRatio() const {
      return original_vertices == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(kept_vertices) / original_vertices;
    }
    /// Fraction of original undirected edges pruned, in [0, 1].
    double EdgePruneRatio() const {
      return original_edges == 0
             ? 0.0
             : 1.0 - static_cast<double>(kept_edges) / original_edges;
    }
  };

  FilteredGraph() = default;
  FilteredGraph(const FilteredGraph&) = delete;
  FilteredGraph& operator=(const FilteredGraph&) = delete;
  FilteredGraph(FilteredGraph&&) = default;
  FilteredGraph& operator=(FilteredGraph&&) = default;

  /// The candidate-induced CSR (filtered id space).
  const Graph& graph() const { return graph_; }

  PrefilterKind kind() const { return kind_; }
  int num_query_vertices() const { return num_query_vertices_; }

  /// Original id of filtered vertex v.
  VertexId ToOriginal(VertexId v) const { return to_original_[v]; }

  /// Filtered id of original vertex v, or -1 if v was pruned.
  VertexId ToFiltered(VertexId v) const { return to_filtered_[v]; }

  /// Sorted candidate list of query vertex u, in filtered ids.
  VertexSpan Candidates(int u) const {
    return VertexSpan(candidates_[u].data(), candidates_[u].size());
  }

  /// |C(u)| per query vertex — exact cardinalities for the cost planner
  /// (PlanOptions::candidate_counts).
  const std::vector<int64_t>& candidate_counts() const {
    return candidate_counts_;
  }

  /// O(1): is filtered vertex v a candidate for query vertex u?
  bool IsCandidate(int u, VertexId v) const {
    const uint64_t word =
        bits_[static_cast<size_t>(u) * words_per_vertex_ + (v >> 6)];
    return (word >> (v & 63)) & 1u;
  }

  /// True when some candidate set is empty — the match count is zero and
  /// engines need not run at all.
  bool AnyCandidateSetEmpty() const {
    for (const int64_t c : candidate_counts_) {
      if (c == 0) {
        return true;
      }
    }
    return false;
  }

  /// Bytes retained by this object (for MemoryGovernor accounting).
  int64_t MemoryBytes() const;

  const BuildStats& stats() const { return stats_; }

 private:
  friend FilteredGraph BuildFilteredGraph(const Graph& graph,
                                          const QueryGraph& query,
                                          PrefilterKind kind);

  Graph graph_;
  PrefilterKind kind_ = PrefilterKind::kOff;
  int num_query_vertices_ = 0;
  std::vector<VertexId> to_original_;
  std::vector<VertexId> to_filtered_;
  std::vector<std::vector<VertexId>> candidates_;
  std::vector<int64_t> candidate_counts_;
  /// k consecutive bitsets over filtered ids, words_per_vertex_ words each.
  std::vector<uint64_t> bits_;
  size_t words_per_vertex_ = 0;
  BuildStats stats_;
};

/// Runs the prefiltering pipeline. `kind` must not be kOff.
FilteredGraph BuildFilteredGraph(const Graph& graph, const QueryGraph& query,
                                 PrefilterKind kind);

/// Membership checks engines layer on top of their plan checks. A null
/// FilteredGraph admits everything, so call sites need no branching on
/// whether prefiltering is active. `query_vertex` is plan.order[pos].
inline bool PrefilterAdmits(const FilteredGraph* fg, int query_vertex,
                            VertexId v) {
  return fg == nullptr || fg->IsCandidate(query_vertex, v);
}

/// Edge-task variant: both endpoints must be candidates for the first two
/// order positions (u0 = plan.order[0], u1 = plan.order[1]).
inline bool PrefilterAdmitsEdge(const FilteredGraph* fg, int u0, int u1,
                                VertexId v0, VertexId v1) {
  return fg == nullptr ||
         (fg->IsCandidate(u0, v0) && fg->IsCandidate(u1, v1));
}

}  // namespace tdfs

#endif  // TDFS_QUERY_CANDIDATE_FILTER_H_
