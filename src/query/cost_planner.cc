#include "query/cost_planner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/intersect.h"
#include "util/logging.h"

namespace tdfs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::atomic<int64_t> g_calibration_clamped{0};

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kPrime;
  }
  return hash;
}

// The cost model, specialized to one (query, stats, params) triple.
//
// Cardinality model (independence + Chung–Lu edges):
//  * EffectiveDegree(u): expected data-vertex degree at position u —
//    at least deg_q(u) (the engines' degree filter guarantees it), at
//    least the label-class average (what a surviving vertex looks like).
//  * VertexCount(u): expected candidates passing the unary filters —
//    label-class size times the Markov survival bound
//    P(deg >= d) <= avg_deg / d.
//  * EdgeProb(u, w): probability a query edge lands on a data edge given
//    both endpoints pass their unary filters — Chung–Lu
//    d_u * d_w / (2m), scaled by the calibration term distributed across
//    the query's edges (so replans with observed/estimated work fold in
//    multiplicatively), clamped to 1.
//  * ListSize(w, u): expected backward-neighbor list size when extending
//    to u through matched w — w's effective degree, cut by u's label
//    fraction when a label index would pre-filter the span.
//
// Step cost mirrors ComputeCandidates: lists sorted ascending, the running
// result intersected against each in turn, each pair charged the gallop
// cost small * (log2(large) + 2) when the kGallopSizeRatio rule picks
// galloping and the merge cost a + b otherwise — the same closed forms as
// GallopProbeWork / MergeStepsWork.
class CostModel {
 public:
  CostModel(const QueryGraph& query, const GraphStats& stats,
            const CostModelParams& params)
      : query_(query), stats_(stats) {
    const int k = query.NumVertices();
    // CompileCostPlan clamps (and reports) before building any model;
    // this re-clamp only defends direct callers with raw params.
    const double calibration =
        std::clamp(params.calibration, 1e-6, 1e12);
    edge_scale_ =
        std::pow(calibration, 1.0 / std::max(1, query.NumEdges()));
    const bool exact_counts =
        params.candidate_counts != nullptr &&
        static_cast<int>(params.candidate_counts->size()) == k;
    for (int u = 0; u < k; ++u) {
      const Label label = query.VertexLabel(u);
      const double label_avg = stats.LabelAvgDegree(label);
      eff_degree_[u] =
          std::max(static_cast<double>(query.Degree(u)), label_avg);
      if (exact_counts) {
        // Exact candidate-set cardinality from the prefilter: already
        // post-unary-filter, so it replaces class_size * survival wholesale.
        vertex_count_[u] = std::max(
            1.0, static_cast<double>((*params.candidate_counts)[u]));
        continue;
      }
      const double class_size =
          static_cast<double>(stats.num_vertices) * stats.LabelFraction(label);
      const double survival =
          std::min(1.0, label_avg / std::max(1, query.Degree(u)));
      vertex_count_[u] = std::max(1.0, class_size * survival);
    }
  }

  double VertexCount(int u) const { return vertex_count_[u]; }

  double EdgeProb(int u, int w) const {
    const double m2 =
        std::max(1.0, 2.0 * static_cast<double>(stats_.num_edges));
    return std::min(1.0, eff_degree_[u] * eff_degree_[w] / m2 * edge_scale_);
  }

  // Expected size of matched-w's neighbor list when extending to u.
  double ListSize(int w, int u) const {
    return std::max(1.0,
                    eff_degree_[w] * stats_.LabelFraction(query_.VertexLabel(u)));
  }

  // Expected sorted backward-list sizes for extending the matched set
  // `mask` to u (w ranges over mask ∩ N(u)).
  std::vector<double> SortedListSizes(uint32_t mask, int u) const {
    std::vector<double> sizes;
    uint32_t back = mask & query_.NeighborMask(u);
    while (back != 0) {
      const int w = __builtin_ctz(back);
      back &= back - 1;
      sizes.push_back(ListSize(w, u));
    }
    std::sort(sizes.begin(), sizes.end());
    return sizes;
  }

  // Charged cost of intersecting expected-size lists a and b, per the
  // engines' gallop-vs-merge rule.
  static double PairCost(double a, double b) {
    const double small = std::max(1.0, std::min(a, b));
    const double large = std::max(a, b);
    if (large >= small * kGallopSizeRatio) {
      return small * (std::log2(std::max(2.0, large)) + 2.0);
    }
    return a + b;
  }

  // Expected ComputeCandidates work for one extension of one partial
  // match: chain the sorted lists, shrinking the running result by the
  // probability a vertex of list j also lies in the running set.
  double ChainCost(uint32_t mask, int u) const {
    const std::vector<double> sizes = SortedListSizes(mask, u);
    if (sizes.empty()) {
      return 0.0;  // unreachable for connected prefixes
    }
    if (sizes.size() == 1) {
      return sizes[0];  // single list: scan + unary filters
    }
    const double n = std::max(1.0, static_cast<double>(stats_.num_vertices));
    double running = sizes[0];
    double work = 0.0;
    for (size_t j = 1; j < sizes.size(); ++j) {
      work += PairCost(running, sizes[j]);
      running = std::max(1.0, running * (sizes[j] / n));
    }
    return work;
  }

 private:
  const QueryGraph& query_;
  const GraphStats& stats_;
  double edge_scale_ = 1.0;
  double eff_degree_[QueryGraph::kMaxQueryVertices] = {};
  double vertex_count_[QueryGraph::kMaxQueryVertices] = {};
};

// f(S ∪ {u}) from f(S): one vertex factor plus one edge factor per
// backward neighbor. Order-independent, so subset-DP states agree on it
// regardless of which path reached them.
double ExtendPrefixCard(const CostModel& model, const QueryGraph& query,
                        double f, uint32_t mask, int u) {
  double extended = f * model.VertexCount(u);
  uint32_t back = mask & query.NeighborMask(u);
  while (back != 0) {
    const int w = __builtin_ctz(back);
    back &= back - 1;
    extended *= model.EdgeProb(u, w);
  }
  return extended;
}

}  // namespace

int64_t PlannerCalibrationClampCount() {
  return g_calibration_clamped.load(std::memory_order_relaxed);
}

GraphStats GraphStats::Compute(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.max_degree = graph.MaxDegree();
  stats.avg_degree = graph.AvgDegree();

  std::vector<int64_t> degree_sums;
  if (graph.IsLabeled() && graph.NumLabels() > 0) {
    stats.label_counts.assign(graph.NumLabels(), 0);
    degree_sums.assign(graph.NumLabels(), 0);
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      const Label label = graph.VertexLabel(v);
      if (label >= 0 && label < graph.NumLabels()) {
        ++stats.label_counts[label];
        degree_sums[label] += graph.Degree(v);
      }
    }
    stats.label_avg_degree.resize(graph.NumLabels());
    for (int32_t l = 0; l < graph.NumLabels(); ++l) {
      stats.label_avg_degree[l] =
          stats.label_counts[l] > 0
              ? static_cast<double>(degree_sums[l]) /
                    static_cast<double>(stats.label_counts[l])
              : 0.0;
    }
  }

  uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  hash = FnvMix(hash, static_cast<uint64_t>(stats.num_vertices));
  hash = FnvMix(hash, static_cast<uint64_t>(stats.num_edges));
  hash = FnvMix(hash, static_cast<uint64_t>(stats.max_degree));
  hash = FnvMix(hash, static_cast<uint64_t>(stats.label_counts.size()));
  for (size_t l = 0; l < stats.label_counts.size(); ++l) {
    hash = FnvMix(hash, static_cast<uint64_t>(stats.label_counts[l]));
    hash = FnvMix(hash, static_cast<uint64_t>(degree_sums[l]));
  }
  stats.fingerprint = hash;
  return stats;
}

double GraphStats::LabelFraction(Label label) const {
  if (label == kNoLabel || label < 0 ||
      label >= static_cast<Label>(label_counts.size()) || num_vertices <= 0) {
    return 1.0;
  }
  return static_cast<double>(label_counts[label]) /
         static_cast<double>(num_vertices);
}

double GraphStats::LabelAvgDegree(Label label) const {
  if (label == kNoLabel || label < 0 ||
      label >= static_cast<Label>(label_avg_degree.size())) {
    return avg_degree;
  }
  return label_avg_degree[label];
}

double EstimateOrderWork(const QueryGraph& query, const std::vector<int>& order,
                         const GraphStats& stats,
                         const CostModelParams& params) {
  TDFS_CHECK(static_cast<int>(order.size()) == query.NumVertices());
  const CostModel model(query, stats, params);
  double f = ExtendPrefixCard(model, query, model.VertexCount(order[0]),
                              1u << order[0], order[1]);
  uint32_t mask = (1u << order[0]) | (1u << order[1]);
  double work = 0.0;
  for (size_t pos = 2; pos < order.size(); ++pos) {
    const int u = order[pos];
    work += f * model.ChainCost(mask, u);
    f = ExtendPrefixCard(model, query, f, mask, u);
    mask |= 1u << u;
  }
  return work;
}

std::vector<int> CostOrder(const QueryGraph& query, const GraphStats& stats,
                           const CostModelParams& params) {
  const int k = query.NumVertices();
  TDFS_CHECK(k >= 2 && k <= QueryGraph::kMaxQueryVertices);
  const CostModel model(query, stats, params);

  // Exact DP over connected vertex subsets. States are bitmasks; size-2
  // bases are the query's edges. `last[S]` records the vertex whose
  // addition achieved cost[S], for order reconstruction.
  const uint32_t full = (1u << k) - 1;
  std::vector<double> cost(full + 1, kInf);
  std::vector<double> card(full + 1, 0.0);
  std::vector<int8_t> last(full + 1, -1);

  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      if (!query.HasEdge(a, b)) {
        continue;
      }
      const uint32_t mask = (1u << a) | (1u << b);
      // Every edge start scans the same data-edge list, so base cost is a
      // shared constant — drop it; only downstream work differentiates.
      cost[mask] = 0.0;
      card[mask] = model.VertexCount(a) *
                   ExtendPrefixCard(model, query, 1.0, 1u << a, b);
      last[mask] = static_cast<int8_t>(b);
    }
  }

  // Sweep masks in increasing numeric order: S | bit(u) > S always, so
  // every state is finalized before it is extended.
  for (uint32_t mask = 0; mask <= full; ++mask) {
    if (cost[mask] == kInf || mask == full) {
      continue;
    }
    for (int u = 0; u < k; ++u) {
      const uint32_t bit = 1u << u;
      if ((mask & bit) != 0 || (mask & query.NeighborMask(u)) == 0) {
        continue;  // placed, or would disconnect the prefix
      }
      const double step = cost[mask] + card[mask] * model.ChainCost(mask, u);
      const uint32_t next = mask | bit;
      if (step < cost[next]) {
        cost[next] = step;
        card[next] = ExtendPrefixCard(model, query, card[mask], mask, u);
        last[next] = static_cast<int8_t>(u);
      }
    }
  }
  TDFS_CHECK_MSG(cost[full] != kInf, "no connected order found");

  // Reconstruct back to the size-2 base, then order the base edge by
  // degree (descending, then id) to match the greedy tie-break.
  std::vector<int> order(k);
  uint32_t mask = full;
  for (int pos = k - 1; pos >= 2; --pos) {
    const int u = last[mask];
    TDFS_CHECK(u >= 0);
    order[pos] = u;
    mask &= ~(1u << u);
  }
  const int a = __builtin_ctz(mask);
  const int b = __builtin_ctz(mask & (mask - 1));
  const bool a_first = query.Degree(a) > query.Degree(b) ||
                       (query.Degree(a) == query.Degree(b) && a < b);
  order[0] = a_first ? a : b;
  order[1] = a_first ? b : a;
  return order;
}

std::vector<StepBackend> ChooseStepBackends(const QueryGraph& query,
                                            const std::vector<int>& order,
                                            const GraphStats& stats,
                                            const CostModelParams& params) {
  TDFS_CHECK(static_cast<int>(order.size()) == query.NumVertices());
  const CostModel model(query, stats, params);
  // Expected lists small enough that SIMD setup overhead dominates the
  // vectorized win stay on the scalar kernels.
  constexpr double kSimdMinList = 16.0;

  std::vector<StepBackend> backends(order.size(), StepBackend::kInherit);
  uint32_t mask = (1u << order[0]) | (1u << order[1]);
  for (size_t pos = 2; pos < order.size(); ++pos) {
    const int u = order[pos];
    const std::vector<double> sizes = model.SortedListSizes(mask, u);
    mask |= 1u << u;
    if (sizes.empty()) {
      continue;
    }
    if (sizes.back() >= static_cast<double>(params.bitmap_min_degree)) {
      // A hub-sized list: bitmap Rank probing beats galloping through it.
      backends[pos] = StepBackend::kBitmap;
    } else if (sizes.back() < kSimdMinList) {
      backends[pos] = StepBackend::kScalar;
    } else {
      backends[pos] = StepBackend::kSimd;
    }
  }
  return backends;
}

Result<MatchPlan> CompileCostPlan(const QueryGraph& query,
                                  const PlanOptions& options) {
  TDFS_CHECK(options.stats != nullptr);
  TDFS_CHECK(options.forced_order.empty());
  TDFS_CHECK(options.delta_edge_rank < 0);

  CostModelParams params;
  params.calibration = std::clamp(options.cost_calibration, 1e-6, 1e12);
  if (params.calibration != options.cost_calibration) {
    // Saturated drift feedback must be observable, not silent: a runaway
    // observed/estimated ratio stops steering the model here, and the
    // warning + counter are how an operator learns the feedback loop hit
    // the rail. Fires once per compile, however many models it builds.
    g_calibration_clamped.fetch_add(1, std::memory_order_relaxed);
    obs::Add(options.clamp_counter);
    TDFS_LOG(Warning) << "planner.calibration_clamped: calibration "
                      << options.cost_calibration << " saturated to "
                      << params.calibration;
  }
  params.bitmap_min_degree = options.planner_bitmap_min_degree;
  params.candidate_counts = options.candidate_counts;
  params.clamp_counter = options.clamp_counter;

  const std::vector<int> order = CostOrder(query, *options.stats, params);

  // Compile through the ordinary path with the chosen order forced; the
  // DP keeps prefixes connected, so this cannot fail validation.
  PlanOptions greedy = options;
  greedy.planner = PlannerKind::kGreedy;
  greedy.stats = nullptr;
  greedy.forced_order = order;
  Result<MatchPlan> compiled = CompilePlan(query, greedy);
  if (!compiled.ok()) {
    return compiled;
  }
  MatchPlan plan = std::move(compiled).value();
  plan.planned_by = PlannerKind::kCost;
  plan.estimated_work =
      std::max(1.0, EstimateOrderWork(query, order, *options.stats, params));
  plan.step_backend = ChooseStepBackends(query, order, *options.stats, params);
  return plan;
}

}  // namespace tdfs
