// Cost-based matching-order planner.
//
// The greedy heuristic (plan.cc) orders query vertices by degree alone and
// ignores the data graph entirely. This planner estimates per-position
// candidate cardinalities from cheap data-graph statistics (GraphStats —
// label histogram + degree moments, sampled once per graph and cached by
// callers) and searches matching orders by expected intersection work,
// using the same closed-form step costs the engines charge
// (MergeStepsWork / GallopProbeWork, util/intersect.h), so "cheapest
// estimated order" and "fewest charged work_units" speak the same unit.
//
// Queries are capped at kMaxQueryVertices = 16, so the order search is an
// exact dynamic program over vertex subsets (2^k states, k transitions
// each): cost(S ∪ {u}) = cost(S) + f(S) · chain(S, u), where f(S) is the
// expected number of partial matches of the prefix set S (independence /
// Chung–Lu edge model) and chain(S, u) simulates the engine's
// ComputeCandidates chain — sorted expected list sizes, gallop vs merge by
// the kGallopSizeRatio rule. Prefixes are kept connected, so every emitted
// order compiles (backward sets never empty).
//
// The planner also emits per-position intersect-backend choices
// (MatchPlan::step_backend): bitmap Rank probing where a backward list is
// expected hub-sized, scalar where every list is tiny (SIMD setup would
// dominate), SIMD otherwise. Backend choice is a wall-clock knob only —
// counts and work_units are backend-invariant by construction (PR 5).
//
// Exactness contract: the cost planner changes only the ORDER and the
// backend routing, never the plan semantics; match counts are bit-identical
// to greedy plans (differential-tested in tests/cost_planner_test.cc).

#ifndef TDFS_QUERY_COST_PLANNER_H_
#define TDFS_QUERY_COST_PLANNER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "query/plan.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace tdfs {

/// Small data-graph summary for the cost model. Computed in one pass over
/// the CSR (O(n)) and meant to be cached alongside the graph — the service
/// layer keeps one per snapshot version, the CLI computes it per run.
struct GraphStats {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;  // undirected
  int64_t max_degree = 0;
  double avg_degree = 0.0;

  /// Per-label vertex counts and average degrees; empty for unlabeled
  /// graphs.
  std::vector<int64_t> label_counts;
  std::vector<double> label_avg_degree;

  /// FNV-1a over every field above. Joins the PlanCache key for cost plans
  /// so a changed data graph invalidates cached orders.
  uint64_t fingerprint = 0;

  static GraphStats Compute(const Graph& graph);

  /// Fraction of vertices carrying `label` (1.0 for kNoLabel or unlabeled
  /// graphs — no selectivity information).
  double LabelFraction(Label label) const;

  /// Average degree of vertices carrying `label` (global average when no
  /// per-label information applies).
  double LabelAvgDegree(Label label) const;
};

/// Cost-model tuning; defaults mirror the engine defaults.
struct CostModelParams {
  /// Multiplier on estimated edge density (PlanOptions::cost_calibration):
  /// the service layer replans drifting plans with observed/estimated work
  /// folded in here, distributed across the query's edges.
  double calibration = 1.0;

  /// Expected-list size at which a step prefers the bitmap backend
  /// (mirrors EngineConfig::bitmap_min_degree — bitmaps only exist for
  /// hubs of at least this degree).
  int64_t bitmap_min_degree = 256;

  /// Borrowed exact |C(u)| per query vertex from a FilteredGraph; when
  /// non-null (and sized to the query), VertexCount(u) uses these instead
  /// of the Chung–Lu label/degree estimate. The candidate sets already
  /// encode the unary filters, so no survival discount is applied.
  const std::vector<int64_t>* candidate_counts = nullptr;

  /// Borrowed counter bumped when the calibration clamp fires; may be null
  /// (the process-wide PlannerCalibrationClampCount() is always bumped).
  obs::Counter* clamp_counter = nullptr;
};

/// Process-wide count of calibration-clamp saturations (see
/// CostModelParams::calibration): drift feedback pushed outside
/// [1e-6, 1e12] is truncated, and silently truncating runaway drift makes
/// planner misbehavior invisible — so every saturation is counted and
/// logged at Warning.
int64_t PlannerCalibrationClampCount();

/// Expected total intersection work (scalar merge steps) of enumerating
/// `order`, per the planner's model. Exposed for the order-quality tests
/// and diagnostics; CompileCostPlan stores the chosen order's estimate in
/// MatchPlan::estimated_work.
double EstimateOrderWork(const QueryGraph& query, const std::vector<int>& order,
                         const GraphStats& stats,
                         const CostModelParams& params = CostModelParams{});

/// The minimum-estimated-work matching order (exact subset DP). The
/// returned order always keeps prefixes connected and starts with a query
/// edge, so CompilePlan accepts it as a forced order.
std::vector<int> CostOrder(const QueryGraph& query, const GraphStats& stats,
                           const CostModelParams& params = CostModelParams{});

/// Per-position backend choices for `order` (positions 0/1 = kInherit).
std::vector<StepBackend> ChooseStepBackends(
    const QueryGraph& query, const std::vector<int>& order,
    const GraphStats& stats, const CostModelParams& params = CostModelParams{});

/// Compiles a cost-planned MatchPlan. Called by CompilePlan when
/// PlanOptions::planner == kCost and stats are supplied; requires
/// options.stats != nullptr, an empty forced_order, and no delta rank
/// (CompilePlan guarantees all three).
Result<MatchPlan> CompileCostPlan(const QueryGraph& query,
                                  const PlanOptions& options);

}  // namespace tdfs

#endif  // TDFS_QUERY_COST_PLANNER_H_
