#include "query/patterns.h"

#include <cctype>

namespace tdfs {

namespace {

// Structure of P((index - 1) % 11 + 1). Vertex counts and edge lists are
// fixed; labels are layered on for P12-P22.
QueryGraph BaseStructure(int base) {
  switch (base) {
    case 1:
      // Diamond: K4 minus one edge (4 vertices, 5 edges; |Aut| = 4).
      return QueryGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
    case 2:
      // 4-clique (4 vertices, 6 edges; |Aut| = 24).
      return QueryGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
    case 3:
      // House: square 0-1-2-3 with roof vertex 4 on edge {0,1}
      // (5 vertices, 6 edges; |Aut| = 2).
      return QueryGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}});
    case 4:
      // Pentagon: 5-cycle (5 vertices, 5 edges; |Aut| = 10).
      return QueryGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
    case 5:
      // Chordal house: house plus the square diagonal {0,2}
      // (5 vertices, 7 edges).
      return QueryGraph(
          5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}, {0, 2}});
    case 6:
      // Near-5-clique: K5 minus edge {3,4} (5 vertices, 9 edges;
      // |Aut| = 12).
      return QueryGraph(5, {{0, 1},
                            {0, 2},
                            {0, 3},
                            {0, 4},
                            {1, 2},
                            {1, 3},
                            {1, 4},
                            {2, 3},
                            {2, 4}});
    case 7:
      // 5-clique (5 vertices, 10 edges; |Aut| = 120).
      return QueryGraph(5, {{0, 1},
                            {0, 2},
                            {0, 3},
                            {0, 4},
                            {1, 2},
                            {1, 3},
                            {1, 4},
                            {2, 3},
                            {2, 4},
                            {3, 4}});
    case 8:
      // Hexagon: 6-cycle (6 vertices, 6 edges; |Aut| = 12). The sparsest
      // 6-vertex pattern => the largest result set and the paper's
      // straggler stress test.
      return QueryGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
    case 9:
      // Hexagon plus the long chord {0,3} (6 vertices, 7 edges; |Aut| = 4).
      return QueryGraph(
          6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}});
    case 10:
      // Triangular prism: triangles 0-1-2 and 3-4-5 joined by a matching
      // (6 vertices, 9 edges; |Aut| = 12).
      return QueryGraph(6, {{0, 1},
                            {1, 2},
                            {2, 0},
                            {3, 4},
                            {4, 5},
                            {5, 3},
                            {0, 3},
                            {1, 4},
                            {2, 5}});
    case 11:
      // Two triangles bridged by an edge: 0-1-2 and 3-4-5 with bridge
      // {0,3} (6 vertices, 7 edges; |Aut| = 8).
      return QueryGraph(
          6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}});
    default:
      TDFS_CHECK_MSG(false, "pattern base index " << base << " out of range");
  }
  __builtin_unreachable();
}

}  // namespace

QueryGraph Pattern(int index) {
  TDFS_CHECK_MSG(index >= 1 && index <= 22,
                 "pattern index " << index << " out of [1,22]");
  const int base = (index - 1) % 11 + 1;
  QueryGraph q = BaseStructure(base);
  if (index > 11) {
    for (int u = 0; u < q.NumVertices(); ++u) {
      q.SetVertexLabel(u, u % 4);
    }
  }
  return q;
}

std::string PatternName(int index) {
  return "P" + std::to_string(index);
}

std::string PatternStructureName(int index) {
  static const char* kNames[] = {
      "diamond",        "4-clique", "house",   "pentagon",
      "chordal-house",  "near-5-clique", "5-clique", "hexagon",
      "hexagon+chord",  "prism",    "bridged-triangles"};
  const int base = (index - 1) % 11;
  std::string name = kNames[base];
  if (index > 11) {
    name += " (labeled)";
  }
  return name;
}

const std::vector<int>& UnlabeledPatternIndices() {
  static const std::vector<int> kIndices = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  return kIndices;
}

const std::vector<int>& AllPatternIndices() {
  static const std::vector<int> kIndices = {1,  2,  3,  4,  5,  6,  7,  8,
                                            9,  10, 11, 12, 13, 14, 15, 16,
                                            17, 18, 19, 20, 21, 22};
  return kIndices;
}

Result<int> PatternFromName(const std::string& name) {
  std::string digits = name;
  if (!digits.empty() && (digits[0] == 'P' || digits[0] == 'p')) {
    digits = digits.substr(1);
  }
  if (digits.empty()) {
    return Status::InvalidArgument("empty pattern name");
  }
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("bad pattern name '" + name + "'");
    }
  }
  int index = std::stoi(digits);
  if (index < 1 || index > 22) {
    return Status::InvalidArgument("pattern index out of range: " + name);
  }
  return index;
}

}  // namespace tdfs
