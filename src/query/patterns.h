// The evaluation pattern suite P1-P22 (Fig. 8 of the paper).
//
// The figure itself is not machine-readable in the provided text, so the
// shapes follow the constraints the paper states explicitly (P1 has 5
// edges; P8-P10 have 6 vertices; difficulty grows with the index; P12-P22
// repeat P1-P11 with vertex u_i labeled (i mod 4)) plus the conventional
// PBE/VSGM suites. Exact adjacency is documented per pattern below and in
// DESIGN.md.

#ifndef TDFS_QUERY_PATTERNS_H_
#define TDFS_QUERY_PATTERNS_H_

#include <string>
#include <vector>

#include "query/query_graph.h"
#include "util/status.h"

namespace tdfs {

/// Returns pattern Pn for n in [1, 22]. P1-P11 are unlabeled; P12-P22 are
/// the same structures with vertex i labeled (i mod 4).
QueryGraph Pattern(int index);

/// Short name, e.g. "P3".
std::string PatternName(int index);

/// Human-readable structure name, e.g. "house".
std::string PatternStructureName(int index);

/// Indices of the unlabeled suite {1..11}.
const std::vector<int>& UnlabeledPatternIndices();

/// Indices of the full labeled-evaluation suite {1..22}.
const std::vector<int>& AllPatternIndices();

/// Parses "P7" / "p7" / "7" into a pattern index.
Result<int> PatternFromName(const std::string& name);

}  // namespace tdfs

#endif  // TDFS_QUERY_PATTERNS_H_
