#include "query/plan.h"

#include <algorithm>
#include <sstream>

#include "query/cost_planner.h"

namespace tdfs {

namespace {

// Matching-order heuristic (Section II: "u_1 can be selected as the vertex
// with the highest degree ... which has the most edge constraints"):
// start at the max-degree vertex, then repeatedly append the unordered
// vertex with the most already-ordered neighbors (most backward edge
// constraints), breaking ties by degree and then by vertex id. The prefix
// stays connected for connected queries, which Eq. (1) requires.
std::vector<int> HeuristicOrder(const QueryGraph& query,
                                std::vector<int> order = {}) {
  const int k = query.NumVertices();
  order.reserve(k);
  std::vector<bool> placed(k, false);
  for (int u : order) {
    placed[u] = true;
  }
  if (order.empty()) {
    int first = 0;
    for (int u = 1; u < k; ++u) {
      if (query.Degree(u) > query.Degree(first)) {
        first = u;
      }
    }
    order.push_back(first);
    placed[first] = true;
  }
  while (static_cast<int>(order.size()) < k) {
    int best = -1;
    int best_backward = -1;
    for (int u = 0; u < k; ++u) {
      if (placed[u]) {
        continue;
      }
      int backward = 0;
      for (int v : order) {
        if (query.HasEdge(u, v)) {
          ++backward;
        }
      }
      if (backward > best_backward ||
          (backward == best_backward &&
           query.Degree(u) > query.Degree(best))) {
        best = u;
        best_backward = backward;
      }
    }
    TDFS_CHECK(best >= 0);
    order.push_back(best);
    placed[best] = true;
  }
  return order;
}

// Canonical query-edge enumeration for delta plans: lexicographic (a, b)
// with a < b. PlanOptions::delta_edge_rank indexes this list; the
// incremental layer iterates rank 0 .. NumEdges()-1 in the same order.
std::vector<std::pair<int, int>> CanonicalQueryEdges(const QueryGraph& query) {
  std::vector<std::pair<int, int>> edges;
  const int k = query.NumVertices();
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      if (query.HasEdge(a, b)) {
        edges.emplace_back(a, b);
      }
    }
  }
  return edges;
}

}  // namespace

DeltaEdgeSet DeltaEdgeSet::FromEdges(
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  DeltaEdgeSet set;
  set.keys_.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    TDFS_CHECK_MSG(u != v, "delta edges cannot be self-loops");
    set.keys_.push_back(PackEdge(u, v));
  }
  std::sort(set.keys_.begin(), set.keys_.end());
  set.keys_.erase(std::unique(set.keys_.begin(), set.keys_.end()),
                  set.keys_.end());
  return set;
}

std::string MatchPlan::ToString() const {
  std::ostringstream oss;
  oss << "order=[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) {
      oss << ",";
    }
    oss << order[i];
  }
  oss << "] |Aut|=" << automorphism_count;
  if (delta_edge_rank >= 0) {
    oss << " delta_rank=" << delta_edge_rank;
  }
  for (int pos = 0; pos < num_vertices; ++pos) {
    oss << "\n  pos" << pos << ": backward={";
    for (size_t i = 0; i < backward[pos].size(); ++i) {
      if (i > 0) {
        oss << ",";
      }
      oss << backward[pos][i];
    }
    oss << "}";
    if (reuse_source[pos] >= 0) {
      oss << " reuse=pos" << reuse_source[pos] << "+{";
      for (size_t i = 0; i < reuse_rest[pos].size(); ++i) {
        if (i > 0) {
          oss << ",";
        }
        oss << reuse_rest[pos][i];
      }
      oss << "}";
    }
    for (int j : smaller_than[pos]) {
      oss << " v<" << "pos" << j;
    }
    for (int j : greater_than[pos]) {
      oss << " v>" << "pos" << j;
    }
    if (label_filter[pos] != kNoLabel) {
      oss << " label=" << label_filter[pos];
    }
    oss << " min_deg=" << min_degree[pos];
  }
  return oss.str();
}

Result<MatchPlan> CompilePlan(const QueryGraph& query,
                              const PlanOptions& options) {
  const int k = query.NumVertices();
  if (k < 2) {
    return Status::InvalidArgument(
        "query graphs must have at least 2 vertices (initial tasks are "
        "edges)");
  }
  if (!query.IsConnected()) {
    return Status::InvalidArgument("query graph must be connected");
  }

  // Cost-based planning replaces the greedy order search when data-graph
  // statistics are available. Forced orders and delta plans pin the order
  // themselves, so they always take the greedy path below; so does
  // kCost without stats (callers never have to special-case).
  if (options.planner == PlannerKind::kCost && options.stats != nullptr &&
      options.forced_order.empty() && options.delta_edge_rank < 0) {
    return CompileCostPlan(query, options);
  }

  if (options.delta_edge_rank >= 0) {
    // Delta plans fix positions 0/1 themselves, count every automorphic
    // image (the incremental layer divides by |Aut| once per query), and
    // have no induced-mode exactness argument.
    if (!options.forced_order.empty()) {
      return Status::InvalidArgument(
          "delta plans choose their own matching order; forced_order must "
          "be empty");
    }
    if (options.induced) {
      return Status::InvalidArgument(
          "induced matching is not supported for delta plans");
    }
    if (options.use_symmetry_breaking) {
      return Status::InvalidArgument(
          "delta plans must disable symmetry breaking (the incremental "
          "layer divides by |Aut| instead)");
    }
  }

  MatchPlan plan;
  plan.num_vertices = k;

  // Order.
  if (!options.forced_order.empty()) {
    if (static_cast<int>(options.forced_order.size()) != k) {
      return Status::InvalidArgument("forced order has wrong length");
    }
    std::vector<bool> seen(k, false);
    for (int u : options.forced_order) {
      if (u < 0 || u >= k || seen[u]) {
        return Status::InvalidArgument("forced order is not a permutation");
      }
      seen[u] = true;
    }
    plan.order = options.forced_order;
  } else if (options.delta_edge_rank >= 0) {
    // The designated delta edge's endpoints open the order, so the
    // engine's initial (edge) tasks pin that query edge onto the seeded
    // delta data edges; the rest extends greedily as usual.
    const auto edges = CanonicalQueryEdges(query);
    if (options.delta_edge_rank >= static_cast<int>(edges.size())) {
      return Status::InvalidArgument(
          "delta_edge_rank " + std::to_string(options.delta_edge_rank) +
          " out of range for a query with " + std::to_string(edges.size()) +
          " edges");
    }
    const auto [a, b] = edges[options.delta_edge_rank];
    plan.order = HeuristicOrder(query, {a, b});
  } else {
    plan.order = HeuristicOrder(query);
  }

  // pos_of[u] = position of query vertex u.
  std::vector<int> pos_of(k);
  for (int pos = 0; pos < k; ++pos) {
    pos_of[plan.order[pos]] = pos;
  }

  // Backward neighbors (and, for induced mode, non-neighbors) per
  // position.
  plan.induced = options.induced;
  plan.backward.assign(k, {});
  plan.non_backward.assign(k, {});
  for (int pos = 1; pos < k; ++pos) {
    const int u = plan.order[pos];
    for (int j = 0; j < pos; ++j) {
      if (query.HasEdge(u, plan.order[j])) {
        plan.backward[pos].push_back(j);
      } else if (options.induced) {
        plan.non_backward[pos].push_back(j);
      }
    }
    if (plan.backward[pos].empty()) {
      return Status::InvalidArgument(
          "matching order leaves position " + std::to_string(pos) +
          " with no backward neighbors (disconnected prefix)");
    }
  }

  // Labels and degrees.
  plan.label_filter.resize(k);
  plan.min_degree.resize(k);
  for (int pos = 0; pos < k; ++pos) {
    const int u = plan.order[pos];
    plan.label_filter[pos] = query.VertexLabel(u);
    plan.min_degree[pos] = query.Degree(u);
  }

  // Delta plans: every query edge of canonical rank below the designated
  // one must be checked against the delta set at its later position.
  plan.delta_edge_rank = options.delta_edge_rank;
  plan.delta_forbidden.assign(k, {});
  if (options.delta_edge_rank >= 0) {
    const auto edges = CanonicalQueryEdges(query);
    for (int r = 0; r < options.delta_edge_rank; ++r) {
      int pa = pos_of[edges[r].first];
      int pb = pos_of[edges[r].second];
      if (pa > pb) {
        std::swap(pa, pb);
      }
      plan.delta_forbidden[pb].push_back(pa);
    }
    for (auto& forbidden : plan.delta_forbidden) {
      std::sort(forbidden.begin(), forbidden.end());
    }
  }

  // Symmetry restrictions mapped onto positions. A restriction
  // id(a) < id(b) is checked at the later of the two positions.
  plan.smaller_than.assign(k, {});
  plan.greater_than.assign(k, {});
  if (options.use_symmetry_breaking) {
    plan.automorphism_count = AutomorphismCount(query);
    for (const SymmetryRestriction& r : ComputeSymmetryRestrictions(query)) {
      const int pa = pos_of[r.smaller];
      const int pb = pos_of[r.larger];
      if (pa < pb) {
        plan.greater_than[pb].push_back(pa);  // match[pb] > match[pa]
      } else {
        plan.smaller_than[pa].push_back(pb);  // match[pa] < match[pb]
      }
    }
  }

  // Intersection-result reuse (Fig. 7): candidates of position i can start
  // from the stored candidates of position j (2 <= j < i) when
  //   backward[j] ⊆ backward[i]   and   label(pi[j]) == label(pi[i]).
  // Positions 0 and 1 hold the initial edge, not an intersection result,
  // so they are never reuse sources. Pick the j maximizing |backward[j]|.
  plan.reuse_source.assign(k, -1);
  plan.reuse_rest = plan.backward;
  if (options.use_reuse) {
    for (int pos = 3; pos < k; ++pos) {
      int best = -1;
      size_t best_size = 0;
      for (int j = 2; j < pos; ++j) {
        if (plan.label_filter[j] != plan.label_filter[pos]) {
          continue;
        }
        if (plan.backward[j].size() > plan.backward[pos].size() ||
            plan.backward[j].size() <= best_size) {
          continue;
        }
        if (std::includes(plan.backward[pos].begin(),
                          plan.backward[pos].end(),
                          plan.backward[j].begin(),
                          plan.backward[j].end())) {
          best = j;
          best_size = plan.backward[j].size();
        }
      }
      if (best >= 0) {
        plan.reuse_source[pos] = best;
        plan.reuse_rest[pos].clear();
        std::set_difference(plan.backward[pos].begin(),
                            plan.backward[pos].end(),
                            plan.backward[best].begin(),
                            plan.backward[best].end(),
                            std::back_inserter(plan.reuse_rest[pos]));
      }
    }
  }

  return plan;
}

}  // namespace tdfs
