// Matching-plan compilation.
//
// A MatchPlan is everything an engine needs to enumerate matches of a query
// graph, precomputed on the host (Section III "Algorithm Optimizations"):
//
//  * the vertex matching order pi,
//  * per-position backward neighbors B^pi(u_i) (Eq. 1),
//  * set-intersection reuse sources (B(u_i) ⊆ B(u_j) ⇒ candidates of u_j
//    start from stack[i]),
//  * symmetry-breaking restrictions mapped onto order positions,
//  * per-position label and minimum-degree filters, and the edge filter for
//    initial (edge) tasks.
//
// Engines index everything by *position* in the order, never by original
// query-vertex id.

#ifndef TDFS_QUERY_PLAN_H_
#define TDFS_QUERY_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "query/automorphism.h"
#include "query/planner_kind.h"
#include "query/prefilter_kind.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace tdfs::obs {
class Counter;  // obs/metrics.h
}  // namespace tdfs::obs

namespace tdfs {

struct GraphStats;  // query/cost_planner.h

/// An immutable set of undirected data edges, queryable by endpoint pair.
/// The dynamic-update layer builds one per batch (the inserted or deleted
/// edges); delta plans consult it to force query edges of lower canonical
/// rank onto NON-delta data edges (see PlanOptions::delta_edge_rank).
/// Lookup is a binary search over packed (min, max) keys.
class DeltaEdgeSet {
 public:
  DeltaEdgeSet() = default;

  /// Builds from undirected endpoint pairs (any orientation; duplicates
  /// collapse). Self-loops are rejected by TDFS_CHECK — the graph layer
  /// never produces them.
  static DeltaEdgeSet FromEdges(
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  bool Contains(VertexId u, VertexId v) const {
    const uint64_t key = PackEdge(u, v);
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    return it != keys_.end() && *it == key;
  }

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  static uint64_t PackEdge(VertexId u, VertexId v) {
    const uint64_t lo = static_cast<uint32_t>(u < v ? u : v);
    const uint64_t hi = static_cast<uint32_t>(u < v ? v : u);
    return (lo << 32) | hi;
  }

 private:
  std::vector<uint64_t> keys_;  // sorted, unique
};

/// Plan compilation knobs (defaults reproduce the paper's T-DFS).
struct PlanOptions {
  /// Break pattern symmetry with id(u) < id(w) restrictions (BLISS-derived
  /// in the paper). Disabling reproduces EGSM's redundant enumeration.
  bool use_symmetry_breaking = true;

  /// Enable set-intersection result reuse.
  bool use_reuse = true;

  /// Optional explicit matching order (query-vertex ids). Empty = use the
  /// max-degree / max-backward-neighbors heuristic.
  std::vector<int> forced_order;

  /// Vertex-induced matching: matched data vertices must also be
  /// NON-adjacent wherever the query vertices are non-adjacent. The paper
  /// (like most subgraph-matching systems) counts non-induced embeddings;
  /// induced mode is provided for applications (e.g. motif censuses) that
  /// need it.
  bool induced = false;

  /// >= 0 compiles a *delta plan* for incremental match maintenance: the
  /// query's edges are enumerated in canonical order (lexicographic (a, b)
  /// with a < b), and this rank selects one of them as the designated
  /// delta edge. The plan's matching order starts with that edge's
  /// endpoints (so seeding the engine with delta data edges as initial
  /// tasks pins the designated query edge onto them), and
  /// MatchPlan::delta_forbidden forces every query edge of LOWER canonical
  /// rank onto non-delta data edges. Summing the counts of the plans for
  /// every rank partitions the delta-touching embeddings by their first
  /// delta edge — each is counted exactly once. Delta plans reject
  /// forced_order / induced / use_symmetry_breaking (the incremental layer
  /// divides by |Aut| itself).
  int delta_edge_rank = -1;

  /// Which planner picks the matching order (see query/planner_kind.h).
  /// kCost needs `stats`; without them (or for forced-order / delta plans,
  /// whose orders are pinned by construction) compilation silently uses the
  /// greedy heuristic so callers never have to special-case.
  PlannerKind planner = PlannerKind::kGreedy;

  /// Borrowed data-graph statistics for the cost planner (must outlive the
  /// CompilePlan call only — the plan does not retain the pointer).
  const GraphStats* stats = nullptr;

  /// Multiplier on the cost model's estimated edge density, fed back from
  /// observed work by the service layer (PlanCache replans with
  /// observed/estimated when a cached cost plan drifts). 1.0 = trust the
  /// independence assumption. Deliberately NOT part of plan-cache keys.
  double cost_calibration = 1.0;

  /// Expected-candidate-list size at which the cost planner prefers the
  /// bitmap backend for a step (mirrors EngineConfig::bitmap_min_degree).
  int64_t planner_bitmap_min_degree = 256;

  /// Which candidate-prefiltering pipeline the run uses (informational for
  /// the plan compiler itself — the filtered CSR is substituted by the
  /// caller — but part of plan-cache keys, and kCost consumes
  /// `candidate_counts` when present). See query/prefilter_kind.h.
  PrefilterKind prefilter = PrefilterKind::kOff;

  /// Borrowed exact per-query-vertex candidate cardinalities from a
  /// FilteredGraph (query/candidate_filter.h), indexed by query-vertex id.
  /// When set, the cost planner uses these in place of its Chung–Lu
  /// VertexCount estimates. Must outlive the CompilePlan call only.
  const std::vector<int64_t>* candidate_counts = nullptr;

  /// Borrowed counter bumped when the cost model's calibration clamp fires
  /// (planner.calibration_clamped) — wired by the service layer; null means
  /// only the process-wide PlannerCalibrationClampCount() is bumped.
  obs::Counter* clamp_counter = nullptr;
};

/// Per-position intersect-backend choice emitted by the cost planner.
/// kInherit defers to the run-level EngineConfig::intersect mode; the
/// other values pin the step. Backend choice never changes match counts or
/// work_units — the work model is backend-invariant by construction — so
/// this is purely a wall-clock knob.
enum class StepBackend : uint8_t {
  kInherit = 0,
  kScalar = 1,
  kSimd = 2,
  kBitmap = 3,
};

inline const char* StepBackendName(StepBackend backend) {
  switch (backend) {
    case StepBackend::kInherit:
      return "inherit";
    case StepBackend::kScalar:
      return "scalar";
    case StepBackend::kSimd:
      return "simd";
    case StepBackend::kBitmap:
      return "bitmap";
  }
  return "unknown";
}

/// Compiled plan. Positions are 0-based: position 0 and 1 form the initial
/// edge task; candidates for positions >= 2 are computed by intersection.
struct MatchPlan {
  int num_vertices = 0;

  /// order[pos] = query vertex matched at this position.
  std::vector<int> order;

  /// backward[pos] = positions (< pos) adjacent in the query graph.
  /// Non-empty for every pos >= 1 (the order keeps the prefix connected).
  std::vector<std::vector<int>> backward;

  /// non_backward[pos] = positions (< pos) NOT adjacent in the query
  /// graph. Empty unless compiled with PlanOptions::induced, in which case
  /// candidates must be non-adjacent to these matched vertices.
  std::vector<std::vector<int>> non_backward;

  /// True when compiled for vertex-induced matching.
  bool induced = false;

  /// reuse_source[pos] = earlier position whose stored candidate set is a
  /// prefix of this position's intersection chain, or -1.
  std::vector<int> reuse_source;

  /// reuse_rest[pos] = backward positions still to intersect after starting
  /// from reuse_source[pos] (equals backward[pos] when reuse_source is -1).
  std::vector<std::vector<int>> reuse_rest;

  /// label_filter[pos] = required data-vertex label, or kNoLabel.
  std::vector<Label> label_filter;

  /// min_degree[pos] = degree of the query vertex at this position.
  std::vector<int> min_degree;

  /// smaller_than[pos] = positions j < pos with restriction
  /// id(match[pos]) < id(match[j]).
  std::vector<std::vector<int>> smaller_than;

  /// greater_than[pos] = positions j < pos with restriction
  /// id(match[pos]) > id(match[j]).
  std::vector<std::vector<int>> greater_than;

  /// |Aut(G_Q)| (1 when symmetry breaking is disabled — the plan then
  /// enumerates every automorphic image).
  size_t automorphism_count = 1;

  /// Canonical rank of the designated delta edge (-1 for ordinary plans);
  /// see PlanOptions::delta_edge_rank.
  int delta_edge_rank = -1;

  /// delta_forbidden[pos] = backward positions j such that the query edge
  /// {order[j], order[pos]} has canonical rank < delta_edge_rank; the data
  /// edge {match[j], v} must then NOT be a delta edge. All-empty for
  /// ordinary plans.
  std::vector<std::vector<int>> delta_forbidden;

  /// Per-position intersect-backend choice (empty = all kInherit, i.e. the
  /// run-level EngineConfig::intersect mode everywhere). Sized to
  /// num_vertices when the cost planner emits choices; positions 0 and 1
  /// are always kInherit (edge tasks do no intersection).
  std::vector<StepBackend> step_backend;

  /// Which planner produced the order.
  PlannerKind planned_by = PlannerKind::kGreedy;

  /// The cost planner's estimate of total intersection work (scalar merge
  /// steps) for this order; 0 for greedy plans. The service layer compares
  /// this against observed RunCounters::work_units to decide replans.
  double estimated_work = 0.0;

  /// Human-readable dump for diagnostics.
  std::string ToString() const;
};

/// Compiles a plan. Fails on disconnected queries or invalid forced orders.
Result<MatchPlan> CompilePlan(const QueryGraph& query,
                              const PlanOptions& options = PlanOptions{});

/// The candidate-consumption checks shared by every engine: returns true if
/// data vertex v may extend the partial match at `pos`.
/// `match` holds the data vertices matched at positions [0, pos).
inline bool PassesConsumeChecks(const MatchPlan& plan, const Graph& graph,
                                const VertexId* match, int pos, VertexId v,
                                bool degree_filter = true,
                                const DeltaEdgeSet* delta_edges = nullptr) {
  // Injectivity: v must not already be matched.
  for (int j = 0; j < pos; ++j) {
    if (match[j] == v) {
      return false;
    }
  }
  // Symmetry restrictions.
  for (int j : plan.smaller_than[pos]) {
    if (v >= match[j]) {
      return false;
    }
  }
  for (int j : plan.greater_than[pos]) {
    if (v <= match[j]) {
      return false;
    }
  }
  // Degree filter (pruning only; correctness does not depend on it).
  if (degree_filter && graph.Degree(v) < plan.min_degree[pos]) {
    return false;
  }
  // Induced mode: v must not be adjacent to matched non-neighbors.
  if (plan.induced) {
    for (int j : plan.non_backward[pos]) {
      if (graph.HasEdge(match[j], v)) {
        return false;
      }
    }
  }
  // Delta plans: query edges of lower canonical rank than the designated
  // delta edge must land on NON-delta data edges (first-delta-edge
  // partition; see PlanOptions::delta_edge_rank).
  if (delta_edges != nullptr && !plan.delta_forbidden.empty()) {
    for (int j : plan.delta_forbidden[pos]) {
      if (delta_edges->Contains(match[j], v)) {
        return false;
      }
    }
  }
  return true;
}

/// Edge filter for initial tasks (Section III "Algorithm Optimizations"):
/// degree and label conditions on both endpoints plus the symmetry
/// restriction between positions 0 and 1, if any.
inline bool PassesEdgeFilter(const MatchPlan& plan, const Graph& graph,
                             VertexId v0, VertexId v1,
                             bool degree_filter = true) {
  if (degree_filter && (graph.Degree(v0) < plan.min_degree[0] ||
                        graph.Degree(v1) < plan.min_degree[1])) {
    return false;
  }
  if (plan.label_filter[0] != kNoLabel &&
      graph.VertexLabel(v0) != plan.label_filter[0]) {
    return false;
  }
  if (plan.label_filter[1] != kNoLabel &&
      graph.VertexLabel(v1) != plan.label_filter[1]) {
    return false;
  }
  // Symmetry restriction between the first two positions, if any.
  for (int j : plan.greater_than[1]) {
    if (j == 0 && v1 <= v0) {
      return false;
    }
  }
  for (int j : plan.smaller_than[1]) {
    if (j == 0 && v1 >= v0) {
      return false;
    }
  }
  return v0 != v1;
}

}  // namespace tdfs

#endif  // TDFS_QUERY_PLAN_H_
