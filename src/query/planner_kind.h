// Planner selection knob, shared by PlanOptions and EngineConfig.
//
// Kept in its own tiny header so core/config.h can name the enum without
// pulling in the full plan/cost-planner machinery.

#ifndef TDFS_QUERY_PLANNER_KIND_H_
#define TDFS_QUERY_PLANNER_KIND_H_

#include <string_view>

namespace tdfs {

/// Which matching-order planner compiles the plan.
///
///  * kGreedy — the paper's static max-degree / max-backward-neighbors
///    heuristic (HeuristicOrder). Order depends only on the query.
///  * kCost   — the cost-based planner (src/query/cost_planner.h): orders
///    are searched by expected intersection work estimated from data-graph
///    label/degree statistics, and per-position intersect backends are
///    emitted into MatchPlan::step_backend. Requires GraphStats; falls back
///    to kGreedy when none are supplied (and for delta/forced-order plans,
///    which pin the order themselves).
enum class PlannerKind : int {
  kGreedy = 0,
  kCost = 1,
};

inline const char* PlannerKindName(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kGreedy:
      return "greedy";
    case PlannerKind::kCost:
      return "cost";
  }
  return "unknown";
}

/// Parses "greedy" / "cost". Returns false (leaving *out untouched) on
/// anything else.
inline bool ParsePlannerKind(std::string_view text, PlannerKind* out) {
  if (text == "greedy") {
    *out = PlannerKind::kGreedy;
    return true;
  }
  if (text == "cost") {
    *out = PlannerKind::kCost;
    return true;
  }
  return false;
}

}  // namespace tdfs

#endif  // TDFS_QUERY_PLANNER_KIND_H_
