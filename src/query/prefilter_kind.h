// Candidate-prefilter selection knob, shared by PlanOptions and EngineConfig.
//
// Kept in its own tiny header (mirroring planner_kind.h) so core/config.h
// can name the enum without pulling in the full candidate-filter machinery.

#ifndef TDFS_QUERY_PREFILTER_KIND_H_
#define TDFS_QUERY_PREFILTER_KIND_H_

#include <string_view>

namespace tdfs {

/// Which candidate-prefiltering pipeline runs before matching.
///
///  * kOff          — no prefiltering; engines intersect raw CSR spans.
///  * kLDF          — label-and-degree filter (LDF) seeding only: C(u) keeps
///    v iff label(v) == label(u) (or the query is unlabeled) and
///    deg(v) >= deg(u). One pass over the data graph.
///  * kNeighborhood — LDF seeding plus iterated neighborhood-safety
///    refinement (graph-simulation style): v is dropped from C(u) when some
///    query neighbor u' of u has no candidate adjacent to v. Iterates to a
///    fixpoint (bounded rounds); strictly tighter than kLDF.
enum class PrefilterKind : int {
  kOff = 0,
  kLDF = 1,
  kNeighborhood = 2,
};

inline const char* PrefilterKindName(PrefilterKind kind) {
  switch (kind) {
    case PrefilterKind::kOff:
      return "off";
    case PrefilterKind::kLDF:
      return "ldf";
    case PrefilterKind::kNeighborhood:
      return "neighborhood";
  }
  return "unknown";
}

/// Parses "off" / "ldf" / "neighborhood". Returns false (leaving *out
/// untouched) on anything else.
inline bool ParsePrefilterKind(std::string_view text, PrefilterKind* out) {
  if (text == "off") {
    *out = PrefilterKind::kOff;
    return true;
  }
  if (text == "ldf") {
    *out = PrefilterKind::kLDF;
    return true;
  }
  if (text == "neighborhood") {
    *out = PrefilterKind::kNeighborhood;
    return true;
  }
  return false;
}

}  // namespace tdfs

#endif  // TDFS_QUERY_PREFILTER_KIND_H_
