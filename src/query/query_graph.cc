#include "query/query_graph.h"

#include <bit>
#include <sstream>

namespace tdfs {

QueryGraph::QueryGraph(int num_vertices) : num_vertices_(num_vertices) {
  TDFS_CHECK_MSG(num_vertices >= 1 && num_vertices <= kMaxQueryVertices,
                 "query graph size " << num_vertices << " out of range");
}

QueryGraph::QueryGraph(int num_vertices,
                       std::initializer_list<std::pair<int, int>> edges)
    : QueryGraph(num_vertices) {
  for (const auto& [u, v] : edges) {
    AddEdge(u, v);
  }
}

void QueryGraph::AddEdge(int u, int v) {
  TDFS_CHECK(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_);
  TDFS_CHECK_MSG(u != v, "self-loop in query graph");
  TDFS_CHECK_MSG(!HasEdge(u, v), "duplicate edge in query graph");
  adj_[u] |= (1u << v);
  adj_[v] |= (1u << u);
  ++num_edges_;
}

int QueryGraph::Degree(int u) const {
  return std::popcount(adj_[u]);
}

void QueryGraph::SetVertexLabel(int u, Label label) {
  TDFS_CHECK(u >= 0 && u < num_vertices_);
  TDFS_CHECK(label >= 0);
  labeled_ = true;
  labels_[u] = label;
}

bool QueryGraph::IsConnected() const {
  uint32_t visited = 1u;
  uint32_t frontier = 1u;
  while (frontier != 0) {
    uint32_t next = 0;
    for (int u = 0; u < num_vertices_; ++u) {
      if ((frontier >> u) & 1u) {
        next |= adj_[u];
      }
    }
    frontier = next & ~visited;
    visited |= next;
  }
  return visited == (num_vertices_ >= 32
                         ? ~0u
                         : ((1u << num_vertices_) - 1u));
}

std::string QueryGraph::ToString() const {
  std::ostringstream oss;
  oss << "k=" << num_vertices_ << " m=" << num_edges_ << " edges=[";
  bool first = true;
  for (int u = 0; u < num_vertices_; ++u) {
    for (int v = u + 1; v < num_vertices_; ++v) {
      if (HasEdge(u, v)) {
        if (!first) {
          oss << ",";
        }
        oss << "(" << u << "," << v << ")";
        first = false;
      }
    }
  }
  oss << "]";
  if (labeled_) {
    oss << " labels=[";
    for (int u = 0; u < num_vertices_; ++u) {
      if (u > 0) {
        oss << ",";
      }
      oss << labels_[u];
    }
    oss << "]";
  }
  return oss.str();
}

}  // namespace tdfs
