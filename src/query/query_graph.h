// Small query (pattern) graphs.
//
// Query graphs G_Q have at most a handful of vertices (the paper's patterns
// have 4-6), so an adjacency-bitmask representation is used: O(1) edge
// tests, trivially copyable, and cheap to permute for automorphism search.

#ifndef TDFS_QUERY_QUERY_GRAPH_H_
#define TDFS_QUERY_QUERY_GRAPH_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tdfs {

/// An undirected, optionally labeled query graph with up to kMaxQueryVertices
/// vertices.
class QueryGraph {
 public:
  static constexpr int kMaxQueryVertices = 16;

  /// Creates an edgeless query graph with `num_vertices` unlabeled vertices.
  explicit QueryGraph(int num_vertices);

  /// Convenience constructor from an edge list.
  QueryGraph(int num_vertices,
             std::initializer_list<std::pair<int, int>> edges);

  int NumVertices() const { return num_vertices_; }
  int NumEdges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicates abort.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const {
    return (adj_[u] >> v) & 1u;
  }

  int Degree(int u) const;

  /// Bitmask of u's neighbors.
  uint32_t NeighborMask(int u) const { return adj_[u]; }

  /// Sets the label of vertex u. Labeling one vertex labels the graph;
  /// unset labels default to 0.
  void SetVertexLabel(int u, Label label);

  bool IsLabeled() const { return labeled_; }

  /// Label of u, or kNoLabel if the query graph is unlabeled.
  Label VertexLabel(int u) const {
    return labeled_ ? labels_[u] : kNoLabel;
  }

  /// True iff the graph is connected (disconnected queries are rejected by
  /// the plan compiler).
  bool IsConnected() const;

  /// "k=5 m=6 edges=[(0,1),...]" — for diagnostics and DESIGN docs.
  std::string ToString() const;

 private:
  int num_vertices_;
  int num_edges_ = 0;
  bool labeled_ = false;
  uint32_t adj_[kMaxQueryVertices] = {};
  Label labels_[kMaxQueryVertices] = {};
};

}  // namespace tdfs

#endif  // TDFS_QUERY_QUERY_GRAPH_H_
