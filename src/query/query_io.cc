#include "query/query_io.h"

#include <fstream>
#include <optional>
#include <sstream>

namespace tdfs {

Result<QueryGraph> ParseQueryText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::optional<QueryGraph> query;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    auto error = [&](const std::string& what) {
      return Status::Corruption("query line " + std::to_string(line_no) +
                                ": " + what + " ('" + line + "')");
    };
    if (tag == 'v') {
      int k = 0;
      if (!(fields >> k) || k < 1 || k > QueryGraph::kMaxQueryVertices) {
        return error("bad vertex count");
      }
      if (query.has_value()) {
        return error("duplicate header");
      }
      query.emplace(k);
    } else if (tag == 'e') {
      if (!query.has_value()) {
        return error("edge before header");
      }
      int u = 0;
      int w = 0;
      if (!(fields >> u >> w) || u < 0 || w < 0 ||
          u >= query->NumVertices() || w >= query->NumVertices() ||
          u == w || query->HasEdge(u, w)) {
        return error("bad edge");
      }
      query->AddEdge(u, w);
    } else if (tag == 'l') {
      if (!query.has_value()) {
        return error("label before header");
      }
      int u = 0;
      Label label = 0;
      if (!(fields >> u >> label) || u < 0 || u >= query->NumVertices() ||
          label < 0) {
        return error("bad label");
      }
      query->SetVertexLabel(u, label);
    } else {
      return error("unknown tag");
    }
  }
  if (!query.has_value()) {
    return Status::Corruption("query text has no 'v <k>' header");
  }
  return *query;
}

Result<QueryGraph> LoadQueryFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseQueryText(buffer.str());
}

std::string QueryToText(const QueryGraph& query) {
  std::ostringstream out;
  out << "v " << query.NumVertices() << "\n";
  for (int u = 0; u < query.NumVertices(); ++u) {
    for (int w = u + 1; w < query.NumVertices(); ++w) {
      if (query.HasEdge(u, w)) {
        out << "e " << u << " " << w << "\n";
      }
    }
  }
  if (query.IsLabeled()) {
    for (int u = 0; u < query.NumVertices(); ++u) {
      out << "l " << u << " " << query.VertexLabel(u) << "\n";
    }
  }
  return out.str();
}

}  // namespace tdfs
