// Text format for query graphs.
//
//   # comments allowed
//   v <k>            one header line: number of vertices
//   e <u> <w>        one line per undirected edge
//   l <u> <label>    optional vertex labels
//
// Example (labeled triangle):
//   v 3
//   e 0 1
//   e 1 2
//   e 2 0
//   l 0 0
//   l 1 1
//   l 2 0

#ifndef TDFS_QUERY_QUERY_IO_H_
#define TDFS_QUERY_QUERY_IO_H_

#include <string>

#include "query/query_graph.h"
#include "util/status.h"

namespace tdfs {

/// Parses the format above from a string.
Result<QueryGraph> ParseQueryText(const std::string& text);

/// Loads a query graph from a file.
Result<QueryGraph> LoadQueryFile(const std::string& path);

/// Serializes in the same format (round-trips with ParseQueryText).
std::string QueryToText(const QueryGraph& query);

}  // namespace tdfs

#endif  // TDFS_QUERY_QUERY_IO_H_
