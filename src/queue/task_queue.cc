#include "queue/task_queue.h"

#include "util/failpoint.h"
#include "vgpu/atomics.h"

namespace tdfs {

namespace {
// Back-off while waiting for the matching enqueue/dequeue to touch a slot
// (Alg. 3 uses __nanosleep(10)).
constexpr int64_t kSlotWaitNanos = 10;

// `size` is a coarse admission counter, not an exact occupancy: concurrent
// failing enqueues each hold +3 until they roll back, and failing dequeues
// -3, so a raw load can transiently read above capacity or below zero.
// Stats must report the admitted range only.
int32_t ClampOccupancyInts(int32_t size_now, int32_t capacity) {
  if (size_now < 0) {
    return 0;
  }
  return size_now < capacity ? size_now : capacity;
}
}  // namespace

TaskQueue::TaskQueue(int32_t capacity_ints) : capacity_(capacity_ints) {
  TDFS_CHECK_MSG(capacity_ints > 0 && capacity_ints % 3 == 0,
                 "queue capacity must be a positive multiple of 3");
  slots_.assign(capacity_ints, kEmptySlot);
}

bool TaskQueue::Enqueue(const Task& task) {
  if (TDFS_INJECT_FAILURE("queue_enqueue")) {
    // Injected saturation: report full without admitting the task; the
    // caller exercises its in-place fallback (Alg. 4 lines 17-20).
    enqueue_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Admission control on `size` (Alg. 3 lines 4-6).
  if (vgpu::AtomicAdd(&size_, 3) >= capacity_) {
    vgpu::AtomicSub(&size_, 3);
    enqueue_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Claim a slot triple (line 7).
  const int64_t ticket = vgpu::AtomicAdd64(&back_, 3);
  const int32_t pos = static_cast<int32_t>(ticket % capacity_);
  // Hand off the three ints; each slot must have been cleared by the
  // dequeuer that previously owned it (lines 8-13).
  const VertexId values[3] = {task.v1, task.v2, task.v3};
  for (int i = 0; i < 3; ++i) {
    while (vgpu::AtomicCas(&slots_[pos + i], kEmptySlot, values[i]) !=
           kEmptySlot) {
      vgpu::Nanosleep(kSlotWaitNanos);
    }
  }
  total_enqueued_.fetch_add(1, std::memory_order_relaxed);
  // Stats only: track the high-water mark of admitted ints.
  const int32_t size_now =
      ClampOccupancyInts(vgpu::AtomicLoad(&size_), capacity_);
  int32_t peak = peak_size_.load(std::memory_order_relaxed);
  while (size_now > peak && !peak_size_.compare_exchange_weak(
                                peak, size_now, std::memory_order_relaxed)) {
  }
  obs::Observe(obs_occupancy_, size_now / 3);
  return true;
}

bool TaskQueue::Dequeue(Task* task) {
  if (TDFS_INJECT_FAILURE("queue_dequeue")) {
    return false;  // injected empty-queue report; tasks stay admitted
  }
  return DequeueInternal(task);
}

bool TaskQueue::DequeueInternal(Task* task) {
  // Admission control (Alg. 3 lines 16-18).
  if (vgpu::AtomicSub(&size_, 3) <= 0) {
    vgpu::AtomicAdd(&size_, 3);
    return false;
  }
  // Claim a slot triple (line 19).
  const int64_t ticket = vgpu::AtomicAdd64(&front_, 3);
  const int32_t pos = static_cast<int32_t>(ticket % capacity_);
  // Take the three ints, waiting for the enqueuer to fill each
  // (lines 20-25).
  VertexId values[3];
  for (int i = 0; i < 3; ++i) {
    while ((values[i] = vgpu::AtomicExch(&slots_[pos + i], kEmptySlot)) ==
           kEmptySlot) {
      vgpu::Nanosleep(kSlotWaitNanos);
    }
  }
  task->v1 = values[0];
  task->v2 = values[1];
  task->v3 = values[2];
  total_dequeued_.fetch_add(1, std::memory_order_relaxed);
  if (obs_occupancy_ != nullptr) {
    const int32_t now =
        ClampOccupancyInts(vgpu::AtomicLoad(&size_), capacity_);
    obs_occupancy_->Observe(now / 3);
  }
  return true;
}

int64_t TaskQueue::DrainForReuse() {
  Task discarded;
  int64_t drained = 0;
  while (DequeueInternal(&discarded)) {
    ++drained;
  }
  return drained;
}

int32_t TaskQueue::ApproxSize() const {
  int32_t ints = vgpu::AtomicLoad(&size_);
  if (ints < 0) {
    ints = 0;
  }
  return ints / 3;
}

void TaskQueue::ResetStats() {
  total_enqueued_.store(0, std::memory_order_relaxed);
  total_dequeued_.store(0, std::memory_order_relaxed);
  enqueue_full_.store(0, std::memory_order_relaxed);
  peak_size_.store(0, std::memory_order_relaxed);
}

}  // namespace tdfs
