#include "queue/task_queue.h"

#include "util/failpoint.h"
#include "vgpu/atomics.h"

namespace tdfs {

namespace {
// Back-off while waiting for the matching enqueue/dequeue to touch a slot
// (Alg. 3 uses __nanosleep(10)).
constexpr int64_t kSlotWaitNanos = 10;
}  // namespace

TaskQueue::TaskQueue(int32_t capacity_ints) : capacity_(capacity_ints) {
  TDFS_CHECK_MSG(capacity_ints > 0 && capacity_ints % 3 == 0,
                 "queue capacity must be a positive multiple of 3");
  slots_.assign(capacity_ints, kEmptySlot);
  // laps_[p] holds the ticket of the next operation allowed to touch slot
  // p: ticket t for the enqueue of lap t / capacity, t + 1 for the
  // matching dequeue. Slot p's first enqueue ticket is p itself.
  laps_.resize(capacity_ints);
  for (int32_t i = 0; i < capacity_ints; ++i) {
    laps_[i] = i;
  }
}

bool TaskQueue::Enqueue(const Task& task) {
  if (TDFS_INJECT_FAILURE("queue_enqueue")) {
    // Injected saturation: report full without admitting the task; the
    // caller exercises its in-place fallback (Alg. 4 lines 17-20).
    enqueue_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Exact admission on `size` (Alg. 3 lines 4-6, hardened): a CAS loop
  // admits iff the three ints fit, so `size` never transiently overshoots
  // capacity. The original add-then-rollback protocol could admit a
  // dequeue off a failing enqueue's +3; that dequeue then waited for a
  // slot fill only a later producer would deliver — a hang when producers
  // had already stopped (the phantom-admit bug).
  int32_t admitted = vgpu::AtomicLoad(&size_);
  for (;;) {
    if (admitted + 3 > capacity_) {
      enqueue_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const int32_t observed = vgpu::AtomicCas(&size_, admitted, admitted + 3);
    if (observed == admitted) {
      break;
    }
    admitted = observed;
  }
  // Claim a slot triple (line 7).
  const int64_t ticket = vgpu::AtomicAdd64(&back_, 3);
  // Hand off the three ints (lines 8-13, hardened with a lap guard). The
  // paper's wait-for-empty CAS is not enough on its own: with a consumer
  // parked mid-dequeue, `front` can lap the ring, and a second consumer
  // landing on the same position could steal the parked one's fill —
  // tearing a task across producers. Each slot therefore carries a lap
  // sequence; an operation proceeds only when the sequence equals its own
  // ticket, which totally orders the slot's fill/take pairs across laps.
  const VertexId values[3] = {task.v1, task.v2, task.v3};
  for (int i = 0; i < 3; ++i) {
    const int64_t slot_ticket = ticket + i;
    const int32_t pos = static_cast<int32_t>(slot_ticket % capacity_);
    while (vgpu::AtomicLoad64(&laps_[pos]) != slot_ticket) {
      vgpu::Nanosleep(kSlotWaitNanos);
    }
    const VertexId prev = vgpu::AtomicExch(&slots_[pos], values[i]);
    TDFS_CHECK_MSG(prev == kEmptySlot,
                   "enqueue hand-off found an occupied slot");
    vgpu::AtomicStore64(&laps_[pos], slot_ticket + 1);
  }
  const int64_t op_index =
      total_enqueued_.fetch_add(1, std::memory_order_relaxed);
  // Stats only: track the high-water mark of admitted ints. Admission is
  // exact, so a raw load is already within [0, capacity].
  const int32_t size_now = vgpu::AtomicLoad(&size_);
  int32_t peak = peak_size_.load(std::memory_order_relaxed);
  while (size_now > peak && !peak_size_.compare_exchange_weak(
                                peak, size_now, std::memory_order_relaxed)) {
  }
  // Occupancy is a distribution, not a count: sampling 1 in kObsSampleEvery
  // ops keeps its shape while sparing the shared histogram's cache lines
  // from every producer (the histogram is cross-warp; enqueue is hot).
  obs::Histogram* occupancy = obs_occupancy_.load(std::memory_order_acquire);
  if (occupancy != nullptr && (op_index & (kObsSampleEvery - 1)) == 0) {
    occupancy->Observe(size_now / 3);
  }
  return true;
}

bool TaskQueue::Dequeue(Task* task) {
  if (TDFS_INJECT_FAILURE("queue_dequeue")) {
    return false;  // injected empty-queue report; tasks stay admitted
  }
  return DequeueInternal(task);
}

bool TaskQueue::DequeueInternal(Task* task) {
  // Exact admission (Alg. 3 lines 16-18, hardened like Enqueue): admit
  // iff at least one task's worth of ints is present. Every admitted
  // dequeue therefore has a matching admitted enqueue that will fill its
  // slot — the fill wait below is bounded by that producer's progress.
  int32_t admitted = vgpu::AtomicLoad(&size_);
  for (;;) {
    if (admitted < 3) {
      return false;
    }
    const int32_t observed = vgpu::AtomicCas(&size_, admitted, admitted - 3);
    if (observed == admitted) {
      break;
    }
    admitted = observed;
  }
  // Claim a slot triple (line 19).
  const int64_t ticket = vgpu::AtomicAdd64(&front_, 3);
  // Take the three ints, waiting for the enqueuer with the SAME ticket to
  // fill each (lines 20-25, lap-guarded — see Enqueue). Publishing
  // `ticket + capacity` re-arms the slot for the next lap's enqueuer.
  VertexId values[3];
  for (int i = 0; i < 3; ++i) {
    const int64_t slot_ticket = ticket + i;
    const int32_t pos = static_cast<int32_t>(slot_ticket % capacity_);
    while (vgpu::AtomicLoad64(&laps_[pos]) != slot_ticket + 1) {
      vgpu::Nanosleep(kSlotWaitNanos);
    }
    values[i] = vgpu::AtomicExch(&slots_[pos], kEmptySlot);
    TDFS_CHECK_MSG(values[i] != kEmptySlot,
                   "dequeue hand-off found an empty slot");
    vgpu::AtomicStore64(&laps_[pos], slot_ticket + capacity_);
  }
  task->v1 = values[0];
  task->v2 = values[1];
  task->v3 = values[2];
  const int64_t op_index =
      total_dequeued_.fetch_add(1, std::memory_order_relaxed);
  obs::Histogram* occupancy = obs_occupancy_.load(std::memory_order_acquire);
  if (occupancy != nullptr && (op_index & (kObsSampleEvery - 1)) == 0) {
    occupancy->Observe(vgpu::AtomicLoad(&size_) / 3);
  }
  return true;
}

int64_t TaskQueue::DrainForReuse() {
  Task discarded;
  int64_t drained = 0;
  while (DequeueInternal(&discarded)) {
    ++drained;
  }
  // Rewind the ring to its pristine state so a reused queue starts at slot
  // 0 like a fresh one — warm-run traces stay slot-comparable to cold
  // runs. The caller guarantees quiescence, so plain stores suffice; the
  // slot check is the invariant that the drain really emptied the ring.
  for (int32_t slot : slots_) {
    TDFS_CHECK_MSG(slot == kEmptySlot,
                   "DrainForReuse left an occupied slot; the queue was not "
                   "quiescent");
  }
  front_ = 0;
  back_ = 0;
  for (int32_t i = 0; i < capacity_; ++i) {
    laps_[i] = i;
  }
  return drained;
}

int32_t TaskQueue::ApproxSize() const {
  // Admission is exact, so the load is already within [0, capacity].
  return vgpu::AtomicLoad(&size_) / 3;
}

void TaskQueue::ResetStats() {
  total_enqueued_.store(0, std::memory_order_relaxed);
  total_dequeued_.store(0, std::memory_order_relaxed);
  enqueue_full_.store(0, std::memory_order_relaxed);
  peak_size_.store(0, std::memory_order_relaxed);
}

}  // namespace tdfs
