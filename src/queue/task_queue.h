// The lock-free circular task queue Q_task (Alg. 3 of the paper).
//
// A task is a partial match of at most three data vertices:
//   <v1, v2, v3>  — three matched vertices, or
//   <v1, v2, -2>  — two matched vertices (kNoThirdVertex placeholder),
// stored in three consecutive int slots of a ring buffer of N ints
// (N a multiple of 3). Empty slots hold -1 (kEmptySlot).
//
// The queue is operated by warps: `size` is adjusted first as admission
// control, then `back`/`front` are advanced atomically to claim slot
// positions, and finally the slots are handed off with CAS (enqueue waits
// for the slot to be cleared) or exchange (dequeue waits for the slot to
// be filled). This is the protocol of Alg. 3 transcribed onto the vgpu
// atomics shim, with two hardenings:
//  1. Admission uses a CAS loop instead of the paper's add-then-rollback,
//     so `size` is exact at all times. The rollback variant let a dequeue
//     admit itself against a failing enqueue's transient +3 and then wait
//     for a slot fill that no producer owed — a hang once producers
//     stopped.
//  2. Each slot carries a lap sequence number that totally orders its
//     fill/take pairs across ring generations. Without it, a consumer
//     parked mid-dequeue while `front` laps the ring can have its fill
//     stolen by a later consumer on the same position, tearing a task
//     across two producers.

#ifndef TDFS_QUEUE_TASK_QUEUE_H_
#define TDFS_QUEUE_TASK_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/intersect.h"
#include "util/status.h"

namespace tdfs {

/// Slot sentinel: not occupied.
inline constexpr VertexId kEmptySlot = -1;

/// Third-vertex sentinel: the task has only two matched vertices.
inline constexpr VertexId kNoThirdVertex = -2;

/// A decomposed task: a partial match of 2 or 3 data vertices.
struct Task {
  VertexId v1 = kEmptySlot;
  VertexId v2 = kEmptySlot;
  VertexId v3 = kNoThirdVertex;

  bool HasThird() const { return v3 != kNoThirdVertex; }

  bool operator==(const Task&) const = default;
};

class TaskQueue {
 public:
  /// Default capacity from the paper: N = 3 million ints (1M tasks, 12 MB).
  static constexpr int32_t kDefaultCapacityInts = 3'000'000;

  /// `capacity_ints` must be a positive multiple of 3.
  explicit TaskQueue(int32_t capacity_ints = kDefaultCapacityInts);

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Returns false when the queue is full (caller falls back to in-place
  /// processing, Alg. 4 lines 17-20).
  bool Enqueue(const Task& task);

  /// Returns false when the queue is empty.
  bool Dequeue(Task* task);

  /// Number of tasks currently admitted. Exact at any instant (admission
  /// is a CAS loop); the name survives from the paper's approximate
  /// protocol.
  int32_t ApproxSize() const;

  int32_t capacity_ints() const { return capacity_; }

  /// Lifetime counters (relaxed; exact once the queue is quiescent).
  int64_t TotalEnqueued() const {
    return total_enqueued_.load(std::memory_order_relaxed);
  }
  int64_t TotalDequeued() const {
    return total_dequeued_.load(std::memory_order_relaxed);
  }
  int64_t EnqueueFullFailures() const {
    return enqueue_full_.load(std::memory_order_relaxed);
  }

  /// High-water mark of admitted ints (to validate the paper's claim that
  /// queue-first scheduling keeps the queue small).
  int32_t PeakSizeInts() const {
    return peak_size_.load(std::memory_order_relaxed);
  }

  void ResetStats();

  /// Pops and discards every admitted task, then rewinds the front/back
  /// tickets to 0 so the next run starts at slot 0 like a fresh queue
  /// (warm-run traces stay slot-comparable to cold runs). For recycling an
  /// idle queue between runs (a deadline-aborted run can leave tasks
  /// behind): call only when no warp is operating on the queue. Unlike
  /// Dequeue, never subject to failpoint injection — scrubbing must not be
  /// fallible. Returns the number of tasks discarded.
  int64_t DrainForReuse();

  /// Ring-position tickets (ints, monotone between drains). Quiescent
  /// diagnostics only: both are 0 after construction and after
  /// DrainForReuse.
  int64_t FrontTicket() const { return front_; }
  int64_t BackTicket() const { return back_; }

  /// Samples queue occupancy (tasks) into `occupancy` on 1 in
  /// kObsSampleEvery successful enqueues/dequeues. Null (the default)
  /// disables sampling. Atomic: under sharded execution sibling shards
  /// can be stealing from this queue while its owner engine attaches.
  void AttachObs(obs::Histogram* occupancy) {
    obs_occupancy_.store(occupancy, std::memory_order_release);
  }

  /// Occupancy sampling period (power of two). The histogram is shared
  /// across every warp; observing it on each operation would make its
  /// cache lines the hottest contention point in the queue.
  static constexpr int64_t kObsSampleEvery = 64;

 private:
  bool DequeueInternal(Task* task);

  int32_t capacity_;
  std::vector<int32_t> slots_;
  // Per-slot lap guard: laps_[p] is the ticket of the next operation
  // allowed to touch slot p (the enqueue with that ticket; its matching
  // dequeue sees ticket + 1; the next lap's enqueue sees ticket +
  // capacity).
  std::vector<int64_t> laps_;
  // The paper's three control words, operated on through the CUDA-semantics
  // shim like the device-side original. back/front are 64-bit monotone
  // counters (reduced mod N on use) so they cannot wrap mid-run.
  int32_t size_ = 0;
  int64_t back_ = 0;
  int64_t front_ = 0;

  std::atomic<int64_t> total_enqueued_{0};
  std::atomic<int64_t> total_dequeued_{0};
  std::atomic<int64_t> enqueue_full_{0};
  std::atomic<int32_t> peak_size_{0};
  std::atomic<obs::Histogram*> obs_occupancy_{nullptr};
};

}  // namespace tdfs

#endif  // TDFS_QUEUE_TASK_QUEUE_H_
