#include "service/engine_arena.h"

#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace tdfs {

ArenaOptions ArenaOptions::FromConfig(const EngineConfig& config) {
  ArenaOptions options;
  options.page_pool_pages = config.page_pool_pages;
  options.page_bytes = config.page_bytes;
  options.queue_capacity_ints = config.queue_capacity_ints;
  options.pool_allocator = config.stack == StackKind::kPaged;
  options.pool_queue = config.steal == StealStrategy::kTimeout;
  options.spill_to_host = config.spill_to_host;
  options.max_spill_pages = config.max_spill_pages;
  options.governor = config.governor;
  return options;
}

namespace {
SpillOptions SpillFromArena(const ArenaOptions& options) {
  SpillOptions spill;
  spill.enabled = options.spill_to_host;
  spill.max_spill_pages = options.max_spill_pages;
  spill.governor = options.governor;
  return spill;
}
}  // namespace

EngineArena::EngineArena(int num_slots, const ArenaOptions& options)
    : options_(options) {
  TDFS_CHECK(num_slots >= 1);
  slots_.reserve(num_slots);
  free_.reserve(num_slots);
  for (int i = 0; i < num_slots; ++i) {
    auto slot = std::make_unique<Slot>();
    if (options_.pool_allocator) {
      slot->allocator = std::make_unique<PageAllocator>(
          options_.page_pool_pages, options_.page_bytes,
          SpillFromArena(options_));
      slot->resources.allocator = slot->allocator.get();
    }
    if (options_.pool_queue) {
      slot->queue =
          std::make_unique<TaskQueue>(options_.queue_capacity_ints);
      slot->resources.queue = slot->queue.get();
    }
    slots_.push_back(std::move(slot));
    free_.push_back(i);
  }
}

EngineArena::Lease& EngineArena::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    arena_ = other.arena_;
    slot_ = other.slot_;
    other.arena_ = nullptr;
    other.slot_ = -1;
  }
  return *this;
}

const EngineResources* EngineArena::Lease::resources() const {
  return arena_ != nullptr ? &arena_->slots_[slot_]->resources : nullptr;
}

void EngineArena::Lease::Release() {
  if (arena_ != nullptr) {
    arena_->Release(slot_);
    arena_ = nullptr;
    slot_ = -1;
  }
}

EngineArena::Lease EngineArena::Acquire(obs::SpanContext sctx) {
  obs::SpanLedger::Span span = sctx.Begin("arena_lease");
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !free_.empty(); });
  const int slot = free_.back();
  free_.pop_back();
  acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_acquires_);
  return Lease(this, slot);
}

std::optional<EngineArena::Lease> EngineArena::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    return std::nullopt;
  }
  const int slot = free_.back();
  free_.pop_back();
  acquires_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_acquires_);
  return Lease(this, slot);
}

void EngineArena::Release(int slot_index) {
  Slot& slot = *slots_[slot_index];
  // Scrub: the run is over, so the slot is quiescent. A deadline-aborted
  // or failed run can leave admitted tasks in the queue; the next run must
  // start from empty or its work-token accounting would see ghost tasks.
  if (slot.queue != nullptr) {
    const int64_t drained = slot.queue->DrainForReuse();
    if (drained > 0) {
      tasks_scrubbed_.fetch_add(drained, std::memory_order_relaxed);
      obs::Add(obs_scrubbed_, drained);
    }
  }
  // The engine returns every page before completing (stacks release on
  // destruction). If that invariant is ever broken, rebuild the pool
  // rather than hand the next run a partially-checked-out one.
  if (slot.allocator != nullptr && slot.allocator->PagesInUse() != 0) {
    TDFS_LOG(Warning) << "EngineArena slot " << slot_index
                      << " released with " << slot.allocator->PagesInUse()
                      << " pages in use; rebuilding pool";
    slot.allocator = std::make_unique<PageAllocator>(
        options_.page_pool_pages, options_.page_bytes,
        SpillFromArena(options_));
    slot.resources.allocator = slot.allocator.get();
    slots_rebuilt_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_rebuilt_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slot_index);
  }
  cv_.notify_one();
}

void EngineArena::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    obs_acquires_ = obs_scrubbed_ = obs_rebuilt_ = nullptr;
    return;
  }
  obs_acquires_ = metrics->GetCounter("service.arena_acquires");
  obs_scrubbed_ = metrics->GetCounter("service.arena_scrubbed_tasks");
  obs_rebuilt_ = metrics->GetCounter("service.arena_slots_rebuilt");
}

}  // namespace tdfs
