// Reusable per-device engine resources for the batch match service.
//
// Every cold RunMatching allocates and zero-fills a page pool (default
// 4096 x 8 KB = 32 MB) and a task-queue ring (default 3M ints = 12 MB)
// per device job. An EngineArena keeps a fixed set of slots — one page
// allocator plus one task queue each — and leases them to device jobs,
// which thread them into the engine through EngineConfig::resources.
//
// Lifecycle invariants (see also EngineResources in core/config.h):
//  * A slot serves one run at a time; Acquire blocks until a slot frees.
//  * The engine adopts a borrowed resource only when its geometry matches
//    the run's config, and resets its stats at adoption so per-run peak
//    counters never leak across runs. Geometry mismatches (e.g. the retry
//    escalation ladder grew page_pool_pages) silently fall back to fresh
//    allocation — reuse is an optimization, never a correctness input.
//  * On lease release the slot is scrubbed: leftover queue tasks from a
//    deadline-aborted or failed run are drained, and (defensively) a pool
//    with pages still checked out is rebuilt rather than reused.
// Under those invariants a warm run is bit-identical to a cold run: the
// engine only ever sees an empty queue and a fully free pool.

#ifndef TDFS_SERVICE_ENGINE_ARENA_H_
#define TDFS_SERVICE_ENGINE_ARENA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/config.h"
#include "mem/page_allocator.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "queue/task_queue.h"

namespace tdfs {

/// Geometry of the pooled resources. Must match the EngineConfig of the
/// runs that will borrow them, or the engine falls back to fresh
/// allocation.
struct ArenaOptions {
  int32_t page_pool_pages = 4096;
  int64_t page_bytes = 8192;
  int32_t queue_capacity_ints = TaskQueue::kDefaultCapacityInts;

  /// Pool only what the config's engine actually uses.
  bool pool_allocator = true;  // StackKind::kPaged
  bool pool_queue = true;      // StealStrategy::kTimeout

  /// Spill tier for the pooled allocators (mirrors
  /// EngineConfig::spill_to_host / max_spill_pages / governor, so adopted
  /// slots behave identically to fresh allocation).
  bool spill_to_host = false;
  int32_t max_spill_pages = 0;
  MemoryGovernor* governor = nullptr;

  static ArenaOptions FromConfig(const EngineConfig& config);
};

class EngineArena {
 public:
  EngineArena(int num_slots, const ArenaOptions& options);

  EngineArena(const EngineArena&) = delete;
  EngineArena& operator=(const EngineArena&) = delete;

  /// RAII slot lease. Move-only; releases (and scrubs) the slot on
  /// destruction. A default-constructed lease is empty.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    /// The borrowed resources, for EngineConfig::resources. Valid until
    /// the lease is destroyed.
    const EngineResources* resources() const;

    explicit operator bool() const { return arena_ != nullptr; }

    void Release();

   private:
    friend class EngineArena;
    Lease(EngineArena* arena, int slot) : arena_(arena), slot_(slot) {}
    EngineArena* arena_ = nullptr;
    int slot_ = -1;
  };

  /// Blocks until a slot is free. Progress is guaranteed: leases are held
  /// only for the duration of one engine run. `sctx` (when enabled)
  /// receives an "arena_lease" span covering the wait, so slot contention
  /// shows up on the leasing job's timeline.
  Lease Acquire(obs::SpanContext sctx = {});

  /// Returns an empty optional instead of blocking.
  std::optional<Lease> TryAcquire();

  int num_slots() const { return static_cast<int>(slots_.size()); }

  /// Lifetime stats.
  int64_t total_acquires() const {
    return acquires_.load(std::memory_order_relaxed);
  }
  int64_t tasks_scrubbed() const {
    return tasks_scrubbed_.load(std::memory_order_relaxed);
  }
  int64_t slots_rebuilt() const {
    return slots_rebuilt_.load(std::memory_order_relaxed);
  }

  /// Mirrors acquire/scrub counts into `metrics` as
  /// service.arena_{acquires,scrubbed_tasks,slots_rebuilt}.
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  struct Slot {
    std::unique_ptr<PageAllocator> allocator;
    std::unique_ptr<TaskQueue> queue;
    EngineResources resources;
  };

  void Release(int slot_index);

  const ArenaOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<int> free_;

  std::atomic<int64_t> acquires_{0};
  std::atomic<int64_t> tasks_scrubbed_{0};
  std::atomic<int64_t> slots_rebuilt_{0};

  obs::Counter* obs_acquires_ = nullptr;
  obs::Counter* obs_scrubbed_ = nullptr;
  obs::Counter* obs_rebuilt_ = nullptr;
};

}  // namespace tdfs

#endif  // TDFS_SERVICE_ENGINE_ARENA_H_
