#include "service/match_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "query/cost_planner.h"
#include "shard/shard_runner.h"
#include "util/logging.h"

namespace tdfs {

namespace {

std::future<RunResult> ImmediateFailure(Status status) {
  std::promise<RunResult> promise;
  RunResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return promise.get_future();
}

// Arena slots inherit the service's governor when the config does not
// name one, so spill accounting and admission share one authority.
ArenaOptions ArenaOptionsFor(const EngineConfig& config,
                             const ServiceOptions& options) {
  ArenaOptions arena = ArenaOptions::FromConfig(config);
  if (arena.governor == nullptr) {
    arena.governor = options.governor;
  }
  return arena;
}

}  // namespace

MatchService::MatchService(const Graph& graph, const EngineConfig& config,
                           const ServiceOptions& options)
    : dynamic_graph_(graph),
      config_(config),
      options_(options),
      plan_cache_(options.plan_cache_capacity),
      arena_(std::max(options.num_workers, 1),
             ArenaOptionsFor(config, options)) {
  const int workers = std::max(options_.num_workers, 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MatchService::~MatchService() {
  StopMetricsServer();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void MatchService::AttachMetrics(obs::MetricsRegistry* metrics) {
  plan_cache_.AttachMetrics(metrics);
  arena_.AttachMetrics(metrics);
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    obs_submitted_ = obs_rejected_ = obs_completed_ = nullptr;
    for (int s = 0; s < kNumStages; ++s) {
      obs_stage_[s].store(nullptr, std::memory_order_relaxed);
    }
    metrics_ = nullptr;
    return;
  }
  obs_submitted_ = metrics->GetCounter("service.jobs_submitted");
  obs_rejected_ = metrics->GetCounter("service.jobs_rejected");
  obs_completed_ = metrics->GetCounter("service.jobs_completed");
  for (int s = 0; s < kNumStages; ++s) {
    obs_stage_[s].store(
        metrics->GetHistogram(std::string("service.stage_us.") +
                              StageName(static_cast<Stage>(s))),
        std::memory_order_relaxed);
  }
  metrics_ = metrics;
}

const char* MatchService::StageName(Stage stage) {
  switch (stage) {
    case Stage::kAdmission:
      return "admission";
    case Stage::kPlanCache:
      return "plan_cache";
    case Stage::kSnapshot:
      return "snapshot";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kMemReserve:
      return "mem_reserve";
    case Stage::kArenaLease:
      return "arena_lease";
    case Stage::kEngineRun:
      return "engine_run";
    case Stage::kMerge:
      return "merge";
    case Stage::kFinalize:
      return "finalize";
    case Stage::kDeltaApply:
      return "delta_apply";
  }
  return "unknown";
}

void MatchService::RecordStage(Stage stage, double ms) {
  const int64_t us = static_cast<int64_t>(ms * 1000.0);
  const int i = static_cast<int>(stage);
  stage_hist_[i].Observe(us);
  obs::Observe(obs_stage_[i].load(std::memory_order_relaxed), us);
}

std::future<RunResult> MatchService::Submit(const QueryGraph& query,
                                            const JobOptions& job) {
  // One timeline row + root span per job. Children (submit-side stages,
  // slice spans, merge/finalize) all parent under the root so the whole
  // lifecycle reconstructs as one tree in the Chrome-trace export.
  obs::SpanLedger* ledger =
      config_.trace != nullptr ? config_.trace->spans() : nullptr;
  const int64_t job_id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  int64_t track = 0;
  obs::SpanLedger::Span root;
  if (ledger != nullptr) {
    track = ledger->NewTrackId("job" + std::to_string(job_id));
    root = ledger->Begin("job", track, 0, job_id);
  }
  const obs::SpanContext ctx{ledger, track, root.id()};

  // Admission control: bound jobs in flight before doing any work.
  Timer stage_timer;
  obs::SpanLedger::Span admission_span = ctx.Begin("admission");
  const int64_t limit = std::max(options_.max_pending_jobs, 1);
  if (inflight_jobs_.fetch_add(1, std::memory_order_relaxed) >= limit) {
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_rejected_);
    RecordStage(Stage::kAdmission, stage_timer.ElapsedMillis());
    return ImmediateFailure(Status::ResourceExhausted(
        "match service over capacity (" + std::to_string(limit) +
        " jobs in flight)"));
  }
  admission_span.End();
  const double admission_ms = stage_timer.ElapsedMillis();
  RecordStage(Stage::kAdmission, admission_ms);

  // Resolve the plan on the caller's thread (cache hit: O(|q|!) worst-case
  // canonicalization of a <= 16-vertex graph; in practice microseconds).
  // The snapshot is captured first so cost planning sees the same graph
  // version the job will run against.
  stage_timer.Reset();
  const std::shared_ptr<const Graph> snapshot = dynamic_graph_.Snapshot();
  std::shared_ptr<const GraphStats> stats;
  PlanOptions plan_options;
  plan_options.use_symmetry_breaking = config_.use_symmetry_breaking;
  plan_options.use_reuse = config_.use_reuse;
  plan_options.induced = config_.induced;
  plan_options.planner = config_.planner;
  plan_options.planner_bitmap_min_degree = config_.bitmap_min_degree;
  if (config_.planner == PlannerKind::kCost) {
    stats = StatsFor(snapshot);
    plan_options.stats = stats.get();
  }
  // Candidate prefiltering: resolve (or build) the filtered view of this
  // snapshot before planning, so the cost planner sees exact candidate
  // cardinalities and the cached plan is keyed to them. Stats stay those
  // of the ORIGINAL snapshot — same convention as the standalone matcher.
  std::shared_ptr<const FilteredGraph> filtered;
  if (PrefilterApplies(config_)) {
    filtered = FilteredFor(snapshot, query);
    plan_options.prefilter = config_.prefilter;
    plan_options.candidate_counts = &filtered->candidate_counts();
  }
  Result<PlanCache::PlanInfo> plan =
      plan_cache_.GetWithDemand(query, plan_options, ctx);
  const double plan_ms = stage_timer.ElapsedMillis();
  RecordStage(Stage::kPlanCache, plan_ms);
  if (!plan.ok()) {
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_rejected_);
    return ImmediateFailure(plan.status());
  }

  stage_timer.Reset();
  obs::SpanLedger::Span snapshot_span = ctx.Begin("snapshot");
  auto state = std::make_shared<JobState>();
  state->job_id = job_id;
  state->fingerprint = plan.value().fingerprint;
  state->config = config_;
  state->plan = plan.value().plan;
  state->demand_history = plan.value().demand_pages;
  state->work_history = plan.value().observed_work;
  state->snapshot = snapshot;
  state->filtered = std::move(filtered);
  state->projected_pages = ProjectedDemandPages(*state);
  if (job.deadline_ms >= 0) {
    state->config.max_run_ms = job.deadline_ms;
  } else if (state->config.max_run_ms == 0 &&
             options_.default_deadline_ms > 0) {
    state->config.max_run_ms = options_.default_deadline_ms;
  }
  // A sharded job is one slice: the shard runner owns the worker fan-out
  // (per-shard arenas, queues, and threads), so splitting it across
  // service device slices would run the whole sharded job once per slice.
  const int num_devices = shard::ShardingApplies(state->config)
                              ? 1
                              : std::max(state->config.num_devices, 1);
  state->devices_remaining = num_devices;
  state->device_results.resize(num_devices);
  state->span_track = track;
  state->root_span_id = root.id();
  state->root_span = std::move(root);
  state->stage_ms[static_cast<int>(Stage::kAdmission)] = admission_ms;
  state->stage_ms[static_cast<int>(Stage::kPlanCache)] = plan_ms;
  std::future<RunResult> future = state->promise.get_future();
  snapshot_span.End();
  const double snapshot_ms = stage_timer.ElapsedMillis();
  RecordStage(Stage::kSnapshot, snapshot_ms);
  state->stage_ms[static_cast<int>(Stage::kSnapshot)] = snapshot_ms;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs_rejected_);
      return ImmediateFailure(
          Status::FailedPrecondition("match service is shutting down"));
    }
    for (int d = 0; d < num_devices; ++d) {
      DeviceItem item;
      item.job = state;
      item.device_id = d;
      if (ledger != nullptr) {
        // Each slice gets its own timeline row: concurrent slices must
        // not interleave begin/end pairs on one row.
        item.track = ledger->NewTrackId("job" + std::to_string(job_id) +
                                        "/dev" + std::to_string(d));
        item.queue_span = ledger->Begin("queue_wait", item.track,
                                        state->root_span_id, d);
      }
      items_.push_back(std::move(item));
    }
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_submitted_);
  if (num_devices > 1) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
  return future;
}

void MatchService::WorkerLoop() {
  for (;;) {
    DeviceItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
      if (items_.empty()) {
        return;  // shutdown with the queue drained
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    RunDeviceItem(item);
  }
}

std::shared_ptr<const GraphStats> MatchService::StatsFor(
    const std::shared_ptr<const Graph>& graph) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (stats_ != nullptr && stats_graph_.lock() == graph) {
      return stats_;
    }
  }
  // Compute outside the lock (one O(n) pass); concurrent submits against
  // a fresh version may duplicate the pass, and the last writer wins —
  // the stats are identical either way.
  auto stats =
      std::make_shared<const GraphStats>(GraphStats::Compute(*graph));
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_graph_ = graph;
  stats_ = stats;
  return stats;
}

std::shared_ptr<const FilteredGraph> MatchService::FilteredFor(
    const std::shared_ptr<const Graph>& snapshot, const QueryGraph& query) {
  const std::string key = RawQueryKey(query);
  {
    std::lock_guard<std::mutex> lock(filtered_mu_);
    if (filtered_snapshot_.lock() == snapshot) {
      auto it = filtered_cache_.find(key);
      if (it != filtered_cache_.end()) {
        return it->second.filtered;
      }
    }
  }
  // Build outside the lock (a neighborhood refinement over a large
  // snapshot is far too slow to serialize submits behind). Concurrent
  // submits of the same query may duplicate the build; the first insert
  // wins and the loser's copy just serves its own job.
  auto filtered = std::make_shared<const FilteredGraph>(
      BuildFilteredGraph(*snapshot, query, config_.prefilter));
  MemoryGovernor::Reservation reservation =
      governor()->TryReserve(filtered->MemoryBytes());
  if (!reservation) {
    // No budget to hold a cached copy: serve this job uncached (the view
    // dies with the job instead of occupying governed memory).
    return filtered;
  }
  std::lock_guard<std::mutex> lock(filtered_mu_);
  if (filtered_snapshot_.lock() != snapshot) {
    // ApplyUpdate retired the snapshot the cache was keyed by (or this is
    // the first fill): every cached view describes a dead version.
    filtered_cache_.clear();
    filtered_snapshot_ = snapshot;
  }
  auto it = filtered_cache_.find(key);
  if (it != filtered_cache_.end()) {
    return it->second.filtered;  // lost the build race
  }
  if (static_cast<int64_t>(filtered_cache_.size()) >= kMaxFilteredEntries) {
    // Bounded footprint for adversarial query streams; evicting an
    // arbitrary entry is fine (a popular query re-enters on next submit).
    filtered_cache_.erase(filtered_cache_.begin());
  }
  filtered_cache_.emplace(key,
                          FilteredEntry{filtered, std::move(reservation)});
  return filtered;
}

MemoryGovernor* MatchService::governor() const {
  return MemoryGovernor::Resolve(options_.governor != nullptr
                                     ? options_.governor
                                     : config_.governor);
}

int64_t MatchService::ProjectedDemandPages(const JobState& job) const {
  const EngineConfig& config = job.config;
  if (config.stack != StackKind::kPaged) {
    return 0;  // array stacks never touch the page pool
  }
  if (job.demand_history != nullptr) {
    const int64_t history =
        job.demand_history->load(std::memory_order_relaxed);
    if (history > 0) {
      return history;  // exact peak from a completed run of this query
    }
  }
  // Cold query: depth x tau x warp count. Every concurrent warp can hold
  // a stack of one page-run per level; longer timeouts let a warp grow
  // deeper before decomposition relieves it, shorter ones cap it.
  double tau_scale = 1.0;
  if (config.steal == StealStrategy::kTimeout) {
    const double tau_ms =
        config.clock == ClockKind::kWall
            ? config.timeout_ms
            : 10.0 * static_cast<double>(config.timeout_work_units) /
                  static_cast<double>(uint64_t{1} << 18);
    tau_scale = std::clamp(tau_ms / 10.0, 0.5, 4.0);
  }
  const int64_t levels = job.plan->num_vertices;
  const int64_t warps = std::max(config.num_warps, 1);
  return std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(levels * warps * 2) *
                              tau_scale));
}

void MatchService::RunDeviceItem(DeviceItem& item) {
  JobState& job = *item.job;
  const double queue_ms = item.queued.ElapsedMillis();
  item.queue_span.End();
  RecordStage(Stage::kQueueWait, queue_ms);
  obs::SpanLedger* ledger =
      job.config.trace != nullptr ? job.config.trace->spans() : nullptr;
  // Slice-level calls hang their spans on the slice's own row, parented
  // under the job root (not the queue_wait span, which is already over).
  const obs::SpanContext ctx{ledger, item.track, job.root_span_id};
  RunResult result;
  // Memory admission: secure this slice's share of the job's projected
  // demand before leasing engine resources. Under pressure the worker
  // joins the governor's waiters queue up to the reserve timeout (capped
  // by the job's own deadline) instead of failing immediately; only an
  // expired wait fails the slice.
  const int num_devices =
      std::max<int>(static_cast<int>(job.device_results.size()), 1);
  const int64_t slice_bytes =
      job.projected_pages * job.config.page_bytes / num_devices;
  // An empty candidate set proves zero matches for the whole query: skip
  // the reservation and the engine outright (the filtered counters still
  // land so the caller sees why).
  const bool prefilter_empty =
      job.filtered != nullptr && job.filtered->AnyCandidateSetEmpty();
  MemoryGovernor::Reservation reservation;
  Timer stage_timer;
  double reserve_ms = 0.0;
  if (slice_bytes > 0 && !prefilter_empty) {
    double wait_ms = options_.reserve_timeout_ms;
    if (job.config.max_run_ms > 0 &&
        (wait_ms <= 0 || job.config.max_run_ms < wait_ms)) {
      wait_ms = job.config.max_run_ms;
    }
    MemoryGovernor* gov = governor();
    reservation = gov->ReserveBytes(slice_bytes, wait_ms, ctx);
    reserve_ms = stage_timer.ElapsedMillis();
    RecordStage(Stage::kMemReserve, reserve_ms);
    if (!reservation) {
      reservation_timeouts_.fetch_add(1, std::memory_order_relaxed);
      result.status = Status::ResourceExhausted(
          "memory reservation of " + std::to_string(slice_bytes) +
          " bytes timed out after " + std::to_string(wait_ms) +
          " ms (governor pressure: " +
          std::string(MemPressureName(gov->Pressure())) + ")");
    }
  }
  double lease_ms = 0.0;
  double engine_ms = 0.0;
  if (result.status.ok() && !prefilter_empty) {
    // Lease arena resources for exactly the duration of the engine run.
    // The engine falls back to fresh allocation when the lease's geometry
    // no longer matches (e.g. after retry escalation grew the pool).
    stage_timer.Reset();
    EngineArena::Lease lease = arena_.Acquire(ctx);
    lease_ms = stage_timer.ElapsedMillis();
    RecordStage(Stage::kArenaLease, lease_ms);
    EngineConfig device_config = job.config;
    device_config.resources = lease.resources();
    device_config.span_track = item.track;
    device_config.span_parent = job.root_span_id;
    if (device_config.governor == nullptr) {
      device_config.governor = options_.governor;
    }
    stage_timer.Reset();
    if (job.filtered != nullptr) {
      // Prefiltered job: the engine runs over the candidate-induced CSR
      // and consults the membership bitsets through config.prefiltered.
      device_config.prefiltered = job.filtered.get();
    }
    if (shard::ShardingApplies(device_config)) {
      // Single-slice sharded job: the shard runner builds its own
      // per-shard arenas and queues, so the leased shared resources do
      // not apply; RunMatchingPlanned dispatches to the shard driver.
      device_config.resources = nullptr;
      const Graph& data =
          job.filtered != nullptr ? job.filtered->graph() : *job.snapshot;
      result = RunMatchingPlanned(data, *job.plan, device_config);
    } else if (job.filtered != nullptr) {
      result = RunMatchingDevice(job.filtered->graph(), *job.plan,
                                 device_config, item.device_id);
    } else {
      result = RunMatchingDevice(*job.snapshot, *job.plan, device_config,
                                 item.device_id);
    }
    engine_ms = stage_timer.ElapsedMillis();
    RecordStage(Stage::kEngineRun, engine_ms);
  }
  if (job.filtered != nullptr && result.status.ok()) {
    // build_ms = 0: the view came from the service cache (or at least was
    // built once in Submit, outside this slice's engine time).
    RecordPrefilterStats(*job.filtered, /*build_ms=*/0.0, &result.counters);
  }
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.device_results[item.device_id] = std::move(result);
    // Critical-path approximation: concurrent slices overlap in time, so
    // the job's breakdown takes the slowest slice per stage.
    auto note = [&job](Stage s, double ms) {
      double& slot = job.stage_ms[static_cast<int>(s)];
      slot = std::max(slot, ms);
    };
    note(Stage::kQueueWait, queue_ms);
    note(Stage::kMemReserve, reserve_ms);
    note(Stage::kArenaLease, lease_ms);
    note(Stage::kEngineRun, engine_ms);
    last = --job.devices_remaining == 0;
  }
  if (last) {
    FinalizeJob(&job);
  }
}

void MatchService::FinalizeJob(JobState* job) {
  obs::SpanLedger* ledger =
      job->config.trace != nullptr ? job->config.trace->spans() : nullptr;
  const obs::SpanContext ctx{ledger, job->span_track, job->root_span_id};
  // Merge device slices exactly like RunMatchingPlanned's multi-device
  // loop, so a service job and a direct RunMatching call report identical
  // results for the same config. No lock needed: every slice is done.
  Timer stage_timer;
  obs::SpanLedger::Span merge_span = ctx.Begin("merge");
  const int num_devices = static_cast<int>(job->device_results.size());
  RunResult final_result;
  if (num_devices == 1) {
    final_result = std::move(job->device_results[0]);
  } else {
    for (int d = 0; d < num_devices; ++d) {
      RunResult& device_result = job->device_results[d];
      if (!device_result.status.ok()) {
        final_result = std::move(device_result);
        break;
      }
      if (device_result.counters.attempts > 1) {
        ++device_result.counters.devices_recovered;
      }
      final_result.match_count += device_result.match_count;
      final_result.per_device_ms.push_back(device_result.SimulatedGpuMs());
      final_result.counters.MergeFrom(device_result.counters);
      final_result.counters.attempts = std::max(
          final_result.counters.attempts, device_result.counters.attempts);
      final_result.attribution.MergeFrom(device_result.attribution);
    }
    if (final_result.status.ok()) {
      final_result.match_ms = final_result.SimulatedParallelMs();
    }
  }
  merge_span.End();
  const double merge_ms = stage_timer.ElapsedMillis();
  RecordStage(Stage::kMerge, merge_ms);
  job->stage_ms[static_cast<int>(Stage::kMerge)] = merge_ms;

  stage_timer.Reset();
  obs::SpanLedger::Span finalize_span =
      ctx.Begin("finalize", static_cast<int64_t>(final_result.match_count));
  // Service-level latency: queue wait + all slices (+ retries/backoff).
  final_result.total_ms = job->timer.ElapsedMillis();
  // Refine the plan cache's demand predictor with the observed peak, so
  // the next submission of this canonical query reserves what it really
  // needs instead of the cold heuristic.
  if (final_result.status.ok()) {
    PlanCache::RecordDemand(job->demand_history,
                            final_result.counters.pages_peak);
    // Same feedback idea for the cost planner: the observed work joins
    // the plan's history, and a large gap against the planner's estimate
    // replans the cached order with the drift calibrated in.
    PlanCache::RecordWork(job->work_history,
                          static_cast<int64_t>(
                              final_result.counters.work_units));
  }
  const double finalize_ms = stage_timer.ElapsedMillis();
  RecordStage(Stage::kFinalize, finalize_ms);
  job->stage_ms[static_cast<int>(Stage::kFinalize)] = finalize_ms;

  if (options_.slow_query_ms > 0 &&
      final_result.total_ms >= options_.slow_query_ms) {
    // One line, grep-able key=value pairs: enough to attribute the
    // latency without a trace attached. The breakdown sums (to within
    // scheduling noise) to total_ms for single-device jobs; multi-device
    // breakdowns are per-stage critical paths.
    std::ostringstream line;
    line << "slow query: job=" << job->job_id << " fingerprint=0x"
         << std::hex << job->fingerprint << std::dec
         << " status=" << (final_result.status.ok() ? "ok" : "error")
         << " total_ms=" << final_result.total_ms << " stages_ms={";
    for (int s = 0; s <= static_cast<int>(Stage::kFinalize); ++s) {
      if (s > 0) {
        line << " ";
      }
      line << StageName(static_cast<Stage>(s)) << ":" << job->stage_ms[s];
    }
    line << "} devices=" << num_devices
         << " matches=" << final_result.match_count
         << " pages_peak=" << final_result.counters.pages_peak
         << " spill_allocs=" << final_result.counters.spill_allocs
         << " spill_promotions=" << final_result.counters.spill_promotions
         << " attempts=" << final_result.counters.attempts;
    TDFS_LOG(Warning) << line.str();
  }

  finalize_span.End();
  job->root_span.SetArg(static_cast<int64_t>(final_result.match_count));
  job->root_span.End();
  inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_completed_);
  job->promise.set_value(std::move(final_result));
}

std::shared_ptr<const Graph> MatchService::Snapshot() const {
  return dynamic_graph_.Snapshot();
}

int64_t MatchService::GraphVersion() const { return dynamic_graph_.Version(); }

Result<int64_t> MatchService::RegisterContinuousQuery(const QueryGraph& query) {
  if (config_.induced) {
    return Status::InvalidArgument(
        "continuous queries require non-induced matching (the incremental "
        "layer cannot maintain induced counts across deletions)");
  }
  // Holding update_mu_ across the initial count pins the graph version:
  // no batch can slip between the count and the registration. Workers
  // never take update_mu_, so waiting on the future here cannot deadlock.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  RunResult initial = Submit(query).get();
  if (!initial.status.ok()) {
    return initial.status;
  }
  const int64_t id = next_query_id_++;
  continuous_.emplace(id, ContinuousQuery{query, initial.match_count});
  return id;
}

Status MatchService::UnregisterContinuousQuery(int64_t id) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  if (continuous_.erase(id) == 0) {
    return Status::InvalidArgument("unknown continuous query id " +
                                   std::to_string(id));
  }
  return Status::OK();
}

Result<uint64_t> MatchService::ContinuousQueryCount(int64_t id) const {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  const auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::InvalidArgument("unknown continuous query id " +
                                   std::to_string(id));
  }
  return it->second.count;
}

Result<MatchService::BatchUpdateReport> MatchService::ApplyUpdate(
    const dyn::GraphDelta& delta) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  Timer timer;

  // Batches are serialized by update_mu_, so one "updates" timeline row
  // keeps its spans balanced.
  obs::SpanLedger* ledger =
      config_.trace != nullptr ? config_.trace->spans() : nullptr;
  obs::SpanLedger::Span batch_span;
  if (ledger != nullptr) {
    if (delta_track_ == 0) {
      delta_track_ = ledger->NewTrackId("updates");
    }
    batch_span = ledger->Begin("delta_apply", delta_track_);
  }

  const std::shared_ptr<const Graph> pre = dynamic_graph_.Snapshot();
  Result<std::shared_ptr<const Graph>> post = dynamic_graph_.Apply(delta);
  if (!post.ok()) {
    return post.status();
  }

  obs::MetricsRegistry* metrics;
  obs::TraceSession* trace = config_.trace;
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics = metrics_;
  }

  BatchUpdateReport report;
  report.version = dynamic_graph_.Version();
  report.edges_inserted = static_cast<int64_t>(delta.insertions().size());
  report.edges_deleted = static_cast<int64_t>(delta.deletions().size());

  // One warm arena lease and the shared plan cache serve every query's
  // maintenance in this batch — the repeated-batch path pays neither
  // allocation nor plan compilation.
  EngineArena::Lease lease = arena_.Acquire();
  dyn::IncrementalOptions inc_options;
  inc_options.plan_provider = [this](const QueryGraph& q,
                                     const PlanOptions& po) {
    return plan_cache_.Get(q, po);
  };
  inc_options.resources = lease.resources();
  inc_options.metrics = metrics;
  inc_options.trace = trace;

  uint64_t total_lost = 0;
  uint64_t total_gained = 0;
  for (auto& [id, cq] : continuous_) {
    QueryDelta qd;
    qd.id = id;
    qd.old_count = cq.count;
    Result<dyn::DeltaCountReport> inc = dyn::CountDeltaMatches(
        *pre, *post.value(), cq.query, delta, config_, inc_options);
    if (inc.ok()) {
      qd.lost = inc.value().lost;
      qd.gained = inc.value().gained;
      qd.new_count = inc.value().ApplyTo(cq.count);
      report.delta_plans_run += inc.value().delta_plans_run;
      report.seed_edges += inc.value().seed_edges;
    } else {
      // Fall back to a full recount so the registered count never goes
      // stale; only a recount failure aborts the batch (the graph is
      // already published, so surface the error loudly).
      qd.recounted = true;
      PlanOptions plan_options;
      plan_options.use_symmetry_breaking = config_.use_symmetry_breaking;
      plan_options.use_reuse = config_.use_reuse;
      plan_options.induced = config_.induced;
      plan_options.planner = config_.planner;
      plan_options.planner_bitmap_min_degree = config_.bitmap_min_degree;
      std::shared_ptr<const GraphStats> recount_stats;
      if (config_.planner == PlannerKind::kCost) {
        recount_stats = StatsFor(post.value());
        plan_options.stats = recount_stats.get();
      }
      Result<std::shared_ptr<const MatchPlan>> plan =
          plan_cache_.Get(cq.query, plan_options);
      if (!plan.ok()) {
        return plan.status();
      }
      EngineConfig recount_config = config_;
      recount_config.resources = lease.resources();
      const RunResult full =
          RunMatchingPlanned(*post.value(), *plan.value(), recount_config);
      if (!full.status.ok()) {
        return full.status;
      }
      qd.new_count = full.match_count;
    }
    total_lost += qd.lost;
    total_gained += qd.gained;
    cq.count = qd.new_count;
    report.queries.push_back(qd);
  }

  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  if (metrics != nullptr) {
    obs::Add(metrics->GetCounter("dyn.batches_applied"));
    obs::Add(metrics->GetCounter("dyn.edges_inserted"), report.edges_inserted);
    obs::Add(metrics->GetCounter("dyn.edges_deleted"), report.edges_deleted);
    obs::Add(metrics->GetCounter("dyn.matches_lost"),
             static_cast<int64_t>(total_lost));
    obs::Add(metrics->GetCounter("dyn.matches_gained"),
             static_cast<int64_t>(total_gained));
  }
  if (trace != nullptr) {
    trace->RecordGlobal(0, obs::TraceEvent::kDeltaBatch, report.version);
  }
  batch_span.SetArg(report.version);
  batch_span.End();
  report.total_ms = timer.ElapsedMillis();
  RecordStage(Stage::kDeltaApply, report.total_ms);
  return report;
}

MatchService::Stats MatchService::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.plan_cache_hits = plan_cache_.hits();
  stats.plan_cache_misses = plan_cache_.misses();
  stats.arena_acquires = arena_.total_acquires();
  stats.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  stats.reservation_timeouts =
      reservation_timeouts_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    stats.continuous_queries = static_cast<int64_t>(continuous_.size());
  }
  for (int s = 0; s < kNumStages; ++s) {
    const obs::Histogram& h = stage_hist_[s];
    if (h.Count() == 0) {
      continue;
    }
    Stats::StageStats stage;
    stage.stage = StageName(static_cast<Stage>(s));
    stage.count = h.Count();
    stage.p50_us = h.ApproxPercentile(0.5);
    stage.p95_us = h.ApproxPercentile(0.95);
    stage.p99_us = h.ApproxPercentile(0.99);
    stage.max_us = h.Max();
    stats.stages.push_back(std::move(stage));
  }
  return stats;
}

Status MatchService::StartMetricsServer(int port) {
  const obs::MetricsRegistry* registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (metrics_server_.running()) {
      return Status::FailedPrecondition("metrics server already running");
    }
    registry = metrics_;
  }
  if (registry == nullptr) {
    // No registry attached: serve an internal one so `tdfs serve` works
    // without the embedder wiring up observability first.
    if (owned_metrics_ == nullptr) {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    AttachMetrics(owned_metrics_.get());
    registry = owned_metrics_.get();
  }
  return metrics_server_.Start(registry, port);
}

void MatchService::StopMetricsServer() { metrics_server_.Stop(); }

Status MatchService::ServeMetrics(int port, double duration_ms) {
  Status status = StartMetricsServer(port);
  if (!status.ok()) {
    return status;
  }
  Timer timer;
  while (metrics_server_.running() &&
         (duration_ms < 0 || timer.ElapsedMillis() < duration_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  StopMetricsServer();
  return Status::OK();
}

}  // namespace tdfs
