#include "service/match_service.h"

#include <algorithm>
#include <utility>

namespace tdfs {

namespace {

std::future<RunResult> ImmediateFailure(Status status) {
  std::promise<RunResult> promise;
  RunResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return promise.get_future();
}

// Arena slots inherit the service's governor when the config does not
// name one, so spill accounting and admission share one authority.
ArenaOptions ArenaOptionsFor(const EngineConfig& config,
                             const ServiceOptions& options) {
  ArenaOptions arena = ArenaOptions::FromConfig(config);
  if (arena.governor == nullptr) {
    arena.governor = options.governor;
  }
  return arena;
}

}  // namespace

MatchService::MatchService(const Graph& graph, const EngineConfig& config,
                           const ServiceOptions& options)
    : dynamic_graph_(graph),
      config_(config),
      options_(options),
      plan_cache_(options.plan_cache_capacity),
      arena_(std::max(options.num_workers, 1),
             ArenaOptionsFor(config, options)) {
  const int workers = std::max(options_.num_workers, 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MatchService::~MatchService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void MatchService::AttachMetrics(obs::MetricsRegistry* metrics) {
  plan_cache_.AttachMetrics(metrics);
  arena_.AttachMetrics(metrics);
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    obs_submitted_ = obs_rejected_ = obs_completed_ = nullptr;
    metrics_ = nullptr;
    return;
  }
  obs_submitted_ = metrics->GetCounter("service.jobs_submitted");
  obs_rejected_ = metrics->GetCounter("service.jobs_rejected");
  obs_completed_ = metrics->GetCounter("service.jobs_completed");
  metrics_ = metrics;
}

std::future<RunResult> MatchService::Submit(const QueryGraph& query,
                                            const JobOptions& job) {
  // Admission control: bound jobs in flight before doing any work.
  const int64_t limit = std::max(options_.max_pending_jobs, 1);
  if (inflight_jobs_.fetch_add(1, std::memory_order_relaxed) >= limit) {
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_rejected_);
    return ImmediateFailure(Status::ResourceExhausted(
        "match service over capacity (" + std::to_string(limit) +
        " jobs in flight)"));
  }

  // Resolve the plan on the caller's thread (cache hit: O(|q|!) worst-case
  // canonicalization of a <= 16-vertex graph; in practice microseconds).
  PlanOptions plan_options;
  plan_options.use_symmetry_breaking = config_.use_symmetry_breaking;
  plan_options.use_reuse = config_.use_reuse;
  plan_options.induced = config_.induced;
  Result<PlanCache::PlanInfo> plan =
      plan_cache_.GetWithDemand(query, plan_options);
  if (!plan.ok()) {
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_rejected_);
    return ImmediateFailure(plan.status());
  }

  auto state = std::make_shared<JobState>();
  state->config = config_;
  state->plan = plan.value().plan;
  state->demand_history = plan.value().demand_pages;
  state->snapshot = dynamic_graph_.Snapshot();
  state->projected_pages = ProjectedDemandPages(*state);
  if (job.deadline_ms >= 0) {
    state->config.max_run_ms = job.deadline_ms;
  } else if (state->config.max_run_ms == 0 &&
             options_.default_deadline_ms > 0) {
    state->config.max_run_ms = options_.default_deadline_ms;
  }
  const int num_devices = std::max(state->config.num_devices, 1);
  state->devices_remaining = num_devices;
  state->device_results.resize(num_devices);
  std::future<RunResult> future = state->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs_rejected_);
      return ImmediateFailure(
          Status::FailedPrecondition("match service is shutting down"));
    }
    for (int d = 0; d < num_devices; ++d) {
      items_.push_back(DeviceItem{state, d});
    }
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_submitted_);
  if (num_devices > 1) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
  return future;
}

void MatchService::WorkerLoop() {
  for (;;) {
    DeviceItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
      if (items_.empty()) {
        return;  // shutdown with the queue drained
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    RunDeviceItem(item);
  }
}

MemoryGovernor* MatchService::governor() const {
  return MemoryGovernor::Resolve(options_.governor != nullptr
                                     ? options_.governor
                                     : config_.governor);
}

int64_t MatchService::ProjectedDemandPages(const JobState& job) const {
  const EngineConfig& config = job.config;
  if (config.stack != StackKind::kPaged) {
    return 0;  // array stacks never touch the page pool
  }
  if (job.demand_history != nullptr) {
    const int64_t history =
        job.demand_history->load(std::memory_order_relaxed);
    if (history > 0) {
      return history;  // exact peak from a completed run of this query
    }
  }
  // Cold query: depth x tau x warp count. Every concurrent warp can hold
  // a stack of one page-run per level; longer timeouts let a warp grow
  // deeper before decomposition relieves it, shorter ones cap it.
  double tau_scale = 1.0;
  if (config.steal == StealStrategy::kTimeout) {
    const double tau_ms =
        config.clock == ClockKind::kWall
            ? config.timeout_ms
            : 10.0 * static_cast<double>(config.timeout_work_units) /
                  static_cast<double>(uint64_t{1} << 18);
    tau_scale = std::clamp(tau_ms / 10.0, 0.5, 4.0);
  }
  const int64_t levels = job.plan->num_vertices;
  const int64_t warps = std::max(config.num_warps, 1);
  return std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(levels * warps * 2) *
                              tau_scale));
}

void MatchService::RunDeviceItem(const DeviceItem& item) {
  JobState& job = *item.job;
  RunResult result;
  // Memory admission: secure this slice's share of the job's projected
  // demand before leasing engine resources. Under pressure the worker
  // joins the governor's waiters queue up to the reserve timeout (capped
  // by the job's own deadline) instead of failing immediately; only an
  // expired wait fails the slice.
  const int num_devices =
      std::max<int>(static_cast<int>(job.device_results.size()), 1);
  const int64_t slice_bytes =
      job.projected_pages * job.config.page_bytes / num_devices;
  MemoryGovernor::Reservation reservation;
  if (slice_bytes > 0) {
    double wait_ms = options_.reserve_timeout_ms;
    if (job.config.max_run_ms > 0 &&
        (wait_ms <= 0 || job.config.max_run_ms < wait_ms)) {
      wait_ms = job.config.max_run_ms;
    }
    MemoryGovernor* gov = governor();
    reservation = gov->ReserveBytes(slice_bytes, wait_ms);
    if (!reservation) {
      reservation_timeouts_.fetch_add(1, std::memory_order_relaxed);
      result.status = Status::ResourceExhausted(
          "memory reservation of " + std::to_string(slice_bytes) +
          " bytes timed out after " + std::to_string(wait_ms) +
          " ms (governor pressure: " +
          std::string(MemPressureName(gov->Pressure())) + ")");
    }
  }
  if (result.status.ok()) {
    // Lease arena resources for exactly the duration of the engine run.
    // The engine falls back to fresh allocation when the lease's geometry
    // no longer matches (e.g. after retry escalation grew the pool).
    EngineArena::Lease lease = arena_.Acquire();
    EngineConfig device_config = job.config;
    device_config.resources = lease.resources();
    if (device_config.governor == nullptr) {
      device_config.governor = options_.governor;
    }
    result = RunMatchingDevice(*job.snapshot, *job.plan, device_config,
                               item.device_id);
  }
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.device_results[item.device_id] = std::move(result);
    last = --job.devices_remaining == 0;
  }
  if (last) {
    FinalizeJob(&job);
  }
}

void MatchService::FinalizeJob(JobState* job) {
  // Merge device slices exactly like RunMatchingPlanned's multi-device
  // loop, so a service job and a direct RunMatching call report identical
  // results for the same config. No lock needed: every slice is done.
  const int num_devices = static_cast<int>(job->device_results.size());
  RunResult final_result;
  if (num_devices == 1) {
    final_result = std::move(job->device_results[0]);
  } else {
    for (int d = 0; d < num_devices; ++d) {
      RunResult& device_result = job->device_results[d];
      if (!device_result.status.ok()) {
        final_result = std::move(device_result);
        break;
      }
      if (device_result.counters.attempts > 1) {
        ++device_result.counters.devices_recovered;
      }
      final_result.match_count += device_result.match_count;
      final_result.per_device_ms.push_back(device_result.SimulatedGpuMs());
      final_result.counters.MergeFrom(device_result.counters);
      final_result.counters.attempts = std::max(
          final_result.counters.attempts, device_result.counters.attempts);
    }
    if (final_result.status.ok()) {
      final_result.match_ms = final_result.SimulatedParallelMs();
    }
  }
  // Service-level latency: queue wait + all slices (+ retries/backoff).
  final_result.total_ms = job->timer.ElapsedMillis();
  // Refine the plan cache's demand predictor with the observed peak, so
  // the next submission of this canonical query reserves what it really
  // needs instead of the cold heuristic.
  if (final_result.status.ok()) {
    PlanCache::RecordDemand(job->demand_history,
                            final_result.counters.pages_peak);
  }
  inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_completed_);
  job->promise.set_value(std::move(final_result));
}

std::shared_ptr<const Graph> MatchService::Snapshot() const {
  return dynamic_graph_.Snapshot();
}

int64_t MatchService::GraphVersion() const { return dynamic_graph_.Version(); }

Result<int64_t> MatchService::RegisterContinuousQuery(const QueryGraph& query) {
  if (config_.induced) {
    return Status::InvalidArgument(
        "continuous queries require non-induced matching (the incremental "
        "layer cannot maintain induced counts across deletions)");
  }
  // Holding update_mu_ across the initial count pins the graph version:
  // no batch can slip between the count and the registration. Workers
  // never take update_mu_, so waiting on the future here cannot deadlock.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  RunResult initial = Submit(query).get();
  if (!initial.status.ok()) {
    return initial.status;
  }
  const int64_t id = next_query_id_++;
  continuous_.emplace(id, ContinuousQuery{query, initial.match_count});
  return id;
}

Status MatchService::UnregisterContinuousQuery(int64_t id) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  if (continuous_.erase(id) == 0) {
    return Status::InvalidArgument("unknown continuous query id " +
                                   std::to_string(id));
  }
  return Status::OK();
}

Result<uint64_t> MatchService::ContinuousQueryCount(int64_t id) const {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  const auto it = continuous_.find(id);
  if (it == continuous_.end()) {
    return Status::InvalidArgument("unknown continuous query id " +
                                   std::to_string(id));
  }
  return it->second.count;
}

Result<MatchService::BatchUpdateReport> MatchService::ApplyUpdate(
    const dyn::GraphDelta& delta) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  Timer timer;

  const std::shared_ptr<const Graph> pre = dynamic_graph_.Snapshot();
  Result<std::shared_ptr<const Graph>> post = dynamic_graph_.Apply(delta);
  if (!post.ok()) {
    return post.status();
  }

  obs::MetricsRegistry* metrics;
  obs::TraceSession* trace = config_.trace;
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics = metrics_;
  }

  BatchUpdateReport report;
  report.version = dynamic_graph_.Version();
  report.edges_inserted = static_cast<int64_t>(delta.insertions().size());
  report.edges_deleted = static_cast<int64_t>(delta.deletions().size());

  // One warm arena lease and the shared plan cache serve every query's
  // maintenance in this batch — the repeated-batch path pays neither
  // allocation nor plan compilation.
  EngineArena::Lease lease = arena_.Acquire();
  dyn::IncrementalOptions inc_options;
  inc_options.plan_provider = [this](const QueryGraph& q,
                                     const PlanOptions& po) {
    return plan_cache_.Get(q, po);
  };
  inc_options.resources = lease.resources();
  inc_options.metrics = metrics;
  inc_options.trace = trace;

  uint64_t total_lost = 0;
  uint64_t total_gained = 0;
  for (auto& [id, cq] : continuous_) {
    QueryDelta qd;
    qd.id = id;
    qd.old_count = cq.count;
    Result<dyn::DeltaCountReport> inc = dyn::CountDeltaMatches(
        *pre, *post.value(), cq.query, delta, config_, inc_options);
    if (inc.ok()) {
      qd.lost = inc.value().lost;
      qd.gained = inc.value().gained;
      qd.new_count = inc.value().ApplyTo(cq.count);
      report.delta_plans_run += inc.value().delta_plans_run;
      report.seed_edges += inc.value().seed_edges;
    } else {
      // Fall back to a full recount so the registered count never goes
      // stale; only a recount failure aborts the batch (the graph is
      // already published, so surface the error loudly).
      qd.recounted = true;
      PlanOptions plan_options;
      plan_options.use_symmetry_breaking = config_.use_symmetry_breaking;
      plan_options.use_reuse = config_.use_reuse;
      plan_options.induced = config_.induced;
      Result<std::shared_ptr<const MatchPlan>> plan =
          plan_cache_.Get(cq.query, plan_options);
      if (!plan.ok()) {
        return plan.status();
      }
      EngineConfig recount_config = config_;
      recount_config.resources = lease.resources();
      const RunResult full =
          RunMatchingPlanned(*post.value(), *plan.value(), recount_config);
      if (!full.status.ok()) {
        return full.status;
      }
      qd.new_count = full.match_count;
    }
    total_lost += qd.lost;
    total_gained += qd.gained;
    cq.count = qd.new_count;
    report.queries.push_back(qd);
  }

  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  if (metrics != nullptr) {
    obs::Add(metrics->GetCounter("dyn.batches_applied"));
    obs::Add(metrics->GetCounter("dyn.edges_inserted"), report.edges_inserted);
    obs::Add(metrics->GetCounter("dyn.edges_deleted"), report.edges_deleted);
    obs::Add(metrics->GetCounter("dyn.matches_lost"),
             static_cast<int64_t>(total_lost));
    obs::Add(metrics->GetCounter("dyn.matches_gained"),
             static_cast<int64_t>(total_gained));
  }
  if (trace != nullptr) {
    trace->RecordGlobal(0, obs::TraceEvent::kDeltaBatch, report.version);
  }
  report.total_ms = timer.ElapsedMillis();
  return report;
}

MatchService::Stats MatchService::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.plan_cache_hits = plan_cache_.hits();
  stats.plan_cache_misses = plan_cache_.misses();
  stats.arena_acquires = arena_.total_acquires();
  stats.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  stats.reservation_timeouts =
      reservation_timeouts_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    stats.continuous_queries = static_cast<int64_t>(continuous_.size());
  }
  return stats;
}

}  // namespace tdfs
