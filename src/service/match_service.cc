#include "service/match_service.h"

#include <algorithm>
#include <utility>

namespace tdfs {

namespace {

std::future<RunResult> ImmediateFailure(Status status) {
  std::promise<RunResult> promise;
  RunResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return promise.get_future();
}

}  // namespace

MatchService::MatchService(const Graph& graph, const EngineConfig& config,
                           const ServiceOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      plan_cache_(options.plan_cache_capacity),
      arena_(std::max(options.num_workers, 1),
             ArenaOptions::FromConfig(config)) {
  const int workers = std::max(options_.num_workers, 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MatchService::~MatchService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void MatchService::AttachMetrics(obs::MetricsRegistry* metrics) {
  plan_cache_.AttachMetrics(metrics);
  arena_.AttachMetrics(metrics);
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    obs_submitted_ = obs_rejected_ = obs_completed_ = nullptr;
    return;
  }
  obs_submitted_ = metrics->GetCounter("service.jobs_submitted");
  obs_rejected_ = metrics->GetCounter("service.jobs_rejected");
  obs_completed_ = metrics->GetCounter("service.jobs_completed");
}

std::future<RunResult> MatchService::Submit(const QueryGraph& query,
                                            const JobOptions& job) {
  // Admission control: bound jobs in flight before doing any work.
  const int64_t limit = std::max(options_.max_pending_jobs, 1);
  if (inflight_jobs_.fetch_add(1, std::memory_order_relaxed) >= limit) {
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_rejected_);
    return ImmediateFailure(Status::ResourceExhausted(
        "match service over capacity (" + std::to_string(limit) +
        " jobs in flight)"));
  }

  // Resolve the plan on the caller's thread (cache hit: O(|q|!) worst-case
  // canonicalization of a <= 16-vertex graph; in practice microseconds).
  PlanOptions plan_options;
  plan_options.use_symmetry_breaking = config_.use_symmetry_breaking;
  plan_options.use_reuse = config_.use_reuse;
  plan_options.induced = config_.induced;
  Result<std::shared_ptr<const MatchPlan>> plan =
      plan_cache_.Get(query, plan_options);
  if (!plan.ok()) {
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_rejected_);
    return ImmediateFailure(plan.status());
  }

  auto state = std::make_shared<JobState>();
  state->config = config_;
  state->plan = plan.value();
  if (job.deadline_ms >= 0) {
    state->config.max_run_ms = job.deadline_ms;
  } else if (state->config.max_run_ms == 0 &&
             options_.default_deadline_ms > 0) {
    state->config.max_run_ms = options_.default_deadline_ms;
  }
  const int num_devices = std::max(state->config.num_devices, 1);
  state->devices_remaining = num_devices;
  state->device_results.resize(num_devices);
  std::future<RunResult> future = state->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs_rejected_);
      return ImmediateFailure(
          Status::FailedPrecondition("match service is shutting down"));
    }
    for (int d = 0; d < num_devices; ++d) {
      items_.push_back(DeviceItem{state, d});
    }
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_submitted_);
  if (num_devices > 1) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
  return future;
}

void MatchService::WorkerLoop() {
  for (;;) {
    DeviceItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
      if (items_.empty()) {
        return;  // shutdown with the queue drained
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    RunDeviceItem(item);
  }
}

void MatchService::RunDeviceItem(const DeviceItem& item) {
  JobState& job = *item.job;
  RunResult result;
  {
    // Lease arena resources for exactly the duration of the engine run.
    // The engine falls back to fresh allocation when the lease's geometry
    // no longer matches (e.g. after retry escalation grew the pool).
    EngineArena::Lease lease = arena_.Acquire();
    EngineConfig device_config = job.config;
    device_config.resources = lease.resources();
    result = RunMatchingDevice(graph_, *job.plan, device_config,
                               item.device_id);
  }
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.device_results[item.device_id] = std::move(result);
    last = --job.devices_remaining == 0;
  }
  if (last) {
    FinalizeJob(&job);
  }
}

void MatchService::FinalizeJob(JobState* job) {
  // Merge device slices exactly like RunMatchingPlanned's multi-device
  // loop, so a service job and a direct RunMatching call report identical
  // results for the same config. No lock needed: every slice is done.
  const int num_devices = static_cast<int>(job->device_results.size());
  RunResult final_result;
  if (num_devices == 1) {
    final_result = std::move(job->device_results[0]);
  } else {
    for (int d = 0; d < num_devices; ++d) {
      RunResult& device_result = job->device_results[d];
      if (!device_result.status.ok()) {
        final_result = std::move(device_result);
        break;
      }
      if (device_result.counters.attempts > 1) {
        ++device_result.counters.devices_recovered;
      }
      final_result.match_count += device_result.match_count;
      final_result.per_device_ms.push_back(device_result.SimulatedGpuMs());
      final_result.counters.MergeFrom(device_result.counters);
      final_result.counters.attempts = std::max(
          final_result.counters.attempts, device_result.counters.attempts);
    }
    if (final_result.status.ok()) {
      final_result.match_ms = final_result.SimulatedParallelMs();
    }
  }
  // Service-level latency: queue wait + all slices (+ retries/backoff).
  final_result.total_ms = job->timer.ElapsedMillis();
  inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_completed_);
  job->promise.set_value(std::move(final_result));
}

MatchService::Stats MatchService::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.plan_cache_hits = plan_cache_.hits();
  stats.plan_cache_misses = plan_cache_.misses();
  stats.arena_acquires = arena_.total_acquires();
  return stats;
}

}  // namespace tdfs
