// Asynchronous batch matching: the one-shot matcher as a throughput engine.
//
// A MatchService owns a worker pool, a PlanCache, and an EngineArena, and
// serves counting jobs against one data graph:
//
//   tdfs::MatchService service(graph, tdfs::TdfsConfig());
//   std::future<tdfs::RunResult> f = service.Submit(query);
//   tdfs::RunResult r = f.get();
//
// Concurrency model. Submit compiles (or cache-hits) the plan on the
// caller's thread and enqueues one work item per device slice — a
// multi-device job is decomposed into num_devices independent items that
// share a JobState. Workers pull items, lease arena resources, and run
// RunMatchingDevice (the per-device retry/escalation unit); the worker
// that finishes a job's last slice merges per-device results exactly like
// RunMatchingPlanned (summed counts, per_device_ms, max attempts,
// devices_recovered) and fulfills the promise. No worker ever waits on
// another job's completion and leases are held only while an engine runs,
// so the pool cannot deadlock; slices of different jobs (and of the same
// job) run concurrently instead of back-to-back.
//
// Admission control bounds jobs in flight (queued + running): Submit
// returns an already-failed future (kResourceExhausted) beyond the bound
// rather than queueing without limit. Per-job deadlines map onto
// EngineConfig::max_run_ms, and failures retry per the config's
// RetryPolicy, both enforced inside the device slice.
//
// Destruction drains: queued jobs still execute, their futures complete,
// then workers join. Submit after shutdown begins is rejected.
//
// Batch-dynamic updates. The service owns a dyn::DynamicGraph; every job
// captures the current snapshot at Submit, so in-flight jobs are never
// exposed to a half-applied (or later) batch. ApplyUpdate(delta)
// publishes the next graph version and incrementally maintains the
// counts of all registered continuous queries (dyn/incremental.h),
// reusing the plan cache for per-rank delta plans and one arena lease
// for the whole batch — this is the warm path BENCH_dynamic measures
// against full recounts. If incremental maintenance fails for a query
// (e.g. an engine deadline), that query falls back to a full recount on
// the new snapshot, so registered counts never go stale silently.

#ifndef TDFS_SERVICE_MATCH_SERVICE_H_
#define TDFS_SERVICE_MATCH_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "dyn/dynamic_graph.h"
#include "mem/memory_governor.h"
#include "dyn/graph_delta.h"
#include "dyn/incremental.h"
#include "query/candidate_filter.h"
#include "obs/prometheus.h"
#include "obs/span.h"
#include "service/engine_arena.h"
#include "service/plan_cache.h"
#include "util/timer.h"

namespace tdfs {

struct ServiceOptions {
  /// Worker threads executing device slices (also the arena slot count,
  /// so Acquire never blocks a worker).
  int num_workers = 4;

  /// Jobs admitted but not yet completed. Submissions beyond this are
  /// rejected with kResourceExhausted instead of queueing unboundedly.
  int max_pending_jobs = 256;

  int64_t plan_cache_capacity = 64;

  /// Deadline applied to jobs that do not set their own (and whose config
  /// has max_run_ms == 0). 0 = unlimited.
  double default_deadline_ms = 0.0;

  /// Budget authority for memory admission control and the arena's spill
  /// accounting. Null falls back to EngineConfig::governor, then the
  /// process-global governor (inert unless given a budget).
  MemoryGovernor* governor = nullptr;

  /// How long a device slice waits for its memory reservation when the
  /// governor is under pressure, before failing the job with
  /// kResourceExhausted — the waiters queue that replaces immediate
  /// rejection. Capped by the job's own deadline. <= 0: non-blocking.
  double reserve_timeout_ms = 250.0;

  /// Jobs whose end-to-end latency (submit to future fulfillment) meets
  /// this threshold are logged at WARNING with a per-stage breakdown,
  /// the plan fingerprint, pages_peak, and spill counters — enough to
  /// attribute a latency outlier without a trace session attached.
  /// <= 0 disables the slow-query log.
  double slow_query_ms = 0.0;
};

struct JobOptions {
  /// Kernel-time deadline for this job (EngineConfig::max_run_ms
  /// semantics: abort with kDeadlineExceeded and a partial count).
  /// Negative = use the service default.
  double deadline_ms = -1.0;
};

class MatchService {
 public:
  /// `graph` must outlive the service. `config` is the template for every
  /// job (engine, devices, retry policy); per-job options override the
  /// deadline only.
  MatchService(const Graph& graph, const EngineConfig& config,
               const ServiceOptions& options = ServiceOptions{});
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Schedules a counting job. The future always becomes ready: with a
  /// result, a per-job failure status, or a rejection
  /// (kResourceExhausted from admission control, kFailedPrecondition
  /// after shutdown).
  std::future<RunResult> Submit(const QueryGraph& query,
                                const JobOptions& job = JobOptions{});

  /// Lifecycle stages a job passes through. Every stage is timed into an
  /// always-on latency histogram (see Stats::stages) and, when the
  /// service config carries a TraceSession, recorded as a span on the
  /// job's timeline. kDeltaApply covers ApplyUpdate batches, not jobs.
  enum class Stage : int {
    kAdmission = 0,  // capacity check in Submit
    kPlanCache,      // plan lookup (+ compile on miss)
    kSnapshot,       // graph snapshot + demand projection
    kQueueWait,      // device slice queued for a worker
    kMemReserve,     // governor admission reservation
    kArenaLease,     // arena slot wait
    kEngineRun,      // RunMatchingDevice (incl. retries)
    kMerge,          // device-slice merge
    kFinalize,       // demand record + promise fulfillment
    kDeltaApply,     // one ApplyUpdate batch
  };
  static constexpr int kNumStages = 10;
  static const char* StageName(Stage stage);

  struct Stats {
    int64_t submitted = 0;  // admitted jobs
    int64_t rejected = 0;   // admission-control rejections
    int64_t completed = 0;  // futures fulfilled (any status)
    int64_t plan_cache_hits = 0;
    int64_t plan_cache_misses = 0;
    int64_t arena_acquires = 0;
    int64_t batches_applied = 0;      // ApplyUpdate successes
    int64_t continuous_queries = 0;   // currently registered
    /// Device slices whose memory reservation timed out (job failed with
    /// kResourceExhausted after waiting, distinct from `rejected`).
    int64_t reservation_timeouts = 0;

    /// Per-stage latency distribution (microseconds) since construction.
    /// Percentiles are log2-bucket approximations (obs::Histogram);
    /// stages that never ran are omitted.
    struct StageStats {
      std::string stage;
      int64_t count = 0;
      int64_t p50_us = 0;
      int64_t p95_us = 0;
      int64_t p99_us = 0;
      int64_t max_us = 0;
    };
    std::vector<StageStats> stages;
  };
  Stats GetStats() const;

  // ---- Prometheus scrape endpoint ----

  /// Starts an HTTP scrape endpoint (GET /metrics, exposition format
  /// 0.0.4) on `port` (0 = ephemeral; see metrics_port()). Uses the
  /// registry from AttachMetrics when one is attached; otherwise attaches
  /// an internal registry so the endpoint works out of the box. Fails if
  /// already running or the port cannot be bound. Not thread-safe against
  /// itself or AttachMetrics.
  Status StartMetricsServer(int port);

  /// Stops the scrape endpoint. Idempotent; also runs at destruction.
  void StopMetricsServer();

  /// Bound scrape port; 0 when the endpoint is not running.
  int metrics_port() const { return metrics_server_.port(); }

  /// Blocking convenience for CLI serving: StartMetricsServer(port), then
  /// sleep until `duration_ms` elapses (forever when negative) or
  /// StopMetricsServer is called from another thread.
  Status ServeMetrics(int port, double duration_ms = -1.0);

  // ---- batch-dynamic updates ----

  /// One registered query's count change across a batch.
  struct QueryDelta {
    int64_t id = 0;
    uint64_t old_count = 0;
    uint64_t lost = 0;
    uint64_t gained = 0;
    uint64_t new_count = 0;
    /// True when incremental maintenance failed and the count came from a
    /// full recount instead (lost/gained are then 0/0 placeholders).
    bool recounted = false;
  };

  struct BatchUpdateReport {
    int64_t version = 0;  // graph version after the batch
    int64_t edges_inserted = 0;
    int64_t edges_deleted = 0;
    std::vector<QueryDelta> queries;
    int64_t delta_plans_run = 0;
    int64_t seed_edges = 0;
    double total_ms = 0.0;  // whole batch: apply + all query maintenance
  };

  /// Registers `query` for incremental maintenance: counts it on the
  /// current snapshot (through the normal job path) and returns a handle
  /// for ContinuousQueryCount. Fails on queries the incremental layer
  /// cannot maintain (induced configs) and on count failures.
  Result<int64_t> RegisterContinuousQuery(const QueryGraph& query);

  /// Removes a registered query. Unknown handles fail.
  Status UnregisterContinuousQuery(int64_t id);

  /// The maintained count of a registered query on the current graph
  /// version.
  Result<uint64_t> ContinuousQueryCount(int64_t id) const;

  /// Applies one validated edge batch: publishes the next graph version
  /// (jobs submitted afterwards see it; in-flight jobs keep their
  /// snapshot) and updates every registered query's count incrementally.
  /// Batches are serialized; concurrent Submits are never blocked.
  Result<BatchUpdateReport> ApplyUpdate(const dyn::GraphDelta& delta);

  /// Current graph snapshot / number of applied batches.
  std::shared_ptr<const Graph> Snapshot() const;
  int64_t GraphVersion() const;

  PlanCache* plan_cache() { return &plan_cache_; }
  EngineArena* arena() { return &arena_; }

  /// Mirrors service/cache/arena counters into `metrics`
  /// (service.jobs_{submitted,rejected,completed} plus the cache and
  /// arena counter families).
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  struct JobState {
    int64_t job_id = 0;
    /// PlanCacheFingerprint of the job's canonical query (slow-query log
    /// grouping key).
    uint64_t fingerprint = 0;
    EngineConfig config;
    std::shared_ptr<const MatchPlan> plan;
    /// Plan-cache demand history handle (peak pages over past runs of the
    /// same canonical query); refined with this job's pages_peak at
    /// finalize. Null when the cache had no handle.
    std::shared_ptr<std::atomic<int64_t>> demand_history;
    /// Plan-cache observed-work handle; refined with this job's
    /// work_units at finalize so drifting cost plans trigger a calibrated
    /// replan on a later hit.
    std::shared_ptr<std::atomic<int64_t>> work_history;
    /// Projected page demand for admission (history, else heuristic).
    int64_t projected_pages = 0;
    /// Graph version captured at Submit; the whole job runs against it
    /// even if ApplyUpdate publishes newer versions meanwhile.
    std::shared_ptr<const Graph> snapshot;
    /// Candidate-filtered view of the snapshot for this exact query
    /// instance (service FilteredGraph cache). Null when prefiltering is
    /// off or does not apply to this config; when set, device slices run
    /// on filtered->graph() with EngineConfig::prefiltered wired up.
    std::shared_ptr<const FilteredGraph> filtered;
    std::promise<RunResult> promise;
    Timer timer;

    /// Service control-plane timeline row + root span for this job (both
    /// zero/inert without a TraceSession). Ended at finalize.
    int64_t span_track = 0;
    uint64_t root_span_id = 0;
    obs::SpanLedger::Span root_span;

    std::mutex mu;
    std::vector<RunResult> device_results;
    int devices_remaining = 0;
    /// Per-stage latency attribution for THIS job (milliseconds). Submit-
    /// side stages are written once before enqueue; slice stages take the
    /// max across device slices under `mu` (a critical-path
    /// approximation: concurrent slices overlap, so summing them would
    /// overshoot wall time).
    double stage_ms[kNumStages] = {};
  };

  struct DeviceItem {
    std::shared_ptr<JobState> job;
    int device_id = 0;
    /// Slice timeline row (0 without a TraceSession).
    int64_t track = 0;
    /// Open while the slice sits in the worker queue.
    obs::SpanLedger::Span queue_span;
    /// Queue-wait clock, started at enqueue.
    Timer queued;
  };

  void WorkerLoop();
  void RunDeviceItem(DeviceItem& item);
  void FinalizeJob(JobState* job);

  /// Observes one stage duration into the always-on histogram (and the
  /// attached registry mirror, when any).
  void RecordStage(Stage stage, double ms);

  /// The governor admission control runs against (never null).
  MemoryGovernor* governor() const;

  /// GraphStats for `graph` (a snapshot of dynamic_graph_), computed on
  /// first use per graph version and cached — the cost planner's
  /// once-per-graph sampling. Only called when config_.planner == kCost.
  std::shared_ptr<const GraphStats> StatsFor(
      const std::shared_ptr<const Graph>& graph);

  /// Candidate-filtered view of `snapshot` for this exact query instance
  /// (raw key, not canonical: candidate sets are indexed by concrete
  /// query-vertex ids). Served from filtered_cache_ when the snapshot is
  /// still current; built (and cached, memory charged to the governor)
  /// otherwise. Never fails — an uncacheable build is returned uncached.
  std::shared_ptr<const FilteredGraph> FilteredFor(
      const std::shared_ptr<const Graph>& snapshot, const QueryGraph& query);

  /// Admission math: projected page demand for one job. Uses the plan
  /// cache's recorded peak when the query has run before; otherwise a
  /// query-depth x tau x warp-count heuristic (deeper plans, more warps,
  /// and longer timeouts all grow concurrent stack footprint).
  int64_t ProjectedDemandPages(const JobState& job) const;

  struct ContinuousQuery {
    QueryGraph query;
    uint64_t count = 0;
  };

  dyn::DynamicGraph dynamic_graph_;
  const EngineConfig config_;
  const ServiceOptions options_;

  /// Cost-planner statistics cache, keyed by snapshot identity (a new
  /// graph version computes fresh stats; the stats fingerprint then
  /// changes the plan-cache key, invalidating cached orders). The graph
  /// key is deliberately a weak_ptr: holding the snapshot shared would
  /// pin a RETIRED graph version (plus its adjacency arrays) in memory
  /// for the whole service lifetime after ApplyUpdate publishes a newer
  /// one. Identity is still exact — weak_ptr::lock compares control
  /// blocks, so a recycled allocation can never false-hit.
  mutable std::mutex stats_mu_;
  std::weak_ptr<const Graph> stats_graph_;
  std::shared_ptr<const GraphStats> stats_;

  /// FilteredGraph cache: one entry per (current snapshot, raw query key).
  /// Entries carry a governor reservation charging their memory; the whole
  /// cache is dropped when ApplyUpdate retires the snapshot (weak_ptr, as
  /// above — a retired version's filtered views must not stay pinned).
  struct FilteredEntry {
    std::shared_ptr<const FilteredGraph> filtered;
    MemoryGovernor::Reservation reservation;
  };
  static constexpr int64_t kMaxFilteredEntries = 16;
  mutable std::mutex filtered_mu_;
  std::weak_ptr<const Graph> filtered_snapshot_;
  std::map<std::string, FilteredEntry> filtered_cache_;

  PlanCache plan_cache_;
  EngineArena arena_;

  /// Serializes ApplyUpdate and RegisterContinuousQuery (a registration's
  /// initial count must not interleave with a batch).
  mutable std::mutex update_mu_;
  std::map<int64_t, ContinuousQuery> continuous_;  // guarded by update_mu_
  int64_t next_query_id_ = 1;                      // guarded by update_mu_
  int64_t delta_track_ = 0;                        // guarded by update_mu_
  std::atomic<int64_t> batches_applied_{0};
  obs::MetricsRegistry* metrics_ = nullptr;  // guarded by mu_

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<DeviceItem> items_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  std::atomic<int64_t> inflight_jobs_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> reservation_timeouts_{0};
  std::atomic<int64_t> next_job_id_{1};

  obs::Counter* obs_submitted_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;

  /// Always-on per-stage latency histograms (microseconds) — the source
  /// for Stats::stages. The atomic mirrors point into the attached
  /// registry ("service.stage_us.<stage>") and are observed from worker
  /// threads, hence not guarded by mu_.
  obs::Histogram stage_hist_[kNumStages];
  std::atomic<obs::Histogram*> obs_stage_[kNumStages] = {};

  /// Prometheus scrape endpoint + the registry it serves when the
  /// embedder never attached one.
  obs::MetricsHttpServer metrics_server_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
};

}  // namespace tdfs

#endif  // TDFS_SERVICE_MATCH_SERVICE_H_
