#include "service/plan_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "query/cost_planner.h"

namespace tdfs {

namespace {

// True when this options/query combination actually engages the cost
// planner (mirrors the CompilePlan dispatch): forced orders and delta
// plans pin the order themselves, and kCost without stats degrades to
// greedy — none of those may key (or replan) as cost plans.
bool CostPlanned(const PlanOptions& options) {
  return options.planner == PlannerKind::kCost && options.stats != nullptr &&
         options.forced_order.empty() && options.delta_edge_rank < 0;
}

void AppendU64(std::string* out, uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<char>((value >> (8 * b)) & 0xff));
  }
}

// One position of an encoding: the vertex's label and the bitmask of
// already-placed positions it is adjacent to. Lexicographic order on the
// sequence of cells defines the canonical form.
using Cell = std::pair<Label, uint32_t>;

void AppendCell(std::string* out, const Cell& cell) {
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((cell.first >> (8 * b)) & 0xff));
  }
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((cell.second >> (8 * b)) & 0xff));
  }
}

// True when u and w are interchangeable by the automorphism that swaps
// just the two of them: same label and same neighborhoods outside {u, w}
// (the u-w edge itself is symmetric). Placing w right after having tried u
// at the same search position explores an isomorphic subtree, so the
// search skips it.
bool TwinVertices(const QueryGraph& q, int u, int w) {
  if (q.VertexLabel(u) != q.VertexLabel(w)) {
    return false;
  }
  const uint32_t outside = ~((1u << u) | (1u << w));
  return (q.NeighborMask(u) & outside) == (q.NeighborMask(w) & outside);
}

// Backtracking search for the lexicographically smallest cell sequence.
struct CanonSearch {
  const QueryGraph& q;
  int n;
  std::vector<Cell> best;
  bool have_best = false;
  std::vector<int> perm;  // perm[pos] = original vertex placed at pos
  std::vector<Cell> cur;
  uint32_t used = 0;

  explicit CanonSearch(const QueryGraph& query)
      : q(query), n(query.NumVertices()), perm(n), cur(n) {}

  // `tight` = the cells placed so far equal best's prefix, so best[pos]
  // still bounds admissible cells. A strictly smaller cell clears it.
  void Recurse(int pos, bool tight) {
    if (pos == n) {
      // Non-tight subtrees run unpruned and reach leaves worse than best,
      // so the leaf must compare, not blindly overwrite.
      if (!have_best || cur < best) {
        best = cur;
        have_best = true;
      }
      return;
    }
    uint32_t skip_twins = 0;
    for (int v = 0; v < n; ++v) {
      if ((used >> v) & 1u) {
        continue;
      }
      if ((skip_twins >> v) & 1u) {
        continue;
      }
      uint32_t adjbits = 0;
      for (int p = 0; p < pos; ++p) {
        if (q.HasEdge(perm[p], v)) {
          adjbits |= 1u << p;
        }
      }
      const Cell cell{q.VertexLabel(v), adjbits};
      bool still_tight = false;
      if (tight && have_best) {
        if (cell > best[pos]) {
          continue;  // prefix equal, this cell already worse
        }
        still_tight = cell == best[pos];
      }
      for (int w = v + 1; w < n; ++w) {
        if (!((used >> w) & 1u) && TwinVertices(q, v, w)) {
          skip_twins |= 1u << w;
        }
      }
      perm[pos] = v;
      cur[pos] = cell;
      used |= 1u << v;
      Recurse(pos + 1, still_tight);
      used &= ~(1u << v);
    }
  }
};

}  // namespace

std::string RawQueryKey(const QueryGraph& q) {
  std::string out;
  out.push_back(static_cast<char>(q.NumVertices()));
  for (int v = 0; v < q.NumVertices(); ++v) {
    uint32_t adjbits = 0;
    for (int p = 0; p < v; ++p) {
      if (q.HasEdge(p, v)) {
        adjbits |= 1u << p;
      }
    }
    AppendCell(&out, Cell{q.VertexLabel(v), adjbits});
  }
  return out;
}

std::string CanonicalQueryKey(const QueryGraph& query) {
  CanonSearch search(query);
  search.Recurse(0, /*tight=*/true);
  std::string out;
  out.push_back(static_cast<char>(query.NumVertices()));
  for (const Cell& cell : search.best) {
    AppendCell(&out, cell);
  }
  return out;
}

std::string PlanCacheKey(const QueryGraph& query, const PlanOptions& options) {
  std::string key;
  // Options first: every knob participates, so changing one can never
  // serve a plan compiled under another. The planner bit is set only when
  // cost planning actually engages, so a kCost request without stats
  // shares the greedy entry it would compile anyway.
  const bool cost_planned = CostPlanned(options);
  key.push_back(static_cast<char>((options.use_symmetry_breaking ? 1 : 0) |
                                  (options.use_reuse ? 2 : 0) |
                                  (options.induced ? 4 : 0) |
                                  (cost_planned ? 8 : 0) |
                                  (static_cast<int>(options.prefilter) << 4)));
  if (cost_planned) {
    // The data-graph statistics fingerprint joins the key: a changed
    // graph (new snapshot version, different labeling) can never serve an
    // order tuned for the old one. The backend threshold participates
    // too; cost_calibration deliberately does NOT (feedback refines the
    // SAME entry rather than forking it).
    key.push_back('S');
    AppendU64(&key, options.stats->fingerprint);
    AppendU64(&key, static_cast<uint64_t>(options.planner_bitmap_min_degree));
    if (options.candidate_counts != nullptr) {
      // Exact candidate cardinalities steer the cost order; two runs with
      // different prefilter results must not share one entry.
      key.push_back('P');
      for (const int64_t c : *options.candidate_counts) {
        AppendU64(&key, static_cast<uint64_t>(c));
      }
    }
  }
  if (options.delta_edge_rank >= 0) {
    // A delta rank indexes the query's canonical edge list, which names
    // concrete vertex ids — like a forced order, it is not
    // relabeling-invariant, so key by raw structure + the rank.
    key.push_back('D');
    key.push_back(static_cast<char>(options.delta_edge_rank));
    key += RawQueryKey(query);
    return key;
  }
  if (options.forced_order.empty()) {
    if (options.prefilter != PrefilterKind::kOff) {
      // A prefiltered plan is executed against a FilteredGraph whose
      // candidate sets are indexed by concrete query-vertex ids, and the
      // engines consult them through plan.order. Serving the plan to a
      // merely isomorphic instance would pair one instance's order with
      // another instance's candidate sets, so key by raw structure.
      key.push_back('R');
      key += RawQueryKey(query);
    } else {
      key.push_back('C');  // canonical: relabeling-invariant
      key += CanonicalQueryKey(query);
    }
  } else {
    // A forced order names concrete vertex ids; canonicalizing would remap
    // them. Key by raw structure + the order itself.
    key.push_back('F');
    key += RawQueryKey(query);
    for (int v : options.forced_order) {
      key.push_back(static_cast<char>(v));
    }
  }
  return key;
}

PlanCache::PlanCache(int64_t capacity)
    : capacity_(std::max<int64_t>(capacity, 1)) {}

int64_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

void PlanCache::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    obs_hits_ = obs_misses_ = obs_evictions_ = nullptr;
    obs_replans_ = obs_calibration_clamped_ = nullptr;
    return;
  }
  obs_hits_ = metrics->GetCounter("service.plan_cache_hits");
  obs_misses_ = metrics->GetCounter("service.plan_cache_misses");
  obs_evictions_ = metrics->GetCounter("service.plan_cache_evictions");
  obs_replans_ = metrics->GetCounter("service.planner_replans");
  obs_calibration_clamped_ = metrics->GetCounter("planner.calibration_clamped");
}

Result<std::shared_ptr<const MatchPlan>> PlanCache::Get(
    const QueryGraph& query, const PlanOptions& options) {
  Result<PlanInfo> info = GetWithDemand(query, options);
  if (!info.ok()) {
    return info.status();
  }
  return std::move(info.value().plan);
}

Result<PlanCache::PlanInfo> PlanCache::GetWithDemand(
    const QueryGraph& query, const PlanOptions& options,
    obs::SpanContext sctx) {
  obs::SpanLedger::Span lookup = sctx.Begin("plan_lookup");
  const std::string key = PlanCacheKey(query, options);
  const uint64_t fingerprint = PlanCacheFingerprint(key);
  // Set on a hit whose observed work drifted far above the cost model's
  // estimate: the plan is recompiled below (outside the lock) with the
  // drift folded into the calibration term.
  double drift_ratio = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs_hits_);
      const Entry& entry = *it->second;
      if (CostPlanned(options) && entry.replans < kMaxPlannerReplans &&
          entry.plan->estimated_work > 0 && entry.observed_work != nullptr) {
        const double observed = static_cast<double>(
            entry.observed_work->load(std::memory_order_relaxed));
        if (observed > kReplanDriftRatio * entry.plan->estimated_work) {
          drift_ratio = observed / entry.plan->estimated_work;
        }
      }
      if (drift_ratio == 0.0) {
        return PlanInfo{entry.plan, entry.demand_pages, entry.observed_work,
                        entry.fingerprint};
      }
    }
  }
  lookup.End();
  // Compile outside the lock: a slow compile must not serialize hits. Two
  // threads may race to compile the same key; the loser adopts the
  // winner's entry below. Replans recompile with the observed drift as
  // the cost model's calibration, so the refreshed order answers the
  // density the graph actually showed.
  obs::SpanLedger::Span compile = sctx.Begin("plan_compile");
  PlanOptions effective = options;
  effective.clamp_counter = obs_calibration_clamped_;
  if (drift_ratio > 0.0) {
    effective.cost_calibration = options.cost_calibration * drift_ratio;
  }
  Result<MatchPlan> compiled = CompilePlan(query, effective);
  if (!compiled.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_misses_);
    return compiled.status();
  }
  auto plan = std::make_shared<const MatchPlan>(std::move(compiled.value()));
  auto demand = std::make_shared<std::atomic<int64_t>>(0);
  auto observed = std::make_shared<std::atomic<int64_t>>(0);
  compile.End();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end() && drift_ratio == 0.0) {
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_hits_);
    return PlanInfo{it->second->plan, it->second->demand_pages,
                    it->second->observed_work, it->second->fingerprint};
  }
  if (it != index_.end()) {
    // Replan: refresh the entry in place — new plan, fresh work history
    // (the old one described the old order), bounded replan budget. The
    // demand history survives (page demand tracks the query, not the
    // order). A concurrent replan of the same entry may land twice; the
    // replans counter still bounds the chain.
    Entry& entry = *it->second;
    lru_.splice(lru_.begin(), lru_, it->second);
    entry.plan = plan;
    entry.observed_work = observed;
    ++entry.replans;
    demand = entry.demand_pages;
    planner_replans_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_replans_);
    return PlanInfo{std::move(plan), std::move(demand), std::move(observed),
                    fingerprint};
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Add(obs_misses_);
  const int replans = drift_ratio > 0.0 ? 1 : 0;
  if (replans > 0) {
    planner_replans_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_replans_);
  }
  lru_.push_front(Entry{key, plan, demand, observed, fingerprint, replans});
  index_[key] = lru_.begin();
  while (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs_evictions_);
  }
  return PlanInfo{std::move(plan), std::move(demand), std::move(observed),
                  fingerprint};
}

uint64_t PlanCacheFingerprint(std::string_view key) {
  // FNV-1a 64: tiny, stable across runs, and collision-safe enough for a
  // log-grouping key (the cache itself still compares full keys).
  uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void PlanCache::RecordDemand(
    const std::shared_ptr<std::atomic<int64_t>>& d, int64_t pages_peak) {
  if (d == nullptr || pages_peak <= 0) {
    return;
  }
  int64_t seen = d->load(std::memory_order_relaxed);
  while (pages_peak > seen &&
         !d->compare_exchange_weak(seen, pages_peak,
                                   std::memory_order_relaxed)) {
  }
}

void PlanCache::RecordWork(
    const std::shared_ptr<std::atomic<int64_t>>& w, int64_t work_units) {
  if (w == nullptr || work_units <= 0) {
    return;
  }
  int64_t seen = w->load(std::memory_order_relaxed);
  while (work_units > seen &&
         !w->compare_exchange_weak(seen, work_units,
                                   std::memory_order_relaxed)) {
  }
}

}  // namespace tdfs
