// Compiled-plan cache for the batch match service.
//
// Plan compilation (matching order, backward sets, reuse sources, symmetry
// restrictions) is pure: it depends only on the query graph's structure,
// its labels, and the PlanOptions. A service processing a query stream
// therefore keys compiled plans by a *canonical* encoding of the query —
// two queries that are equal up to vertex relabeling hit the same entry —
// plus every PlanOptions knob, so an option change can never serve a stale
// plan.
//
// Correctness note: a cached plan speaks in *positions* of its own
// matching order, not original vertex ids, so serving q1's plan for an
// isomorphic q2 yields the exact same match COUNT (counts are isomorphism
// invariants). Callers that need per-query vertex correspondence
// (RunMatchingCollect row order) must compile per query instead; the
// service layer only counts. Queries with a forced_order are keyed by
// their raw (uncanonicalized) encoding, because the forced order names
// concrete vertex ids and is not relabeling-invariant.

#ifndef TDFS_SERVICE_PLAN_CACHE_H_
#define TDFS_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/span.h"
#include "query/plan.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace tdfs {

/// Canonical byte encoding of a query graph: identical for any two queries
/// equal up to vertex relabeling (vertex labels preserved), distinct
/// otherwise. Computed by a pruned backtracking search for the
/// lexicographically smallest (label, backward-adjacency-bits) sequence
/// over all vertex orderings — exhaustive like the automorphism module,
/// with twin-skipping so the symmetric worst cases (cliques, stars, empty
/// graphs) stay linear in practice. Queries have at most 16 vertices.
std::string CanonicalQueryKey(const QueryGraph& query);

/// Raw (identity-order) byte encoding of a query graph: identical only for
/// queries with the same vertex ids, labels, and edges. Used wherever an
/// artifact is indexed by concrete query-vertex ids and must not be shared
/// across merely isomorphic instances (forced orders, delta plans,
/// prefiltered plans, FilteredGraph cache entries).
std::string RawQueryKey(const QueryGraph& query);

/// Cache key for (query, options). Exposed for tests.
std::string PlanCacheKey(const QueryGraph& query, const PlanOptions& options);

/// 64-bit FNV-1a of a cache key: the stable "plan fingerprint" that slow-
/// query logs and dashboards use to group jobs by canonical query without
/// shipping the full key. Exposed for tests.
uint64_t PlanCacheFingerprint(std::string_view key);

/// Thread-safe LRU cache of compiled MatchPlans. Plans are handed out as
/// shared_ptr<const MatchPlan>, so an entry evicted mid-use stays alive
/// until its last borrower finishes.
class PlanCache {
 public:
  /// Keeps at most `capacity` plans (>= 1).
  explicit PlanCache(int64_t capacity = 64);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for (query, options), compiling and inserting
  /// on miss. Compilation failures are returned and never cached.
  Result<std::shared_ptr<const MatchPlan>> Get(const QueryGraph& query,
                                               const PlanOptions& options);

  /// A cached plan plus its demand history. `demand_pages` is the peak
  /// page demand (RunCounters::pages_peak, both tiers) observed across
  /// completed runs of this canonical query — the cache entry doubles as
  /// a demand predictor for MatchService admission control. The handle is
  /// shared: it stays valid (and keeps accumulating) across eviction and
  /// re-insertion races, though a re-compiled entry starts a fresh
  /// history.
  struct PlanInfo {
    std::shared_ptr<const MatchPlan> plan;
    std::shared_ptr<std::atomic<int64_t>> demand_pages;
    /// Peak work_units observed across completed runs of this plan
    /// (RecordWork). Shared like demand_pages; drift against the plan's
    /// estimated_work triggers a calibrated replan on a later hit.
    std::shared_ptr<std::atomic<int64_t>> observed_work;
    /// PlanCacheFingerprint of the entry's key (identifies the canonical
    /// query in slow-query logs without exposing the raw encoding).
    uint64_t fingerprint = 0;
  };
  /// `sctx` (when enabled) receives a "plan_lookup" span over the cache
  /// probe and, on miss, a "plan_compile" span over compilation — that is
  /// how plan-cache time lands on the submitting job's timeline.
  Result<PlanInfo> GetWithDemand(const QueryGraph& query,
                                 const PlanOptions& options,
                                 obs::SpanContext sctx = {});

  /// CAS-maxes an observed run's page demand into `demand_pages`.
  static void RecordDemand(const std::shared_ptr<std::atomic<int64_t>>& d,
                           int64_t pages_peak);

  /// CAS-maxes an observed run's charged work into `observed_work`. The
  /// service layer calls this at job finalization; cost-planned entries
  /// use the history to detect estimate drift.
  static void RecordWork(const std::shared_ptr<std::atomic<int64_t>>& w,
                         int64_t work_units);

  /// Observed work must exceed the estimate by this factor before a
  /// cached cost plan is recompiled with calibration feedback.
  static constexpr double kReplanDriftRatio = 8.0;
  /// Replans per entry are bounded (the calibrated estimate absorbs the
  /// observed work, so a persistent gap cannot loop).
  static constexpr int kMaxPlannerReplans = 2;

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  int64_t planner_replans() const {
    return planner_replans_.load(std::memory_order_relaxed);
  }
  int64_t size() const;
  int64_t capacity() const { return capacity_; }

  /// Mirrors hit/miss/eviction counts into `metrics` as
  /// service.plan_cache_{hits,misses,evictions}. Null detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const MatchPlan> plan;
    std::shared_ptr<std::atomic<int64_t>> demand_pages;
    std::shared_ptr<std::atomic<int64_t>> observed_work;
    uint64_t fingerprint = 0;
    int replans = 0;
  };

  const int64_t capacity_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> planner_replans_{0};

  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_replans_ = nullptr;
  obs::Counter* obs_calibration_clamped_ = nullptr;
};

}  // namespace tdfs

#endif  // TDFS_SERVICE_PLAN_CACHE_H_
