// Cross-shard coordination state for shard-parallel matching runs
// (src/shard/shard_runner.cc). One ShardExchange is shared by every
// engine of a sharded job; each engine receives it via
// EngineConfig::shard_exchange together with its own shard_id.
//
// Cross-shard continuations reuse the engines' existing fixed-width task
// encoding (queue/task_queue.h Task: three int32 vertex slots), so a
// routed message IS a Task enqueued on the owner shard's queue — no new
// wire format. The exchange holds:
//
//  * the per-shard task queues, so an idle warp whose own shard has fully
//    drained (empty queue AND exhausted initial-edge cursor) can dequeue
//    from a sibling — steals stay intra-shard first, cross-shard last;
//  * the job-global outstanding-work token count. The engines' termination
//    protocol (a token is created before the work becomes visible, a warp
//    exits only when its cursor is dry and the token count is zero) is
//    unchanged — the count simply spans all shards, so a warp parks until
//    every shard's work is done and cross-shard tasks cannot strand
//    tokens;
//  * a job-global expired flag so one shard hitting the deadline (or
//    failing) unwinds all of them.

#ifndef TDFS_SHARD_EXCHANGE_H_
#define TDFS_SHARD_EXCHANGE_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace tdfs {

class TaskQueue;

namespace shard {

struct ShardExchange {
  int num_shards = 0;

  /// Owner-shard task queues, indexed by shard id. Borrowed; the runner
  /// keeps them alive past every engine's exit.
  std::vector<TaskQueue*> queues;

  /// Outstanding-work tokens across ALL shards (replaces each engine's
  /// private counter in sharded runs).
  std::atomic<int64_t> work_items{0};

  /// Set by the first shard whose deadline fires or whose run aborts;
  /// checked by every warp's Expired() poll.
  std::atomic<bool> expired{false};
};

}  // namespace shard
}  // namespace tdfs

#endif  // TDFS_SHARD_EXCHANGE_H_
