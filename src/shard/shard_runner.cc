#include "shard/shard_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bfs_engine.h"
#include "core/dfs_engine.h"
#include "graph/partition.h"
#include "mem/page_allocator.h"
#include "obs/trace.h"
#include "query/candidate_filter.h"
#include "queue/task_queue.h"
#include "shard/exchange.h"
#include "util/timer.h"

namespace tdfs::shard {

namespace {

// Snapshot of one shard's adjacency-fetch meters, for per-run deltas: the
// partition may be borrowed (config.partition) and shared across runs, so
// absolute values would accumulate history.
struct FetchSnapshot {
  int64_t local_rows = 0;
  int64_t local_items = 0;
  int64_t halo_rows = 0;
  int64_t halo_items = 0;
  int64_t remote_rows = 0;
  int64_t remote_items = 0;

  static FetchSnapshot Take(const ShardFetchStats& s) {
    FetchSnapshot snap;
    snap.local_rows = s.local_rows.load(std::memory_order_relaxed);
    snap.local_items = s.local_items.load(std::memory_order_relaxed);
    snap.halo_rows = s.halo_rows.load(std::memory_order_relaxed);
    snap.halo_items = s.halo_items.load(std::memory_order_relaxed);
    snap.remote_rows = s.remote_rows.load(std::memory_order_relaxed);
    snap.remote_items = s.remote_items.load(std::memory_order_relaxed);
    return snap;
  }
};

// True when a prebuilt partition can stand in for the one this config
// would build over this graph.
bool PartitionMatches(const GraphPartition& part, const Graph& graph,
                      const EngineConfig& config, int num_shards) {
  return part.spec().kind == config.sharding &&
         part.num_shards() == num_shards &&
         part.spec().halo_max_degree == config.shard_halo_max_degree &&
         part.TotalVertices() == graph.NumVertices() &&
         part.TotalDirectedEdges() == graph.NumDirectedEdges();
}

// Per-shard resident footprint vs the per-worker budget. The whole point
// of sharding a too-big graph: each worker only has to hold its slice.
Status AdmitShards(const GraphPartition& part, int64_t budget_bytes) {
  if (budget_bytes <= 0) {
    return Status::OK();
  }
  for (int s = 0; s < part.num_shards(); ++s) {
    if (part.ResidentBytes(s) > budget_bytes) {
      return Status::ResourceExhausted(
          "shard " + std::to_string(s) + " resident footprint (" +
          std::to_string(part.ResidentBytes(s)) +
          " bytes) exceeds graph_budget_bytes (" +
          std::to_string(budget_bytes) +
          "); raise the budget, add shards, or lower the halo cap");
    }
  }
  return Status::OK();
}

int NumaNodeFor(const EngineConfig& config, int s) {
  if (config.numa_nodes.empty()) {
    return -1;
  }
  return config.numa_nodes[static_cast<size_t>(s) %
                           config.numa_nodes.size()];
}

// One execution of the whole sharded job (every shard, one attempt). The
// retry loop in RunMatchingSharded re-invokes this with escalated configs;
// all per-shard resources are rebuilt per attempt so an escalated geometry
// (bigger pool, different stack kind) never meets a stale arena.
RunResult RunShardedAttempt(const MatchPlan& plan,
                            const EngineConfig& config,
                            const GraphPartition& part) {
  const int num_shards = part.num_shards();
  RunResult merged;
  Timer attempt_timer;

  std::vector<FetchSnapshot> before(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    before[static_cast<size_t>(s)] = FetchSnapshot::Take(part.Stats(s));
  }

  // ---- per-shard resources (exact config geometry, so the engines adopt
  // them instead of allocating their own — mandatory for the queues: the
  // routing pass below pre-seeds them) ----
  std::vector<std::unique_ptr<PageAllocator>> allocators;
  std::vector<std::unique_ptr<TaskQueue>> queues;
  std::vector<EngineResources> resources(static_cast<size_t>(num_shards));
  allocators.resize(static_cast<size_t>(num_shards));
  queues.resize(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    if (config.stack == StackKind::kPaged) {
      SpillOptions spill;
      spill.enabled = config.spill_to_host;
      spill.max_spill_pages = config.max_spill_pages;
      spill.governor = config.governor;
      allocators[static_cast<size_t>(s)] = std::make_unique<PageAllocator>(
          config.page_pool_pages, config.page_bytes, spill);
      allocators[static_cast<size_t>(s)]->SetNumaNode(
          NumaNodeFor(config, s));
      resources[static_cast<size_t>(s)].allocator =
          allocators[static_cast<size_t>(s)].get();
    }
    if (config.steal == StealStrategy::kTimeout) {
      queues[static_cast<size_t>(s)] =
          std::make_unique<TaskQueue>(config.queue_capacity_ints);
      resources[static_cast<size_t>(s)].queue =
          queues[static_cast<size_t>(s)].get();
    }
  }

  ShardExchange exchange;
  const bool use_exchange = config.steal == StealStrategy::kTimeout;
  if (use_exchange) {
    exchange.num_shards = num_shards;
    exchange.queues.resize(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      exchange.queues[static_cast<size_t>(s)] =
          queues[static_cast<size_t>(s)].get();
    }
  }

  // ---- seeding / routing pass ----
  // With routing on, the host walks every shard's owned edges once,
  // applies the same edge filter the warps would, and splits survivors
  // into a kept-local list (handed to the engine via initial_edges) and
  // routed tasks enqueued on the owner shard's queue. Counter bookkeeping
  // reproduces the unsharded totals exactly: the engine counts one
  // edges_scanned + initial_tasks per kept seed, so the host adds the
  // rejected edges' edges_scanned (unless a host-side filter would have
  // hidden them anyway) and the routed edges' full share. Routed tasks are
  // plain two-vertex tasks, processed by the receiving warp exactly like
  // an inline initial edge — identical work units.
  //
  // Two-vertex queue tasks index plan arrays at level 2, so routing is
  // gated on plans with at least three vertices; an edge-counting query
  // keeps every seed local.
  const bool route = use_exchange && config.shard_route_initial &&
                     plan.num_vertices >= 3;
  RunCounters seed;
  std::vector<std::vector<int64_t>> kept(static_cast<size_t>(num_shards));
  std::vector<int64_t> routed_out(static_cast<size_t>(num_shards), 0);
  std::vector<int64_t> routed_in(static_cast<size_t>(num_shards), 0);
  Timer seed_timer;
  if (route) {
    for (int s = 0; s < num_shards; ++s) {
      const Graph& view = part.ShardView(s);
      const int64_t num_edges = view.NumDirectedEdges();
      std::vector<int64_t>& keep = kept[static_cast<size_t>(s)];
      for (int64_t e = 0; e < num_edges; ++e) {
        const VertexId v0 = view.EdgeSource(e);
        const VertexId v1 = view.EdgeTarget(e);
        const bool pass =
            PassesEdgeFilter(plan, view, v0, v1,
                             config.use_degree_filter) &&
            PrefilterAdmitsEdge(config.prefiltered, plan.order[0],
                                plan.order[1], v0, v1);
        if (!pass) {
          if (!config.host_side_edge_filter) {
            // A warp would have scanned and rejected this edge; a
            // host-side filter (STMatch) would have dropped it silently.
            ++seed.edges_scanned;
          }
          continue;
        }
        if (!view.ShardLocalRow(v1)) {
          // v1's adjacency is neither owned nor halo-cached here: hand
          // the task to v1's owner, where the very next extension is a
          // local row. Token before the task becomes visible, as
          // everywhere else.
          const int owner = part.Owner(v1);
          exchange.work_items.fetch_add(1, std::memory_order_acq_rel);
          if (exchange.queues[static_cast<size_t>(owner)]->Enqueue(
                  Task{v0, v1, kNoThirdVertex})) {
            ++seed.edges_scanned;
            ++seed.initial_tasks;
            ++seed.tasks_enqueued;
            ++seed.shard_cross_msgs;
            ++routed_out[static_cast<size_t>(s)];
            ++routed_in[static_cast<size_t>(owner)];
            continue;
          }
          // Destination queue full: keep the edge local (remote fetches
          // make it slower, never wrong).
          exchange.work_items.fetch_sub(1, std::memory_order_acq_rel);
          ++seed.queue_full_failures;
        }
        keep.push_back(e);
      }
    }
  }
  seed.preprocess_ms = seed_timer.ElapsedMillis();

  // ---- per-shard configs and engine launch ----
  std::vector<EngineConfig> cfgs(static_cast<size_t>(num_shards), config);
  for (int s = 0; s < num_shards; ++s) {
    EngineConfig& cfg = cfgs[static_cast<size_t>(s)];
    cfg.num_devices = 1;
    cfg.sharding = ShardingKind::kOff;  // this level IS the shard runner
    cfg.partition = nullptr;
    cfg.shard_id = s;
    cfg.shard_exchange = use_exchange ? &exchange : nullptr;
    cfg.resources = &resources[static_cast<size_t>(s)];
    cfg.initial_edges = route ? &kept[static_cast<size_t>(s)] : nullptr;
  }

  std::vector<obs::SpanLedger::Span> spans;
  if (config.trace != nullptr) {
    spans.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      spans.push_back(config.trace->spans()->Begin(
          "shard_run", config.span_track, config.span_parent, s));
    }
  }

  Timer match_timer;
  std::vector<RunResult> shard_results(static_cast<size_t>(num_shards));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    workers.emplace_back([&, s]() {
      RunResult r = RunDfsEngine(part.ShardView(s), plan,
                                 cfgs[static_cast<size_t>(s)], s);
      if (!r.status.ok() && use_exchange) {
        // A dead shard can strand pre-routed tokens in its queue forever;
        // expire the job so sibling warps unwind instead of spinning on a
        // work count that will never drain.
        exchange.expired.store(true, std::memory_order_release);
      }
      shard_results[static_cast<size_t>(s)] = std::move(r);
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const double match_wall_ms = match_timer.ElapsedMillis();
  for (obs::SpanLedger::Span& span : spans) {
    span.End();
  }

  // ---- merge ----
  // Failure precedence: a retryable failure first (so the job-level retry
  // ladder sees it — a failed shard expires its siblings into
  // DeadlineExceeded, which must not mask the root cause), then any other
  // failure.
  Status failure = Status::OK();
  for (const RunResult& r : shard_results) {
    if (!r.status.ok() && RetryableFailure(r.status)) {
      failure = r.status;
      break;
    }
  }
  if (failure.ok()) {
    for (const RunResult& r : shard_results) {
      if (!r.status.ok()) {
        failure = r.status;
        break;
      }
    }
  }

  uint64_t total_work = 0;
  for (int s = 0; s < num_shards; ++s) {
    const RunResult& r = shard_results[static_cast<size_t>(s)];
    merged.match_count += r.match_count;
    merged.counters.MergeFrom(r.counters);
    merged.attribution.MergeFrom(r.attribution);
    total_work += r.counters.work_units;
  }
  merged.counters.MergeFrom(seed);
  merged.status = failure;

  // Per-shard simulated kernel time: the attempt's parallel wall time
  // apportioned by each shard's busiest warp — the same
  // busiest-warp-share construction as SimulatedGpuMs, but against the
  // job-wide work total so the entries are comparable across shards (the
  // shards really ran concurrently on this host).
  for (int s = 0; s < num_shards; ++s) {
    const RunResult& r = shard_results[static_cast<size_t>(s)];
    double simulated = match_wall_ms;
    if (total_work > 0) {
      simulated = match_wall_ms *
                  static_cast<double>(r.counters.max_warp_work_units) /
                  static_cast<double>(total_work);
    }
    merged.per_device_ms.push_back(simulated);
  }
  merged.match_ms = merged.SimulatedParallelMs();

  // ---- per-shard stats + fetch-tier deltas ----
  for (int s = 0; s < num_shards; ++s) {
    const RunResult& r = shard_results[static_cast<size_t>(s)];
    const FetchSnapshot now = FetchSnapshot::Take(part.Stats(s));
    const FetchSnapshot& base = before[static_cast<size_t>(s)];
    ShardRunStats stats;
    stats.shard_id = s;
    stats.numa_node = NumaNodeFor(config, s);
    stats.owned_rows = part.OwnedRows(s);
    stats.halo_rows = part.HaloRows(s);
    stats.owned_edges = part.OwnedDirectedEdges(s);
    stats.resident_bytes = part.ResidentBytes(s);
    stats.routed_out = routed_out[static_cast<size_t>(s)];
    stats.routed_in = routed_in[static_cast<size_t>(s)];
    stats.local_rows = now.local_rows - base.local_rows;
    stats.local_items = now.local_items - base.local_items;
    stats.halo_rows_fetched = now.halo_rows - base.halo_rows;
    stats.halo_items = now.halo_items - base.halo_items;
    stats.remote_rows = now.remote_rows - base.remote_rows;
    stats.remote_items = now.remote_items - base.remote_items;
    stats.work_units = r.counters.work_units;
    stats.max_warp_work_units = r.counters.max_warp_work_units;
    stats.simulated_ms = merged.per_device_ms[static_cast<size_t>(s)];
    merged.per_shard.push_back(stats);
    // The graph layer meters fetch tiers into the partition; surface them
    // as run counters here (engines never see the tier split).
    merged.counters.shard_halo_hits += stats.halo_rows_fetched;
    merged.counters.shard_remote_reads += stats.remote_rows;
  }

  // ---- per-shard observability (gauges; Prometheus names tdfs_mem_*) --
  if (config.trace != nullptr) {
    obs::MetricsRegistry* metrics = config.trace->metrics();
    for (int s = 0; s < num_shards; ++s) {
      const std::string prefix = "mem.shard" + std::to_string(s) + ".";
      PageAllocator* alloc = allocators[static_cast<size_t>(s)].get();
      if (alloc != nullptr) {
        metrics->GetGauge(prefix + "arena_pages_peak")
            ->Set(alloc->PeakPagesInUse());
        metrics->GetGauge(prefix + "arena_pages")
            ->Set(alloc->num_pages());
        metrics->GetGauge(prefix + "spill_pages_peak")
            ->Set(alloc->SpillPagesPeak());
      }
      metrics->GetGauge(prefix + "resident_bytes")
          ->Set(part.ResidentBytes(s));
      TaskQueue* queue = queues[static_cast<size_t>(s)].get();
      if (queue != nullptr) {
        metrics
            ->GetGauge("queue.shard" + std::to_string(s) + ".peak_tasks")
            ->Set(queue->PeakSizeInts() / 3);
      }
    }
  }

  merged.total_ms = attempt_timer.ElapsedMillis();
  return merged;
}

}  // namespace

int EffectiveShards(const EngineConfig& config) {
  return config.num_shards > 0 ? config.num_shards : config.num_devices;
}

bool ShardingApplies(const EngineConfig& config) {
  return config.sharding != ShardingKind::kOff &&
         EffectiveShards(config) > 1 && config.initial_edges == nullptr &&
         config.delta_edges == nullptr;
}

RunResult RunMatchingSharded(const Graph& graph, const MatchPlan& plan,
                             const EngineConfig& config) {
  Timer total_timer;
  const int num_shards = EffectiveShards(config);

  // Partition: adopt a matching prebuilt one, else build (preprocessing,
  // like the other host-side passes).
  Timer partition_timer;
  const GraphPartition* part = config.partition;
  std::unique_ptr<GraphPartition> owned_part;
  if (part == nullptr ||
      !PartitionMatches(*part, graph, config, num_shards)) {
    PartitionSpec spec;
    spec.kind = config.sharding;
    spec.num_shards = num_shards;
    spec.halo_max_degree = config.shard_halo_max_degree;
    owned_part = GraphPartition::Build(graph, spec);
    part = owned_part.get();
  }
  const double partition_ms = partition_timer.ElapsedMillis();

  if (Status admit = AdmitShards(*part, config.graph_budget_bytes);
      !admit.ok()) {
    RunResult result;
    result.status = admit;
    result.counters.preprocess_ms = partition_ms;
    result.total_ms = total_timer.ElapsedMillis();
    return result;
  }

  // Whole-job retry under config.retry, mirroring the unsharded device
  // jobs: failed attempts are discarded wholesale (counts never leak),
  // fault-observability counters carry forward.
  EngineConfig attempt_config = config;
  RunCounters carry;
  double backoff_ms = config.retry.backoff_ms;
  if (config.retry.max_backoff_ms > 0) {
    backoff_ms = std::min(backoff_ms, config.retry.max_backoff_ms);
  }
  const int max_attempts = std::max(config.retry.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    RunResult r = RunShardedAttempt(plan, attempt_config, *part);
    r.counters.attempts = attempt;
    r.counters.failpoint_fires += carry.failpoint_fires;
    r.counters.pressure_retries += carry.pressure_retries;
    r.counters.pressure_pages_released += carry.pressure_pages_released;
    r.counters.deferred_tasks += carry.deferred_tasks;
    if (attempt > 1) {
      r.counters.degraded_mode = true;
    }
    if (r.status.ok() || attempt >= max_attempts ||
        !RetryableFailure(r.status)) {
      r.counters.preprocess_ms += partition_ms;
      r.total_ms = total_timer.ElapsedMillis();
      return r;
    }
    carry.failpoint_fires = r.counters.failpoint_fires;
    carry.pressure_retries = r.counters.pressure_retries;
    carry.pressure_pages_released = r.counters.pressure_pages_released;
    carry.deferred_tasks = r.counters.deferred_tasks;
    ApplyRetryEscalation(&attempt_config, attempt + 1, r.status);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= 2;
      if (config.retry.max_backoff_ms > 0) {
        backoff_ms = std::min(backoff_ms, config.retry.max_backoff_ms);
      }
    }
  }
}

RunResult RunBfsSharded(const Graph& graph, const MatchPlan& plan,
                        const EngineConfig& config) {
  RunResult merged;
  Timer total_timer;
  const int num_shards = EffectiveShards(config);

  Timer partition_timer;
  const GraphPartition* part = config.partition;
  std::unique_ptr<GraphPartition> owned_part;
  if (part == nullptr ||
      !PartitionMatches(*part, graph, config, num_shards)) {
    PartitionSpec spec;
    spec.kind = config.sharding;
    spec.num_shards = num_shards;
    spec.halo_max_degree = config.shard_halo_max_degree;
    owned_part = GraphPartition::Build(graph, spec);
    part = owned_part.get();
  }
  const double partition_ms = partition_timer.ElapsedMillis();
  merged.counters.preprocess_ms = partition_ms;

  if (Status admit = AdmitShards(*part, config.graph_budget_bytes);
      !admit.ok()) {
    merged.status = admit;
    merged.total_ms = total_timer.ElapsedMillis();
    return merged;
  }

  // Level-synchronous extension has no queue to route through and no
  // straggler to steal from: shard views alone give each worker its
  // disjoint slice of the directed-edge space, and non-resident adjacency
  // resolves through the halo / remote tiers. Shards run back-to-back and
  // merge exactly like the unsharded multi-device path.
  for (int s = 0; s < num_shards; ++s) {
    EngineConfig cfg = config;
    cfg.num_devices = 1;
    cfg.sharding = ShardingKind::kOff;
    cfg.partition = nullptr;
    cfg.shard_id = s;
    const FetchSnapshot before = FetchSnapshot::Take(part->Stats(s));
    RunResult r = RunBfsEngine(part->ShardView(s), plan, cfg);
    if (!r.status.ok()) {
      r.counters.preprocess_ms += partition_ms;
      r.total_ms = total_timer.ElapsedMillis();
      return r;
    }
    merged.match_count += r.match_count;
    merged.per_device_ms.push_back(r.SimulatedGpuMs());
    merged.counters.MergeFrom(r.counters);
    const FetchSnapshot now = FetchSnapshot::Take(part->Stats(s));
    ShardRunStats stats;
    stats.shard_id = s;
    stats.numa_node = NumaNodeFor(config, s);
    stats.owned_rows = part->OwnedRows(s);
    stats.halo_rows = part->HaloRows(s);
    stats.owned_edges = part->OwnedDirectedEdges(s);
    stats.resident_bytes = part->ResidentBytes(s);
    stats.local_rows = now.local_rows - before.local_rows;
    stats.local_items = now.local_items - before.local_items;
    stats.halo_rows_fetched = now.halo_rows - before.halo_rows;
    stats.halo_items = now.halo_items - before.halo_items;
    stats.remote_rows = now.remote_rows - before.remote_rows;
    stats.remote_items = now.remote_items - before.remote_items;
    stats.work_units = r.counters.work_units;
    stats.max_warp_work_units = r.counters.max_warp_work_units;
    stats.simulated_ms = r.SimulatedGpuMs();
    merged.counters.shard_halo_hits += stats.halo_rows_fetched;
    merged.counters.shard_remote_reads += stats.remote_rows;
    merged.per_shard.push_back(stats);
  }
  merged.match_ms = merged.SimulatedParallelMs();
  merged.total_ms = total_timer.ElapsedMillis();
  return merged;
}

}  // namespace tdfs::shard
