// Shard-parallel job driver (the tentpole of src/shard/).
//
// RunMatchingSharded partitions the data graph (graph/partition.h), gives
// every shard its own worker: a private shard CSR, page arena, and task
// queue, then runs one DFS engine per shard concurrently. Cross-shard
// coordination goes through a ShardExchange (shard/exchange.h): initial
// edges whose second endpoint is not resident in the seeding shard are
// routed to the owner shard's queue as ordinary fixed-width task messages,
// and a shard whose own queue and edge cursor have drained steals from
// sibling queues. Work-token accounting is job-global, so termination and
// the reported counts are exact — bit-identical to the unsharded path.
//
// RunBfsSharded is the BFS (PBE) counterpart: per-shard views give each
// worker a disjoint slice of the directed-edge space; there is no queue,
// routing, or stealing — shards run back-to-back and merge like the
// multi-device path.

#ifndef TDFS_SHARD_SHARD_RUNNER_H_
#define TDFS_SHARD_SHARD_RUNNER_H_

#include "core/config.h"
#include "core/result.h"
#include "graph/graph.h"
#include "query/plan.h"

namespace tdfs::shard {

/// Effective worker count for a sharded run: config.num_shards, falling
/// back to num_devices when 0.
int EffectiveShards(const EngineConfig& config);

/// True when `config` asks for sharded execution and the run shape
/// supports it: sharding != kOff, more than one effective shard, and no
/// caller-supplied edge seeds (initial_edges / delta_edges index the
/// original graph's edge space, which a shard view re-numbers).
bool ShardingApplies(const EngineConfig& config);

/// Depth-first sharded matching. Adopts config.partition when its geometry
/// matches (kind, shard count, halo cap, graph shape); otherwise
/// partitions on the fly, charged to preprocess_ms. Runs under
/// config.retry like the unsharded device jobs: a failed attempt is
/// discarded wholesale and re-executed with the escalated config.
RunResult RunMatchingSharded(const Graph& graph, const MatchPlan& plan,
                             const EngineConfig& config);

/// Breadth-first (PBE) sharded matching: one BFS engine per shard view,
/// merged like the multi-device path.
RunResult RunBfsSharded(const Graph& graph, const MatchPlan& plan,
                        const EngineConfig& config);

}  // namespace tdfs::shard

#endif  // TDFS_SHARD_SHARD_RUNNER_H_
