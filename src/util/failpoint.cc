#include "util/failpoint.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/prng.h"

namespace tdfs::fail {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

struct Site {
  Trigger trigger;
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> fires{0};
};

struct Registry {
  std::mutex mu;
  // Sites are held by unique_ptr so the atomics stay put across rehashes
  // and can be ticked outside the lock if ever needed.
  std::map<std::string, std::unique_ptr<Site>> sites;
  std::atomic<int64_t> total_fires{0};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Deterministic per-call Bernoulli draw: the decision for call number c of
// a prob-triggered site is a pure function of (seed, c), so concurrent
// callers and re-runs see the same fault schedule.
bool ProbFires(uint64_t seed, int64_t call, double p) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(call)));
  const double u = static_cast<double>(sm() >> 11) * 0x1.0p-53;
  return u < p;
}

void RecountArmed(Registry& registry) {
  bool any = false;
  for (const auto& [name, site] : registry.sites) {
    any = any || site->trigger.kind != TriggerKind::kOff;
  }
  internal::g_armed.store(any, std::memory_order_relaxed);
}

// Arms everything named in TDFS_FAILPOINTS at process start, so env-driven
// injection needs no code changes in the binary under test. A malformed
// spec aborts rather than silently running without the requested faults.
const bool g_env_armed = [] {
  const char* env = std::getenv("TDFS_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Status status = ArmFromSpec(env);
    TDFS_CHECK_MSG(status.ok(),
                   "bad TDFS_FAILPOINTS: " << status.ToString());
  }
  return true;
}();

}  // namespace

namespace internal {

bool Evaluate(const char* site_name) {
  Registry& registry = GetRegistry();
  Site* site = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(site_name);
    if (it == registry.sites.end()) {
      return false;
    }
    site = it->second.get();
  }
  if (site->trigger.kind == TriggerKind::kOff) {
    return false;
  }
  const int64_t call =
      site->calls.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fires = false;
  switch (site->trigger.kind) {
    case TriggerKind::kOff:
      break;
    case TriggerKind::kNth:
      fires = call == site->trigger.n;
      break;
    case TriggerKind::kEvery:
      fires = call % site->trigger.n == 0;
      break;
    case TriggerKind::kProb:
      fires = ProbFires(site->trigger.seed, call, site->trigger.p);
      break;
    case TriggerKind::kAlways:
      fires = true;
      break;
  }
  if (fires) {
    site->fires.fetch_add(1, std::memory_order_relaxed);
    registry.total_fires.fetch_add(1, std::memory_order_relaxed);
  }
  return fires;
}

}  // namespace internal

void Arm(const std::string& site, const Trigger& trigger) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto slot = std::make_unique<Site>();
  slot->trigger = trigger;
  registry.sites[site] = std::move(slot);
  RecountArmed(registry);
}

Result<Trigger> ParseTrigger(const std::string& spec) {
  const auto bad = [&spec]() {
    return Status::InvalidArgument("bad failpoint trigger: '" + spec + "'");
  };
  if (spec == "always") {
    return Trigger::Always();
  }
  if (spec == "off") {
    return Trigger::Off();
  }
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return bad();
  }
  const std::string kind = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);
  if (rest.empty()) {
    return bad();
  }
  try {
    if (kind == "nth" || kind == "every") {
      size_t used = 0;
      const int64_t n = std::stoll(rest, &used);
      if (used != rest.size() || n < 1) {
        return bad();
      }
      return kind == "nth" ? Trigger::Nth(n) : Trigger::Every(n);
    }
    if (kind == "prob") {
      const size_t colon2 = rest.find(':');
      const std::string p_str =
          colon2 == std::string::npos ? rest : rest.substr(0, colon2);
      size_t used = 0;
      const double p = std::stod(p_str, &used);
      if (used != p_str.size() || p < 0.0 || p > 1.0) {
        return bad();
      }
      uint64_t seed = 0;
      if (colon2 != std::string::npos) {
        const std::string seed_str = rest.substr(colon2 + 1);
        seed = std::stoull(seed_str, &used);
        if (seed_str.empty() || used != seed_str.size()) {
          return bad();
        }
      }
      return Trigger::Prob(p, seed);
    }
  } catch (...) {
    return bad();
  }
  return bad();
}

Status ArmFromSpec(const std::string& spec) {
  std::vector<std::pair<std::string, Trigger>> parsed;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) {
      continue;
    }
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint entry: '" + entry +
                                     "'");
    }
    Result<Trigger> trigger = ParseTrigger(entry.substr(eq + 1));
    if (!trigger.ok()) {
      return trigger.status();
    }
    parsed.emplace_back(entry.substr(0, eq), trigger.value());
  }
  for (const auto& [site, trigger] : parsed) {
    Arm(site, trigger);
  }
  return Status::OK();
}

void Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.erase(site);
  RecountArmed(registry);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.clear();
  registry.total_fires.store(0, std::memory_order_relaxed);
  internal::g_armed.store(false, std::memory_order_relaxed);
}

int64_t Calls(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end()
             ? 0
             : it->second->calls.load(std::memory_order_relaxed);
}

int64_t Fires(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

int64_t TotalFires() {
  return GetRegistry().total_fires.load(std::memory_order_relaxed);
}

}  // namespace tdfs::fail
