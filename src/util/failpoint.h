// Deterministic fault injection.
//
// A failpoint is a named site in library code that can be armed to fail on
// demand: on its nth call, on every k-th call, or with a seeded
// probability. Sites are compiled into the hot paths that model the
// characteristic failure modes of GPU subgraph matching (page-pool
// exhaustion, queue saturation, kernel-launch and whole-device loss, graph
// IO) so that the degradation and retry machinery can be exercised
// deterministically in tests instead of only under real memory pressure.
//
// Cost model: when no failpoint is armed — the production configuration —
// a site is one relaxed atomic load of a global flag. Per-site state is
// only consulted once something is armed, so tests pay the registry lookup
// and production code does not.
//
// Sites are armed programmatically (fail::Arm) or via the TDFS_FAILPOINTS
// environment variable, parsed once at first use:
//
//   TDFS_FAILPOINTS="page_alloc=nth:100;device_run=every:3"
//
// Spec grammar (sites separated by ';' or ','):
//   <site>=nth:<n>          fire exactly once, on the n-th call (1-based)
//   <site>=every:<k>        fire on every k-th call (k, 2k, 3k, ...)
//   <site>=prob:<p>[:seed]  fire each call with probability p, seeded and
//                           replayable (default seed 0)
//   <site>=always           fire on every call
//   <site>=off              registered but never fires

#ifndef TDFS_UTIL_FAILPOINT_H_
#define TDFS_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace tdfs::fail {

/// Trigger kinds for an armed site.
enum class TriggerKind {
  kOff,     // never fires
  kNth,     // fires exactly once, on call number `n` (1-based)
  kEvery,   // fires on every k-th call
  kProb,    // fires with probability p per call (seeded, deterministic)
  kAlways,  // fires on every call
};

/// An armed site's trigger.
struct Trigger {
  TriggerKind kind = TriggerKind::kOff;
  int64_t n = 0;         // kNth / kEvery parameter
  double p = 0.0;        // kProb parameter
  uint64_t seed = 0;     // kProb stream seed

  static Trigger Nth(int64_t n) { return {TriggerKind::kNth, n, 0.0, 0}; }
  static Trigger Every(int64_t k) {
    return {TriggerKind::kEvery, k, 0.0, 0};
  }
  static Trigger Prob(double p, uint64_t seed = 0) {
    return {TriggerKind::kProb, 0, p, seed};
  }
  static Trigger Always() { return {TriggerKind::kAlways, 0, 0.0, 0}; }
  static Trigger Off() { return {}; }
};

namespace internal {
// Set iff at least one site is armed; the only state production code ever
// reads. Relaxed is sufficient: arming happens-before the run under test.
extern std::atomic<bool> g_armed;

// Slow path: counts the call against `site` and decides whether it fires.
bool Evaluate(const char* site);
}  // namespace internal

/// True when any site is armed (one relaxed load; the entire disabled-mode
/// cost of a failpoint).
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// Should the failpoint `site` fire on this call? Counts the call iff any
/// site is armed. This is the function behind TDFS_INJECT_FAILURE.
inline bool ShouldFail(const char* site) {
  return Armed() && internal::Evaluate(site);
}

/// Arms `site` with the given trigger (replacing any previous trigger and
/// resetting its call/fire counters).
void Arm(const std::string& site, const Trigger& trigger);

/// Parses one trigger spec ("nth:5", "every:3", "prob:0.1:42", "always",
/// "off"). Returns InvalidArgument on malformed input.
Result<Trigger> ParseTrigger(const std::string& spec);

/// Parses and arms a full spec ("a=nth:5;b=every:3"). Partial specs are not
/// applied: the whole string is validated first.
Status ArmFromSpec(const std::string& spec);

/// Disarms one site (its counters are dropped).
void Disarm(const std::string& site);

/// Disarms everything and clears all counters. Tests call this in
/// SetUp/TearDown so sites never leak across test cases.
void DisarmAll();

/// Calls observed at `site` since it was armed (0 if not armed).
int64_t Calls(const std::string& site);

/// Times `site` has fired since it was armed (0 if not armed).
int64_t Fires(const std::string& site);

/// Total fires across all sites since process start or the last
/// DisarmAll(). The engines snapshot this around a run to report
/// RunCounters::failpoint_fires.
int64_t TotalFires();

}  // namespace tdfs::fail

/// Evaluates to true when the named failpoint should fire on this call.
/// Usage:  if (TDFS_INJECT_FAILURE("page_alloc")) return kNullPage;
#define TDFS_INJECT_FAILURE(site) (::tdfs::fail::ShouldFail(site))

#endif  // TDFS_UTIL_FAILPOINT_H_
