#include "util/intersect.h"

#include <algorithm>

namespace tdfs {

namespace {

// Work cost of one binary search over n elements.
uint64_t LogCost(size_t n) {
  uint64_t cost = 1;
  while (n > 1) {
    n >>= 1;
    ++cost;
  }
  return cost;
}

// Shared galloping traversal: calls on_match(v) for each v in A ∩ B.
// Requires |a| <= |b|. The early break when the gallop runs off the end of
// `b` skips the tail of `a` entirely — no later element can match.
template <typename OnMatch>
void GallopVisit(VertexSpan a, VertexSpan b, WorkCounter* work,
                 OnMatch&& on_match) {
  size_t pos = 0;
  for (VertexId v : a) {
    pos = GallopLowerBound(b, pos, v, work);
    if (pos == b.size()) {
      break;
    }
    if (b[pos] == v) {
      on_match(v);
      ++pos;
    }
  }
}

// Shared linear-merge traversal: calls on_match(v) for each v in A ∩ B.
template <typename OnMatch>
void MergeVisit(VertexSpan a, VertexSpan b, WorkCounter* work,
                OnMatch&& on_match) {
  size_t i = 0;
  size_t j = 0;
  uint64_t steps = 0;
  while (i < a.size() && j < b.size()) {
    ++steps;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      on_match(a[i]);
      ++i;
      ++j;
    }
  }
  if (work != nullptr) {
    work->Add(steps);
  }
}

}  // namespace

bool SortedContains(VertexSpan hay, VertexId v, WorkCounter* work) {
  if (work != nullptr) {
    work->Add(LogCost(hay.size()));
  }
  return std::binary_search(hay.begin(), hay.end(), v);
}

size_t GallopLowerBound(VertexSpan hay, size_t from, VertexId v,
                        WorkCounter* work) {
  size_t n = hay.size();
  if (from >= n || hay[from] >= v) {
    if (work != nullptr) {
      work->Add(1);
    }
    return from;
  }
  // Exponential probe.
  size_t step = 1;
  size_t lo = from;
  size_t hi = from + step;
  uint64_t probes = 1;
  while (hi < n && hay[hi] < v) {
    lo = hi;
    step <<= 1;
    hi = from + step;
    ++probes;
  }
  hi = std::min(hi, n);
  // Binary search in (lo, hi].
  size_t result = std::lower_bound(hay.begin() + lo + 1, hay.begin() + hi, v) -
                  hay.begin();
  if (work != nullptr) {
    work->Add(probes + LogCost(hi - lo));
  }
  return result;
}

void IntersectMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                    WorkCounter* work) {
  MergeVisit(a, b, work, [out](VertexId v) { out->push_back(v); });
}

void IntersectBinary(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work) {
  // Probe each element of the smaller list against the larger one, the way
  // the 32 lanes of a warp would.
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  for (VertexId v : a) {
    if (SortedContains(b, v, work)) {
      out->push_back(v);
    }
  }
}

void IntersectGallop(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  GallopVisit(a, b, work, [out](VertexId v) { out->push_back(v); });
}

void IntersectAuto(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                   WorkCounter* work) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  if (UseGallopKernel(a.size(), b.size())) {
    GallopVisit(a, b, work, [out](VertexId v) { out->push_back(v); });
  } else {
    MergeVisit(a, b, work, [out](VertexId v) { out->push_back(v); });
  }
}

size_t IntersectCount(VertexSpan a, VertexSpan b, WorkCounter* work) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  size_t count = 0;
  if (UseGallopKernel(a.size(), b.size())) {
    GallopVisit(a, b, work, [&count](VertexId) { ++count; });
  } else {
    MergeVisit(a, b, work, [&count](VertexId) { ++count; });
  }
  return count;
}

void DifferenceMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work) {
  size_t i = 0;
  size_t j = 0;
  uint64_t steps = 0;
  while (i < a.size()) {
    ++steps;
    if (j == b.size() || a[i] < b[j]) {
      out->push_back(a[i]);
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  if (work != nullptr) {
    work->Add(steps);
  }
}

}  // namespace tdfs
