#include "util/intersect.h"

#include <algorithm>
#include <cstdlib>

#include "util/intersect_simd.h"

namespace tdfs {

namespace {

// Work cost of one binary search over n elements.
uint64_t LogCost(size_t n) { return BinarySearchLogCost(n); }

// Shared galloping traversal: calls on_match(v) for each v in A ∩ B.
// Requires |a| <= |b|. The early break when the gallop runs off the end of
// `b` skips the tail of `a` entirely — no later element can match.
template <typename OnMatch>
void GallopVisit(VertexSpan a, VertexSpan b, WorkCounter* work,
                 OnMatch&& on_match) {
  size_t pos = 0;
  for (VertexId v : a) {
    pos = GallopLowerBound(b, pos, v, work);
    if (pos == b.size()) {
      break;
    }
    if (b[pos] == v) {
      on_match(v);
      ++pos;
    }
  }
}

// Shared linear-merge traversal: calls on_match(v) for each v in A ∩ B.
template <typename OnMatch>
void MergeVisit(VertexSpan a, VertexSpan b, WorkCounter* work,
                OnMatch&& on_match) {
  size_t i = 0;
  size_t j = 0;
  uint64_t steps = 0;
  while (i < a.size() && j < b.size()) {
    ++steps;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      on_match(a[i]);
      ++i;
      ++j;
    }
  }
  if (work != nullptr) {
    work->Add(steps);
  }
}

void ScalarMergeInto(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work) {
  MergeVisit(a, b, work, [out](VertexId v) { out->push_back(v); });
}

size_t ScalarMergeCount(VertexSpan a, VertexSpan b, WorkCounter* work) {
  size_t count = 0;
  MergeVisit(a, b, work, [&count](VertexId) { ++count; });
  return count;
}

void ScalarGallopInto(VertexSpan small, VertexSpan large,
                      std::vector<VertexId>* out, WorkCounter* work) {
  GallopVisit(small, large, work, [out](VertexId v) { out->push_back(v); });
}

size_t ScalarGallopCount(VertexSpan small, VertexSpan large,
                         WorkCounter* work) {
  size_t count = 0;
  GallopVisit(small, large, work, [&count](VertexId) { ++count; });
  return count;
}

constexpr IntersectKernels kScalarKernels = {
    SimdLevel::kScalar, &ScalarMergeInto, &ScalarMergeCount,
    &ScalarGallopInto, &ScalarGallopCount};

// TDFS_SIMD caps (never raises) the CPUID-detected level so fallback paths
// are testable on any machine: "off"/"scalar" force scalar, "sse" caps at
// SSE4.2, anything else ("avx2", "auto", unset) leaves detection alone.
SimdLevel EnvSimdCap() {
  const char* env = std::getenv("TDFS_SIMD");
  if (env == nullptr) {
    return SimdLevel::kAvx2;
  }
  const std::string_view spec(env);
  if (spec == "off" || spec == "scalar" || spec == "0") {
    return SimdLevel::kScalar;
  }
  if (spec == "sse") {
    return SimdLevel::kSse;
  }
  return SimdLevel::kAvx2;
}

SimdLevel DetectSimdLevelOnce() {
  SimdLevel hw = SimdLevel::kScalar;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) {
    hw = SimdLevel::kAvx2;
  } else if (__builtin_cpu_supports("sse4.2")) {
    hw = SimdLevel::kSse;
  }
#endif
  const SimdLevel cap = EnvSimdCap();
  return static_cast<int>(cap) < static_cast<int>(hw) ? cap : hw;
}

}  // namespace

bool SortedContains(VertexSpan hay, VertexId v, WorkCounter* work) {
  if (work != nullptr) {
    work->Add(LogCost(hay.size()));
  }
  return std::binary_search(hay.begin(), hay.end(), v);
}

size_t GallopLowerBound(VertexSpan hay, size_t from, VertexId v,
                        WorkCounter* work) {
  size_t n = hay.size();
  if (from >= n || hay[from] >= v) {
    if (work != nullptr) {
      work->Add(1);
    }
    return from;
  }
  // Exponential probe.
  size_t step = 1;
  size_t lo = from;
  size_t hi = from + step;
  uint64_t probes = 1;
  while (hi < n && hay[hi] < v) {
    lo = hi;
    step <<= 1;
    hi = from + step;
    ++probes;
  }
  hi = std::min(hi, n);
  // Binary search in (lo, hi].
  size_t result = std::lower_bound(hay.begin() + lo + 1, hay.begin() + hi, v) -
                  hay.begin();
  if (work != nullptr) {
    work->Add(probes + LogCost(hi - lo));
  }
  return result;
}

uint64_t MergeStepsWork(VertexSpan a, VertexSpan b, size_t matches) {
  // MergeVisit runs one step per iteration and each iteration advances i,
  // j, or (on a match) both, so steps = i_final + j_final - matches. The
  // terminal positions only depend on which input exhausts first: the
  // other side stops right after the last element <= the exhausted side's
  // back (i.e. at upper_bound of it).
  if (a.empty() || b.empty()) {
    return 0;
  }
  size_t i_final;
  size_t j_final;
  if (a.back() == b.back()) {
    i_final = a.size();
    j_final = b.size();
  } else if (a.back() < b.back()) {
    i_final = a.size();
    j_final = std::upper_bound(b.begin(), b.end(), a.back()) - b.begin();
  } else {
    j_final = b.size();
    i_final = std::upper_bound(a.begin(), a.end(), b.back()) - a.begin();
  }
  return static_cast<uint64_t>(i_final) + static_cast<uint64_t>(j_final) -
         static_cast<uint64_t>(matches);
}

uint64_t GallopProbeWork(size_t from, size_t r, size_t n) {
  // GallopLowerBound's early branch (from >= n, or hay[from] >= v which is
  // exactly r == from) charges a single probe.
  if (from >= n || r == from) {
    return 1;
  }
  // Otherwise replay the exponential probe by index arithmetic alone: the
  // loop condition hay[hi] < v holds iff hi < r, r being the first index
  // whose element is >= v.
  size_t step = 1;
  size_t lo = from;
  size_t hi = from + step;
  uint64_t probes = 1;
  while (hi < n && hi < r) {
    lo = hi;
    step <<= 1;
    hi = from + step;
    ++probes;
  }
  hi = std::min(hi, n);
  return probes + LogCost(hi - lo);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse:
      return "sse";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = DetectSimdLevelOnce();
  return level;
}

const IntersectKernels& KernelsForLevel(SimdLevel level) {
  const SimdLevel detected = DetectedSimdLevel();
  if (static_cast<int>(level) > static_cast<int>(detected)) {
    level = detected;
  }
  if (level == SimdLevel::kAvx2) {
    const IntersectKernels* avx2 = Avx2IntersectKernels();
    if (avx2 != nullptr) {
      return *avx2;
    }
    level = SimdLevel::kSse;
  }
  if (level == SimdLevel::kSse) {
    const IntersectKernels* sse = SseIntersectKernels();
    if (sse != nullptr) {
      return *sse;
    }
  }
  return kScalarKernels;
}

const IntersectKernels& ProcessKernels() {
  static const IntersectKernels& kernels = KernelsForLevel(DetectedSimdLevel());
  return kernels;
}

const char* IntersectModeName(IntersectMode mode) {
  switch (mode) {
    case IntersectMode::kAuto:
      return "auto";
    case IntersectMode::kScalar:
      return "scalar";
    case IntersectMode::kSimd:
      return "simd";
    case IntersectMode::kBitmapOff:
      return "bitmap-off";
  }
  return "unknown";
}

bool ParseIntersectMode(std::string_view name, IntersectMode* mode) {
  if (name == "auto") {
    *mode = IntersectMode::kAuto;
  } else if (name == "scalar") {
    *mode = IntersectMode::kScalar;
  } else if (name == "simd") {
    *mode = IntersectMode::kSimd;
  } else if (name == "bitmap-off") {
    *mode = IntersectMode::kBitmapOff;
  } else {
    return false;
  }
  return true;
}

void IntersectMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                    WorkCounter* work) {
  ProcessKernels().merge(a, b, out, work);
}

void IntersectBinary(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work) {
  // Probe each element of the smaller list against the larger one, the way
  // the 32 lanes of a warp would.
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  for (VertexId v : a) {
    if (SortedContains(b, v, work)) {
      out->push_back(v);
    }
  }
}

void IntersectGallop(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  ProcessKernels().gallop(a, b, out, work);
}

void IntersectAuto(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                   WorkCounter* work) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  const IntersectKernels& kernels = ProcessKernels();
  if (UseGallopKernel(a.size(), b.size())) {
    kernels.gallop(a, b, out, work);
  } else {
    kernels.merge(a, b, out, work);
  }
}

size_t IntersectCount(VertexSpan a, VertexSpan b, WorkCounter* work) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  const IntersectKernels& kernels = ProcessKernels();
  if (UseGallopKernel(a.size(), b.size())) {
    return kernels.gallop_count(a, b, work);
  }
  return kernels.merge_count(a, b, work);
}

void DifferenceMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work) {
  size_t i = 0;
  size_t j = 0;
  uint64_t steps = 0;
  while (i < a.size()) {
    ++steps;
    if (j == b.size() || a[i] < b[j]) {
      out->push_back(a[i]);
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  if (work != nullptr) {
    work->Add(steps);
  }
}

}  // namespace tdfs
