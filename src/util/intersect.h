// Sorted-set intersection kernels.
//
// Candidate computation in subgraph matching (Eq. (1) of the paper) is a
// chain of intersections of sorted adjacency lists. On the GPU the threads
// of a warp intersect A ∩ B by probing each element of A against B with
// binary search ("warp-style"); on skewed size ratios galloping search is
// preferable, and for similar sizes a linear merge wins. All kernels
// optionally meter their work (element comparisons) so the virtual-GPU
// substrate can account deterministic costs.
//
// The merge and gallop kernels come in scalar and SIMD (SSE4.2 / AVX2)
// flavours, selected once at startup from CPUID (see DetectedSimdLevel).
// Work metering is backend-invariant: every backend charges the number of
// element comparisons the *scalar* kernel would have performed (computed in
// closed form, see MergeStepsWork / GallopProbeWork), never SIMD lanes, so
// work_units, max_warp_work_units and the simulated-GPU time metric stay
// comparable across backends and with committed BENCH_*.json history.

#ifndef TDFS_UTIL_INTERSECT_H_
#define TDFS_UTIL_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace tdfs {

/// Vertex identifier. Negative values are reserved for sentinels
/// (kEmptySlot, kNoThirdVertex in the task queue).
using VertexId = int32_t;

using VertexSpan = std::span<const VertexId>;

struct TimeAttributionSink;  // util/time_attr.h

/// Accumulates abstract work units (element comparisons / probes). Used by
/// the virtual clock for deterministic timeout tests and by benches for
/// machine-independent cost reporting.
///
/// When wall-time attribution is on (tracing enabled), the owning warp
/// points `attr` at its per-warp sink and keeps `attr_cell` set to the
/// plan cell being extended; intersection dispatch then charges sampled
/// kernel time to (cell, arm). Both fields are ignored by Add, so work
/// accounting stays backend- and tracing-invariant.
struct WorkCounter {
  uint64_t units = 0;
  TimeAttributionSink* attr = nullptr;
  int32_t attr_cell = -1;
  void Add(uint64_t n) { units += n; }
};

/// Returns true iff `v` occurs in sorted `hay`. Adds O(log |hay|) work.
bool SortedContains(VertexSpan hay, VertexId v, WorkCounter* work = nullptr);

/// Lower bound index of `v` in sorted `hay` starting from `from`.
size_t GallopLowerBound(VertexSpan hay, size_t from, VertexId v,
                        WorkCounter* work = nullptr);

/// Linear merge intersection. Appends A ∩ B to `out`.
void IntersectMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                    WorkCounter* work = nullptr);

/// Binary-search intersection: probes each element of the smaller input
/// against the larger, mirroring the warp-per-intersection GPU kernel.
/// Appends A ∩ B to `out`.
void IntersectBinary(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work = nullptr);

/// Galloping intersection for heavily skewed inputs. Appends A ∩ B to `out`.
void IntersectGallop(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work = nullptr);

/// Size ratio beyond which the auto kernels switch from linear merge to
/// galloping search; 32x mirrors the warp-width heuristic commonly used by
/// GPU matching kernels.
inline constexpr size_t kGallopSizeRatio = 32;

/// The kernel selection shared by IntersectAuto and IntersectCount: true
/// when inputs of these sizes (small <= large) should use the galloping
/// kernel. Exposed so tests can pin the boundary both callers share.
inline bool UseGallopKernel(size_t small_size, size_t large_size) {
  return small_size > 0 && large_size / small_size >= kGallopSizeRatio;
}

/// Chooses a kernel from the size ratio (UseGallopKernel): merge for
/// comparable sizes, galloping when one side is much smaller. Appends
/// A ∩ B to `out`.
void IntersectAuto(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                   WorkCounter* work = nullptr);

/// Counts |A ∩ B| without materializing the result.
size_t IntersectCount(VertexSpan a, VertexSpan b,
                      WorkCounter* work = nullptr);

/// Appends (A \ B) to `out` — the independent set-difference pass that the
/// paper identifies as STMatch's costly way of removing already-matched
/// vertices. Kept as a library primitive so the STMatch baseline can
/// reproduce that behaviour.
void DifferenceMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work = nullptr);

// ---------------------------------------------------------------------------
// Backend-invariant work models.
//
// The SIMD and bitmap backends do not follow the scalar pointer trajectory,
// so they cannot count comparisons incrementally. These closed forms
// reproduce the scalar charges exactly; the differential tests in
// tests/intersect_backend_test.cc pin formula == incremental count.
// ---------------------------------------------------------------------------

/// Work cost of one binary search over n elements: 1 + floor(log2 n) probes
/// (1 for n <= 1). The charge used by SortedContains and by the binary
/// refinement inside GallopLowerBound.
inline uint64_t BinarySearchLogCost(size_t n) {
  uint64_t cost = 1;
  while (n > 1) {
    n >>= 1;
    ++cost;
  }
  return cost;
}

/// Exact number of loop steps the scalar MergeVisit(a, b) executes when the
/// intersection has `matches` elements. Both inputs must be strictly
/// ascending. Computed from the terminal merge positions in O(log) time.
uint64_t MergeStepsWork(VertexSpan a, VertexSpan b, size_t matches);

/// Exact charge of GallopLowerBound(hay, from, v) given only the result
/// index `r` (the returned lower bound) and n = |hay| — no element accesses.
/// Valid because within the exponential probe loop hay[hi] < v iff hi < r.
uint64_t GallopProbeWork(size_t from, size_t r, size_t n);

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch.
// ---------------------------------------------------------------------------

/// Instruction-set tier of an intersection kernel table. Ordered: a level
/// implies every lower one.
enum class SimdLevel : int {
  kScalar = 0,
  kSse = 1,   // SSE4.2 shuffle-network merge, 4-wide probes
  kAvx2 = 2,  // AVX2 shuffle-network merge, 8-wide probes
};

const char* SimdLevelName(SimdLevel level);

/// Highest level this process may use: CPUID capped by the TDFS_SIMD
/// environment variable ("off"/"scalar", "sse", "avx2"/"auto"; the cap can
/// only lower the detected level, never raise it — so forcing "avx2" on an
/// SSE-only machine still yields kSse). Resolved once, on first call.
SimdLevel DetectedSimdLevel();

/// One backend's kernel set. `merge`/`merge_count` take (a, b) as given;
/// `gallop`/`gallop_count` require |small| <= |large| (callers pre-swap).
/// All meter scalar-equivalent work.
struct IntersectKernels {
  SimdLevel level;
  void (*merge)(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                WorkCounter* work);
  size_t (*merge_count)(VertexSpan a, VertexSpan b, WorkCounter* work);
  void (*gallop)(VertexSpan small, VertexSpan large,
                 std::vector<VertexId>* out, WorkCounter* work);
  size_t (*gallop_count)(VertexSpan small, VertexSpan large,
                         WorkCounter* work);
};

/// Kernel table for `level`, clamped to DetectedSimdLevel(). The scalar
/// table is always available.
const IntersectKernels& KernelsForLevel(SimdLevel level);

/// The table used by the free IntersectMerge/Gallop/Auto/Count functions:
/// KernelsForLevel(DetectedSimdLevel()).
const IntersectKernels& ProcessKernels();

// ---------------------------------------------------------------------------
// Engine-facing backend selection knob (EngineConfig::intersect).
// ---------------------------------------------------------------------------

/// Intersection backend policy for a matching run.
enum class IntersectMode : int {
  kAuto = 0,       // best detected SIMD kernels + hub bitmap index
  kScalar = 1,     // scalar kernels only, no bitmaps (reference behaviour)
  kSimd = 2,       // best detected SIMD kernels, bitmaps disabled
  kBitmapOff = 3,  // alias of kSimd kept for CLI/scripts readability
};

const char* IntersectModeName(IntersectMode mode);

/// Parses "auto" / "scalar" / "simd" / "bitmap-off". Returns false on
/// unknown names, leaving *mode untouched.
bool ParseIntersectMode(std::string_view name, IntersectMode* mode);

/// True when runs under `mode` build and consult the hub bitmap index.
inline bool UsesHubBitmaps(IntersectMode mode) {
  return mode == IntersectMode::kAuto;
}

/// Kernel table a run under `mode` should bind.
inline const IntersectKernels& KernelsForMode(IntersectMode mode) {
  return mode == IntersectMode::kScalar ? KernelsForLevel(SimdLevel::kScalar)
                                        : ProcessKernels();
}

}  // namespace tdfs

#endif  // TDFS_UTIL_INTERSECT_H_
