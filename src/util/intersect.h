// Sorted-set intersection kernels.
//
// Candidate computation in subgraph matching (Eq. (1) of the paper) is a
// chain of intersections of sorted adjacency lists. On the GPU the threads
// of a warp intersect A ∩ B by probing each element of A against B with
// binary search ("warp-style"); on skewed size ratios galloping search is
// preferable, and for similar sizes a linear merge wins. All kernels
// optionally meter their work (element comparisons) so the virtual-GPU
// substrate can account deterministic costs.

#ifndef TDFS_UTIL_INTERSECT_H_
#define TDFS_UTIL_INTERSECT_H_

#include <cstdint>
#include <span>
#include <vector>

namespace tdfs {

/// Vertex identifier. Negative values are reserved for sentinels
/// (kEmptySlot, kNoThirdVertex in the task queue).
using VertexId = int32_t;

using VertexSpan = std::span<const VertexId>;

/// Accumulates abstract work units (element comparisons / probes). Used by
/// the virtual clock for deterministic timeout tests and by benches for
/// machine-independent cost reporting.
struct WorkCounter {
  uint64_t units = 0;
  void Add(uint64_t n) { units += n; }
};

/// Returns true iff `v` occurs in sorted `hay`. Adds O(log |hay|) work.
bool SortedContains(VertexSpan hay, VertexId v, WorkCounter* work = nullptr);

/// Lower bound index of `v` in sorted `hay` starting from `from`.
size_t GallopLowerBound(VertexSpan hay, size_t from, VertexId v,
                        WorkCounter* work = nullptr);

/// Linear merge intersection. Appends A ∩ B to `out`.
void IntersectMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                    WorkCounter* work = nullptr);

/// Binary-search intersection: probes each element of the smaller input
/// against the larger, mirroring the warp-per-intersection GPU kernel.
/// Appends A ∩ B to `out`.
void IntersectBinary(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work = nullptr);

/// Galloping intersection for heavily skewed inputs. Appends A ∩ B to `out`.
void IntersectGallop(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work = nullptr);

/// Size ratio beyond which the auto kernels switch from linear merge to
/// galloping search; 32x mirrors the warp-width heuristic commonly used by
/// GPU matching kernels.
inline constexpr size_t kGallopSizeRatio = 32;

/// The kernel selection shared by IntersectAuto and IntersectCount: true
/// when inputs of these sizes (small <= large) should use the galloping
/// kernel. Exposed so tests can pin the boundary both callers share.
inline bool UseGallopKernel(size_t small_size, size_t large_size) {
  return small_size > 0 && large_size / small_size >= kGallopSizeRatio;
}

/// Chooses a kernel from the size ratio (UseGallopKernel): merge for
/// comparable sizes, galloping when one side is much smaller. Appends
/// A ∩ B to `out`.
void IntersectAuto(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                   WorkCounter* work = nullptr);

/// Counts |A ∩ B| without materializing the result.
size_t IntersectCount(VertexSpan a, VertexSpan b,
                      WorkCounter* work = nullptr);

/// Appends (A \ B) to `out` — the independent set-difference pass that the
/// paper identifies as STMatch's costly way of removing already-matched
/// vertices. Kept as a library primitive so the STMatch baseline can
/// reproduce that behaviour.
void DifferenceMerge(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
                     WorkCounter* work = nullptr);

}  // namespace tdfs

#endif  // TDFS_UTIL_INTERSECT_H_
