// SIMD sorted-set intersection kernels (SSE4.2 and AVX2).
//
// Merge kernels use the shuffle-network ("block-wise all-pairs") scheme:
// load one W-wide block from each list, compare every rotation of one block
// against the other (W*W pairs in W compares), compress-store the matched
// lanes, then advance the block whose maximum is smaller (both on a tie).
// Gallop kernels keep the scalar exponential probe — its trajectory defines
// the metered work — and vectorize the final window scan.
//
// Work metering is backend-invariant by construction: the merge kernels
// charge MergeStepsWork (the closed form of the scalar trajectory) and the
// gallop kernels replay the exact scalar charge sequence, so a run's
// work_units do not depend on the instruction set.

#include "util/intersect_simd.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TDFS_HAVE_X86_SIMD 1
#else
#define TDFS_HAVE_X86_SIMD 0
#endif

namespace tdfs {

#if TDFS_HAVE_X86_SIMD

namespace {

// Compress control tables: for each match mask, lane indices (AVX2 permute)
// or byte shuffles (SSE pshufb) that pack the matched lanes to the front.
struct alignas(32) Avx2CompressTable {
  int32_t idx[256][8];
};

constexpr Avx2CompressTable MakeAvx2CompressTable() {
  Avx2CompressTable t{};
  for (int mask = 0; mask < 256; ++mask) {
    int n = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) {
        t.idx[mask][n++] = lane;
      }
    }
    for (; n < 8; ++n) {
      t.idx[mask][n] = 0;
    }
  }
  return t;
}

constexpr Avx2CompressTable kAvx2Compress = MakeAvx2CompressTable();

struct alignas(16) SseCompressTable {
  uint8_t ctrl[16][16];
};

constexpr SseCompressTable MakeSseCompressTable() {
  SseCompressTable t{};
  for (int mask = 0; mask < 16; ++mask) {
    int n = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) {
        for (int byte = 0; byte < 4; ++byte) {
          t.ctrl[mask][4 * n + byte] = static_cast<uint8_t>(4 * lane + byte);
        }
        ++n;
      }
    }
    for (int byte = 4 * n; byte < 16; ++byte) {
      t.ctrl[mask][byte] = 0x80;  // pshufb: zero the slack lanes
    }
  }
  return t;
}

constexpr SseCompressTable kSseCompress = MakeSseCompressTable();

// ---------------------------------------------------------------------------
// Merge kernels. `dst` may be null (count-only). Returns the match count;
// writes up to W lanes of slack past the final count, so dst needs
// min(na, nb) + 8 elements of room.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2,popcnt"))) size_t MergeKernelSse(
    const VertexId* a, size_t na, const VertexId* b, size_t nb,
    VertexId* dst) {
  size_t i = 0;
  size_t j = 0;
  size_t m = 0;
  if (na >= 4 && nb >= 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    while (true) {
      __m128i eq = _mm_cmpeq_epi32(va, vb);
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));
      eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
      const unsigned mask =
          static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
      if (dst != nullptr && mask != 0) {
        const __m128i ctrl = _mm_load_si128(
            reinterpret_cast<const __m128i*>(kSseCompress.ctrl[mask]));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + m),
                         _mm_shuffle_epi8(va, ctrl));
      }
      m += static_cast<size_t>(__builtin_popcount(mask));
      const VertexId a_max = a[i + 3];
      const VertexId b_max = b[j + 3];
      if (a_max <= b_max) {
        i += 4;
        if (i + 4 > na) {
          if (b_max <= a_max) {
            j += 4;
          }
          break;
        }
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (b_max <= a_max) {
        j += 4;
        if (j + 4 > nb) {
          break;
        }
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      if (dst != nullptr) {
        dst[m] = a[i];
      }
      ++m;
      ++i;
      ++j;
    }
  }
  return m;
}

__attribute__((target("avx2,popcnt"))) size_t MergeKernelAvx2(
    const VertexId* a, size_t na, const VertexId* b, size_t nb,
    VertexId* dst) {
  size_t i = 0;
  size_t j = 0;
  size_t m = 0;
  if (na >= 8 && nb >= 8) {
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    while (true) {
      __m256i eq = _mm256_cmpeq_epi32(va, vb);
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6)));
      eq = _mm256_or_si256(
          eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7)));
      const unsigned mask =
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
      if (dst != nullptr && mask != 0) {
        const __m256i key = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(kAvx2Compress.idx[mask]));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + m),
                            _mm256_permutevar8x32_epi32(va, key));
      }
      m += static_cast<size_t>(__builtin_popcount(mask));
      const VertexId a_max = a[i + 7];
      const VertexId b_max = b[j + 7];
      if (a_max <= b_max) {
        i += 8;
        if (i + 8 > na) {
          if (b_max <= a_max) {
            j += 8;
          }
          break;
        }
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (b_max <= a_max) {
        j += 8;
        if (j + 8 > nb) {
          break;
        }
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      if (dst != nullptr) {
        dst[m] = a[i];
      }
      ++m;
      ++i;
      ++j;
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Gallop kernels: scalar exponential probe (its charges ARE the work
// model), vectorized lower-bound scan over the final (lo, hi) window.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2,popcnt"))) size_t LowerBoundWindowSse(
    const VertexId* hay, size_t lo, size_t hi, VertexId v) {
  while (hi - lo > 16) {
    const size_t mid = lo + (hi - lo) / 2;
    if (hay[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m128i vv = _mm_set1_epi32(v);
  while (lo + 4 <= hi) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hay + lo));
    const unsigned lt = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(vv, chunk))));
    if (lt != 0xF) {
      return lo + static_cast<size_t>(__builtin_ctz(~lt));
    }
    lo += 4;
  }
  while (lo < hi && hay[lo] < v) {
    ++lo;
  }
  return lo;
}

__attribute__((target("avx2,popcnt"))) size_t LowerBoundWindowAvx2(
    const VertexId* hay, size_t lo, size_t hi, VertexId v) {
  while (hi - lo > 32) {
    const size_t mid = lo + (hi - lo) / 2;
    if (hay[mid] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m256i vv = _mm256_set1_epi32(v);
  while (lo + 8 <= hi) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hay + lo));
    const unsigned lt = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vv, chunk))));
    if (lt != 0xFF) {
      return lo + static_cast<size_t>(__builtin_ctz(~lt));
    }
    lo += 8;
  }
  while (lo < hi && hay[lo] < v) {
    ++lo;
  }
  return lo;
}

// One gallop traversal mirroring the scalar GallopVisit step for step
// (same probe loop, same early break, same per-element charges) so outputs
// AND work are bit-identical to the scalar backend.
#define TDFS_DEFINE_GALLOP_KERNEL(NAME, TARGET, LOWER_BOUND)                  \
  __attribute__((target(TARGET))) size_t NAME(                                \
      const VertexId* a, size_t na, const VertexId* b, size_t nb,             \
      VertexId* dst, uint64_t* work_units) {                                  \
    size_t pos = 0;                                                           \
    size_t m = 0;                                                             \
    uint64_t w = 0;                                                           \
    for (size_t k = 0; k < na; ++k) {                                         \
      const VertexId v = a[k];                                                \
      size_t r;                                                               \
      if (pos >= nb || b[pos] >= v) {                                         \
        w += 1;                                                               \
        r = pos;                                                              \
      } else {                                                                \
        size_t step = 1;                                                      \
        size_t lo = pos;                                                      \
        size_t hi = pos + 1;                                                  \
        uint64_t probes = 1;                                                  \
        while (hi < nb && b[hi] < v) {                                        \
          lo = hi;                                                            \
          step <<= 1;                                                         \
          hi = pos + step;                                                    \
          ++probes;                                                           \
        }                                                                     \
        hi = hi < nb ? hi : nb;                                               \
        w += probes + BinarySearchLogCost(hi - lo);                           \
        r = LOWER_BOUND(b, lo + 1, hi, v);                                    \
      }                                                                       \
      if (r == nb) {                                                          \
        break;                                                                \
      }                                                                       \
      if (b[r] == v) {                                                        \
        if (dst != nullptr) {                                                 \
          dst[m] = v;                                                         \
        }                                                                     \
        ++m;                                                                  \
        pos = r + 1;                                                          \
      } else {                                                                \
        pos = r;                                                              \
      }                                                                       \
    }                                                                         \
    *work_units = w;                                                          \
    return m;                                                                 \
  }

TDFS_DEFINE_GALLOP_KERNEL(GallopKernelSse, "sse4.2,popcnt",
                          LowerBoundWindowSse)
TDFS_DEFINE_GALLOP_KERNEL(GallopKernelAvx2, "avx2,popcnt",
                          LowerBoundWindowAvx2)

#undef TDFS_DEFINE_GALLOP_KERNEL

// ---------------------------------------------------------------------------
// IntersectKernels wrappers (no intrinsics; plain ABI).
// ---------------------------------------------------------------------------

using MergeKernelFn = size_t (*)(const VertexId*, size_t, const VertexId*,
                                 size_t, VertexId*);
using GallopKernelFn = size_t (*)(const VertexId*, size_t, const VertexId*,
                                  size_t, VertexId*, uint64_t*);

template <MergeKernelFn kKernel>
void MergeInto(VertexSpan a, VertexSpan b, std::vector<VertexId>* out,
               WorkCounter* work) {
  const size_t base = out->size();
  out->resize(base + std::min(a.size(), b.size()) + 8);
  const size_t m = kKernel(a.data(), a.size(), b.data(), b.size(),
                           out->data() + base);
  out->resize(base + m);
  if (work != nullptr) {
    work->Add(MergeStepsWork(a, b, m));
  }
}

template <MergeKernelFn kKernel>
size_t MergeCount(VertexSpan a, VertexSpan b, WorkCounter* work) {
  const size_t m = kKernel(a.data(), a.size(), b.data(), b.size(), nullptr);
  if (work != nullptr) {
    work->Add(MergeStepsWork(a, b, m));
  }
  return m;
}

template <GallopKernelFn kKernel>
void GallopInto(VertexSpan small, VertexSpan large, std::vector<VertexId>* out,
                WorkCounter* work) {
  const size_t base = out->size();
  out->resize(base + small.size());
  uint64_t w = 0;
  const size_t m = kKernel(small.data(), small.size(), large.data(),
                           large.size(), out->data() + base, &w);
  out->resize(base + m);
  if (work != nullptr) {
    work->Add(w);
  }
}

template <GallopKernelFn kKernel>
size_t GallopCount(VertexSpan small, VertexSpan large, WorkCounter* work) {
  uint64_t w = 0;
  const size_t m = kKernel(small.data(), small.size(), large.data(),
                           large.size(), nullptr, &w);
  if (work != nullptr) {
    work->Add(w);
  }
  return m;
}

constexpr IntersectKernels kSseKernels = {
    SimdLevel::kSse, &MergeInto<&MergeKernelSse>, &MergeCount<&MergeKernelSse>,
    &GallopInto<&GallopKernelSse>, &GallopCount<&GallopKernelSse>};

constexpr IntersectKernels kAvx2Kernels = {
    SimdLevel::kAvx2, &MergeInto<&MergeKernelAvx2>,
    &MergeCount<&MergeKernelAvx2>, &GallopInto<&GallopKernelAvx2>,
    &GallopCount<&GallopKernelAvx2>};

}  // namespace

const IntersectKernels* SseIntersectKernels() { return &kSseKernels; }

const IntersectKernels* Avx2IntersectKernels() { return &kAvx2Kernels; }

#else  // !TDFS_HAVE_X86_SIMD

const IntersectKernels* SseIntersectKernels() { return nullptr; }

const IntersectKernels* Avx2IntersectKernels() { return nullptr; }

#endif  // TDFS_HAVE_X86_SIMD

}  // namespace tdfs
