// Internal: SIMD kernel tables for util/intersect.cc's runtime dispatch.
//
// The implementations live in intersect_simd.cc, compiled WITHOUT global
// -mavx2/-msse4.2 flags — every kernel carries a function-level
// __attribute__((target(...))) so the binary stays runnable on any x86-64
// and the dispatcher picks the widest level CPUID reports.

#ifndef TDFS_UTIL_INTERSECT_SIMD_H_
#define TDFS_UTIL_INTERSECT_SIMD_H_

#include "util/intersect.h"

namespace tdfs {

/// SSE4.2 kernel table, or nullptr when the build target is not x86.
const IntersectKernels* SseIntersectKernels();

/// AVX2 kernel table, or nullptr when the build target is not x86.
const IntersectKernels* Avx2IntersectKernels();

}  // namespace tdfs

#endif  // TDFS_UTIL_INTERSECT_SIMD_H_
