#include "util/logging.h"

#include <cctype>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace tdfs {

namespace {

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

// Guarded by LogMutex(); empty target = stderr default.
LogSink& CurrentSink() {
  static LogSink sink;
  return sink;
}

LogLevel LevelFromEnv() {
  const char* value = std::getenv("TDFS_LOG_LEVEL");
  if (value != nullptr) {
    if (std::optional<LogLevel> parsed = ParseLogLevel(value)) {
      return *parsed;
    }
    std::cerr << "[W logging.cc] TDFS_LOG_LEVEL='" << value
              << "' is not a level name; using 'warning'" << std::endl;
  }
  return LogLevel::kWarning;
}

}  // namespace

LogLevel& GlobalLogLevel() {
  static LogLevel level = LevelFromEnv();
  return level;
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    return LogLevel::kDebug;
  }
  if (lower == "info") {
    return LogLevel::kInfo;
  }
  if (lower == "warning" || lower == "warn") {
    return LogLevel::kWarning;
  }
  if (lower == "error") {
    return LogLevel::kError;
  }
  if (lower == "off" || lower == "none") {
    return LogLevel::kOff;
  }
  return std::nullopt;
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  LogSink previous = std::move(CurrentSink());
  CurrentSink() = std::move(sink);
  return previous;
}

namespace internal {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GlobalLogLevel())),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    const LogSink& sink = CurrentSink();
    if (sink) {
      sink(level_, stream_.str());
    } else {
      std::cerr << stream_.str() << std::endl;
    }
  }
}

}  // namespace internal
}  // namespace tdfs
