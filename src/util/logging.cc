#include "util/logging.h"

#include <mutex>

namespace tdfs {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarning;
  return level;
}

namespace internal {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GlobalLogLevel())),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace tdfs
