#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>

namespace tdfs {

namespace {

// Serializes emission only (so interleaved lines stay whole and sinks can
// be lock-free). Deliberately NOT held across SetLogSink: swapping the
// sink never waits for an in-flight emission, and an emitter never reads
// a half-updated std::function.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

// Guards SinkSlot(). A plain mutex rather than std::atomic<shared_ptr>:
// libstdc++'s lock-free _Sp_atomic unlocks its reader path with a relaxed
// RMW, which leaves no release edge to the next writer's plain pointer
// write — a formal data race that TSan reports. The copy under this lock
// is a refcount bump, unmeasurable next to LogMutex.
std::mutex& SlotMutex() {
  static std::mutex mu;
  return mu;
}

// Null pointer = stderr default. shared_ptr (not a bare LogSink) so an
// emitting thread holds its own reference across the sink call and a
// concurrent swap cannot destroy the std::function out from under it.
std::shared_ptr<const LogSink>& SinkSlot() {
  static std::shared_ptr<const LogSink> slot;
  return slot;
}

LogLevel LevelFromEnv() {
  const char* value = std::getenv("TDFS_LOG_LEVEL");
  if (value != nullptr) {
    if (std::optional<LogLevel> parsed = ParseLogLevel(value)) {
      return *parsed;
    }
    std::cerr << "[W logging.cc] TDFS_LOG_LEVEL='" << value
              << "' is not a level name; using 'warning'" << std::endl;
  }
  return LogLevel::kWarning;
}

std::atomic<int>& LevelSlot() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

}  // namespace

LogLevel GlobalLogLevel() {
  return static_cast<LogLevel>(LevelSlot().load(std::memory_order_relaxed));
}

void SetGlobalLogLevel(LogLevel level) {
  LevelSlot().store(static_cast<int>(level), std::memory_order_relaxed);
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    return LogLevel::kDebug;
  }
  if (lower == "info") {
    return LogLevel::kInfo;
  }
  if (lower == "warning" || lower == "warn") {
    return LogLevel::kWarning;
  }
  if (lower == "error") {
    return LogLevel::kError;
  }
  if (lower == "off" || lower == "none") {
    return LogLevel::kOff;
  }
  return std::nullopt;
}

LogSink SetLogSink(LogSink sink) {
  std::shared_ptr<const LogSink> next;
  if (sink) {
    next = std::make_shared<const LogSink>(std::move(sink));
  }
  std::shared_ptr<const LogSink> previous;
  {
    std::lock_guard<std::mutex> lock(SlotMutex());
    previous = std::exchange(SinkSlot(), std::move(next));
  }
  return previous == nullptr ? LogSink() : *previous;
}

namespace internal {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GlobalLogLevel())),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // Resolve the sink before taking the output lock; the local
    // shared_ptr keeps it alive even if SetLogSink swaps it mid-line.
    std::shared_ptr<const LogSink> sink;
    {
      std::lock_guard<std::mutex> lock(SlotMutex());
      sink = SinkSlot();
    }
    std::lock_guard<std::mutex> lock(LogMutex());
    if (sink != nullptr && *sink) {
      (*sink)(level_, stream_.str());
    } else {
      std::cerr << stream_.str() << std::endl;
    }
  }
}

}  // namespace internal
}  // namespace tdfs
