// Minimal leveled logging to stderr.
//
// Usage: TDFS_LOG(INFO) << "loaded " << n << " edges";
// The global level defaults to WARNING so library users are not spammed;
// benches and examples raise it to INFO.

#ifndef TDFS_UTIL_LOGGING_H_
#define TDFS_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace tdfs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the mutable global log threshold. Messages below it are dropped.
LogLevel& GlobalLogLevel();

namespace internal {

/// Buffers one log line and flushes it (with a level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tdfs

#define TDFS_LOG(severity)                                       \
  ::tdfs::internal::LogMessage(::tdfs::LogLevel::k##severity, __FILE__, \
                               __LINE__)

#endif  // TDFS_UTIL_LOGGING_H_
