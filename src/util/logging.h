// Minimal leveled logging with a pluggable sink.
//
// Usage: TDFS_LOG(Info) << "loaded " << n << " edges";
// The global level defaults to WARNING so library users are not spammed;
// benches and examples raise it to INFO, and the TDFS_LOG_LEVEL
// environment variable ("debug", "info", "warning", "error", "off")
// overrides the default at process start. Lines go to stderr unless an
// embedding application installs its own sink with SetLogSink.

#ifndef TDFS_UTIL_LOGGING_H_
#define TDFS_UTIL_LOGGING_H_

#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace tdfs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the global log threshold. Messages below it are dropped.
/// First use seeds it from TDFS_LOG_LEVEL when set (and a valid level
/// name), else WARNING. Thread-safe (relaxed atomic read): service
/// workers log concurrently with tests or embedders adjusting the level.
LogLevel GlobalLogLevel();

/// Replaces the global log threshold. Thread-safe.
void SetGlobalLogLevel(LogLevel level);

/// Parses a level name ("debug", "info", "warning"/"warn", "error",
/// "off"/"none", case-insensitive). nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view name);

/// Receives one formatted log line (level tag, file:line prefix, message —
/// no trailing newline). Called with an internal output mutex held, so
/// sinks need no locking of their own but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Installs `sink` as the destination for all subsequent log lines; a
/// null sink restores the stderr default. Returns the previous sink (null
/// if the default was active). The swap is an atomic shared_ptr exchange:
/// it is safe to call while other threads are emitting, and an in-flight
/// line keeps the sink it resolved alive until it returns (the replaced
/// sink is never destroyed mid-call).
LogSink SetLogSink(LogSink sink);

namespace internal {

/// Buffers one log line and flushes it (with a level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tdfs

#define TDFS_LOG(severity)                                       \
  ::tdfs::internal::LogMessage(::tdfs::LogLevel::k##severity, __FILE__, \
                               __LINE__)

#endif  // TDFS_UTIL_LOGGING_H_
