// Deterministic pseudo-random number generation for graph generators and
// tests. Two generators are provided:
//
//  * SplitMix64 — for seeding and cheap hashing.
//  * Xoshiro256ss — the workhorse generator (xoshiro256**), fast and with
//    good statistical quality; satisfies std::uniform_random_bit_generator.
//
// Determinism is load-bearing: every synthetic dataset in the benchmark
// suite is identified by a seed, so the same seed must yield the same graph
// on every platform. Neither generator depends on std:: distributions for
// integer sampling (their behaviour is implementation-defined); bounded
// sampling uses Lemire's unbiased method.

#ifndef TDFS_UTIL_PRNG_H_
#define TDFS_UTIL_PRNG_H_

#include <cstdint>

#include "util/status.h"

namespace tdfs {

/// SplitMix64: a tiny 64-bit generator, mainly used to expand a user seed
/// into the state of a larger generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic across platforms.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm();
    }
  }

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's method. bound must be > 0.
  uint64_t Below(uint64_t bound) {
    TDFS_CHECK(bound > 0);
    // Multiply-shift with rejection to remove modulo bias.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    TDFS_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace tdfs

#endif  // TDFS_UTIL_PRNG_H_
