#include "util/status.h"

namespace tdfs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::cerr << "TDFS_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) {
    std::cerr << " (" << extra << ")";
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace tdfs
