// Status and Result<T>: lightweight error propagation without exceptions.
//
// The library follows the Arrow/RocksDB convention of returning a Status (or
// a Result<T> when a value is produced) from any operation that can fail for
// reasons other than programmer error. Programmer errors (violated
// preconditions) are handled with TDFS_CHECK, which aborts.

#ifndef TDFS_UTIL_STATUS_H_
#define TDFS_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace tdfs {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIOError,
  kResourceExhausted,
  kDeadlineExceeded,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Use ValueOrDie() only in
/// tests and examples; library code propagates with TDFS_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or aborts with the error message.
  T ValueOrDie() && {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace tdfs

/// Aborts with a diagnostic if `cond` is false. For programmer errors only.
#define TDFS_CHECK(cond)                                            \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::tdfs::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                               \
  } while (0)

#define TDFS_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream tdfs_check_oss_;                              \
      tdfs_check_oss_ << msg;                                          \
      ::tdfs::internal::CheckFailed(__FILE__, __LINE__, #cond,         \
                                    tdfs_check_oss_.str());            \
    }                                                                  \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define TDFS_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::tdfs::Status tdfs_status_ = (expr); \
    if (!tdfs_status_.ok()) {             \
      return tdfs_status_;                \
    }                                     \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define TDFS_CONCAT_INNER_(a, b) a##b
#define TDFS_CONCAT_(a, b) TDFS_CONCAT_INNER_(a, b)
#define TDFS_ASSIGN_OR_RETURN(lhs, expr) \
  TDFS_ASSIGN_OR_RETURN_IMPL_(TDFS_CONCAT_(tdfs_result_, __LINE__), lhs, \
                              expr)
#define TDFS_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) {                                  \
    return result.status();                            \
  }                                                    \
  lhs = std::move(result).value()

#endif  // TDFS_UTIL_STATUS_H_
