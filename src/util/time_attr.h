// Sampled wall-time attribution for the matching engines.
//
// work_units answer "how much work happened where", but operators also
// need "where did the wall time go" — SIMD merges and bitmap probes charge
// identical units while costing very different nanoseconds. A
// TimeAttributionSink accumulates wall time per plan cell (one slot per
// matching-order position) and per intersection backend arm, so a run can
// be exported as a flamegraph-style breakdown (RunResult::attribution,
// CLI --flame-out).
//
// Measuring every call would dwarf the measured work: an intersection of a
// few dozen vertices costs ~100 ns while two clock reads cost ~40. The
// sink therefore samples: it counts every call but times only one in
// kSamplePeriod, scaling the measured nanoseconds back up by the call
// count at export. Each sink belongs to one warp (no synchronization on
// the hot path); warps merge into the run's shared sink at teardown.
//
// The off path is the usual observability contract: a null sink pointer
// in the warp's WorkCounter makes every hook a pointer test.

#ifndef TDFS_UTIL_TIME_ATTR_H_
#define TDFS_UTIL_TIME_ATTR_H_

#include <cstdint>
#include <type_traits>
#include <utility>

#include "util/intersect.h"
#include "util/timer.h"

namespace tdfs {

/// The concrete kernel an IntersectDispatch call resolved to. "Arm"
/// because dispatch is a small decision tree: bitmap availability first,
/// then the gallop-vs-merge size ratio, with the SIMD tier baked into the
/// kernel table.
enum class IntersectArm : int {
  kMergeScalar = 0,
  kMergeSimd,
  kGallopScalar,
  kGallopSimd,
  kBitmapMerge,
  kBitmapGallop,
};

inline constexpr int kNumIntersectArms = 6;

/// Stable lowercase arm name ("merge_simd", "bitmap_gallop", ...).
inline const char* IntersectArmName(int arm) {
  switch (static_cast<IntersectArm>(arm)) {
    case IntersectArm::kMergeScalar:
      return "merge_scalar";
    case IntersectArm::kMergeSimd:
      return "merge_simd";
    case IntersectArm::kGallopScalar:
      return "gallop_scalar";
    case IntersectArm::kGallopSimd:
      return "gallop_simd";
    case IntersectArm::kBitmapMerge:
      return "bitmap_merge";
    case IntersectArm::kBitmapGallop:
      return "bitmap_gallop";
  }
  return "unknown";
}

/// Per-warp attribution accumulator. Two layers:
///  * cell_*  — whole candidate-extension time per plan cell (everything
///    ExtendLevel does: intersections, consume checks, stack publication);
///  * arm_*   — kernel time per (cell, dispatch arm), nested inside the
///    cell layer, recorded by IntersectDispatch when the WorkCounter it is
///    handed carries this sink.
/// Both layers sample independently (1 in kSamplePeriod calls), so the
/// scaled arm estimates can jitter slightly above their cell's estimate on
/// short runs; consumers clamp (see TimeAttribution::WriteCollapsed).
struct TimeAttributionSink {
  /// Queries have at most 16 vertices; the last slot collects anything
  /// out of range ("other") so a bad cell index can never write wild.
  static constexpr int kMaxCells = 17;

  /// Sampling period as a mask: time 1 of every 64 calls.
  static constexpr uint32_t kSampleMask = 63;

  static int CellSlot(int32_t cell) {
    return cell < 0 || cell >= kMaxCells - 1 ? kMaxCells - 1
                                             : static_cast<int>(cell);
  }

  uint64_t cell_calls[kMaxCells] = {};
  uint64_t cell_sampled[kMaxCells] = {};
  uint64_t cell_ns[kMaxCells] = {};
  uint32_t cell_tick = 0;

  uint64_t arm_calls[kMaxCells][kNumIntersectArms] = {};
  uint64_t arm_sampled[kMaxCells][kNumIntersectArms] = {};
  uint64_t arm_ns[kMaxCells][kNumIntersectArms] = {};
  uint32_t arm_tick = 0;

  void MergeFrom(const TimeAttributionSink& other) {
    for (int c = 0; c < kMaxCells; ++c) {
      cell_calls[c] += other.cell_calls[c];
      cell_sampled[c] += other.cell_sampled[c];
      cell_ns[c] += other.cell_ns[c];
      for (int a = 0; a < kNumIntersectArms; ++a) {
        arm_calls[c][a] += other.arm_calls[c][a];
        arm_sampled[c][a] += other.arm_sampled[c][a];
        arm_ns[c][a] += other.arm_ns[c][a];
      }
    }
  }

  bool Empty() const {
    for (uint64_t calls : cell_calls) {
      if (calls != 0) {
        return false;
      }
    }
    for (const auto& per_cell : arm_calls) {
      for (uint64_t calls : per_cell) {
        if (calls != 0) {
          return false;
        }
      }
    }
    return true;
  }

  /// Sampled measurement scaled back to the full call count.
  static uint64_t EstimateNs(uint64_t calls, uint64_t sampled, uint64_t ns) {
    if (sampled == 0) {
      return 0;
    }
    return static_cast<uint64_t>(static_cast<double>(ns) *
                                 (static_cast<double>(calls) /
                                  static_cast<double>(sampled)));
  }
};

/// Runs `fn` as dispatch arm `arm`, attributing its wall time to
/// (work->attr_cell, arm) when `work` carries a sink. The no-sink path is
/// two pointer tests; the unsampled path is one increment.
template <typename Fn>
inline auto TimedIntersectArm(WorkCounter* work, IntersectArm arm, Fn&& fn) {
  TimeAttributionSink* attr = work == nullptr ? nullptr : work->attr;
  if (attr == nullptr) {
    return std::forward<Fn>(fn)();
  }
  const int cell = TimeAttributionSink::CellSlot(work->attr_cell);
  const int a = static_cast<int>(arm);
  ++attr->arm_calls[cell][a];
  if ((attr->arm_tick++ & TimeAttributionSink::kSampleMask) != 0) {
    return std::forward<Fn>(fn)();
  }
  const int64_t t0 = Timer::Now();
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    attr->arm_ns[cell][a] += static_cast<uint64_t>(Timer::Now() - t0);
    ++attr->arm_sampled[cell][a];
  } else {
    auto result = fn();
    attr->arm_ns[cell][a] += static_cast<uint64_t>(Timer::Now() - t0);
    ++attr->arm_sampled[cell][a];
    return result;
  }
}

}  // namespace tdfs

#endif  // TDFS_UTIL_TIME_ATTR_H_
