// Wall-clock timing helpers used by the engines and the benchmark harness.

#ifndef TDFS_UTIL_TIMER_H_
#define TDFS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tdfs {

/// Monotonic stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// Elapsed time since construction or last Reset.
  int64_t ElapsedNanos() const { return Now() - start_; }
  double ElapsedMicros() const { return ElapsedNanos() * 1e-3; }
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

  /// Current monotonic time in nanoseconds since an arbitrary epoch.
  static int64_t Now() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  int64_t start_;
};

}  // namespace tdfs

#endif  // TDFS_UTIL_TIMER_H_
