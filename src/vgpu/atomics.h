// CUDA-semantics atomic operations for the virtual-GPU substrate.
//
// The paper's lock-free task queue (Alg. 3) is written against CUDA's
// atomicAdd / atomicSub / atomicCAS / atomicExch, all of which return the
// *old* value. These wrappers provide identical semantics on host memory
// via std::atomic_ref, so Alg. 3 can be transcribed verbatim. __nanosleep
// maps to a host-side pause.

#ifndef TDFS_VGPU_ATOMICS_H_
#define TDFS_VGPU_ATOMICS_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace tdfs::vgpu {

/// atomicAdd(addr, val): *addr += val, returns the old value.
inline int32_t AtomicAdd(int32_t* addr, int32_t val) {
  return std::atomic_ref<int32_t>(*addr).fetch_add(
      val, std::memory_order_acq_rel);
}

inline int64_t AtomicAdd64(int64_t* addr, int64_t val) {
  return std::atomic_ref<int64_t>(*addr).fetch_add(
      val, std::memory_order_acq_rel);
}

/// atomicSub(addr, val): *addr -= val, returns the old value.
inline int32_t AtomicSub(int32_t* addr, int32_t val) {
  return std::atomic_ref<int32_t>(*addr).fetch_sub(
      val, std::memory_order_acq_rel);
}

/// atomicCAS(addr, compare, val): if *addr == compare then *addr = val;
/// returns the old value either way.
inline int32_t AtomicCas(int32_t* addr, int32_t compare, int32_t val) {
  std::atomic_ref<int32_t> ref(*addr);
  ref.compare_exchange_strong(compare, val, std::memory_order_acq_rel,
                              std::memory_order_acquire);
  return compare;  // compare_exchange_strong loads the old value on failure
}

/// atomicExch(addr, val): *addr = val, returns the old value.
inline int32_t AtomicExch(int32_t* addr, int32_t val) {
  return std::atomic_ref<int32_t>(*addr).exchange(
      val, std::memory_order_acq_rel);
}

/// Plain acquire load (CUDA volatile read).
inline int32_t AtomicLoad(const int32_t* addr) {
  return std::atomic_ref<const int32_t>(*addr).load(
      std::memory_order_acquire);
}

inline int64_t AtomicLoad64(const int64_t* addr) {
  return std::atomic_ref<const int64_t>(*addr).load(
      std::memory_order_acquire);
}

/// Plain release store (CUDA volatile write / __threadfence + store).
inline void AtomicStore64(int64_t* addr, int64_t val) {
  std::atomic_ref<int64_t>(*addr).store(val, std::memory_order_release);
}

/// __nanosleep(ns): back off briefly without burning the core.
inline void Nanosleep(int64_t ns) {
  if (ns <= 0) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}

}  // namespace tdfs::vgpu

#endif  // TDFS_VGPU_ATOMICS_H_
