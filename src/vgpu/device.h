// Virtual device descriptors and multi-device partitioning.
//
// T-DFS scales to multiple GPUs by assigning initial edge tasks round-robin
// (edge i -> device i mod NUM_GPU) with no migration between devices
// (Section III / IV-E). A DeviceGroup captures that partitioning. On this
// single-node substrate the devices of a group are executed one after
// another and the *simulated* parallel makespan is max over devices of the
// per-device time — exactly the quantity the paper's Fig. 12 speedup is
// computed from, and immune to host-core oversubscription.

#ifndef TDFS_VGPU_DEVICE_H_
#define TDFS_VGPU_DEVICE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace tdfs::vgpu {

/// One virtual GPU.
struct Device {
  int device_id = 0;
  /// Resident warps per kernel (the paper's warp count is determined by the
  /// launch configuration; the default is sized for a host CPU).
  int num_warps = 8;
};

/// A set of devices sharing a job via round-robin edge partitioning.
class DeviceGroup {
 public:
  /// Creates `num_devices` identical devices.
  DeviceGroup(int num_devices, int warps_per_device) {
    TDFS_CHECK(num_devices >= 1);
    devices_.reserve(num_devices);
    for (int d = 0; d < num_devices; ++d) {
      devices_.push_back(Device{d, warps_per_device});
    }
  }

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const Device& device(int i) const { return devices_[i]; }

  /// True iff directed edge `edge_index` is assigned to `device_id`.
  bool OwnsEdge(int device_id, int64_t edge_index) const {
    return edge_index % num_devices() == device_id;
  }

 private:
  std::vector<Device> devices_;
};

}  // namespace tdfs::vgpu

#endif  // TDFS_VGPU_DEVICE_H_
