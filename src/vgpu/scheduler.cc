#include "vgpu/scheduler.h"

#include <thread>
#include <vector>

#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/status.h"
#include "vgpu/atomics.h"

namespace tdfs::vgpu {

bool LaunchKernel(int num_warps, const std::function<void(int)>& body,
                  LaunchStats* stats, int64_t launch_overhead_ns,
                  obs::TraceSession* trace, int device_id) {
  TDFS_CHECK(num_warps >= 1);
  if (TDFS_INJECT_FAILURE("vgpu_launch")) {
    return false;  // injected launch/device failure: no warp body runs
  }
  if (stats != nullptr) {
    stats->kernels_launched.fetch_add(1, std::memory_order_relaxed);
    stats->warps_launched.fetch_add(num_warps, std::memory_order_relaxed);
  }
  if (trace != nullptr) {
    trace->RecordGlobal(device_id, obs::TraceEvent::kKernelLaunch,
                        num_warps);
  }
  if (launch_overhead_ns > 0) {
    Nanosleep(launch_overhead_ns);
  }
  if (num_warps == 1) {
    body(0);
    return true;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_warps - 1);
  for (int w = 1; w < num_warps; ++w) {
    threads.emplace_back([&body, w] { body(w); });
  }
  body(0);
  for (auto& t : threads) {
    t.join();
  }
  return true;
}

}  // namespace tdfs::vgpu
