// Kernel launching for the virtual GPU.
//
// The paper's execution model: one kernel call, each *warp* a basic
// processing unit running until the job drains. The substrate maps each
// warp to a host thread executing the warp body to completion. Nested
// launches are supported because the EGSM baseline ("New Kernel" strategy,
// Section IV-C) spawns child kernels for hot subtrees; the launcher meters
// launch count and an emulated per-launch latency so that strategy pays its
// real-world cost.

#ifndef TDFS_VGPU_SCHEDULER_H_
#define TDFS_VGPU_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace tdfs::obs {
class TraceSession;
}  // namespace tdfs::obs

namespace tdfs::vgpu {

/// Aggregate launch statistics for one matching job.
struct LaunchStats {
  std::atomic<int64_t> kernels_launched{0};
  std::atomic<int64_t> warps_launched{0};

  void Reset() {
    kernels_launched.store(0, std::memory_order_relaxed);
    warps_launched.store(0, std::memory_order_relaxed);
  }
};

/// Launches `num_warps` warp bodies and blocks until all complete.
/// `body(warp_id)` is invoked once per warp on its own thread.
///
/// `launch_overhead_ns` emulates the driver/runtime cost of a kernel launch
/// plus per-kernel stack allocation (the overhead the paper charges the
/// EGSM strategy with); 0 for the main kernel, whose one-off cost is noise.
///
/// Returns true when the kernel ran. Returns false — without invoking any
/// warp body — only when the "vgpu_launch" failpoint fires, modeling a
/// failed launch or a lost device; callers with a degradation path check
/// the result, everything else keeps the launch-always-succeeds contract.
///
/// When `trace` is set, a kernel_launch event (arg = num_warps) is recorded
/// on `device_id`'s global track before the warp bodies start.
bool LaunchKernel(int num_warps, const std::function<void(int)>& body,
                  LaunchStats* stats = nullptr,
                  int64_t launch_overhead_ns = 0,
                  obs::TraceSession* trace = nullptr, int device_id = 0);

}  // namespace tdfs::vgpu

#endif  // TDFS_VGPU_SCHEDULER_H_
