#include "vgpu/atomics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tdfs::vgpu {
namespace {

TEST(AtomicsTest, AtomicAddReturnsOldValue) {
  int32_t x = 10;
  EXPECT_EQ(AtomicAdd(&x, 5), 10);
  EXPECT_EQ(x, 15);
  EXPECT_EQ(AtomicAdd(&x, -3), 15);
  EXPECT_EQ(x, 12);
}

TEST(AtomicsTest, AtomicSubReturnsOldValue) {
  int32_t x = 10;
  EXPECT_EQ(AtomicSub(&x, 4), 10);
  EXPECT_EQ(x, 6);
}

TEST(AtomicsTest, AtomicAdd64) {
  int64_t x = 1'000'000'000'000;
  EXPECT_EQ(AtomicAdd64(&x, 3), 1'000'000'000'000);
  EXPECT_EQ(x, 1'000'000'000'003);
}

TEST(AtomicsTest, AtomicCasSuccess) {
  int32_t x = 7;
  // CUDA semantics: returns the old value; swap happens iff old == compare.
  EXPECT_EQ(AtomicCas(&x, 7, 9), 7);
  EXPECT_EQ(x, 9);
}

TEST(AtomicsTest, AtomicCasFailureLeavesValue) {
  int32_t x = 7;
  EXPECT_EQ(AtomicCas(&x, 5, 9), 7);
  EXPECT_EQ(x, 7);
}

TEST(AtomicsTest, AtomicExchReturnsOldValue) {
  int32_t x = 3;
  EXPECT_EQ(AtomicExch(&x, 8), 3);
  EXPECT_EQ(x, 8);
}

TEST(AtomicsTest, AtomicLoadReadsCurrent) {
  int32_t x = 21;
  EXPECT_EQ(AtomicLoad(&x), 21);
}

TEST(AtomicsTest, ConcurrentAddsSumExactly) {
  int32_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) {
        AtomicAdd(&counter, 1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(AtomicsTest, ConcurrentCasHandoffNeverLosesValues) {
  // One slot, many producers CAS-ing from -1; consumers exchanging back to
  // -1 — the slot protocol of the task queue.
  int32_t slot = -1;
  std::atomic<int64_t> consumed_sum{0};
  constexpr int kValues = 10000;
  std::thread producer([&slot] {
    for (int32_t v = 1; v <= kValues; ++v) {
      while (AtomicCas(&slot, -1, v) != -1) {
        Nanosleep(0);
      }
    }
  });
  std::thread consumer([&slot, &consumed_sum] {
    for (int i = 0; i < kValues; ++i) {
      int32_t v;
      while ((v = AtomicExch(&slot, -1)) == -1) {
        Nanosleep(0);
      }
      consumed_sum.fetch_add(v, std::memory_order_relaxed);
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed_sum.load(), int64_t{kValues} * (kValues + 1) / 2);
}

}  // namespace
}  // namespace tdfs::vgpu
