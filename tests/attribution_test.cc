// Tests for wall-time attribution (core/result.h TimeAttribution +
// util/time_attr.h TimeAttributionSink): sink → export conversion,
// sampled-estimate scaling, multi-device merges, the collapsed-stack
// flamegraph format, and an end-to-end run producing attribution only
// when traced.

#include <sstream>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/result.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "query/patterns.h"
#include "util/time_attr.h"

namespace tdfs {
namespace {

TEST(TimeAttributionSinkTest, EstimateScalesBySamplingRatio) {
  // 640 calls, 10 sampled at 1000 ns total -> estimate 64000 ns.
  EXPECT_EQ(TimeAttributionSink::EstimateNs(640, 10, 1000), 64000u);
  EXPECT_EQ(TimeAttributionSink::EstimateNs(100, 100, 500), 500u);
  EXPECT_EQ(TimeAttributionSink::EstimateNs(100, 0, 0), 0u);
  EXPECT_EQ(TimeAttribution::EstimatedNs(640, 10, 1000), 64000u);
}

TEST(TimeAttributionSinkTest, CellSlotClampsToOther) {
  EXPECT_EQ(TimeAttributionSink::CellSlot(0), 0);
  EXPECT_EQ(TimeAttributionSink::CellSlot(15), 15);
  EXPECT_EQ(TimeAttributionSink::CellSlot(-1),
            TimeAttributionSink::kMaxCells - 1);
  EXPECT_EQ(TimeAttributionSink::CellSlot(99),
            TimeAttributionSink::kMaxCells - 1);
}

TEST(TimeAttributionTest, FromSinkDropsZeroCallBuckets) {
  TimeAttributionSink sink;
  sink.cell_calls[2] = 100;
  sink.cell_sampled[2] = 2;
  sink.cell_ns[2] = 50;
  sink.arm_calls[2][static_cast<int>(IntersectArm::kMergeSimd)] = 40;
  sink.arm_sampled[2][static_cast<int>(IntersectArm::kMergeSimd)] = 1;
  sink.arm_ns[2][static_cast<int>(IntersectArm::kMergeSimd)] = 10;
  sink.cell_calls[TimeAttributionSink::kMaxCells - 1] = 5;

  const TimeAttribution attr = TimeAttribution::FromSink(sink);
  ASSERT_EQ(attr.cells.size(), 2u);
  EXPECT_EQ(attr.cells[0].name, "cell2");
  EXPECT_EQ(attr.cells[0].calls, 100u);
  EXPECT_EQ(attr.cells[1].name, "other");
  ASSERT_EQ(attr.arms.size(), 1u);
  EXPECT_EQ(attr.arms[0].cell, "cell2");
  EXPECT_EQ(attr.arms[0].arm, "merge_simd");
  EXPECT_FALSE(attr.Empty());
  EXPECT_TRUE(TimeAttribution().Empty());
}

TEST(TimeAttributionTest, MergeFromAccumulatesByKey) {
  TimeAttribution a;
  a.cells.push_back({"cell0", 10, 1, 100});
  a.arms.push_back({"cell0", "merge_scalar", 4, 1, 40});

  TimeAttribution b;
  b.cells.push_back({"cell0", 30, 2, 200});
  b.cells.push_back({"cell1", 7, 1, 70});
  b.arms.push_back({"cell0", "merge_scalar", 6, 1, 60});
  b.arms.push_back({"cell0", "gallop_simd", 2, 1, 20});

  a.MergeFrom(b);
  ASSERT_EQ(a.cells.size(), 2u);
  EXPECT_EQ(a.cells[0].calls, 40u);
  EXPECT_EQ(a.cells[0].sampled, 3u);
  EXPECT_EQ(a.cells[0].ns, 300u);
  EXPECT_EQ(a.cells[1].name, "cell1");
  ASSERT_EQ(a.arms.size(), 2u);
  EXPECT_EQ(a.arms[0].calls, 10u);
  EXPECT_EQ(a.arms[1].arm, "gallop_simd");
}

TEST(TimeAttributionTest, WriteCollapsedGolden) {
  TimeAttribution attr;
  // cell0: estimate 1000 ns, arms claim 300 -> residual 700.
  attr.cells.push_back({"cell0", 100, 100, 1000});
  attr.arms.push_back({"cell0", "merge_simd", 30, 30, 300});
  // cell1: arms exceed the cell estimate (independent sampling) -> the
  // residual clamps to 0 and only the arm line is written.
  attr.cells.push_back({"cell1", 10, 10, 50});
  attr.arms.push_back({"cell1", "bitmap_merge", 10, 10, 80});

  std::ostringstream os;
  attr.WriteCollapsed(os);
  EXPECT_EQ(os.str(),
            "tdfs;cell0 700\n"
            "tdfs;cell0;merge_simd 300\n"
            "tdfs;cell1;bitmap_merge 80\n");
}

TEST(TimeAttributionTest, TracedRunProducesAttribution) {
  const Graph g = GenerateErdosRenyi(200, 1500, /*seed=*/11);
  const QueryGraph q = Pattern(3);

  EngineConfig config = TdfsConfig();
  config.num_warps = 4;

  // Untraced: no attribution.
  RunResult plain = RunMatching(g, q, config);
  ASSERT_TRUE(plain.status.ok());
  EXPECT_TRUE(plain.attribution.Empty());

  // Traced: per-cell buckets with sane invariants.
  obs::TraceSession trace;
  config.trace = &trace;
  RunResult traced = RunMatching(g, q, config);
  ASSERT_TRUE(traced.status.ok());
  EXPECT_EQ(traced.match_count, plain.match_count);
  ASSERT_FALSE(traced.attribution.Empty());
  for (const TimeAttribution::CellBucket& cell : traced.attribution.cells) {
    EXPECT_GT(cell.calls, 0u);
    EXPECT_LE(cell.sampled, cell.calls);
  }
  for (const TimeAttribution::ArmBucket& arm : traced.attribution.arms) {
    EXPECT_GT(arm.calls, 0u);
    EXPECT_LE(arm.sampled, arm.calls);
  }
  // The collapsed export parses as "tdfs;stack <ns>" lines.
  std::ostringstream os;
  traced.attribution.WriteCollapsed(os);
  std::istringstream lines(os.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.rfind("tdfs;", 0), 0u) << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    ++n;
  }
  EXPECT_GT(n, 0);
}

}  // namespace
}  // namespace tdfs
