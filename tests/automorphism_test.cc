#include "query/automorphism.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "query/patterns.h"

namespace tdfs {
namespace {

bool IsAutomorphism(const QueryGraph& q, const QueryPermutation& p) {
  for (int u = 0; u < q.NumVertices(); ++u) {
    if (q.VertexLabel(u) != q.VertexLabel(p[u])) {
      return false;
    }
    for (int v = u + 1; v < q.NumVertices(); ++v) {
      if (q.HasEdge(u, v) != q.HasEdge(p[u], p[v])) {
        return false;
      }
    }
  }
  return true;
}

TEST(AutomorphismTest, IdentityAlwaysPresent) {
  for (int i : AllPatternIndices()) {
    auto group = ComputeAutomorphisms(Pattern(i));
    bool has_identity = false;
    for (const auto& p : group) {
      bool id = true;
      for (int u = 0; u < Pattern(i).NumVertices(); ++u) {
        id = id && p[u] == u;
      }
      has_identity = has_identity || id;
    }
    EXPECT_TRUE(has_identity) << PatternName(i);
  }
}

TEST(AutomorphismTest, EveryReturnedPermutationIsAnAutomorphism) {
  for (int i : AllPatternIndices()) {
    QueryGraph q = Pattern(i);
    for (const auto& p : ComputeAutomorphisms(q)) {
      EXPECT_TRUE(IsAutomorphism(q, p)) << PatternName(i);
    }
  }
}

TEST(AutomorphismTest, GroupClosedUnderComposition) {
  QueryGraph q = Pattern(8);  // hexagon, |Aut| = 12
  auto group = ComputeAutomorphisms(q);
  std::set<std::vector<int8_t>> members;
  for (const auto& p : group) {
    members.insert(std::vector<int8_t>(p.begin(), p.begin() + 6));
  }
  for (const auto& a : group) {
    for (const auto& b : group) {
      std::vector<int8_t> composed(6);
      for (int u = 0; u < 6; ++u) {
        composed[u] = a[b[u]];
      }
      EXPECT_TRUE(members.count(composed)) << "group not closed";
    }
  }
}

TEST(AutomorphismTest, PathGraphHasTwoAutomorphisms) {
  QueryGraph path(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(AutomorphismCount(path), 2u);
}

TEST(AutomorphismTest, StarGraphFactorial) {
  QueryGraph star(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(AutomorphismCount(star), 24u);  // 4! leaf permutations
}

TEST(AutomorphismTest, LabelsRestrictGroup) {
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(AutomorphismCount(triangle), 6u);
  triangle.SetVertexLabel(0, 1);
  triangle.SetVertexLabel(1, 0);
  triangle.SetVertexLabel(2, 0);
  EXPECT_EQ(AutomorphismCount(triangle), 2u);  // only 1<->2 swap survives
}

TEST(SymmetryRestrictionTest, AsymmetricGraphNeedsNoRestrictions) {
  // Chordal house (P5) has a trivial automorphism group.
  QueryGraph q = Pattern(5);
  if (AutomorphismCount(q) == 1) {
    EXPECT_TRUE(ComputeSymmetryRestrictions(q).empty());
  }
}

TEST(SymmetryRestrictionTest, TriangleGetsTotalOrder) {
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  auto restrictions = ComputeSymmetryRestrictions(triangle);
  // A K3 needs its 3 vertices totally ordered: at least 2 restrictions.
  EXPECT_GE(restrictions.size(), 2u);
  for (const auto& r : restrictions) {
    EXPECT_NE(r.smaller, r.larger);
  }
}

// The load-bearing property: for every pattern, exactly one member of each
// automorphism-equivalence class of vertex assignments satisfies all
// restrictions. Verified exhaustively over all injective assignments of a
// small universe.
class RestrictionSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(RestrictionSoundnessTest, ExactlyOneRepresentativePerOrbit) {
  QueryGraph q = Pattern(GetParam());
  const int k = q.NumVertices();
  auto group = ComputeAutomorphisms(q);
  auto restrictions = ComputeSymmetryRestrictions(q);

  auto satisfies = [&restrictions](const std::vector<int>& ids) {
    for (const auto& r : restrictions) {
      if (ids[r.smaller] >= ids[r.larger]) {
        return false;
      }
    }
    return true;
  };

  // Enumerate injective assignments of ids {0..k-1} (vertex u -> ids[u]).
  // For each, its orbit {ids ∘ phi : phi in Aut} must contain exactly one
  // satisfying member.
  std::vector<int> ids(k);
  for (int u = 0; u < k; ++u) {
    ids[u] = u;
  }
  do {
    int satisfying_in_orbit = 0;
    std::vector<int> image(k);
    for (const auto& phi : group) {
      for (int u = 0; u < k; ++u) {
        image[u] = ids[phi[u]];
      }
      satisfying_in_orbit += satisfies(image) ? 1 : 0;
    }
    EXPECT_EQ(satisfying_in_orbit, 1) << PatternName(GetParam());
  } while (std::next_permutation(ids.begin(), ids.end()));
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, RestrictionSoundnessTest,
                         ::testing::ValuesIn(AllPatternIndices()),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return PatternName(info.param);
                         });

}  // namespace
}  // namespace tdfs
