#include "core/bfs_engine.h"

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

uint64_t Oracle(const Graph& g, const QueryGraph& q) {
  EngineConfig config = PbeConfig();
  config.use_reuse = false;
  RunResult r = RunMatchingRef(g, q, config);
  EXPECT_TRUE(r.status.ok());
  return r.match_count;
}

TEST(BfsEngineTest, MatchesOracleAcrossPatterns) {
  Graph g = GenerateErdosRenyi(150, 650, 83);
  for (int i : {1, 2, 3, 4, 8, 11}) {
    RunResult r = RunMatchingBfs(g, Pattern(i));
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, Oracle(g, Pattern(i))) << PatternName(i);
  }
}

TEST(BfsEngineTest, EdgePatternCountsEdges) {
  Graph g = GenerateErdosRenyi(60, 180, 3);
  QueryGraph edge(2, {{0, 1}});
  RunResult r = RunMatchingBfs(g, edge);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, 180u);
}

TEST(BfsEngineTest, AgreesWithTdfsEngine) {
  Graph g = GenerateBarabasiAlbert(200, 4, 89);
  for (int i : {1, 3, 10}) {
    RunResult bfs = RunMatchingBfs(g, Pattern(i));
    RunResult dfs = RunMatching(g, Pattern(i), TdfsConfig());
    ASSERT_TRUE(bfs.status.ok());
    ASSERT_TRUE(dfs.status.ok());
    EXPECT_EQ(bfs.match_count, dfs.match_count) << PatternName(i);
  }
}

TEST(BfsEngineTest, TinyBudgetForcesManyBatchesAndStaysCorrect) {
  Graph g = GenerateBarabasiAlbert(200, 4, 97);
  EngineConfig generous = PbeConfig();
  EngineConfig tight = PbeConfig();
  tight.bfs_memory_budget_bytes = 1 << 12;  // 4 KiB
  RunResult rg = RunMatchingBfs(g, Pattern(3), generous);
  RunResult rt = RunMatchingBfs(g, Pattern(3), tight);
  ASSERT_TRUE(rg.status.ok());
  ASSERT_TRUE(rt.status.ok());
  EXPECT_EQ(rg.match_count, rt.match_count);
  EXPECT_GT(rt.counters.bfs_batches, rg.counters.bfs_batches);
}

TEST(BfsEngineTest, ReportsPeakMemory) {
  Graph g = GenerateErdosRenyi(150, 600, 101);
  RunResult r = RunMatchingBfs(g, Pattern(8));
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.counters.bfs_peak_bytes, 0);
  EXPECT_GE(r.counters.bfs_batches, static_cast<int64_t>(1));
}

TEST(BfsEngineTest, PeakMemoryExceedsDfsFootprintOnFanoutHeavyPatterns) {
  // The paper's motivation for DFS: BFS materializes whole levels.
  Graph g = GenerateBarabasiAlbert(400, 5, 103);
  RunResult bfs = RunMatchingBfs(g, Pattern(8), PbeConfig());
  RunResult dfs = RunMatching(g, Pattern(8), TdfsConfig());
  ASSERT_TRUE(bfs.status.ok());
  ASSERT_TRUE(dfs.status.ok());
  ASSERT_EQ(bfs.match_count, dfs.match_count);
  EXPECT_GT(bfs.counters.bfs_peak_bytes, dfs.counters.stack_bytes_peak);
}

TEST(BfsEngineTest, LabeledGraphsSupported) {
  // PBE itself is unlabeled-only, but the engine generalizes; verify the
  // labeled path against the oracle.
  Graph g = GenerateErdosRenyi(150, 800, 107);
  g.AssignUniformLabels(4, 9);
  QueryGraph q = Pattern(12);
  RunResult r = RunMatchingBfs(g, q);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, q));
}

TEST(BfsEngineTest, SingleWarpCorrect) {
  Graph g = GenerateErdosRenyi(100, 400, 109);
  EngineConfig config = PbeConfig();
  config.num_warps = 1;
  RunResult r = RunMatchingBfs(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(2)));
}

}  // namespace
}  // namespace tdfs
