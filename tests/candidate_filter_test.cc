// Candidate prefiltering (query/candidate_filter.h): seeding and
// refinement semantics, the candidate-induced CSR's structural invariants
// (subset-of-raw spans, sortedness, monotone remap), and exactness of the
// filtered match counts against the unfiltered oracle.

#include "query/candidate_filter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "query/query_graph.h"

namespace tdfs {
namespace {

Graph LabeledEr(int32_t labels, uint64_t seed) {
  Graph g = GenerateErdosRenyi(150, 700, seed);
  g.AssignUniformLabels(labels, seed + 1);
  return g;
}

Graph ZipfBa(uint64_t seed) {
  Graph g = GenerateBarabasiAlbert(200, 3, seed);
  g.AssignZipfLabels(8, 1.5, seed + 1);
  return g;
}

TEST(CandidateFilterTest, LdfSeedingIsExactlyLabelAndDegree) {
  Graph g = LabeledEr(4, 11);
  QueryGraph q = Pattern(14);  // labeled pattern
  ASSERT_TRUE(q.IsLabeled());
  FilteredGraph fg = BuildFilteredGraph(g, q, PrefilterKind::kLDF);
  for (int u = 0; u < q.NumVertices(); ++u) {
    std::vector<VertexId> expected;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (g.VertexLabel(v) == q.VertexLabel(u) &&
          static_cast<int>(g.Neighbors(v).size()) >= q.Degree(u)) {
        expected.push_back(v);
      }
    }
    VertexSpan got = fg.Candidates(u);
    ASSERT_EQ(got.size(), expected.size()) << "query vertex " << u;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(fg.ToOriginal(got[i]), expected[i]);
    }
  }
}

TEST(CandidateFilterTest, UnlabeledQuerySeedsByDegreeOnly) {
  Graph g = GenerateBarabasiAlbert(120, 3, 21);
  QueryGraph q = Pattern(2);  // 4-clique: every vertex has degree 3
  FilteredGraph fg = BuildFilteredGraph(g, q, PrefilterKind::kLDF);
  for (int u = 0; u < q.NumVertices(); ++u) {
    for (VertexId v : fg.Candidates(u)) {
      EXPECT_GE(static_cast<int>(
                    g.Neighbors(fg.ToOriginal(v)).size()),
                q.Degree(u));
    }
  }
}

TEST(CandidateFilterTest, NeighborhoodRefinementOnlyShrinksSets) {
  Graph g = ZipfBa(31);
  for (int pattern : {12, 14, 17, 20}) {
    QueryGraph q = Pattern(pattern);
    FilteredGraph ldf = BuildFilteredGraph(g, q, PrefilterKind::kLDF);
    FilteredGraph nbr =
        BuildFilteredGraph(g, q, PrefilterKind::kNeighborhood);
    ASSERT_EQ(ldf.num_query_vertices(), nbr.num_query_vertices());
    for (int u = 0; u < q.NumVertices(); ++u) {
      EXPECT_LE(nbr.candidate_counts()[u], ldf.candidate_counts()[u]);
      // Every refined candidate survived seeding.
      for (VertexId v : nbr.Candidates(u)) {
        const VertexId original = nbr.ToOriginal(v);
        const VertexId in_ldf = ldf.ToFiltered(original);
        ASSERT_GE(in_ldf, 0);
        EXPECT_TRUE(ldf.IsCandidate(u, in_ldf));
      }
    }
    EXPECT_GE(nbr.stats().seeded_candidates,
              nbr.stats().refined_candidates);
  }
}

TEST(CandidateFilterTest, RefinedCandidatesHaveWitnessNeighbors) {
  Graph g = ZipfBa(41);
  QueryGraph q = Pattern(14);
  FilteredGraph fg = BuildFilteredGraph(g, q, PrefilterKind::kNeighborhood);
  if (fg.stats().refine_rounds < 3) {
    // Fixpoint reached: the neighborhood-safety invariant must hold for
    // every surviving candidate and every query neighbor.
    for (int u = 0; u < q.NumVertices(); ++u) {
      for (VertexId v : fg.Candidates(u)) {
        const VertexId ov = fg.ToOriginal(v);
        for (int up = 0; up < q.NumVertices(); ++up) {
          if (!q.HasEdge(u, up)) {
            continue;
          }
          bool witness = false;
          for (VertexId w : g.Neighbors(ov)) {
            const VertexId fw = fg.ToFiltered(w);
            if (fw >= 0 && fg.IsCandidate(up, fw)) {
              witness = true;
              break;
            }
          }
          EXPECT_TRUE(witness) << "C(" << u << ") candidate " << ov
                               << " has no witness in C(" << up << ")";
        }
      }
    }
  }
}

// The satellite property test: candidate spans and the induced CSR are
// subsets of the raw graph's spans, sorted, with a monotone id remap.
TEST(CandidateFilterTest, PropertyFilteredSpansAreSortedSubsetsOfRaw) {
  const struct {
    Graph graph;
    int pattern;
  } cases[] = {
      {GenerateErdosRenyi(140, 560, 51), 4},
      {GenerateBarabasiAlbert(160, 3, 52), 7},
      {LabeledEr(4, 53), 14},
      {ZipfBa(54), 17},
      {ZipfBa(55), 20},
  };
  for (const auto& [g, pattern] : cases) {
    QueryGraph q = Pattern(pattern);
    if (q.IsLabeled() && !g.IsLabeled()) {
      continue;
    }
    for (PrefilterKind kind :
         {PrefilterKind::kLDF, PrefilterKind::kNeighborhood}) {
      FilteredGraph fg = BuildFilteredGraph(g, q, kind);
      // Monotone remap: original ids strictly increase with filtered ids,
      // so id-order symmetry restrictions keep their meaning.
      for (VertexId v = 1; v < fg.graph().NumVertices(); ++v) {
        EXPECT_LT(fg.ToOriginal(v - 1), fg.ToOriginal(v));
      }
      for (int u = 0; u < q.NumVertices(); ++u) {
        VertexSpan c = fg.Candidates(u);
        EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
        EXPECT_EQ(static_cast<int64_t>(c.size()),
                  fg.candidate_counts()[u]);
        for (VertexId v : c) {
          EXPECT_TRUE(fg.IsCandidate(u, v));
        }
      }
      // Every induced adjacency span is a sorted subset of the raw span
      // (under the id remap), and labels carry over.
      for (VertexId v = 0; v < fg.graph().NumVertices(); ++v) {
        const VertexId ov = fg.ToOriginal(v);
        if (g.IsLabeled()) {
          EXPECT_EQ(fg.graph().VertexLabel(v), g.VertexLabel(ov));
        }
        VertexSpan span = fg.graph().Neighbors(v);
        EXPECT_TRUE(std::is_sorted(span.begin(), span.end()));
        for (VertexId w : span) {
          EXPECT_TRUE(g.HasEdge(ov, fg.ToOriginal(w)))
              << "induced edge not present in the raw graph";
        }
      }
    }
  }
}

TEST(CandidateFilterTest, AbsentQueryLabelEmptiesACandidateSet) {
  Graph g = GenerateErdosRenyi(80, 300, 61);
  g.AssignUniformLabels(2, 62);  // labels {0, 1} only
  QueryGraph q(3);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.SetVertexLabel(0, 0);
  q.SetVertexLabel(1, 1);
  q.SetVertexLabel(2, 7);  // absent from the data graph
  FilteredGraph fg = BuildFilteredGraph(g, q, PrefilterKind::kLDF);
  EXPECT_TRUE(fg.AnyCandidateSetEmpty());
  EXPECT_EQ(fg.candidate_counts()[2], 0);
  // And the engine short-circuits to a zero count.
  EngineConfig config = TdfsConfig();
  config.prefilter = PrefilterKind::kLDF;
  RunResult r = RunMatching(g, q, config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, 0u);
}

TEST(CandidateFilterTest, FilteredCountsMatchOracleAndStampCounters) {
  Graph g = ZipfBa(71);
  QueryGraph q = Pattern(14);
  RunResult oracle = RunMatchingRef(g, q, TdfsConfig());
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;
  for (PrefilterKind kind :
       {PrefilterKind::kLDF, PrefilterKind::kNeighborhood}) {
    EngineConfig config = TdfsConfig();
    config.prefilter = kind;
    RunResult r = RunMatching(g, q, config);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, oracle.match_count)
        << PrefilterKindName(kind);
    EXPECT_EQ(r.counters.prefilter_original_vertices, g.NumVertices());
    EXPECT_GT(r.counters.prefilter_kept_vertices, 0);
    EXPECT_LE(r.counters.prefilter_kept_vertices,
              r.counters.prefilter_original_vertices);
    EXPECT_LE(r.counters.prefilter_kept_edges,
              r.counters.prefilter_original_edges);
  }
}

TEST(CandidateFilterTest, InducedModeFallsBackToUnfilteredExecution) {
  Graph g = LabeledEr(4, 81);
  QueryGraph q = Pattern(14);
  EngineConfig induced = TdfsConfig();
  induced.induced = true;
  RunResult plain = RunMatching(g, q, induced);
  ASSERT_TRUE(plain.status.ok()) << plain.status;
  induced.prefilter = PrefilterKind::kNeighborhood;
  RunResult gated = RunMatching(g, q, induced);
  ASSERT_TRUE(gated.status.ok()) << gated.status;
  EXPECT_EQ(gated.match_count, plain.match_count);
  // The gate means no filtered view was built at all.
  EXPECT_EQ(gated.counters.prefilter_kept_vertices, 0);
}

TEST(CandidateFilterTest, MemoryBytesIsPositiveAndCountsTheCsr) {
  Graph g = LabeledEr(4, 91);
  QueryGraph q = Pattern(14);
  FilteredGraph fg = BuildFilteredGraph(g, q, PrefilterKind::kLDF);
  EXPECT_GT(fg.MemoryBytes(), 0);
}

TEST(PrefilterKindTest, ParseAndNameRoundTrip) {
  for (PrefilterKind kind :
       {PrefilterKind::kOff, PrefilterKind::kLDF,
        PrefilterKind::kNeighborhood}) {
    PrefilterKind parsed = PrefilterKind::kOff;
    EXPECT_TRUE(ParsePrefilterKind(PrefilterKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PrefilterKind parsed = PrefilterKind::kLDF;
  EXPECT_FALSE(ParsePrefilterKind("bogus", &parsed));
  EXPECT_EQ(parsed, PrefilterKind::kLDF);  // untouched on failure
}

}  // namespace
}  // namespace tdfs
