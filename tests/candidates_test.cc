#include "core/candidates.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "util/prng.h"

namespace tdfs {
namespace {

// Direct unit tests of the shared candidate computation: the reuse path,
// label filtering, and the index-vs-CSR equivalence that all engines rely
// on.

MatchPlan CompileOrDie(const QueryGraph& q, PlanOptions opts = {}) {
  auto plan = CompilePlan(q, opts);
  TDFS_CHECK(plan.ok());
  return std::move(plan).value();
}

std::vector<VertexId> Candidates(const Graph& g, const MatchPlan& plan,
                                 const std::vector<VertexId>& match,
                                 int pos, const LabelIndex* index = nullptr) {
  CandidateScratch scratch;
  std::vector<VertexId> out;
  ComputeCandidates(g, index, plan, match.data(), pos, &scratch, &out,
                    nullptr);
  return out;
}

TEST(CandidatesTest, SingleBackwardNeighborCopiesAdjacency) {
  Graph g = GenerateErdosRenyi(50, 150, 1);
  QueryGraph path(3, {{0, 1}, {1, 2}});
  PlanOptions opts;
  opts.forced_order = {1, 0, 2};  // pos2 (query vertex 2) backward = {0}
  opts.use_symmetry_breaking = false;
  MatchPlan plan = CompileOrDie(path, opts);
  ASSERT_EQ(plan.backward[2], std::vector<int>{0});
  std::vector<VertexId> match = {7, 3, -1};
  std::vector<VertexId> cands = Candidates(g, plan, match, 2);
  VertexSpan expected = g.Neighbors(7);
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), cands.begin(),
                         cands.end()));
}

TEST(CandidatesTest, TwoBackwardNeighborsIntersect) {
  Graph g = GenerateErdosRenyi(60, 400, 2);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  PlanOptions opts;
  opts.use_symmetry_breaking = false;
  MatchPlan plan = CompileOrDie(triangle, opts);
  std::vector<VertexId> match = {5, 9, -1};
  std::vector<VertexId> cands = Candidates(g, plan, match, 2);
  std::vector<VertexId> expected;
  IntersectMerge(g.Neighbors(5), g.Neighbors(9), &expected);
  EXPECT_EQ(cands, expected);
}

TEST(CandidatesTest, LabelFilterApplied) {
  Graph g = GenerateErdosRenyi(80, 600, 3);
  g.AssignUniformLabels(3, 4);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  triangle.SetVertexLabel(0, 0);
  triangle.SetVertexLabel(1, 1);
  triangle.SetVertexLabel(2, 2);
  PlanOptions opts;
  MatchPlan plan = CompileOrDie(triangle, opts);
  std::vector<VertexId> match = {11, 17, -1};
  std::vector<VertexId> cands = Candidates(g, plan, match, 2);
  const Label wanted = plan.label_filter[2];
  ASSERT_NE(wanted, kNoLabel);
  for (VertexId v : cands) {
    EXPECT_EQ(g.VertexLabel(v), wanted);
  }
  // And nothing with the right label was dropped.
  std::vector<VertexId> expected;
  IntersectMerge(g.Neighbors(match[0]), g.Neighbors(match[1]), &expected);
  size_t with_label = 0;
  for (VertexId v : expected) {
    with_label += g.VertexLabel(v) == wanted ? 1 : 0;
  }
  EXPECT_EQ(cands.size(), with_label);
}

TEST(CandidatesTest, IndexAndCsrPathsAgree) {
  Graph g = GenerateErdosRenyi(100, 900, 5);
  g.AssignUniformLabels(4, 6);
  LabelIndex index(g);
  QueryGraph q = Pattern(13);  // labeled 4-clique
  MatchPlan plan = CompileOrDie(q);
  // Position 2 has two backward neighbors; compare both access paths over
  // several prefixes.
  for (VertexId a = 0; a < 20; ++a) {
    for (VertexId b : g.Neighbors(a)) {
      std::vector<VertexId> match = {a, b, -1, -1};
      std::vector<VertexId> via_csr = Candidates(g, plan, match, 2);
      std::vector<VertexId> via_index =
          Candidates(g, plan, match, 2, &index);
      EXPECT_EQ(via_csr, via_index) << "prefix (" << a << "," << b << ")";
    }
  }
}

TEST(IntersectStoredBaseTest, MatchesStdIntersectionAcrossRatios) {
  Xoshiro256ss rng(777);
  for (int trial = 0; trial < 120; ++trial) {
    // Vary sizes across the three kernel branches (list-small, base-small,
    // comparable).
    const size_t base_n = 1 + rng.Below(trial % 3 == 0 ? 2000 : 60);
    const size_t list_n = 1 + rng.Below(trial % 3 == 1 ? 2000 : 60);
    std::set<VertexId> sb;
    std::set<VertexId> sl;
    for (size_t i = 0; i < base_n; ++i) {
      sb.insert(static_cast<VertexId>(rng.Below(3000)));
    }
    for (size_t i = 0; i < list_n; ++i) {
      sl.insert(static_cast<VertexId>(rng.Below(3000)));
    }
    std::vector<VertexId> base(sb.begin(), sb.end());
    std::vector<VertexId> list(sl.begin(), sl.end());
    std::vector<VertexId> expected;
    std::set_intersection(base.begin(), base.end(), list.begin(),
                          list.end(), std::back_inserter(expected));
    std::vector<VertexId> out;
    WorkCounter work;
    IntersectStoredBase(
        static_cast<int64_t>(base.size()),
        [&base](int64_t i) { return base[i]; }, VertexSpan(list), &out,
        &work);
    EXPECT_EQ(out, expected) << "trial " << trial;
    EXPECT_GT(work.units, 0u);
  }
}

TEST(IntersectStoredBaseTest, EmptyInputs) {
  std::vector<VertexId> base = {1, 2, 3};
  std::vector<VertexId> out;
  IntersectStoredBase(0, [](int64_t) { return 0; },
                      VertexSpan(base), &out, nullptr);
  EXPECT_TRUE(out.empty());
  IntersectStoredBase(static_cast<int64_t>(base.size()),
                      [&base](int64_t i) { return base[i]; }, VertexSpan(),
                      &out, nullptr);
  EXPECT_TRUE(out.empty());
}

TEST(CandidatesTest, EngineReusePathMatchesNoReuseEngine) {
  // End-to-end check of the in-place reuse chain (IntersectStoredBase
  // inside the warp engine) against the reuse-free computation.
  Graph g = GenerateErdosRenyi(80, 700, 7);
  for (int pattern : {2, 6, 7, 10}) {
    EngineConfig with = TdfsConfig();
    EngineConfig without = TdfsConfig();
    without.use_reuse = false;
    RunResult rw = RunMatching(g, Pattern(pattern), with);
    RunResult ro = RunMatching(g, Pattern(pattern), without);
    ASSERT_TRUE(rw.status.ok());
    ASSERT_TRUE(ro.status.ok());
    EXPECT_EQ(rw.match_count, ro.match_count) << PatternName(pattern);
  }
}

TEST(CandidatesTest, EmptyPrefixNeighborhoodsYieldEmpty) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  Graph g = builder.Build();
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  PlanOptions opts;
  opts.use_symmetry_breaking = false;
  MatchPlan plan = CompileOrDie(triangle, opts);
  std::vector<VertexId> match = {0, 1, -1};  // N(0) ∩ N(1) = {} here
  EXPECT_TRUE(Candidates(g, plan, match, 2).empty());
}

TEST(CandidatesTest, WorkIsMetered) {
  Graph g = GenerateErdosRenyi(100, 1000, 9);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  PlanOptions opts;
  opts.use_symmetry_breaking = false;
  MatchPlan plan = CompileOrDie(triangle, opts);
  CandidateScratch scratch;
  std::vector<VertexId> out;
  WorkCounter work;
  std::vector<VertexId> match = {1, 2, -1};
  ComputeCandidates(g, nullptr, plan, match.data(), 2, &scratch, &out,
                    &work);
  EXPECT_GT(work.units, 0u);
}

}  // namespace
}  // namespace tdfs
