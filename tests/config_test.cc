#include "core/config.h"

#include <gtest/gtest.h>

#include "core/result.h"

namespace tdfs {
namespace {

TEST(ConfigTest, TdfsDefaultsMatchPaper) {
  EngineConfig c = TdfsConfig();
  EXPECT_EQ(c.steal, StealStrategy::kTimeout);
  EXPECT_EQ(c.stack, StackKind::kPaged);
  EXPECT_DOUBLE_EQ(c.timeout_ms, 10.0);         // Section IV default tau
  EXPECT_EQ(c.chunk_size, 8);                   // default chunk size
  EXPECT_EQ(c.queue_capacity_ints, 3'000'000);  // N = 3M ints (12 MB)
  EXPECT_EQ(c.stop_level, 3);                   // StopLevel
  EXPECT_EQ(c.page_bytes, 8192);                // 8 KiB pages
  EXPECT_EQ(c.page_table_capacity, 40);         // 40 addresses per level
  EXPECT_TRUE(c.use_symmetry_breaking);
  EXPECT_TRUE(c.use_reuse);
  EXPECT_TRUE(c.use_degree_filter);
  EXPECT_TRUE(c.queue_first);
  EXPECT_FALSE(c.host_side_edge_filter);
}

TEST(ConfigTest, StmatchPreset) {
  EngineConfig c = StmatchConfig();
  EXPECT_EQ(c.steal, StealStrategy::kHalfSteal);
  EXPECT_EQ(c.stack, StackKind::kArrayMaxDegree);
  EXPECT_TRUE(c.host_side_edge_filter);
  EXPECT_TRUE(c.separate_vertex_removal);
  EXPECT_FALSE(c.use_reuse);
  EXPECT_TRUE(c.use_symmetry_breaking);  // STMatch does break symmetry
}

TEST(ConfigTest, EgsmPreset) {
  EngineConfig c = EgsmConfig();
  EXPECT_EQ(c.steal, StealStrategy::kNewKernel);
  EXPECT_FALSE(c.use_symmetry_breaking);  // the paper's key EGSM weakness
  EXPECT_TRUE(c.use_label_index);
}

TEST(ConfigTest, PbePreset) {
  EngineConfig c = PbeConfig();
  EXPECT_EQ(c.steal, StealStrategy::kNone);
  EXPECT_GT(c.bfs_memory_budget_bytes, 0);
}

TEST(ConfigTest, EnumNames) {
  EXPECT_STREQ(StealStrategyName(StealStrategy::kTimeout), "timeout");
  EXPECT_STREQ(StealStrategyName(StealStrategy::kHalfSteal), "half-steal");
  EXPECT_STREQ(StealStrategyName(StealStrategy::kNewKernel), "new-kernel");
  EXPECT_STREQ(StealStrategyName(StealStrategy::kNone), "none");
  EXPECT_STREQ(StackKindName(StackKind::kPaged), "paged");
  EXPECT_STREQ(StackKindName(StackKind::kArrayMaxDegree), "array-dmax");
  EXPECT_STREQ(StackKindName(StackKind::kArrayFixed), "array-fixed");
}

TEST(ResultTest, MergeAddsAndMaxes) {
  RunCounters a;
  a.work_units = 10;
  a.tasks_enqueued = 3;
  a.queue_peak_tasks = 5;
  a.pages_peak = 7;
  a.stack_overflow = false;
  RunCounters b;
  b.work_units = 20;
  b.tasks_enqueued = 4;
  b.queue_peak_tasks = 2;
  b.pages_peak = 9;
  b.stack_overflow = true;
  a.MergeFrom(b);
  EXPECT_EQ(a.work_units, 30u);
  EXPECT_EQ(a.tasks_enqueued, 7);
  EXPECT_EQ(a.queue_peak_tasks, 5);  // max
  EXPECT_EQ(a.pages_peak, 9);        // max
  EXPECT_TRUE(a.stack_overflow);     // sticky
}

TEST(ResultTest, SummaryFlagsOverflowAndErrors) {
  RunResult ok;
  ok.match_count = 42;
  ok.match_ms = 1.5;
  EXPECT_NE(ok.Summary().find("matches=42"), std::string::npos);

  RunResult overflowed;
  overflowed.counters.stack_overflow = true;
  EXPECT_NE(overflowed.Summary().find("OVERFLOW"), std::string::npos);

  RunResult failed;
  failed.status = Status::ResourceExhausted("oom");
  EXPECT_NE(failed.Summary().find("ResourceExhausted"), std::string::npos);
}

}  // namespace
}  // namespace tdfs
